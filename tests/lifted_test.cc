#include <gtest/gtest.h>

#include "boolean/lineage.h"
#include "lifted/lifted.h"
#include "lifted/safety.h"
#include "logic/parser.h"
#include "test_common.h"
#include "wmc/dpll.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

Ucq UcqOf(const std::string& shorthand) {
  auto fo = ParseUcqShorthand(shorthand);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

// Exact grounded reference probability of a UCQ.
double GroundTruth(const Ucq& ucq, const Database& db) {
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(ucq, db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  auto p = counter.Compute(lineage->root);
  PDB_CHECK(p.ok());
  return *p;
}

// ---------------------------------------------------------------------------
// Example 2.1 end to end
// ---------------------------------------------------------------------------

TEST(LiftedTest, Example21MatchesPaperClosedForm) {
  testing::Figure1Probs probs;
  Database db = testing::BuildFigure1Database(probs);
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  ASSERT_TRUE(q.ok());
  auto p = LiftedProbabilityFo(*q, db);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_NEAR(*p, testing::Example21ClosedForm(probs), 1e-12);
}

TEST(LiftedTest, Example21MatchesBruteForceEnumeration) {
  Database db = testing::BuildFigure1Database();
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  FormulaManager mgr;
  auto lineage = BuildLineage(*q, db, &mgr);
  ASSERT_TRUE(lineage.ok());
  double brute = *EnumerateProbability(&mgr, lineage->root, lineage->probs);
  double lifted = *LiftedProbabilityFo(*q, db);
  EXPECT_NEAR(lifted, brute, 1e-12);
}

// ---------------------------------------------------------------------------
// Basic rules
// ---------------------------------------------------------------------------

TEST(LiftedTest, SingleAtomExistential) {
  Database db = testing::BuildFigure1Database();
  testing::Figure1Probs p;
  // P(exists x R(x)) = 1 - (1-p1)(1-p2)(1-p3).
  auto result = LiftedProbability(UcqOf("R(x)"), db);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(*result, 1 - (1 - p.p1) * (1 - p.p2) * (1 - p.p3), 1e-12);
}

TEST(LiftedTest, GroundAtoms) {
  Database db = testing::BuildFigure1Database();
  Ucq ucq({ConjunctiveQuery({Atom("R", {Term::Const(Value("a1"))})})});
  EXPECT_NEAR(*LiftedProbability(ucq, db), 0.3, 1e-12);
  // Conjunction of independent ground atoms.
  Ucq both({ConjunctiveQuery({Atom("R", {Term::Const(Value("a1"))}),
                              Atom("R", {Term::Const(Value("a2"))})})});
  EXPECT_NEAR(*LiftedProbability(both, db), 0.3 * 0.5, 1e-12);
  // Duplicate ground atom is idempotent, not squared.
  Ucq dup({ConjunctiveQuery({Atom("R", {Term::Const(Value("a1"))}),
                             Atom("R", {Term::Const(Value("a1"))})})});
  EXPECT_NEAR(*LiftedProbability(dup, db), 0.3, 1e-12);
  // Absent tuple.
  Ucq absent({ConjunctiveQuery({Atom("R", {Term::Const(Value("zz"))})})});
  EXPECT_NEAR(*LiftedProbability(absent, db), 0.0, 1e-12);
}

TEST(LiftedTest, IndependentUnionAndProduct) {
  Database db;
  Rng rng(42);
  testing::AddRandomRelation(&db, "R", 1, &rng);
  testing::AddRandomRelation(&db, "T", 1, &rng);
  // Independent product: R(x) & T(y).
  Ucq product = UcqOf("R(x), T(y)");
  EXPECT_NEAR(*LiftedProbability(product, db), GroundTruth(product, db),
              1e-10);
  // Independent union: R(x) ; T(y).
  Ucq un = UcqOf("R(x) ; T(y)");
  EXPECT_NEAR(*LiftedProbability(un, db), GroundTruth(un, db), 1e-10);
}

TEST(LiftedTest, HierarchicalJoinMatchesGroundTruth) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Database db;
    Rng rng(seed);
    testing::AddRandomRelation(&db, "R", 1, &rng);
    testing::AddRandomRelation(&db, "S", 2, &rng);
    Ucq ucq = UcqOf("R(x), S(x,y)");
    auto lifted = LiftedProbability(ucq, db);
    ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();
    EXPECT_NEAR(*lifted, GroundTruth(ucq, db), 1e-10) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Inclusion-exclusion: Q_J (paper §5)
// ---------------------------------------------------------------------------

TEST(LiftedTest, QjNeedsInclusionExclusion) {
  Database db;
  Rng rng(7);
  testing::AddRandomRelation(&db, "R", 1, &rng);
  testing::AddRandomRelation(&db, "S", 2, &rng);
  testing::AddRandomRelation(&db, "T", 1, &rng);
  Ucq qj = UcqOf("R(x), S(x,y), T(u), S(u,v)");
  // With the I/E rule the query is computed and matches ground truth.
  LiftedStats stats;
  auto with_ie = LiftedProbability(qj, db, {}, &stats);
  ASSERT_TRUE(with_ie.ok()) << with_ie.status().ToString();
  EXPECT_NEAR(*with_ie, GroundTruth(qj, db), 1e-10);
  EXPECT_GE(stats.inclusion_exclusions, 1u);
  // Without it the basic rules fail (Theorem 5.1's point).
  LiftedOptions no_ie;
  no_ie.use_inclusion_exclusion = false;
  EXPECT_EQ(LiftedProbability(qj, db, no_ie).status().code(),
            StatusCode::kUnsupported);
}

TEST(LiftedTest, QjSweepAgainstGroundTruth) {
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    Database db;
    Rng rng(seed);
    testing::RandomTidOptions options;
    options.domain_size = 3;
    testing::AddRandomRelation(&db, "R", 1, &rng, options);
    testing::AddRandomRelation(&db, "S", 2, &rng, options);
    testing::AddRandomRelation(&db, "T", 1, &rng, options);
    Ucq qj = UcqOf("R(x), S(x,y), T(u), S(u,v)");
    auto lifted = LiftedProbability(qj, db);
    ASSERT_TRUE(lifted.ok());
    EXPECT_NEAR(*lifted, GroundTruth(qj, db), 1e-10) << "seed " << seed;
  }
}

TEST(LiftedTest, UnionWithSharedSymbolViaSeparator) {
  // R(x),S(x,y) ; T(u),S(u,v): separator grounding across disjuncts.
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    Database db;
    Rng rng(seed);
    testing::AddRandomRelation(&db, "R", 1, &rng);
    testing::AddRandomRelation(&db, "S", 2, &rng);
    testing::AddRandomRelation(&db, "T", 1, &rng);
    Ucq ucq = UcqOf("R(x), S(x,y) ; T(u), S(u,v)");
    auto lifted = LiftedProbability(ucq, db);
    ASSERT_TRUE(lifted.ok());
    EXPECT_NEAR(*lifted, GroundTruth(ucq, db), 1e-10) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Hard queries fail (as they must: #P-hardness)
// ---------------------------------------------------------------------------

TEST(LiftedTest, H0IsNotLiftable) {
  Database db;
  Rng rng(3);
  testing::AddRandomRelation(&db, "R", 1, &rng);
  testing::AddRandomRelation(&db, "S", 2, &rng);
  testing::AddRandomRelation(&db, "T", 1, &rng);
  // The dual of H0: exists x y (R & S & T) — non-hierarchical.
  auto result = LiftedProbability(UcqOf("R(x), S(x,y), T(y)"), db);
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  // And through the FO path with the universal H0 itself.
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  EXPECT_EQ(LiftedProbabilityFo(*h0, db).status().code(),
            StatusCode::kUnsupported);
}

TEST(LiftedTest, RedundantSelfJoinMinimizesToCore) {
  // S(x,y) & S(x,z) is equivalent to its core S(x,y), hence safe — the
  // engine must minimize before recursing (regression: the minimized cache
  // key used to collide with the unminimized computation).
  for (uint64_t seed = 31; seed <= 34; ++seed) {
    Database db;
    Rng rng(seed);
    testing::AddRandomRelation(&db, "S", 2, &rng);
    Ucq ucq = UcqOf("S(x,y), S(x,z)");
    auto lifted = LiftedProbability(ucq, db);
    ASSERT_TRUE(lifted.ok()) << lifted.status().ToString();
    EXPECT_NEAR(*lifted, GroundTruth(ucq, db), 1e-10);
    EXPECT_NEAR(*lifted, GroundTruth(UcqOf("S(x,y)"), db), 1e-10);
  }
}

TEST(LiftedTest, SelfJoinHardQueryFails) {
  // exists x y z (S(x,y) & S(y,z)) is hierarchical but #P-hard [17].
  Database db;
  Rng rng(4);
  testing::AddRandomRelation(&db, "S", 2, &rng);
  auto result = LiftedProbability(UcqOf("S(x,y), S(y,z)"), db);
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Duality (paper §2): P(Q) on D relates to the dual query
// ---------------------------------------------------------------------------

TEST(LiftedTest, UniversalQueryEqualsOneMinusNegation) {
  Database db = testing::BuildFigure1Database();
  auto universal = ParseFo("forall x forall y (S(x,y) => R(x))");
  auto negation = ParseFo("exists x exists y (S(x,y) & !R(x))");
  double p_universal = *LiftedProbabilityFo(*universal, db);
  double p_negation = *LiftedProbabilityFo(*negation, db);
  EXPECT_NEAR(p_universal, 1.0 - p_negation, 1e-12);
}

// ---------------------------------------------------------------------------
// Property sweep: every liftable query == ground truth on random TIDs
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* name;
  const char* shorthand;
};

class LiftedSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LiftedSweepTest, MatchesGroundTruth) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    Database db;
    Rng rng(seed);
    testing::RandomTidOptions options;
    options.domain_size = 3;
    testing::AddRandomRelation(&db, "R", 1, &rng, options);
    testing::AddRandomRelation(&db, "S", 2, &rng, options);
    testing::AddRandomRelation(&db, "T", 1, &rng, options);
    testing::AddRandomRelation(&db, "U", 2, &rng, options);
    Ucq ucq = UcqOf(GetParam().shorthand);
    auto lifted = LiftedProbability(ucq, db);
    ASSERT_TRUE(lifted.ok())
        << GetParam().name << ": " << lifted.status().ToString();
    EXPECT_NEAR(*lifted, GroundTruth(ucq, db), 1e-9)
        << GetParam().name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SafeQueries, LiftedSweepTest,
    ::testing::Values(
        SweepCase{"single_atom", "S(x,y)"},
        SweepCase{"two_level", "R(x), S(x,y)"},
        SweepCase{"same_root_pair", "R(x), S(x,y), U(x,y)"},
        SweepCase{"product", "R(x), T(y)"},
        SweepCase{"union_same_symbol", "R(x) ; R(y)"},
        SweepCase{"union_disjoint", "R(x) ; T(y)"},
        SweepCase{"union_mixed", "R(x), S(x,y) ; T(u)"},
        SweepCase{"qj", "R(x), S(x,y), T(u), S(u,v)"},
        SweepCase{"union_shared", "R(x), S(x,y) ; T(u), S(u,v)"},
        SweepCase{"three_way_union", "R(x) ; S(x,y) ; T(z)"},
        SweepCase{"constant_in_atom", "S(x,y), R(x) ; S(u,v)"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Safety / dichotomy classification (Theorems 4.1, 4.3)
// ---------------------------------------------------------------------------

TEST(SafetyTest, SelfJoinFreeDichotomyIsHierarchy) {
  auto hier = UcqOf("R(x), S(x,y)").disjuncts()[0];
  EXPECT_EQ(*ClassifySelfJoinFreeCq(hier), QueryComplexity::kPolynomialTime);
  auto h0 = UcqOf("R(x), S(x,y), T(y)").disjuncts()[0];
  EXPECT_EQ(*ClassifySelfJoinFreeCq(h0), QueryComplexity::kSharpPHard);
  auto self_join = UcqOf("S(x,y), S(y,z)").disjuncts()[0];
  EXPECT_FALSE(ClassifySelfJoinFreeCq(self_join).ok());
}

TEST(SafetyTest, EngineSafetyMatchesHierarchyForSjfCqs) {
  // For self-join-free CQs the engine succeeds exactly on hierarchical
  // queries (Theorem 4.3).
  const char* queries[] = {
      "R(x), S(x,y)",          // hierarchical
      "R(x), S(x,y), U(x,y)",  // hierarchical
      "R(x), S(x,y), T(y)",    // not
      "R(x), T(y)",            // hierarchical (disconnected)
      "S(x,y), T(y)",          // hierarchical (y root? no: at(x)={S},
                               // at(y)={S,T} nested) -> hierarchical
      "R(x), S(x,y), U(y,z)",  // not hierarchical
  };
  for (const char* text : queries) {
    auto cq = UcqOf(text).disjuncts()[0];
    ASSERT_TRUE(cq.IsSelfJoinFree());
    bool hierarchical = IsHierarchical(cq);
    EXPECT_EQ(IsSafeUcq(Ucq({cq})), hierarchical) << text;
  }
}

TEST(SafetyTest, UcqClassification) {
  EXPECT_EQ(ClassifyUcq(UcqOf("R(x), S(x,y), T(u), S(u,v)")),
            QueryComplexity::kPolynomialTime);
  EXPECT_EQ(ClassifyUcq(UcqOf("R(x), S(x,y) ; S(u,v), T(v)")),
            QueryComplexity::kSharpPHard);
  EXPECT_EQ(ClassifyUcq(UcqOf("S(x,y), S(y,z)")),
            QueryComplexity::kSharpPHard);
}

TEST(SafetyTest, CanonicalDatabaseCoversQueryConstants) {
  Ucq with_const({ConjunctiveQuery(
      {Atom("R", {Term::Const(Value(7))}),
       Atom("S", {Term::Const(Value(7)), Term::Var("y")})})});
  auto db = CanonicalDatabase(with_const);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db->Get("R"))->Contains({Value(7)}));
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(LiftedTest, TraceRecordsRules) {
  Database db = testing::BuildFigure1Database();
  std::vector<std::string> trace;
  LiftedOptions options;
  options.trace = &trace;
  ASSERT_TRUE(LiftedProbability(UcqOf("R(x), S(x,y)"), db, options).ok());
  EXPECT_FALSE(trace.empty());
  bool saw_separator = false;
  for (const std::string& line : trace) {
    if (line.find("separator") != std::string::npos) saw_separator = true;
  }
  EXPECT_TRUE(saw_separator);
}

}  // namespace
}  // namespace pdb
