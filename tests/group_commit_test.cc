/// \file group_commit_test.cc
/// \brief The durable write path under concurrency: leader–follower group
/// commit (one WAL sync amortized over a group of writers), atomic
/// WriteBatch semantics, and checkpoints that run off the write path —
/// writers keep committing, with bounded latency, while a snapshot write
/// is stalled indefinitely.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault_env.h"
#include "storage/durable_db.h"
#include "storage/env.h"
#include "storage/relation.h"
#include "storage/write_batch.h"

namespace pdb {
namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A test gate: files whose path matches can be made to block inside
/// Append until the test releases them. `waiting()` tells the test when
/// the blocked thread has actually arrived.
class Gate {
 public:
  void Block() {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_ = true;
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      blocked_ = false;
    }
    cv_.notify_all();
  }
  void Pass() {
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.wait(lock, [this] { return !blocked_; });
    --waiting_;
  }
  int waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  int waiting_ = 0;
};

/// Wraps a WritableFile: counts syncs, optionally burns ~`sync_spin_us`
/// per Sync (standing in for a real fsync so commit groups have time to
/// form), and optionally parks Append on a Gate.
class InstrumentedFile : public WritableFile {
 public:
  InstrumentedFile(std::unique_ptr<WritableFile> inner,
                   std::atomic<uint64_t>* syncs, uint64_t sync_spin_us,
                   Gate* gate)
      : inner_(std::move(inner)),
        syncs_(syncs),
        sync_spin_us_(sync_spin_us),
        gate_(gate) {}

  Status Append(std::string_view data) override {
    if (gate_ != nullptr) gate_->Pass();
    return inner_->Append(data);
  }
  Status Flush() override { return inner_->Flush(); }
  Status Sync() override {
    if (syncs_ != nullptr) syncs_->fetch_add(1, std::memory_order_relaxed);
    if (sync_spin_us_ > 0) {
      // Busy-wait: sleep granularity on a loaded CI box is far coarser
      // than the fsync cost being simulated.
      uint64_t until = NowMicros() + sync_spin_us_;
      while (NowMicros() < until) {
      }
    }
    return inner_->Sync();
  }
  Status Close() override { return inner_->Close(); }

 private:
  std::unique_ptr<WritableFile> inner_;
  std::atomic<uint64_t>* syncs_;
  uint64_t sync_spin_us_;
  Gate* gate_;
};

/// MemEnv wrapper: WAL files get sync counting + simulated fsync cost;
/// snapshot temp files can be parked on `snapshot_gate`.
class InstrumentedEnv : public Env {
 public:
  explicit InstrumentedEnv(uint64_t wal_sync_spin_us = 0)
      : wal_sync_spin_us_(wal_sync_spin_us) {}

  uint64_t wal_syncs() const {
    return wal_syncs_.load(std::memory_order_relaxed);
  }
  Gate& snapshot_gate() { return snapshot_gate_; }
  MemEnv& mem() { return mem_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    auto file = mem_.NewWritableFile(path);
    if (!file.ok()) return file.status();
    return Wrap(path, std::move(*file));
  }
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    auto file = mem_.NewAppendableFile(path);
    if (!file.ok()) return file.status();
    return Wrap(path, std::move(*file));
  }
  Status ReadFileToString(const std::string& path, std::string* out) override {
    return mem_.ReadFileToString(path, out);
  }
  bool FileExists(const std::string& path) override {
    return mem_.FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return mem_.GetFileSize(path);
  }
  Result<std::vector<std::string>> GetChildren(
      const std::string& dir) override {
    return mem_.GetChildren(dir);
  }
  Status RemoveFile(const std::string& path) override {
    return mem_.RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return mem_.RenameFile(from, to);
  }
  Status CreateDirIfMissing(const std::string& dir) override {
    return mem_.CreateDirIfMissing(dir);
  }
  Status TruncateFile(const std::string& path, uint64_t size) override {
    return mem_.TruncateFile(path, size);
  }

 private:
  std::unique_ptr<WritableFile> Wrap(const std::string& path,
                                     std::unique_ptr<WritableFile> inner) {
    const bool is_wal = path.find("wal-") != std::string::npos;
    const bool is_snap_tmp = path.find("snap-") != std::string::npos &&
                             path.find(".tmp") != std::string::npos;
    return std::make_unique<InstrumentedFile>(
        std::move(inner), is_wal ? &wal_syncs_ : nullptr,
        is_wal ? wal_sync_spin_us_ : 0, is_snap_tmp ? &snapshot_gate_ : nullptr);
  }

  MemEnv mem_;
  std::atomic<uint64_t> wal_syncs_{0};
  uint64_t wal_sync_spin_us_;
  Gate snapshot_gate_;
};

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

// 8 writers hammering single-tuple inserts under kAlways: with a
// realistically slow fsync, writers pile up behind the in-flight sync and
// commit as groups — so the WAL sync count lands well below one per
// mutation, while every insert is still individually acknowledged and all
// of them survive a reopen.
TEST(GroupCommit, ConcurrentWritersAmortizeSyncs) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 50;
  InstrumentedEnv env(/*wal_sync_spin_us=*/300);
  DurableOptions options;
  options.env = &env;
  options.sync_mode = SyncMode::kAlways;

  auto db = DurableDatabase::Open("/gc", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateRelation("R", Schema::Anonymous(1, ValueType::kInt)).ok());
  const uint64_t syncs_before = env.wal_syncs();

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        Status st = (*db)->Insert(
            "R", {Value(static_cast<int64_t>(t * 1000 + i))}, 0.5);
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  constexpr uint64_t kMutations = kThreads * kPerThread;
  const uint64_t syncs = env.wal_syncs() - syncs_before;
  // The acceptance bound: syncs must come out well below one per mutation.
  // Zero overlap (one sync each) would mean group commit never engaged.
  EXPECT_LT(syncs, kMutations * 3 / 4)
      << syncs << " syncs for " << kMutations << " mutations";
  EXPECT_GE(syncs, 1u);

  MetricsSnapshot snap = (*db)->metrics().Snapshot();
  EXPECT_EQ(snap.counters["pdb_wal_records_total"], kMutations + 1);
  EXPECT_LT(snap.counters["pdb_wal_syncs_total"], kMutations);
  EXPECT_GE(snap.counters["pdb_wal_group_commits_total"], 1u);
  EXPECT_EQ((*db)->last_seq(), kMutations + 1);
  EXPECT_EQ((*db)->last_synced_seq(), kMutations + 1);
  ASSERT_TRUE((*db)->Close().ok());

  // Every acknowledged insert is present after recovery.
  DurableOptions reopen_options;
  reopen_options.env = &env;
  auto reopened = DurableDatabase::Open("/gc", reopen_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto relation = (*reopened)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->size(), kMutations);
}

// The commit_delay-style window: concurrent writers still all land, nothing
// is lost or reordered past recovery, syncs amortize at least as well as
// without the window, and a lone writer (no siblings in flight) commits
// without waiting it out.
TEST(GroupCommit, WindowGathersGroupsWithoutLosingWrites) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  InstrumentedEnv env(/*wal_sync_spin_us=*/200);
  DurableOptions options;
  options.env = &env;
  options.sync_mode = SyncMode::kAlways;
  options.group_commit_window_us = 2000;

  auto db = DurableDatabase::Open("/win", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateRelation("R", Schema::Anonymous(1, ValueType::kInt)).ok());

  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        Status st = (*db)->Insert(
            "R", {Value(static_cast<int64_t>(t * 1000 + i))}, 0.5);
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  constexpr uint64_t kMutations = kThreads * kPerThread;
  EXPECT_LT(env.wal_syncs(), kMutations);
  EXPECT_EQ((*db)->last_seq(), kMutations + 1);

  // A lone writer skips the window: with no sibling in flight the insert
  // must return promptly, not after the 2ms delay per commit.
  const uint64_t lone_start = NowMicros();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{9000 + i})}, 0.5).ok());
  }
  EXPECT_LT(NowMicros() - lone_start, 5 * 2000u)
      << "lone writers waited out the group-commit window";
  ASSERT_TRUE((*db)->Close().ok());

  DurableOptions reopen_options;
  reopen_options.env = &env;
  auto reopened = DurableDatabase::Open("/win", reopen_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto relation = (*reopened)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->size(), kMutations + 5);
}

// ---------------------------------------------------------------------------
// WriteBatch semantics
// ---------------------------------------------------------------------------

TEST(GroupCommit, BatchCommitsAtomicallyAndRecovers) {
  MemEnv env;
  DurableOptions options;
  options.env = &env;

  {
    auto db = DurableDatabase::Open("/batch", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    // DDL and rows in one batch: validation must see the in-batch create.
    WriteBatch batch;
    batch.CreateRelation("R", Schema::Anonymous(1, ValueType::kInt));
    for (int64_t i = 0; i < 10; ++i) batch.Insert("R", {Value(i)}, 0.25);
    ASSERT_TRUE((*db)->ApplyBatch(&batch).ok());
    EXPECT_EQ(batch.count(), 11u);  // the batch is left intact
    EXPECT_EQ((*db)->last_seq(), 11u);

    ASSERT_TRUE((*db)->InsertMany(
        "R", {{{Value(int64_t{100})}, 0.5}, {{Value(int64_t{101})}, 0.5}})
                    .ok());
    EXPECT_EQ((*db)->last_seq(), 13u);

    MetricsSnapshot snap = (*db)->metrics().Snapshot();
    EXPECT_EQ(snap.counters["pdb_wal_batch_records_total"], 2u);
    EXPECT_EQ(snap.counters["pdb_wal_batch_mutations_total"], 13u);
    ASSERT_TRUE((*db)->Close().ok());
  }

  auto reopened = DurableDatabase::Open("/batch", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_stats().replayed_records, 13u);
  auto relation = (*reopened)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->size(), 12u);
  EXPECT_EQ((*reopened)->last_seq(), 13u);
}

TEST(GroupCommit, InvalidOpRejectsWholeBatchWithoutLogging) {
  MemEnv env;
  DurableOptions options;
  options.env = &env;
  auto db = DurableDatabase::Open("/reject", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateRelation("R", Schema::Anonymous(1, ValueType::kInt)).ok());
  ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
  const uint64_t seq_before = (*db)->last_seq();

  // Valid rows around a duplicate of an already-live tuple: nothing from
  // the batch may apply, and nothing may reach the log.
  WriteBatch batch;
  batch.Insert("R", {Value(int64_t{2})}, 0.5);
  batch.Insert("R", {Value(int64_t{1})}, 0.5);  // duplicate
  batch.Insert("R", {Value(int64_t{3})}, 0.5);
  Status st = (*db)->ApplyBatch(&batch);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("duplicate tuple"), std::string::npos);
  EXPECT_EQ((*db)->last_seq(), seq_before);
  auto relation = (*db)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->size(), 1u);

  // An in-batch duplicate (same tuple twice in one batch) is caught by
  // the pending-state validation pass, not just live-catalog lookups.
  WriteBatch dup;
  dup.Insert("R", {Value(int64_t{7})}, 0.5);
  dup.Insert("R", {Value(int64_t{7})}, 0.5);
  EXPECT_FALSE((*db)->ApplyBatch(&dup).ok());
  EXPECT_EQ((*db)->last_seq(), seq_before);
  ASSERT_TRUE((*db)->Close().ok());
}

// A WAL append that fails partway through a commit group must not lie in
// either direction. A writer whose record was fully appended before the
// failure left a complete CRC-framed entry that recovery WILL replay, so
// it must be carried through the group's sync and apply and acknowledged
// OK; a writer at or past the failure point left nothing (or a torn tail
// recovery truncates) and must report the error. The oracle — recovered
// state equals exactly the set of acknowledged writes, each batch whole
// or absent — holds for every way the writers happen to group, so the
// test does not need to control grouping.
TEST(GroupCommit, MidGroupAppendFailureKeepsAckAndRecoveryConsistent) {
  constexpr size_t kThreads = 4;
  MemEnv mem;
  testing::FaultInjectionEnv env(&mem);
  DurableOptions options;
  options.env = &env;
  options.sync_mode = SyncMode::kAlways;

  auto db = DurableDatabase::Open("/midgroup", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateRelation("R", Schema::Anonymous(1, ValueType::kInt)).ok());

  // Fail one future append. Depending on how the 4 writers group, it can
  // land mid-group, on a lone leader, or mid-record; every outcome must
  // satisfy the oracle. (The fault env's op counter is safe here: all WAL
  // I/O is serialized under the commit mutex.)
  env.FailOnce("append", 2);

  std::array<Status, kThreads> results;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[t] = (*db)->InsertMany(
          "R", {{{Value(static_cast<int64_t>(t))}, 0.5},
                {{Value(static_cast<int64_t>(100 + t))}, 0.5}});
    });
  }
  for (std::thread& th : threads) th.join();

  // The injected failure poisons the handle, so at least one writer saw
  // the error (later arrivals fail on the read-only check).
  size_t failed = 0;
  for (const Status& st : results) failed += st.ok() ? 0 : 1;
  EXPECT_GE(failed, 1u);

  // Ack == in-memory state, batch-atomically, before any restart.
  {
    auto relation = (*db)->pdb().database().Get("R");
    ASSERT_TRUE(relation.ok());
    for (size_t t = 0; t < kThreads; ++t) {
      EXPECT_EQ((*relation)->Contains({Value(static_cast<int64_t>(t))}),
                results[t].ok());
      EXPECT_EQ((*relation)->Contains({Value(static_cast<int64_t>(100 + t))}),
                results[t].ok());
    }
  }
  (*db)->Close();  // may fail: the handle is poisoned — that's fine
  db->reset();

  // Ack == recovered state: every acknowledged batch is replayed whole,
  // every failed batch is wholly absent.
  env.ClearFaults();
  auto reopened = DurableDatabase::Open("/midgroup", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto relation = (*reopened)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ((*relation)->Contains({Value(static_cast<int64_t>(t))}),
              results[t].ok())
        << "writer " << t << " ack " << results[t].ToString();
    EXPECT_EQ((*relation)->Contains({Value(static_cast<int64_t>(100 + t))}),
              results[t].ok())
        << "writer " << t << " batch must recover whole or not at all";
  }
  ASSERT_TRUE((*reopened)->Close().ok());
}

// ---------------------------------------------------------------------------
// Checkpoints off the write path
// ---------------------------------------------------------------------------

// The acceptance test for "writers keep committing during a checkpoint":
// the snapshot file write is parked on a gate (an arbitrarily slow disk),
// and while it is parked a writer commits 100 more inserts — all of which
// must succeed against the freshly rolled WAL segment with bounded
// latency. Releasing the gate lets the checkpoint finish; a reopen then
// sees every row.
TEST(Checkpoint, WritersCommitWhileSnapshotWriteIsStalled) {
  InstrumentedEnv env;
  DurableOptions options;
  options.env = &env;
  options.sync_mode = SyncMode::kAlways;
  options.checkpoint_every_n = 10;
  options.background_checkpoints = true;

  auto db = DurableDatabase::Open("/ckpt", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      (*db)->CreateRelation("R", Schema::Anonymous(1, ValueType::kInt)).ok());

  env.snapshot_gate().Block();
  // Trip the auto-checkpoint threshold; the background thread will fence,
  // roll the WAL, and then park on the snapshot temp file's first Append.
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*db)->Insert("R", {Value(i)}, 0.5).ok());
  }
  const uint64_t deadline = NowMicros() + 10'000'000;
  while (env.snapshot_gate().waiting() == 0 && NowMicros() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(env.snapshot_gate().waiting(), 0)
      << "background checkpoint never reached the snapshot write";

  // Checkpoint in flight and stalled: commits must still go through, each
  // within a bound that is generous for CI but far below "waits for the
  // checkpoint" (the gate holds until we release it).
  std::vector<uint64_t> latencies_us;
  for (int64_t i = 100; i < 200; ++i) {
    uint64_t start = NowMicros();
    ASSERT_TRUE((*db)->Insert("R", {Value(i)}, 0.5).ok());
    latencies_us.push_back(NowMicros() - start);
  }
  ASSERT_GT(env.snapshot_gate().waiting(), 0);  // still stalled
  std::sort(latencies_us.begin(), latencies_us.end());
  const uint64_t p99 = latencies_us[latencies_us.size() * 99 / 100];
  EXPECT_LT(p99, 1'000'000u) << "p99 commit latency " << p99
                             << "us while a checkpoint was in flight";

  env.snapshot_gate().Release();
  // The checkpoint completes once released: the snapshot file appears
  // (rename drops the .tmp suffix) and the metric ticks.
  bool checkpointed = false;
  const uint64_t done_deadline = NowMicros() + 10'000'000;
  while (!checkpointed && NowMicros() < done_deadline) {
    MetricsSnapshot snap = (*db)->metrics().Snapshot();
    checkpointed = snap.counters["pdb_checkpoints_total"] > 0;
    if (!checkpointed) std::this_thread::yield();
  }
  EXPECT_TRUE(checkpointed);
  ASSERT_TRUE((*db)->Close().ok());

  auto reopened = DurableDatabase::Open("/ckpt", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto relation = (*reopened)->pdb().database().Get("R");
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ((*relation)->size(), 110u);
}

}  // namespace
}  // namespace pdb
