#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/database.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42}), d(2.5), s("abc");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, OrderingIsTotal) {
  // Across types: int < double < string (by variant index).
  EXPECT_LT(Value(5), Value(1.0));
  EXPECT_LT(Value(9.0), Value("a"));
  EXPECT_LT(Value(3), Value(7));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, EqualityRespectsType) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_EQ(Value("x"), Value(std::string("x")));
}

TEST(ValueTest, Parse) {
  EXPECT_EQ(Value::Parse("42", ValueType::kInt)->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Parse(" 0.5 ", ValueType::kDouble)->AsDouble(), 0.5);
  EXPECT_EQ(Value::Parse("hi", ValueType::kString)->AsString(), "hi");
  EXPECT_FALSE(Value::Parse("4x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("", ValueType::kDouble).ok());
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(1).hash(), Value(1.0).hash());
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, IndexOfAndValidate) {
  Schema schema({{"x", ValueType::kInt}, {"y", ValueType::kString}});
  EXPECT_EQ(*schema.IndexOf("y"), 1u);
  EXPECT_FALSE(schema.IndexOf("z").ok());
  EXPECT_TRUE(schema.Validate({Value(1), Value("a")}).ok());
  EXPECT_FALSE(schema.Validate({Value(1)}).ok());
  EXPECT_FALSE(schema.Validate({Value(1), Value(2)}).ok());
}

TEST(SchemaTest, Anonymous) {
  Schema schema = Schema::Anonymous(3, ValueType::kInt);
  EXPECT_EQ(schema.arity(), 3u);
  EXPECT_EQ(schema.attribute(2).name, "a2");
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

TEST(RelationTest, AddAndFind) {
  Relation rel("R", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(2)}, 0.5).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(3)}, 0.25).ok());
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains({Value(1), Value(2)}));
  EXPECT_DOUBLE_EQ(rel.ProbOf({Value(1), Value(3)}), 0.25);
  EXPECT_DOUBLE_EQ(rel.ProbOf({Value(9), Value(9)}), 0.0);
}

TEST(RelationTest, RejectsDuplicates) {
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 0.5).ok());
  Status dup = rel.AddTuple({Value(1)}, 0.9);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, RejectsBadProbability) {
  Relation rel("R", Schema::Anonymous(1));
  EXPECT_EQ(rel.AddTuple({Value(1)}, -0.1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(rel.AddTuple({Value(1)}, 1.5).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(rel.AddTuple({Value(1)}, 0.0).ok());  // 0 and 1 are legal
}

TEST(RelationTest, RejectsSchemaMismatch) {
  Relation rel("R", Schema({{"x", ValueType::kString}}));
  EXPECT_FALSE(rel.AddTuple({Value(1)}, 0.5).ok());
}

TEST(RelationTest, DistinctValuesSorted) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(7)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(7)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(8)}, 1).ok());
  std::vector<Value> xs = rel.DistinctValues(0);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0].AsInt(), 1);
  EXPECT_EQ(xs[1].AsInt(), 2);
  EXPECT_EQ(rel.DistinctValues(1).size(), 2u);
}

TEST(RelationTest, IsDeterministic) {
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 1.0).ok());
  EXPECT_TRUE(rel.IsDeterministic());
  ASSERT_TRUE(rel.AddTuple({Value(2)}, 0.5).ok());
  EXPECT_FALSE(rel.IsDeterministic());
}

TEST(HashIndexTest, LookupByKey) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(11)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(12)}, 1).ok());
  HashIndex index(rel, {0});
  EXPECT_EQ(index.Lookup({Value(1)}).size(), 2u);
  EXPECT_EQ(index.Lookup({Value(2)}).size(), 1u);
  EXPECT_TRUE(index.Lookup({Value(3)}).empty());
  HashIndex pair_index(rel, {0, 1});
  EXPECT_EQ(pair_index.Lookup({Value(1), Value(11)}).size(), 1u);
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, CatalogOperations) {
  Database db = testing::BuildFigure1Database();
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_TRUE(db.HasRelation("S"));
  EXPECT_FALSE(db.HasRelation("T"));
  EXPECT_EQ((*db.Get("R"))->size(), 3u);
  EXPECT_FALSE(db.Get("T").ok());
  EXPECT_EQ(db.TupleCount(), 9u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"R", "S"}));
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("R", Schema::Anonymous(1)).ok());
  EXPECT_FALSE(db.CreateRelation("R", Schema::Anonymous(2)).ok());
}

TEST(DatabaseTest, ActiveDomain) {
  Database db = testing::BuildFigure1Database();
  std::vector<Value> domain = db.ActiveDomain();
  // a1..a4 and b1..b6 -> 10 distinct constants.
  EXPECT_EQ(domain.size(), 10u);
  EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
}

TEST(DatabaseTest, SampleWorldRespectsExtremes) {
  Database db;
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 1.0).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2)}, 0.0).ok());
  ASSERT_TRUE(db.AddRelation(std::move(rel)).ok());
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Database world = db.SampleWorld(&rng);
    const Relation* r = *world.Get("R");
    EXPECT_TRUE(r->Contains({Value(1)}));
    EXPECT_FALSE(r->Contains({Value(2)}));
    EXPECT_TRUE(r->IsDeterministic());
  }
}

TEST(DatabaseTest, SampleWorldFrequency) {
  Database db;
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 0.25).ok());
  ASSERT_TRUE(db.AddRelation(std::move(rel)).ok());
  Rng rng(11);
  int present = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if ((*db.SampleWorld(&rng).Get("R"))->size() == 1) ++present;
  }
  EXPECT_NEAR(static_cast<double>(present) / kTrials, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, ParseWithHeaderAndProbability) {
  Schema schema({{"x", ValueType::kString}, {"y", ValueType::kInt}});
  const std::string text =
      "x,y,P\n"
      "a,1,0.5\n"
      "b,2,1.0\n";
  auto rel = RelationFromCsv("T", schema, text);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_DOUBLE_EQ(rel->ProbOf({Value("a"), Value(1)}), 0.5);
}

TEST(CsvTest, ParseWithoutProbabilityColumn) {
  Schema schema({{"x", ValueType::kInt}});
  CsvOptions options;
  options.has_probability_column = false;
  options.has_header = false;
  auto rel = RelationFromCsv("T", schema, "1\n2\n3\n", options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 3u);
  EXPECT_TRUE(rel->IsDeterministic());
}

TEST(CsvTest, ErrorsCarryLineNumbers) {
  Schema schema({{"x", ValueType::kInt}});
  auto bad_fields = RelationFromCsv("T", schema, "x,P\n1,0.5,9\n");
  ASSERT_FALSE(bad_fields.ok());
  EXPECT_NE(bad_fields.status().message().find("line 2"), std::string::npos);
  auto bad_prob = RelationFromCsv("T", schema, "x,P\n1,maybe\n");
  EXPECT_FALSE(bad_prob.ok());
  auto bad_value = RelationFromCsv("T", schema, "x,P\nseven,0.5\n");
  EXPECT_FALSE(bad_value.ok());
}

TEST(CsvTest, FileRoundTrip) {
  Database db = testing::BuildFigure1Database();
  const Relation* r = *db.Get("R");
  const std::string path = ::testing::TempDir() + "/pdb_csv_roundtrip.csv";
  ASSERT_TRUE(RelationToCsvFile(*r, path).ok());
  Schema schema({{"x", ValueType::kString}});
  auto back = RelationFromCsvFile("R", schema, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), r->size());
  for (size_t i = 0; i < r->size(); ++i) {
    EXPECT_EQ(back->tuple(i), r->tuple(i));
    EXPECT_DOUBLE_EQ(back->prob(i), r->prob(i));
  }
  EXPECT_FALSE(
      RelationFromCsvFile("R", schema, "/nonexistent/nope.csv").ok());
}

TEST(CsvTest, RoundTrip) {
  Database db = testing::BuildFigure1Database();
  const Relation* s = *db.Get("S");
  std::string text = RelationToCsv(*s);
  Schema schema({{"x", ValueType::kString}, {"y", ValueType::kString}});
  auto back = RelationFromCsv("S", schema, text);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), s->size());
  for (size_t i = 0; i < s->size(); ++i) {
    EXPECT_EQ(back->tuple(i), s->tuple(i));
    EXPECT_DOUBLE_EQ(back->prob(i), s->prob(i));
  }
}

}  // namespace
}  // namespace pdb
