#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "storage/coding.h"
#include "storage/columnar.h"
#include "storage/crc32c.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/env.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"
#include "storage/wal.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42}), d(2.5), s("abc");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, OrderingIsTotal) {
  // Across types: int < double < string (by variant index).
  EXPECT_LT(Value(5), Value(1.0));
  EXPECT_LT(Value(9.0), Value("a"));
  EXPECT_LT(Value(3), Value(7));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, EqualityRespectsType) {
  EXPECT_NE(Value(1), Value(1.0));
  EXPECT_EQ(Value("x"), Value(std::string("x")));
}

TEST(ValueTest, Parse) {
  EXPECT_EQ(Value::Parse("42", ValueType::kInt)->AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Parse(" 0.5 ", ValueType::kDouble)->AsDouble(), 0.5);
  EXPECT_EQ(Value::Parse("hi", ValueType::kString)->AsString(), "hi");
  EXPECT_FALSE(Value::Parse("4x", ValueType::kInt).ok());
  EXPECT_FALSE(Value::Parse("", ValueType::kDouble).ok());
}

TEST(ValueTest, HashDistinguishesTypes) {
  EXPECT_NE(Value(1).hash(), Value(1.0).hash());
}

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

TEST(SchemaTest, IndexOfAndValidate) {
  Schema schema({{"x", ValueType::kInt}, {"y", ValueType::kString}});
  EXPECT_EQ(*schema.IndexOf("y"), 1u);
  EXPECT_FALSE(schema.IndexOf("z").ok());
  EXPECT_TRUE(schema.Validate({Value(1), Value("a")}).ok());
  EXPECT_FALSE(schema.Validate({Value(1)}).ok());
  EXPECT_FALSE(schema.Validate({Value(1), Value(2)}).ok());
}

TEST(SchemaTest, Anonymous) {
  Schema schema = Schema::Anonymous(3, ValueType::kInt);
  EXPECT_EQ(schema.arity(), 3u);
  EXPECT_EQ(schema.attribute(2).name, "a2");
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

TEST(RelationTest, AddAndFind) {
  Relation rel("R", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(2)}, 0.5).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(3)}, 0.25).ok());
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains({Value(1), Value(2)}));
  EXPECT_DOUBLE_EQ(rel.ProbOf({Value(1), Value(3)}), 0.25);
  EXPECT_DOUBLE_EQ(rel.ProbOf({Value(9), Value(9)}), 0.0);
}

TEST(RelationTest, RejectsDuplicates) {
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 0.5).ok());
  Status dup = rel.AddTuple({Value(1)}, 0.9);
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, RejectsBadProbability) {
  Relation rel("R", Schema::Anonymous(1));
  EXPECT_EQ(rel.AddTuple({Value(1)}, -0.1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(rel.AddTuple({Value(1)}, 1.5).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(rel.AddTuple({Value(1)}, 0.0).ok());  // 0 and 1 are legal
}

TEST(RelationTest, RejectsSchemaMismatch) {
  Relation rel("R", Schema({{"x", ValueType::kString}}));
  EXPECT_FALSE(rel.AddTuple({Value(1)}, 0.5).ok());
}

TEST(RelationTest, DistinctValuesSorted) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(7)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(7)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(8)}, 1).ok());
  std::vector<Value> xs = rel.DistinctValues(0);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0].AsInt(), 1);
  EXPECT_EQ(xs[1].AsInt(), 2);
  EXPECT_EQ(rel.DistinctValues(1).size(), 2u);
}

TEST(RelationTest, IsDeterministic) {
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 1.0).ok());
  EXPECT_TRUE(rel.IsDeterministic());
  ASSERT_TRUE(rel.AddTuple({Value(2)}, 0.5).ok());
  EXPECT_FALSE(rel.IsDeterministic());
}

TEST(HashIndexTest, LookupByKey) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(11)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(12)}, 1).ok());
  HashIndex index(rel, {0});
  EXPECT_EQ(index.Lookup({Value(1)}).size(), 2u);
  EXPECT_EQ(index.Lookup({Value(2)}).size(), 1u);
  EXPECT_TRUE(index.Lookup({Value(3)}).empty());
  HashIndex pair_index(rel, {0, 1});
  EXPECT_EQ(pair_index.Lookup({Value(1), Value(11)}).size(), 1u);
}

// ---------------------------------------------------------------------------
// ColumnarRelation
// ---------------------------------------------------------------------------

// Dictionary round-trip over every Value type: sorted dictionaries, codes
// that decode back to the original cell, CodeOf finding every present
// value and returning the sentinel for absent ones of each type.
TEST(ColumnarRelationTest, DictionaryRoundTripsEveryValueType) {
  Schema schema({{"i", ValueType::kInt},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
  Relation rel("Mixed", schema);
  ASSERT_TRUE(
      rel.AddTuple({Value(int64_t{3}), Value(2.5), Value("b")}, 1).ok());
  ASSERT_TRUE(
      rel.AddTuple({Value(int64_t{1}), Value(-0.5), Value("a")}, 1).ok());
  ASSERT_TRUE(
      rel.AddTuple({Value(int64_t{3}), Value(2.5), Value("c")}, 1).ok());
  auto cols = ColumnarRelation::Build(rel);
  ASSERT_EQ(cols->num_rows(), 3u);
  ASSERT_EQ(cols->num_cols(), 3u);
  for (size_t c = 0; c < cols->num_cols(); ++c) {
    const std::vector<Value>& dict = cols->dict(c);
    EXPECT_TRUE(std::is_sorted(dict.begin(), dict.end()));
    ASSERT_EQ(cols->codes(c).size(), rel.size());
    for (size_t row = 0; row < rel.size(); ++row) {
      uint32_t code = cols->codes(c)[row];
      ASSERT_LT(code, dict.size());
      EXPECT_EQ(dict[code], rel.tuple(row)[c]);
      EXPECT_EQ(cols->CodeOf(c, rel.tuple(row)[c]), code);
    }
  }
  EXPECT_EQ(cols->distinct(0), 2u);
  EXPECT_EQ(cols->distinct(1), 2u);
  EXPECT_EQ(cols->distinct(2), 3u);
  EXPECT_EQ(cols->CodeOf(0, Value(int64_t{7})), ColumnarRelation::kNoCode);
  EXPECT_EQ(cols->CodeOf(1, Value(9.75)), ColumnarRelation::kNoCode);
  EXPECT_EQ(cols->CodeOf(2, Value("zz")), ColumnarRelation::kNoCode);
}

// The sidecar is built once per relation state: repeated columnar() calls
// share one image, DistinctValues serves straight from its dictionary,
// and a mutation invalidates it so the next build sees the new row.
TEST(ColumnarRelationTest, SidecarCachedOnRelationAndInvalidated) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(10)}, 1).ok());
  EXPECT_EQ(rel.columnar_if_built(), nullptr);
  auto a = rel.columnar();
  auto b = rel.columnar();
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(rel.DistinctValues(1), a->dict(1));
  ASSERT_TRUE(rel.AddTuple({Value(3), Value(11)}, 1).ok());
  EXPECT_EQ(rel.columnar_if_built(), nullptr);
  auto c = rel.columnar();
  EXPECT_EQ(c->num_rows(), 3u);
  EXPECT_EQ(c->distinct(1), 2u);
}

TEST(ColumnarIndexTest, SingleColumnCsrLookup) {
  Relation rel("S", Schema::Anonymous(2));
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(10)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(11)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(12)}, 1).ok());
  auto cols = ColumnarRelation::Build(rel);
  ColumnarIndex index(cols, {0});
  EXPECT_FALSE(index.composite_overflow());
  const uint32_t* rows = nullptr;
  size_t count = 0;
  index.Lookup(cols->CodeOf(0, Value(1)), &rows, &count);
  ASSERT_EQ(count, 1u);
  EXPECT_EQ(rows[0], 1u);
  index.Lookup(cols->CodeOf(0, Value(2)), &rows, &count);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(rows[0], 0u);  // bucket rows ascend, matching HashIndex
  EXPECT_EQ(rows[1], 2u);
}

TEST(ColumnarIndexTest, CompositeKeyLookup) {
  Relation rel("S", Schema::Anonymous(3));
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10), Value(0)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(11), Value(0)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2), Value(10), Value(0)}, 1).ok());
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10), Value(1)}, 1).ok());
  auto cols = ColumnarRelation::Build(rel);
  ColumnarIndex index(cols, {0, 1});
  EXPECT_FALSE(index.composite_overflow());
  uint64_t code = index.radix(0) * cols->CodeOf(0, Value(1)) +
                  index.radix(1) * cols->CodeOf(1, Value(10));
  const uint32_t* rows = nullptr;
  size_t count = 0;
  index.Lookup(code, &rows, &count);
  ASSERT_EQ(count, 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 3u);
  // A composite code nobody has resolves to the empty span.
  uint64_t absent = index.radix(0) * cols->CodeOf(0, Value(2)) +
                    index.radix(1) * cols->CodeOf(1, Value(11));
  index.Lookup(absent, &rows, &count);
  EXPECT_EQ(count, 0u);
}

TEST(ColumnarStatsTest, DistinctCompositeCountsObservedPairs) {
  // y == x on every row: the composite distinct count sees the
  // correlation (4 pairs), where the independence product would say 16.
  Relation rel("Corr", Schema::Anonymous(2));
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(rel.AddTuple({Value(i), Value(i)}, 1).ok());
  }
  auto cols = ColumnarRelation::Build(rel);
  EXPECT_EQ(DistinctComposite(*cols, {0, 1}), 4u);
  EXPECT_EQ(DistinctComposite(*cols, {0}), 4u);
  EXPECT_EQ(DistinctComposite(*cols, {}), 0u);  // no key columns
  // The stat matches what a ColumnarIndex over the same key observes.
  ColumnarIndex index(cols, {0, 1});
  EXPECT_EQ(index.num_buckets(), 4u);

  Relation grid("Grid", Schema::Anonymous(2));
  for (int64_t x = 0; x < 2; ++x) {
    for (int64_t y = 0; y < 3; ++y) {
      ASSERT_TRUE(grid.AddTuple({Value(x), Value(y)}, 1).ok());
    }
  }
  auto grid_cols = ColumnarRelation::Build(grid);
  EXPECT_EQ(DistinctComposite(*grid_cols, {0, 1}), 6u);  // full cross product
  ColumnarIndex grid_index(grid_cols, {1});
  EXPECT_EQ(grid_index.num_buckets(), 3u);  // CSR: one bucket per code
}

TEST(ColumnarTest, CodeTranslationAlignsTwoDictionaries) {
  std::vector<Value> src = {Value(1), Value(3), Value(5)};
  std::vector<Value> dst = {Value(3), Value(4), Value(5)};
  std::vector<uint32_t> xlat = BuildCodeTranslation(src, dst);
  ASSERT_EQ(xlat.size(), 3u);
  EXPECT_EQ(xlat[0], ColumnarRelation::kNoCode);  // 1 not in dst
  EXPECT_EQ(xlat[1], 0u);                         // 3 -> code 0
  EXPECT_EQ(xlat[2], 2u);                         // 5 -> code 2
  EXPECT_TRUE(BuildCodeTranslation({}, dst).empty());
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, CatalogOperations) {
  Database db = testing::BuildFigure1Database();
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_TRUE(db.HasRelation("S"));
  EXPECT_FALSE(db.HasRelation("T"));
  EXPECT_EQ((*db.Get("R"))->size(), 3u);
  EXPECT_FALSE(db.Get("T").ok());
  EXPECT_EQ(db.TupleCount(), 9u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"R", "S"}));
}

TEST(DatabaseTest, DuplicateRelationRejected) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("R", Schema::Anonymous(1)).ok());
  EXPECT_FALSE(db.CreateRelation("R", Schema::Anonymous(2)).ok());
}

TEST(DatabaseTest, ActiveDomain) {
  Database db = testing::BuildFigure1Database();
  std::vector<Value> domain = db.ActiveDomain();
  // a1..a4 and b1..b6 -> 10 distinct constants.
  EXPECT_EQ(domain.size(), 10u);
  EXPECT_TRUE(std::is_sorted(domain.begin(), domain.end()));
}

TEST(DatabaseTest, SampleWorldRespectsExtremes) {
  Database db;
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 1.0).ok());
  ASSERT_TRUE(rel.AddTuple({Value(2)}, 0.0).ok());
  ASSERT_TRUE(db.AddRelation(std::move(rel)).ok());
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Database world = db.SampleWorld(&rng);
    const Relation* r = *world.Get("R");
    EXPECT_TRUE(r->Contains({Value(1)}));
    EXPECT_FALSE(r->Contains({Value(2)}));
    EXPECT_TRUE(r->IsDeterministic());
  }
}

TEST(DatabaseTest, SampleWorldFrequency) {
  Database db;
  Relation rel("R", Schema::Anonymous(1));
  ASSERT_TRUE(rel.AddTuple({Value(1)}, 0.25).ok());
  ASSERT_TRUE(db.AddRelation(std::move(rel)).ok());
  Rng rng(11);
  int present = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if ((*db.SampleWorld(&rng).Get("R"))->size() == 1) ++present;
  }
  EXPECT_NEAR(static_cast<double>(present) / kTrials, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, ParseWithHeaderAndProbability) {
  Schema schema({{"x", ValueType::kString}, {"y", ValueType::kInt}});
  const std::string text =
      "x,y,P\n"
      "a,1,0.5\n"
      "b,2,1.0\n";
  auto rel = RelationFromCsv("T", schema, text);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_DOUBLE_EQ(rel->ProbOf({Value("a"), Value(1)}), 0.5);
}

TEST(CsvTest, ParseWithoutProbabilityColumn) {
  Schema schema({{"x", ValueType::kInt}});
  CsvOptions options;
  options.has_probability_column = false;
  options.has_header = false;
  auto rel = RelationFromCsv("T", schema, "1\n2\n3\n", options);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 3u);
  EXPECT_TRUE(rel->IsDeterministic());
}

TEST(CsvTest, ErrorsCarryLineNumbers) {
  Schema schema({{"x", ValueType::kInt}});
  auto bad_fields = RelationFromCsv("T", schema, "x,P\n1,0.5,9\n");
  ASSERT_FALSE(bad_fields.ok());
  EXPECT_NE(bad_fields.status().message().find("line 2"), std::string::npos);
  auto bad_prob = RelationFromCsv("T", schema, "x,P\n1,maybe\n");
  EXPECT_FALSE(bad_prob.ok());
  auto bad_value = RelationFromCsv("T", schema, "x,P\nseven,0.5\n");
  EXPECT_FALSE(bad_value.ok());
}

TEST(CsvTest, FileRoundTrip) {
  Database db = testing::BuildFigure1Database();
  const Relation* r = *db.Get("R");
  const std::string path = ::testing::TempDir() + "/pdb_csv_roundtrip.csv";
  ASSERT_TRUE(RelationToCsvFile(*r, path).ok());
  Schema schema({{"x", ValueType::kString}});
  auto back = RelationFromCsvFile("R", schema, path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), r->size());
  for (size_t i = 0; i < r->size(); ++i) {
    EXPECT_EQ(back->tuple(i), r->tuple(i));
    EXPECT_DOUBLE_EQ(back->prob(i), r->prob(i));
  }
  EXPECT_FALSE(
      RelationFromCsvFile("R", schema, "/nonexistent/nope.csv").ok());
}

TEST(CsvTest, RoundTrip) {
  Database db = testing::BuildFigure1Database();
  const Relation* s = *db.Get("S");
  std::string text = RelationToCsv(*s);
  Schema schema({{"x", ValueType::kString}, {"y", ValueType::kString}});
  auto back = RelationFromCsv("S", schema, text);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), s->size());
  for (size_t i = 0; i < s->size(); ++i) {
    EXPECT_EQ(back->tuple(i), s->tuple(i));
    EXPECT_DOUBLE_EQ(back->prob(i), s->prob(i));
  }
}


// ---------------------------------------------------------------------------
// CRC-32C (WAL framing checksums)
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors) {
  // The standard CRC-32C check value: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c::Value(""), 0u);
  // 32 zero bytes, per the iSCSI test vectors (RFC 3720 B.4).
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "hello crc32c world";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = crc32c::Extend(0, data.data(), split);
    uint32_t full =
        crc32c::Extend(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(full, crc32c::Value(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint32_t crc = static_cast<uint32_t>(rng.Uniform(uint64_t{1} << 32));
    uint32_t masked = crc32c::Mask(crc);
    EXPECT_EQ(crc32c::Unmask(masked), crc);
    EXPECT_NE(masked, crc);  // stored checksums never look like raw CRCs
  }
}

// ---------------------------------------------------------------------------
// Coding (little-endian primitives of the durable layer)
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedWidthRoundTripsLittleEndian) {
  std::string buffer;
  PutFixed32(&buffer, 0x04030201u);
  PutFixed64(&buffer, 0x0807060504030201ull);
  ASSERT_EQ(buffer.size(), 12u);
  // Byte order is part of the on-disk format, not the host's.
  EXPECT_EQ(buffer[0], 0x01);
  EXPECT_EQ(buffer[3], 0x04);
  std::string_view in(buffer);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0x04030201u);
  EXPECT_EQ(v64, 0x0807060504030201ull);
  EXPECT_TRUE(in.empty());
  EXPECT_FALSE(GetFixed32(&in, &v32));  // truncated: clean refusal
}

TEST(CodingTest, VarintRoundTripsAcrossWidths) {
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (uint64_t{1} << 32) - 1,
                                  uint64_t{1} << 63, ~uint64_t{0}};
  std::string buffer;
  for (uint64_t v : values) PutVarint64(&buffer, v);
  std::string_view in(buffer);
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
  // A lone continuation byte is truncated input, not a value.
  std::string_view torn("\x80", 1);
  uint64_t got = 0;
  EXPECT_FALSE(GetVarint64(&torn, &got));
}

TEST(CodingTest, ZigZagKeepsSmallNegativesShort) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                    int64_t{63}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  std::string buffer;
  PutVarint64(&buffer, ZigZagEncode(-1));
  EXPECT_EQ(buffer.size(), 1u);  // -1 must not become ten 0xff bytes
}

TEST(CodingTest, LengthPrefixedHandlesEmbeddedNulAndTruncation) {
  std::string buffer;
  PutLengthPrefixed(&buffer, std::string_view("a\0b", 3));
  PutLengthPrefixed(&buffer, "");
  std::string_view in(buffer);
  std::string_view s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_EQ(s, std::string_view("a\0b", 3));
  ASSERT_TRUE(GetLengthPrefixed(&in, &s));
  EXPECT_TRUE(s.empty());
  // A length prefix promising more bytes than remain is a clean refusal.
  std::string_view lying("\x05" "ab", 3);
  EXPECT_FALSE(GetLengthPrefixed(&lying, &s));
}

TEST(CodingTest, DoubleRoundTripIsBitIdentical) {
  std::vector<double> values = {0.0, -0.0, 0.1 + 0.2, 1.0, 1e-300,
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::denorm_min()};
  for (double v : values) {
    std::string buffer;
    PutDouble(&buffer, v);
    std::string_view in(buffer);
    double got = 0;
    ASSERT_TRUE(GetDouble(&in, &got));
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(double)), 0);
  }
}

// ---------------------------------------------------------------------------
// MemEnv (the hermetic filesystem under every crash test)
// ---------------------------------------------------------------------------

TEST(MemEnvTest, WriteReadRenameRemove) {
  MemEnv env;
  auto file = env.NewWritableFile("/dir/a");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Close().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString("/dir/a", &contents).ok());
  EXPECT_EQ(contents, "hello world");
  EXPECT_EQ(*env.GetFileSize("/dir/a"), 11u);

  ASSERT_TRUE(env.RenameFile("/dir/a", "/dir/b").ok());
  EXPECT_FALSE(env.FileExists("/dir/a"));
  ASSERT_TRUE(env.ReadFileToString("/dir/b", &contents).ok());
  EXPECT_EQ(contents, "hello world");

  ASSERT_TRUE(env.RemoveFile("/dir/b").ok());
  EXPECT_FALSE(env.FileExists("/dir/b"));
  EXPECT_FALSE(env.ReadFileToString("/dir/b", &contents).ok());
}

TEST(MemEnvTest, NewWritableTruncatesAppendableAppends) {
  MemEnv env;
  env.SetFileContents("/f", "old");
  {
    auto file = env.NewAppendableFile("/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("+new").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(env.FileContents("/f"), "old+new");
  {
    auto file = env.NewWritableFile("/f");
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("fresh").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(env.FileContents("/f"), "fresh");
}

TEST(MemEnvTest, RenameReplacesTargetAtomically) {
  MemEnv env;
  env.SetFileContents("/snap.tmp", "new snapshot");
  env.SetFileContents("/snap", "old snapshot");
  ASSERT_TRUE(env.RenameFile("/snap.tmp", "/snap").ok());
  EXPECT_EQ(env.FileContents("/snap"), "new snapshot");
  EXPECT_FALSE(env.FileExists("/snap.tmp"));
}

TEST(MemEnvTest, GetChildrenListsNamesSorted) {
  MemEnv env;
  ASSERT_TRUE(env.CreateDirIfMissing("/data").ok());
  env.SetFileContents("/data/wal-2.log", "");
  env.SetFileContents("/data/snap-1", "");
  env.SetFileContents("/data/wal-1.log", "");
  env.SetFileContents("/other/x", "");
  auto children = env.GetChildren("/data");
  ASSERT_TRUE(children.ok());
  EXPECT_EQ(*children, (std::vector<std::string>{"snap-1", "wal-1.log",
                                                 "wal-2.log"}));
}

TEST(MemEnvTest, TruncateCutsATornTail) {
  MemEnv env;
  env.SetFileContents("/wal", "0123456789");
  ASSERT_TRUE(env.TruncateFile("/wal", 4).ok());
  EXPECT_EQ(env.FileContents("/wal"), "0123");
  // Truncating past the end is a no-op, not an extension.
  ASSERT_TRUE(env.TruncateFile("/wal", 100).ok());
  EXPECT_EQ(env.FileContents("/wal"), "0123");
}

TEST(MemEnvTest, JoinPathAddsExactlyOneSeparator) {
  EXPECT_EQ(JoinPath("/data", "wal.log"), "/data/wal.log");
  EXPECT_EQ(JoinPath("/data/", "wal.log"), "/data/wal.log");
}

// ---------------------------------------------------------------------------
// WAL framing (LogWriter / LogReader)
// ---------------------------------------------------------------------------

namespace {
std::string WriteLog(const std::vector<std::string>& records,
                     MemEnv* env = nullptr) {
  MemEnv local;
  MemEnv* e = env != nullptr ? env : &local;
  auto file = e->NewWritableFile("/wal");
  PDB_CHECK(file.ok());
  LogWriter writer(file->get());
  for (const std::string& record : records) {
    PDB_CHECK(writer.AddRecord(record).ok());
  }
  PDB_CHECK((*file)->Close().ok());
  return e->FileContents("/wal");
}

std::vector<std::string> ReadLog(std::string_view contents,
                                 bool* corrupt = nullptr) {
  LogReader reader(contents);
  std::vector<std::string> records;
  std::string record;
  while (reader.ReadRecord(&record)) records.push_back(record);
  if (corrupt != nullptr) *corrupt = reader.corruption_detected();
  return records;
}
}  // namespace

TEST(WalTest, SmallRecordsRoundTripAsFullFrames) {
  std::vector<std::string> records = {"alpha", "", std::string("x\0y", 3),
                                      "last"};
  std::string contents = WriteLog(records);
  // Each fits a block: header + payload per record, all in block 0.
  size_t expected = 0;
  for (const auto& r : records) expected += wal::kHeaderSize + r.size();
  EXPECT_EQ(contents.size(), expected);
  bool corrupt = true;
  EXPECT_EQ(ReadLog(contents, &corrupt), records);
  EXPECT_FALSE(corrupt);
}

TEST(WalTest, LargeRecordFragmentsAcrossBlocks) {
  // > two blocks: must frame as FIRST / MIDDLE+ / LAST.
  std::string big(2 * wal::kBlockSize + 12345, '\0');
  Rng rng(42);
  for (char& c : big) c = static_cast<char>(rng.Uniform(256));
  std::vector<std::string> records = {"head", big, "tail"};
  std::string contents = WriteLog(records);
  EXPECT_GT(contents.size(), 2 * wal::kBlockSize);
  EXPECT_EQ(ReadLog(contents), records);
}

TEST(WalTest, BlockTrailerPadsWhenHeaderCannotFit) {
  // Fill block 0 so that fewer than kHeaderSize bytes remain, forcing the
  // writer to zero-pad and start the next record block-aligned.
  std::string filler(wal::kBlockSize - wal::kHeaderSize - 3, 'f');
  std::vector<std::string> records = {filler, "after the trailer"};
  std::string contents = WriteLog(records);
  ASSERT_GT(contents.size(), wal::kBlockSize);
  // The 3 trailer bytes must be zero.
  for (size_t i = wal::kBlockSize - 3; i < wal::kBlockSize; ++i) {
    EXPECT_EQ(contents[i], '\0') << "trailer byte " << i;
  }
  // The second record starts at the block boundary.
  EXPECT_EQ(static_cast<wal::RecordType>(
                contents[wal::kBlockSize + wal::kHeaderSize - 1]),
            wal::RecordType::kFull);
  EXPECT_EQ(ReadLog(contents), records);
}

TEST(WalTest, ExactBlockBoundaryRecordsRoundTrip) {
  // Payloads engineered so a fragment ends exactly at a block boundary.
  for (size_t delta : {size_t{0}, size_t{1}, wal::kHeaderSize,
                       wal::kHeaderSize + 1}) {
    std::vector<std::string> records = {
        std::string(wal::kBlockSize - wal::kHeaderSize - delta, 'a'), "b"};
    SCOPED_TRACE(delta);
    EXPECT_EQ(ReadLog(WriteLog(records)), records);
  }
}

TEST(WalTest, ReopenedLogAppendsWithCorrectBlockOffset) {
  // Writing more records through a second writer seeded with the current
  // size (the durable layer's reopen path) must yield one coherent log.
  MemEnv env;
  {
    auto file = env.NewWritableFile("/wal");
    ASSERT_TRUE(file.ok());
    LogWriter writer(file->get());
    ASSERT_TRUE(writer.AddRecord(std::string(wal::kBlockSize / 2, 'x')).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  uint64_t size = *env.GetFileSize("/wal");
  {
    auto file = env.NewAppendableFile("/wal");
    ASSERT_TRUE(file.ok());
    LogWriter writer(file->get(), size);
    ASSERT_TRUE(writer.AddRecord(std::string(wal::kBlockSize, 'y')).ok());
    ASSERT_TRUE(writer.AddRecord("z").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(ReadLog(env.FileContents("/wal")),
            (std::vector<std::string>{std::string(wal::kBlockSize / 2, 'x'),
                                      std::string(wal::kBlockSize, 'y'),
                                      "z"}));
}

TEST(WalTest, CorruptChecksumStopsAtFirstDamage) {
  std::vector<std::string> records = {"one", "two", "three"};
  std::string contents = WriteLog(records);
  // Flip a payload byte of the second record.
  size_t pos = wal::kHeaderSize + 3 + wal::kHeaderSize + 1;
  contents[pos] = static_cast<char>(contents[pos] ^ 0x01);
  LogReader reader(contents);
  std::string record;
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, "one");
  EXPECT_FALSE(reader.ReadRecord(&record));  // stop: no resync past damage
  EXPECT_TRUE(reader.corruption_detected());
  EXPECT_EQ(reader.valid_prefix_size(), wal::kHeaderSize + 3);
}

TEST(WalTest, TornFragmentSequenceYieldsOnlyCompleteRecords) {
  // FIRST without its LAST (crash mid-append of a fragmented record): the
  // complete records before it are returned; the orphan fragment is not.
  std::string big(wal::kBlockSize + 100, 'q');
  std::string contents = WriteLog({"intact", big});
  // Cut inside the big record's LAST fragment.
  std::string torn = contents.substr(0, wal::kBlockSize + 40);
  LogReader reader(torn);
  std::string record;
  ASSERT_TRUE(reader.ReadRecord(&record));
  EXPECT_EQ(record, "intact");
  EXPECT_FALSE(reader.ReadRecord(&record));
  EXPECT_EQ(reader.valid_prefix_size(), wal::kHeaderSize + 6);
}

}  // namespace
}  // namespace pdb
