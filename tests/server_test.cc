// pdbd server tests: HTTP/1.1 parser units (incremental feeding, limits,
// keep-alive, pipelining), admission controller semantics (cap, bounded
// queue, fast shed, shutdown), session pool affinity, and end-to-end socket
// tests against a live PdbServer — including overload shedding (429 +
// Retry-After + pdb_shed_total), per-request deadlines, and the
// scrape-vs-serve hammer with a mid-flight graceful shutdown. This file is
// built under TSan in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "server/admission.h"
#include "server/http.h"
#include "server/server.h"
#include "server/session_pool.h"
#include "storage/durable_db.h"
#include "storage/env.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

using State = HttpRequestParser::State;

// ---------------------------------------------------------------------------
// HTTP parser
// ---------------------------------------------------------------------------

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
  ASSERT_NE(req.FindHeader("host"), nullptr);
  EXPECT_EQ(*req.FindHeader("HOST"), "x");  // lookup is case-insensitive
}

TEST(HttpParserTest, ParsesPostBodyFedByteByByte) {
  HttpRequestParser parser;
  std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 11\r\n"
      "X-Client-Id:  alice \r\n\r\nR(x), S(x,y";
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    ASSERT_EQ(parser.Feed(std::string_view(&raw[i], 1)), State::kNeedMore)
        << "at byte " << i;
  }
  ASSERT_EQ(parser.Feed(std::string_view(&raw[raw.size() - 1], 1)),
            State::kComplete);
  EXPECT_EQ(parser.request().body, "R(x), S(x,y");
  // Header values are trimmed of surrounding whitespace.
  EXPECT_EQ(*parser.request().FindHeader("x-client-id"), "alice");
}

TEST(HttpParserTest, KeepAliveDefaultsPerVersion) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/1.0\r\n\r\n"), State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
  parser.Reset();
  ASSERT_EQ(parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.request().keep_alive);
  parser.Reset();
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpParserTest, PipelinedRequestsSurviveReset) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\n"
                        "Content-Length: 2\r\n\r\nhi"),
            State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  // The second request was already buffered; Reset re-parses it.
  ASSERT_EQ(parser.state(), State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "hi");
  parser.Reset();
  EXPECT_EQ(parser.state(), State::kNeedMore);
  EXPECT_TRUE(parser.idle());
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("NONSENSE\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsUnsupportedVersionAndTransferEncoding) {
  HttpRequestParser p1;
  EXPECT_EQ(p1.Feed("GET / HTTP/2\r\n\r\n"), State::kError);
  EXPECT_EQ(p1.error_status(), 400);
  HttpRequestParser p2;
  EXPECT_EQ(p2.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(p2.error_status(), 501);
}

TEST(HttpParserTest, EnforcesHeadAndBodyLimits) {
  HttpLimits limits;
  limits.max_head_bytes = 64;
  limits.max_body_bytes = 8;
  HttpRequestParser p1(limits);
  std::string big_head = "GET / HTTP/1.1\r\nX-Pad: " + std::string(100, 'a');
  EXPECT_EQ(p1.Feed(big_head), State::kError);
  EXPECT_EQ(p1.error_status(), 431);

  HttpRequestParser p2(limits);
  EXPECT_EQ(p2.Feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            State::kError);
  EXPECT_EQ(p2.error_status(), 413);

  HttpRequestParser p3(limits);
  EXPECT_EQ(p3.Feed("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            State::kError);
  EXPECT_EQ(p3.error_status(), 400);
}

TEST(HttpParserTest, ErrorStateIsSticky) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("BAD\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n"), State::kError);
}

TEST(HttpRenderTest, ResponseCarriesContentLengthAndReason) {
  std::string response = RenderHttpResponse(429, "application/json",
                                            "{\"error\":\"x\"}\n",
                                            /*keep_alive=*/true,
                                            {{"Retry-After", "2"}});
  EXPECT_NE(response.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
}

TEST(HttpRenderTest, ChunkedFramingRoundTrips) {
  EXPECT_EQ(RenderHttpChunk("hello"), "5\r\nhello\r\n");
  EXPECT_EQ(RenderHttpChunk(""), "");  // empty chunk would end the stream
  std::string head = RenderHttpChunkedHead(200, "application/x-ndjson",
                                           /*keep_alive=*/false);
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n\r\n"),
            std::string::npos);
  EXPECT_EQ(head.find("Content-Length"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admission controller
// ---------------------------------------------------------------------------

TEST(AdmissionTest, AdmitsUpToCapThenShedsQueueFullFast) {
  AdmissionController admission({.max_concurrent = 2, .max_queue = 0});
  EXPECT_EQ(admission.Admit(), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit(), AdmissionController::Decision::kAdmitted);
  // Queue size 0: the third arrival is refused without waiting.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(admission.Admit(), AdmissionController::Decision::kShedQueueFull);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            50);
  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_queue_full, 1u);
  EXPECT_EQ(stats.in_flight, 2u);
  admission.Release();
  admission.Release();
  EXPECT_EQ(admission.stats().in_flight, 0u);
}

TEST(AdmissionTest, QueuedWaiterGetsSlotOnRelease) {
  AdmissionController admission(
      {.max_concurrent = 1, .max_queue = 4, .queue_timeout_ms = 5000});
  ASSERT_EQ(admission.Admit(), AdmissionController::Decision::kAdmitted);
  std::atomic<int> decision{-1};
  std::thread waiter([&] {
    decision.store(static_cast<int>(admission.Admit()),
                   std::memory_order_release);
  });
  while (admission.stats().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.Release();
  waiter.join();
  EXPECT_EQ(decision.load(),
            static_cast<int>(AdmissionController::Decision::kAdmitted));
  EXPECT_EQ(admission.stats().in_flight, 1u);
  admission.Release();
}

TEST(AdmissionTest, QueueWaitTimesOut) {
  AdmissionController admission(
      {.max_concurrent = 1, .max_queue = 4, .queue_timeout_ms = 30});
  ASSERT_EQ(admission.Admit(), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit(), AdmissionController::Decision::kShedTimeout);
  EXPECT_EQ(admission.stats().shed_timeout, 1u);
  EXPECT_EQ(admission.stats().queued, 0u);
  admission.Release();
}

TEST(AdmissionTest, ShutdownWakesWaitersAndRefusesNewWork) {
  AdmissionController admission(
      {.max_concurrent = 1, .max_queue = 4, .queue_timeout_ms = 60000});
  ASSERT_EQ(admission.Admit(), AdmissionController::Decision::kAdmitted);
  std::atomic<int> decision{-1};
  std::thread waiter([&] {
    decision.store(static_cast<int>(admission.Admit()),
                   std::memory_order_release);
  });
  while (admission.stats().queued == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.Shutdown();
  waiter.join();
  EXPECT_EQ(decision.load(),
            static_cast<int>(AdmissionController::Decision::kShuttingDown));
  EXPECT_EQ(admission.Admit(), AdmissionController::Decision::kShuttingDown);
  admission.Release();  // the original admit
  EXPECT_EQ(admission.stats().in_flight, 0u);
}

TEST(AdmissionTest, PerClientCapShedsInstantlyWithoutStarvingOthers) {
  AdmissionController admission(
      {.max_concurrent = 8, .max_queue = 8, .max_per_client = 2});
  ASSERT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kAdmitted);
  ASSERT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kAdmitted);
  // The third alice request is refused at once — no queue position, no
  // timer — while bob (and the anonymous client) are unaffected.
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kShedClientLimit);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
      50);
  EXPECT_EQ(admission.Admit("bob"), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit(""), AdmissionController::Decision::kAdmitted);
  AdmissionStats stats = admission.stats();
  EXPECT_EQ(stats.shed_client_limit, 1u);
  EXPECT_EQ(stats.in_flight, 4u);
  // Releasing one alice slot restores her headroom.
  admission.Release("alice");
  EXPECT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kAdmitted);
  admission.Release("alice");
  admission.Release("alice");
  admission.Release("bob");
  admission.Release("");
  EXPECT_EQ(admission.stats().in_flight, 0u);
}

TEST(AdmissionTest, AnonymousRequestsAreExemptFromPerClientCap) {
  AdmissionController admission(
      {.max_concurrent = 8, .max_queue = 8, .max_per_client = 1});
  // Requests without an X-Client-Id are distinct callers: pooling them
  // under the empty-string identity would shed unrelated clients under
  // normal load. They bypass the per-client cap (the global gate still
  // bounds them).
  EXPECT_EQ(admission.Admit(""), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit(""), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit(""), AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.stats().shed_client_limit, 0u);
  // Identified clients still get capped.
  EXPECT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.Admit("alice"),
            AdmissionController::Decision::kShedClientLimit);
  admission.Release("alice");
  admission.Release("");
  admission.Release("");
  admission.Release("");
  EXPECT_EQ(admission.stats().in_flight, 0u);
}

TEST(AdmissionTest, TicketReleasesOnDestruction) {
  AdmissionController admission({.max_concurrent = 1, .max_queue = 0});
  {
    AdmissionTicket ticket(&admission);
    EXPECT_TRUE(ticket.admitted());
    EXPECT_EQ(admission.stats().in_flight, 1u);
    AdmissionTicket shed(&admission);
    EXPECT_FALSE(shed.admitted());
  }
  // The shed ticket must not release a slot it never held.
  EXPECT_EQ(admission.stats().in_flight, 0u);
  EXPECT_EQ(admission.stats().admitted, 1u);
}

// ---------------------------------------------------------------------------
// Session pool
// ---------------------------------------------------------------------------

TEST(SessionPoolTest, ClientAffinityAndDefaultFallback) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  SessionPool pool(&pdb, {{.num_threads = 1}, /*max_sessions=*/2});
  Session* anonymous = pool.ForClient("");
  EXPECT_EQ(pool.ForClient(""), anonymous);
  Session* alice = pool.ForClient("alice");
  Session* bob = pool.ForClient("bob");
  EXPECT_NE(alice, anonymous);
  EXPECT_NE(alice, bob);
  EXPECT_EQ(pool.ForClient("alice"), alice);
  EXPECT_EQ(pool.size(), 2u);
  // At capacity: a new client shares the default session instead of
  // minting a third.
  EXPECT_EQ(pool.ForClient("carol"), anonymous);
  EXPECT_EQ(pool.size(), 2u);

  int visited = 0;
  pool.ForEachSession([&](const std::string&, Session&) { ++visited; });
  EXPECT_EQ(visited, 3);  // default + alice + bob
  EXPECT_EQ(pool.TotalInFlight(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end over sockets
// ---------------------------------------------------------------------------

/// A parsed HTTP response (chunked bodies are de-framed).
struct TestResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased names
  std::string body;
  /// body split at newlines (NDJSON rows), empty lines dropped.
  std::vector<std::string> Lines() const {
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < body.size()) {
      size_t eol = body.find('\n', pos);
      if (eol == std::string::npos) eol = body.size();
      if (eol > pos) lines.push_back(body.substr(pos, eol - pos));
      pos = eol + 1;
    }
    return lines;
  }
};

/// Connects, sends one request with Connection: close, reads to EOF, parses.
TestResponse Fetch(uint16_t port, const std::string& method,
                   const std::string& target,
                   const std::vector<std::pair<std::string, std::string>>&
                       headers = {},
                   const std::string& body = "") {
  TestResponse out;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return out;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return out;
  }
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Connection: close\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return out;
  std::string head = raw.substr(0, head_end);
  std::string payload = raw.substr(head_end + 4);
  size_t sp = head.find(' ');
  if (sp != std::string::npos) {
    out.status = std::atoi(head.c_str() + sp + 1);
  }
  size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    size_t eol = head.find("\r\n", pos + 2);
    std::string line = head.substr(
        pos + 2, eol == std::string::npos ? std::string::npos : eol - pos - 2);
    size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t value_start = line.find_first_not_of(' ', colon + 1);
      out.headers[name] =
          value_start == std::string::npos ? "" : line.substr(value_start);
    }
    pos = eol;
  }

  if (out.headers.count("transfer-encoding") &&
      out.headers["transfer-encoding"] == "chunked") {
    // De-frame chunks.
    size_t p = 0;
    while (p < payload.size()) {
      size_t eol = payload.find("\r\n", p);
      if (eol == std::string::npos) break;
      size_t size = std::strtoull(payload.substr(p, eol - p).c_str(),
                                  nullptr, 16);
      if (size == 0) break;
      out.body += payload.substr(eol + 2, size);
      p = eol + 2 + size + 2;
    }
  } else {
    out.body = payload;
  }
  return out;
}

/// The bipartite TID used across the suite: R(x), S(x,y), T(y) with n rows
/// per unary relation (same construction as obs_test.cc).
Database HardDatabase(size_t n) {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kInt}}));
  Relation s("S", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  Relation t("T", Schema({{"y", ValueType::kInt}}));
  Rng rng(11);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

class ServerEndToEndTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}, size_t db_size = 3) {
    pdb_ = std::make_unique<ProbDatabase>(HardDatabase(db_size));
    server_ = std::make_unique<PdbServer>(pdb_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::unique_ptr<ProbDatabase> pdb_;
  std::unique_ptr<PdbServer> server_;
};

TEST_F(ServerEndToEndTest, HealthzAndUnknownRoutes) {
  StartServer();
  TestResponse health = Fetch(server_->port(), "GET", "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"hardware_concurrency\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"build\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"data_dir_mode\":\"memory\""),
            std::string::npos);
  EXPECT_EQ(Fetch(server_->port(), "GET", "/nope").status, 404);
  EXPECT_EQ(Fetch(server_->port(), "GET", "/query").status, 405);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/metrics").status, 405);
}

TEST_F(ServerEndToEndTest, SqlBooleanQueryStreamsAnswerAndSummary) {
  StartServer();
  TestResponse resp =
      Fetch(server_->port(), "POST", "/query", {},
            "SELECT PROB() FROM R, S WHERE R.x = S.x");
  ASSERT_EQ(resp.status, 200);
  auto lines = resp.Lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"probability\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"method\":\"lifted\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"exact\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"done\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"rows\":1"), std::string::npos);
}

TEST_F(ServerEndToEndTest, SqlAnswersStreamPerTupleWithMethodAndStdError) {
  StartServer();
  TestResponse resp = Fetch(server_->port(), "POST", "/query", {},
                            "SELECT R.x FROM R, S WHERE R.x = S.x");
  ASSERT_EQ(resp.status, 200);
  auto lines = resp.Lines();
  ASSERT_EQ(lines.size(), 4u);  // 3 tuples + summary
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"tuple\":["), std::string::npos);
    EXPECT_NE(lines[i].find("\"probability\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"method\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"std_error\":"), std::string::npos);
  }
  EXPECT_NE(lines.back().find("\"rows\":3"), std::string::npos);
}

TEST_F(ServerEndToEndTest, UcqShorthandAndParseErrors) {
  StartServer();
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query", {}, "R(x), S(x,y)")
                .status,
            200);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query", {}, "R(x").status, 400);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT PROB() FROM NoSuchTable")
                .status,
            400);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query").status, 400);  // empty
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query",
                  {{"X-Deadline-Ms", "soon"}}, "R(x)")
                .status,
            400);
}

TEST_F(ServerEndToEndTest, ClientSessionsShowUpInMergedMetrics) {
  StartServer();
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query",
                  {{"X-Client-Id", "alice"}}, "R(x)")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {{"X-Client-Id", "bob"}},
                  "T(y)")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {}, "R(x)").status, 200);

  TestResponse metrics = Fetch(server_->port(), "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  // default + alice + bob, via summing each session's pdb_sessions_active.
  EXPECT_NE(metrics.body.find("pdb_sessions_active 3"), std::string::npos);
  EXPECT_NE(metrics.body.find("pdb_queries_total 3"), std::string::npos);
  EXPECT_NE(metrics.body.find("pdb_http_requests_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("pdb_connections_accepted_total"),
            std::string::npos);
  EXPECT_EQ(server_->sessions().size(), 2u);

  TestResponse traces = Fetch(server_->port(), "GET", "/debug/traces");
  ASSERT_EQ(traces.status, 200);
  EXPECT_NE(traces.body.find("\"client\":\"alice\""), std::string::npos);
  EXPECT_NE(traces.body.find("\"phase\":\"parse\""), std::string::npos);
}

TEST_F(ServerEndToEndTest, DeadlineHeaderDegradesToSamplingNotError) {
  ServerOptions options;
  options.max_deadline_ms = 10'000;
  // 120 lineage variables: exact DPLL cannot finish inside 50ms, so the
  // deadline must kick in.
  StartServer(options, /*db_size=*/10);
  // The unsafe join needs DPLL; a tight budget forces the Monte Carlo
  // fallback, which still answers 200 (estimate, not error).
  TestResponse resp = Fetch(server_->port(), "POST", "/query",
                            {{"X-Deadline-Ms", "50"}},
                            "SELECT PROB() FROM R, S, T "
                            "WHERE R.x = S.x AND S.y = T.y WITH STDERR 0.05");
  ASSERT_EQ(resp.status, 200);
  auto lines = resp.Lines();
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"method\":\"monte-carlo\""), std::string::npos)
      << lines[0];
}

TEST_F(ServerEndToEndTest, OverloadShedsWith429RetryAfterAndShedTotal) {
  ServerOptions options;
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 0;  // every overflow sheds instantly
  // Big enough that the slot-holding query burns its whole deadline in
  // DPLL before falling back to sampling.
  StartServer(options, /*db_size=*/10);
  uint16_t port = server_->port();

  // One slow query occupies the single execution slot...
  std::atomic<bool> slow_done{false};
  std::thread slow([port, &slow_done] {
    TestResponse resp = Fetch(port, "POST", "/query",
                              {{"X-Deadline-Ms", "1500"}},
                              "SELECT PROB() FROM R, S, T "
                              "WHERE R.x = S.x AND S.y = T.y "
                              "WITH STDERR 0.02");
    EXPECT_EQ(resp.status, 200);
    slow_done.store(true, std::memory_order_release);
  });
  // Wait until it holds the slot before bursting, so the bursts cannot
  // steal it (max_queue=0 would shed the slow query instead).
  while (server_->admission().stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ... while it runs, every arrival is shed with a fast 429.
  int shed = 0;
  while (shed < 3 && !slow_done.load(std::memory_order_acquire)) {
    TestResponse resp = Fetch(port, "POST", "/query",
                              {{"X-Client-Id", "burst"}}, "R(x)");
    if (resp.status == 429) {
      ++shed;
      EXPECT_FALSE(resp.headers["retry-after"].empty());
      EXPECT_NE(resp.body.find("\"error\""), std::string::npos);
    }
  }
  slow.join();
  EXPECT_GE(shed, 3);

  // The sheds are visible in the merged scrape and in the burst session's
  // cumulative report (shed invariant: shed_total covers admission drops).
  std::string metrics = server_->MetricsText();
  EXPECT_NE(metrics.find("pdb_admission_rejected_total"), std::string::npos);
  Session* burst = server_->sessions().ForClient("burst");
  ExecReport report = burst->CumulativeReport();
  EXPECT_GE(report.admission_rejected, static_cast<uint64_t>(shed));
  auto snap = burst->SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("pdb_shed_total"),
            report.shed_tasks + report.admission_rejected);
  AdmissionStats stats = server_->admission().stats();
  EXPECT_GE(stats.shed_queue_full, static_cast<uint64_t>(shed));
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ServerEndToEndTest, GracefulShutdownDrainsAndAnswersDrainingAfter) {
  StartServer();
  uint16_t port = server_->port();
  ASSERT_EQ(Fetch(port, "POST", "/query", {}, "R(x)").status, 200);
  server_->Shutdown();
  EXPECT_TRUE(server_->draining());
  EXPECT_EQ(server_->admission().stats().in_flight, 0u);
  // The listener is closed: a new connection is refused.
  EXPECT_EQ(Fetch(port, "GET", "/healthz").status, 0);
  // Shutdown is idempotent.
  server_->Shutdown();
}

TEST_F(ServerEndToEndTest, ScrapersRaceServingWithShutdownMidFlight) {
  // The TSan workhorse: 8 client threads hammer /query (distinct sessions
  // and the shared one), a scraper polls /metrics and /debug/traces, and a
  // graceful shutdown is issued while traffic is still arriving. After
  // Shutdown: everything joined, nothing in flight, and no session lost a
  // ticker (registry == CumulativeReport on every session).
  ServerOptions options;
  options.admission.max_concurrent = 4;
  options.admission.max_queue = 2;
  options.admission.queue_timeout_ms = 50;
  options.drain_timeout_ms = 3'000;
  StartServer(options);
  uint16_t port = server_->port();

  std::atomic<bool> stop{false};
  std::atomic<int> ok_responses{0};
  std::atomic<int> shed_responses{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      const char* queries[] = {
          "R(x)", "SELECT PROB() FROM R, S WHERE R.x = S.x",
          "R(x), S(x,y), T(y)", "SELECT R.x FROM R, S WHERE R.x = S.x"};
      std::string client_id = t % 2 == 0 ? ("c" + std::to_string(t)) : "";
      int i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<std::pair<std::string, std::string>> headers;
        headers.emplace_back("X-Deadline-Ms", "500");
        if (!client_id.empty()) {
          headers.emplace_back("X-Client-Id", client_id);
        }
        TestResponse resp = Fetch(port, "POST", "/query", headers,
                                  queries[i++ % 4]);
        if (resp.status == 200) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        } else if (resp.status == 429) {
          shed_responses.fetch_add(1, std::memory_order_relaxed);
        }
        // 0 (refused connection) and 503 (draining) arrive once shutdown
        // begins; both are expected.
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)Fetch(port, "GET", "/metrics");
      (void)Fetch(port, "GET", "/debug/traces");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Let traffic build, then shut down mid-flight.
  while (ok_responses.load(std::memory_order_acquire) < 24) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server_->Shutdown();
  stop.store(true, std::memory_order_release);
  for (auto& c : clients) c.join();
  scraper.join();

  // Drain completed: nothing in flight anywhere.
  EXPECT_EQ(server_->admission().stats().in_flight, 0u);
  EXPECT_EQ(server_->sessions().TotalInFlight(), 0);

  // No lost tickers: on every session the registry agrees with the
  // cumulative report, served answers match the latency histogram, and the
  // shed invariant holds.
  uint64_t total_queries = 0;
  server_->sessions().ForEachSession([&](const std::string&,
                                         Session& session) {
    auto snap = session.SnapshotMetrics();
    ExecReport report = session.CumulativeReport();
    EXPECT_EQ(snap.counters.at("pdb_queries_total"), session.queries_served());
    EXPECT_EQ(snap.histograms.at("pdb_query_latency_us").count,
              session.queries_served());
    EXPECT_EQ(snap.counters.at("pdb_shed_total"),
              report.shed_tasks + report.admission_rejected);
    EXPECT_EQ(snap.counters.at("pdb_admission_rejected_total"),
              report.admission_rejected);
    EXPECT_EQ(snap.gauges.at("pdb_requests_in_flight"), 0);
    total_queries += session.queries_served();
  });
  // Every 200 the clients saw is a served query (sessions may have served
  // more: responses cut off mid-write during shutdown still executed).
  EXPECT_GE(total_queries,
            static_cast<uint64_t>(ok_responses.load(std::memory_order_acquire)));
  // And the merged scrape carries the same total.
  std::string metrics = server_->MetricsText();
  std::string want = "pdb_queries_total " + std::to_string(total_queries);
  EXPECT_NE(metrics.find(want), std::string::npos) << metrics;
}

// ---------------------------------------------------------------------------
// Introspection: EXPLAIN over HTTP, /debug/slowlog, /debug/profile, and the
// full-stack trace-coverage acceptance bar.
// ---------------------------------------------------------------------------

TEST_F(ServerEndToEndTest, ExplainAnalyzeOverHttpReturnsPlanAndText) {
  StartServer();
  // Plain EXPLAIN: plan only, nothing executed, JSON by default.
  TestResponse plain =
      Fetch(server_->port(), "POST", "/query", {},
            "EXPLAIN SELECT PROB() FROM R, S WHERE R.x = S.x");
  ASSERT_EQ(plain.status, 200);
  EXPECT_EQ(plain.headers["content-type"], "application/json");
  EXPECT_NE(plain.body.find("\"analyze\":false"), std::string::npos);
  EXPECT_NE(plain.body.find("\"method_predicted\":true"), std::string::npos);
  EXPECT_NE(plain.body.find("\"method\":\"lifted\""), std::string::npos);
  EXPECT_NE(plain.body.find("\"estimated_rows\":"), std::string::npos);
  EXPECT_EQ(plain.body.find("\"probability\":"), std::string::npos);

  // EXPLAIN ANALYZE: executed, with estimate-vs-actual and a trace.
  TestResponse analyze =
      Fetch(server_->port(), "POST", "/query", {},
            "EXPLAIN ANALYZE SELECT PROB() FROM R, S WHERE R.x = S.x");
  ASSERT_EQ(analyze.status, 200);
  EXPECT_NE(analyze.body.find("\"analyze\":true"), std::string::npos);
  EXPECT_NE(analyze.body.find("\"probability\":"), std::string::npos);
  EXPECT_NE(analyze.body.find("\"actual_rows\":"), std::string::npos);
  EXPECT_NE(analyze.body.find("\"trace\":{\"total_ns\":"), std::string::npos);

  // Accept: text/plain renders the human-readable form instead.
  TestResponse text =
      Fetch(server_->port(), "POST", "/query", {{"Accept", "text/plain"}},
            "EXPLAIN ANALYZE SELECT PROB() FROM R, S WHERE R.x = S.x");
  ASSERT_EQ(text.status, 200);
  EXPECT_EQ(text.headers["content-type"], "text/plain");
  EXPECT_NE(text.body.find("EXPLAIN ANALYZE"), std::string::npos);

  // EXPLAIN requires SQL: the UCQ shorthand is rejected up front.
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query", {}, "EXPLAIN R(x)")
                .status,
            400);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "EXPLAIN SELECT PROB() FROM NoSuchTable")
                .status,
            400);
}

TEST_F(ServerEndToEndTest, SlowlogDisabledByDefault) {
  StartServer();
  TestResponse resp = Fetch(server_->port(), "GET", "/debug/slowlog");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"enabled\":false"), std::string::npos);
  EXPECT_EQ(Fetch(server_->port(), "POST", "/debug/slowlog").status, 405);
}

TEST_F(ServerEndToEndTest, SlowQueryLogCapturesStatementAndTrace) {
  ServerOptions options;
  options.slow_query_ms = 1;
  options.max_deadline_ms = 10'000;
  // 120 lineage variables: exact DPLL burns the whole 100ms budget before
  // the Monte Carlo fallback, so the query is guaranteed >> 1ms.
  StartServer(options, /*db_size=*/10);
  const std::string slow_sql =
      "SELECT PROB() FROM R, S, T WHERE R.x = S.x AND S.y = T.y "
      "WITH STDERR 0.05";
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query",
                  {{"X-Deadline-Ms", "100"}, {"X-Client-Id", "turtle"}},
                  slow_sql)
                .status,
            200);

  TestResponse resp = Fetch(server_->port(), "GET", "/debug/slowlog");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(resp.body.find("\"threshold_us\":1000"), std::string::npos);
  // The captured entry carries the statement, the client, the full trace,
  // and an explain payload for the offending statement.
  EXPECT_NE(resp.body.find("WITH STDERR 0.05"), std::string::npos);
  EXPECT_NE(resp.body.find("\"client\":\"turtle\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"trace\":{\"total_ns\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"explain\":{"), std::string::npos);
  EXPECT_NE(resp.body.find("\"latency_us\":"), std::string::npos);

  // Every ring entry round-trips through the strict parser.
  ASSERT_NE(server_->slow_query_log(), nullptr);
  for (const SlowQueryEntry& entry : server_->slow_query_log()->entries()) {
    Result<SlowQueryEntry> parsed =
        SlowQueryEntryFromJson(SlowQueryEntryToJson(entry));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->statement, entry.statement);
    EXPECT_EQ(parsed->latency_us, entry.latency_us);
  }
}

TEST_F(ServerEndToEndTest, DebugProfileAggregatesPhaseLatencies) {
  StartServer();
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT PROB() FROM R, S WHERE R.x = S.x")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT R.x FROM R, S WHERE R.x = S.x")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {}, "R(x), S(x,y), T(y)")
                .status,
            200);

  TestResponse resp = Fetch(server_->port(), "GET", "/debug/profile");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"phases\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"p50_ns\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"p95_ns\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"p99_ns\":"), std::string::npos);
  // Engine phases and the server's own phases land in the same profile.
  EXPECT_NE(resp.body.find("\"phase\":\"parse\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"phase\":\"http_parse\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"phase\":\"http_respond\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"phase\":\"admission_wait\""), std::string::npos);
}

TEST_F(ServerEndToEndTest, DurableWorkloadTraceCoverageAtLeastNinetyPercent) {
  // The ISSUE acceptance bar: on a durable server workload, top-level
  // spans must cover >= 90% of each query's wall clock, and the storage
  // layer's IO trace must fold into /debug/profile.
  MemEnv env;
  DurableOptions dopts;
  dopts.env = &env;
  auto opened = DurableDatabase::Open("/db", dopts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableDatabase* durable = opened->get();

  // Load the bipartite TID through the logged mutators so WAL append and
  // sync spans come from real writes.
  Rng rng(11);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  ASSERT_TRUE(
      durable->CreateRelation("R", Schema({{"x", ValueType::kInt}})).ok());
  ASSERT_TRUE(durable
                  ->CreateRelation("S", Schema({{"x", ValueType::kInt},
                                                {"y", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(
      durable->CreateRelation("T", Schema({{"y", ValueType::kInt}})).ok());
  constexpr int64_t n = 6;
  for (int64_t i = 1; i <= n; ++i) {
    ASSERT_TRUE(durable->Insert("R", {Value(i)}, prob()).ok());
    ASSERT_TRUE(durable->Insert("T", {Value(i)}, prob()).ok());
    for (int64_t j = 1; j <= n; ++j) {
      ASSERT_TRUE(durable->Insert("S", {Value(i), Value(j)}, prob()).ok());
    }
  }
  ASSERT_TRUE(durable->Checkpoint().ok());

  ServerOptions options;
  options.data_dir_mode = "durable";
  options.io_trace = &durable->io_trace();
  server_ = std::make_unique<PdbServer>(&durable->pdb(), options);
  ASSERT_TRUE(server_->Start().ok());

  // A DPLL-heavy workload: engine time dominates the wall clock, so the
  // instrumented phases must account for (nearly) all of it.
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT PROB() FROM R, S, T WHERE R.x = S.x AND S.y = T.y")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT PROB() FROM R, S WHERE R.x = S.x")
                .status,
            200);
  ASSERT_EQ(Fetch(server_->port(), "POST", "/query", {},
                  "SELECT R.x FROM R, S WHERE R.x = S.x")
                .status,
            200);

  uint64_t covered = 0;
  uint64_t total = 0;
  size_t traces = 0;
  server_->sessions().ForEachSession([&](const std::string&, Session& s) {
    for (const auto& trace : s.recent_traces()) {
      ++traces;
      covered += trace->TopLevelNs();
      total += trace->total_ns();
    }
  });
  ASSERT_GE(traces, 3u);
  ASSERT_GT(total, 0u);
  EXPECT_GE(static_cast<double>(covered), 0.9 * static_cast<double>(total))
      << "top-level spans cover " << covered << " of " << total << " ns";

  // The storage side recorded recovery, WAL, and checkpoint spans...
  const QueryTrace& io = durable->io_trace();
  EXPECT_GT(io.PhaseNs(TracePhase::kRecovery), 0u);
  EXPECT_GT(io.PhaseNs(TracePhase::kWalAppend), 0u);
  EXPECT_GT(io.PhaseNs(TracePhase::kWalSync), 0u);
  EXPECT_GT(io.PhaseNs(TracePhase::kCheckpoint), 0u);

  // ... and /debug/profile folds them into the per-phase percentiles.
  TestResponse profile = Fetch(server_->port(), "GET", "/debug/profile");
  ASSERT_EQ(profile.status, 200);
  EXPECT_NE(profile.body.find("\"phase\":\"wal_append\""), std::string::npos);
  EXPECT_NE(profile.body.find("\"phase\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(profile.body.find("\"phase\":\"recovery\""), std::string::npos);

  TestResponse health = Fetch(server_->port(), "GET", "/healthz");
  EXPECT_NE(health.body.find("\"data_dir_mode\":\"durable\""),
            std::string::npos);

  server_->Shutdown();
  server_.reset();
  ASSERT_TRUE(durable->Close().ok());
}

// ---------------------------------------------------------------------------
// Bulk ingest (POST /ingest) and two-client fairness, end to end.
// ---------------------------------------------------------------------------

TEST_F(ServerEndToEndTest, IngestStreamsCsvThroughBatchedCommits) {
  MemEnv env;
  DurableOptions dopts;
  dopts.env = &env;
  auto opened = DurableDatabase::Open("/db", dopts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableDatabase* durable = opened->get();

  ServerOptions options;
  options.data_dir_mode = "durable";
  options.durable = durable;
  server_ = std::make_unique<PdbServer>(&durable->pdb(), options);
  ASSERT_TRUE(server_->Start().ok());
  uint16_t port = server_->port();

  // 1200 rows across >2 commit batches (512 rows per batch), with a header
  // line to skip, blank lines to ignore, and an explicit probability column.
  std::string csv = "a,b,p\n";
  for (int i = 0; i < 1200; ++i) {
    csv += std::to_string(i) + "," + std::to_string(i) + ".5,0.25\n";
    if (i % 100 == 0) csv += "\n";
  }
  TestResponse resp =
      Fetch(port, "POST", "/ingest?relation=P&schema=a:int,b:double&header=1",
            {{"X-Client-Id", "loader"}}, csv);
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"relation\":\"P\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"rows\":1200"), std::string::npos);
  EXPECT_NE(resp.body.find("\"batches\":3"), std::string::npos);

  auto rel = durable->pdb().database().Get("P");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 1200u);
  EXPECT_EQ((*rel)->prob(0), 0.25);

  // The rows went through the batched WAL path: a handful of batch
  // records, not 1200 single-op commits.
  MetricsSnapshot snap = durable->metrics().Snapshot();
  EXPECT_EQ(snap.counters["pdb_wal_batch_records_total"], 3u);
  EXPECT_EQ(snap.counters["pdb_wal_batch_mutations_total"], 1200u);

  // Appending to the now-existing relation needs no schema parameter.
  TestResponse append = Fetch(port, "POST", "/ingest?relation=P", {},
                              "9001,1.5\n9002,2.5\n");
  ASSERT_EQ(append.status, 200) << append.body;
  EXPECT_NE(append.body.find("\"rows\":2"), std::string::npos);
  EXPECT_EQ((*rel)->size(), 1202u);

  // Error surface: missing relation param, unknown relation without a
  // schema, malformed row (reported with its row number and the count of
  // rows already durably committed), wrong method.
  EXPECT_EQ(Fetch(port, "POST", "/ingest", {}, "1\n").status, 400);
  EXPECT_EQ(Fetch(port, "POST", "/ingest?relation=Nope", {}, "1\n").status,
            400);
  TestResponse bad = Fetch(port, "POST", "/ingest?relation=P", {},
                           "1,1.5\nnot-an-int,2.5\n");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("row 2"), std::string::npos) << bad.body;
  EXPECT_EQ(Fetch(port, "GET", "/ingest?relation=P").status, 405);

  // The ingest counters surface in the merged scrape.
  TestResponse metrics = Fetch(port, "GET", "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("pdb_ingest_rows_total 1202"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("pdb_ingest_requests_total"),
            std::string::npos);

  server_->Shutdown();
  server_.reset();
  ASSERT_TRUE(durable->Close().ok());
}

// Queries keep running while a bulk load streams into the same store:
// every engine call holds the durable layer's read lock shared, and the
// commit path applies each batch under the exclusive side — so a scan
// never observes a relation's tuple vector reallocating underneath it.
// The TSan job runs this test; in a plain build it is a crash/liveness
// smoke over the same interleaving.
TEST_F(ServerEndToEndTest, QueriesRunSafelyDuringConcurrentIngest) {
  MemEnv env;
  DurableOptions dopts;
  dopts.env = &env;
  auto opened = DurableDatabase::Open("/db", dopts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  DurableDatabase* durable = opened->get();

  // Seed the relation so queries can scan it from the first request.
  ASSERT_TRUE(durable
                  ->CreateRelation("P", Schema({{"a", ValueType::kInt},
                                                {"b", ValueType::kDouble}}))
                  .ok());
  std::vector<std::pair<Tuple, double>> seed;
  for (int64_t i = 0; i < 10; ++i) {
    seed.push_back({{Value(i), Value(0.5)}, 0.25});
  }
  ASSERT_TRUE(durable->InsertMany("P", std::move(seed)).ok());

  ServerOptions options;
  options.data_dir_mode = "durable";
  options.durable = durable;
  server_ = std::make_unique<PdbServer>(&durable->pdb(), options);
  ASSERT_TRUE(server_->Start().ok());
  uint16_t port = server_->port();

  // 2000 fresh rows: several commit batches' worth of tuple-vector growth
  // racing the query scans below (kept modest so the TSan job stays fast).
  std::string csv;
  for (int i = 0; i < 2000; ++i) {
    csv += std::to_string(10 + i) + "," + std::to_string(i) + ".5,0.25\n";
  }
  std::atomic<bool> ingest_done{false};
  std::thread loader([port, &csv, &ingest_done] {
    TestResponse resp =
        Fetch(port, "POST", "/ingest?relation=P", {{"X-Client-Id", "loader"}},
              csv);
    EXPECT_EQ(resp.status, 200) << resp.body;
    EXPECT_NE(resp.body.find("\"rows\":2000"), std::string::npos);
    ingest_done.store(true, std::memory_order_release);
  });

  // Hammer Boolean scans over the growing relation until the load lands.
  size_t queries = 0;
  while (!ingest_done.load(std::memory_order_acquire) || queries < 3) {
    TestResponse resp = Fetch(port, "POST", "/query", {}, "P(x,y)");
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_NE(resp.body.find("\"probability\":"), std::string::npos);
    ++queries;
  }
  loader.join();
  EXPECT_GE(queries, 3u);

  auto rel = durable->pdb().database().Get("P");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 2010u);

  server_->Shutdown();
  server_.reset();
  ASSERT_TRUE(durable->Close().ok());
}

TEST_F(ServerEndToEndTest, IngestWithoutDurableStorageAnswers400) {
  StartServer();  // memory-only server: no --data-dir
  TestResponse resp =
      Fetch(server_->port(), "POST", "/ingest?relation=R", {}, "1\n");
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("durable"), std::string::npos);
}

TEST_F(ServerEndToEndTest, PerClientCapKeepsSecondClientResponsive) {
  ServerOptions options;
  options.admission.max_concurrent = 2;
  options.admission.max_queue = 4;
  options.admission.max_per_client = 1;
  options.max_deadline_ms = 10'000;
  StartServer(options, /*db_size=*/10);
  uint16_t port = server_->port();

  // "hog" occupies its single allowed slot with a slow query...
  std::atomic<bool> hog_done{false};
  std::thread hog([port, &hog_done] {
    TestResponse resp = Fetch(port, "POST", "/query",
                              {{"X-Deadline-Ms", "1500"},
                               {"X-Client-Id", "hog"}},
                              "SELECT PROB() FROM R, S, T "
                              "WHERE R.x = S.x AND S.y = T.y "
                              "WITH STDERR 0.02");
    EXPECT_EQ(resp.status, 200);
    hog_done.store(true, std::memory_order_release);
  });
  while (server_->admission().stats().admitted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ... so hog's second request is refused instantly with the client-limit
  // message, while a different client still gets served (a free slot
  // remains: the cap, not the capacity, is what refused hog).
  int hog_shed = 0;
  int other_ok = 0;
  while (!hog_done.load(std::memory_order_acquire) &&
         (hog_shed == 0 || other_ok == 0)) {
    if (hog_shed == 0) {
      TestResponse second = Fetch(port, "POST", "/query",
                                  {{"X-Client-Id", "hog"}}, "R(x)");
      if (second.status == 429) {
        ++hog_shed;
        EXPECT_NE(second.body.find("too many requests in flight"),
                  std::string::npos)
            << second.body;
        EXPECT_FALSE(second.headers["retry-after"].empty());
      }
    }
    if (other_ok == 0) {
      TestResponse other = Fetch(port, "POST", "/query",
                                 {{"X-Client-Id", "polite"}}, "R(x)");
      if (other.status == 200) ++other_ok;
    }
  }
  hog.join();
  EXPECT_EQ(hog_shed, 1) << "hog's second request was never client-capped";
  EXPECT_EQ(other_ok, 1) << "the second client never got a slot";
  EXPECT_GE(server_->admission().stats().shed_client_limit, 1u);
  EXPECT_EQ(server_->admission().stats().in_flight, 0u);
}

}  // namespace
}  // namespace pdb
