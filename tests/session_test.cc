// Session tests: shared pool, cross-query result cache + invalidation,
// cumulative accounting, and an 8-client concurrency stress run (this file
// is also built under TSan in CI).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "core/session.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

/// Complete bipartite H0 instance (R(i), S(i,j), T(j) over [n] x [n]) whose
/// query R(x), S(x,y), T(y) is non-hierarchical, hence #P-hard for exact
/// methods.
Database HardDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  Rng rng(3);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

const char* kUnsafeQuery = "R(x), S(x,y), T(y)";
const char* kSafeQuery = "R(x), S(x,y)";

TEST(SessionTest, MatchesPerQueryPathBitForBit) {
  ProbDatabase pdb(HardDatabase(4));
  Session session(&pdb, {.num_threads = 4});
  for (const char* query : {kSafeQuery, kUnsafeQuery}) {
    QueryOptions options;
    options.exec.num_threads = 4;
    auto direct = pdb.Query(query, options);
    auto via_session = session.Query(query, options);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_session.ok());
    EXPECT_EQ(direct->probability, via_session->probability);
    EXPECT_EQ(direct->method, via_session->method);
    EXPECT_EQ(direct->exact, via_session->exact);
  }
}

TEST(SessionTest, SequentialSessionHasNoPool) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  EXPECT_EQ(session.num_threads(), 1);
  EXPECT_EQ(session.pool(), nullptr);
  auto answer = session.Query(kUnsafeQuery);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->report.num_threads, 1);
}

TEST(SessionTest, SharedPoolWidthShowsUpInReports) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 4});
  EXPECT_EQ(session.num_threads(), 4);
  ASSERT_NE(session.pool(), nullptr);
  QueryOptions options;
  options.exec.num_threads = 4;  // != 1: use the session pool
  auto answer = session.Query(kUnsafeQuery, options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->report.num_threads, 4);
}

TEST(SessionTest, ResultCacheServesRepeatedQueries) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  auto first = session.Query(kUnsafeQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->exact);
  EXPECT_EQ(session.result_cache_hits(), 0u);
  EXPECT_EQ(session.cache_size(), 1u);

  auto second = session.Query(kUnsafeQuery);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->probability, first->probability);
  EXPECT_EQ(session.result_cache_hits(), 1u);
  EXPECT_EQ(session.queries_served(), 2u);
  EXPECT_NE(second->explanation.find("session result cache hit"),
            std::string::npos);
  // The cached answer ran nothing: its per-query report is fresh.
  EXPECT_EQ(second->report.samples_drawn, 0u);
  EXPECT_EQ(second->report.cache_hits, 0u);
}

TEST(SessionTest, DatabaseMutationInvalidatesCache) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  EXPECT_EQ(session.cache_size(), 1u);

  // Adding a relation bumps the generation; the stale entry must not be
  // served even though the sentence text is unchanged.
  Relation extra("V", Schema::Anonymous(1));
  ASSERT_TRUE(extra.AddTuple({Value(static_cast<int64_t>(1))}, 0.5).ok());
  ASSERT_TRUE(pdb.AddRelation(std::move(extra)).ok());

  auto after = session.Query(kUnsafeQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(session.result_cache_hits(), 0u);
  EXPECT_EQ(session.cache_size(), 1u);  // stale entries dropped, re-filled

  session.InvalidateCache();
  EXPECT_EQ(session.cache_size(), 0u);
}

TEST(SessionTest, FailedAddRelationDoesNotInvalidateCache) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  EXPECT_EQ(session.cache_size(), 1u);
  uint64_t generation = pdb.generation();

  // A duplicate relation is rejected and changes nothing: the generation
  // must not move, and the cached entry stays servable.
  Relation dup("R", Schema::Anonymous(1));
  ASSERT_TRUE(dup.AddTuple({Value(static_cast<int64_t>(1))}, 0.5).ok());
  EXPECT_FALSE(pdb.AddRelation(std::move(dup)).ok());
  EXPECT_EQ(pdb.generation(), generation);

  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  EXPECT_EQ(session.result_cache_hits(), 1u);
}

TEST(SessionTest, QueryWithAnswersHonorsDeadline) {
  // Head variable z comes from U, so every candidate's residual query
  // still contains the non-hierarchical (#P-hard) R-S-T core. With a
  // millisecond deadline each inner query must degrade to Monte Carlo via
  // the deadline (not by grinding through the full decision budget).
  Database db = HardDatabase(8);
  Relation u("U", Schema::Anonymous(1));
  ASSERT_TRUE(u.AddTuple({Value(static_cast<int64_t>(1))}, 0.9).ok());
  ASSERT_TRUE(u.AddTuple({Value(static_cast<int64_t>(2))}, 0.8).ok());
  ASSERT_TRUE(db.AddRelation(std::move(u)).ok());
  ProbDatabase pdb(std::move(db));
  ConjunctiveQuery cq({Atom("U", {Term::Var("z")}),
                       Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});
  Session session(&pdb, {.num_threads = 2});
  QueryOptions options;
  options.exec.num_threads = 2;
  options.exec.deadline_ms = 5;
  options.monte_carlo_samples = 2000;
  auto answers = session.QueryWithAnswers(cq, {"z"}, options);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  for (size_t i = 0; i < answers->size(); ++i) {
    EXPECT_GT(answers->prob(i), 0.0);
    EXPECT_LT(answers->prob(i), 1.0);
  }
  ExecReport total = session.CumulativeReport();
  // The deadline actually fired inside the inner queries (if it were
  // silently dropped, DPLL would instead exhaust the decision budget and
  // this flag would stay false).
  EXPECT_TRUE(total.deadline_exceeded);
  EXPECT_GT(total.samples_drawn, 0u);
}

TEST(SessionTest, ApproximateAnswersAreNotCached) {
  ProbDatabase pdb(HardDatabase(8));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions options;
  options.max_dpll_decisions = 100;  // force the Monte Carlo path
  options.monte_carlo_samples = 5000;
  auto answer = session.Query(kUnsafeQuery, options);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->exact);
  EXPECT_EQ(session.cache_size(), 0u);
}

TEST(SessionTest, CumulativeReportAggregatesAcrossQueries) {
  ProbDatabase pdb(HardDatabase(8));
  Session session(&pdb, {.num_threads = 1, .cache_results = false});
  QueryOptions mc;
  mc.max_dpll_decisions = 100;
  mc.monte_carlo_samples = 5000;
  auto sampled = session.Query(kUnsafeQuery, mc);
  ASSERT_TRUE(sampled.ok());
  ASSERT_GT(sampled->report.samples_drawn, 0u);

  auto lifted = session.Query(kSafeQuery);
  ASSERT_TRUE(lifted.ok());
  EXPECT_EQ(lifted->method, InferenceMethod::kLifted);
  // Per-query isolation: the lifted query drew no samples even though the
  // session as a whole did.
  EXPECT_EQ(lifted->report.samples_drawn, 0u);

  ExecReport total = session.CumulativeReport();
  EXPECT_EQ(total.samples_drawn, sampled->report.samples_drawn);
  EXPECT_EQ(session.queries_served(), 2u);
}

TEST(SessionTest, QueryWithAnswersMatchesPerQueryPath) {
  ProbDatabase pdb(HardDatabase(4));
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});
  Session session(&pdb, {.num_threads = 4});
  QueryOptions options;
  options.exec.num_threads = 4;
  auto direct = pdb.QueryWithAnswers(cq, {"x"}, options);
  auto via_session = session.QueryWithAnswers(cq, {"x"}, options);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_session.ok());
  ASSERT_EQ(direct->size(), via_session->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(direct->tuple(i), via_session->tuple(i));
    EXPECT_EQ(direct->prob(i), via_session->prob(i));
  }
}

// ---------------------------------------------------------------------------
// Concurrency stress: 8 client threads, one session (run under TSan in CI)
// ---------------------------------------------------------------------------

TEST(SessionStressTest, EightClientsShareOneSession) {
  ProbDatabase pdb(HardDatabase(4));
  QueryOptions exact;
  exact.exec.num_threads = 4;
  QueryOptions sampled = exact;
  sampled.max_dpll_decisions = 50;  // force Monte Carlo
  sampled.monte_carlo_samples = 4000;

  // Expected values, computed up front on a single thread. Every engine is
  // deterministic (Monte Carlo shards by sample count, not thread count),
  // so the concurrent answers must be bit-identical.
  auto expect_safe = pdb.Query(kSafeQuery, exact);
  auto expect_hard = pdb.Query(kUnsafeQuery, exact);
  auto expect_mc = pdb.Query(kUnsafeQuery, sampled);
  ASSERT_TRUE(expect_safe.ok());
  ASSERT_TRUE(expect_hard.ok());
  ASSERT_TRUE(expect_mc.ok());
  ASSERT_EQ(expect_safe->method, InferenceMethod::kLifted);
  ASSERT_EQ(expect_mc->method, InferenceMethod::kMonteCarlo);

  // Result cache off so every client query really executes (maximal
  // contention). The shared WMC cache is off too: it would let the
  // budget-starved "forced Monte Carlo" query finish exactly once another
  // client's exact run warmed it, which is the cache doing its job but not
  // what this test is about (SharedWmcCacheStress covers that setup).
  Session session(&pdb, {.num_threads = 4,
                         .cache_results = false,
                         .share_wmc_cache = false});
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        int kind = (c + q) % 3;
        auto check = [&](const QueryAnswer& expected, const char* text,
                         const QueryOptions& options,
                         bool expect_samples) {
          auto answer = session.Query(text, options);
          if (!answer.ok()) {
            errors[c] = answer.status().ToString();
            return;
          }
          if (answer->probability != expected.probability ||
              answer->method != expected.method) {
            errors[c] = "answer diverged from single-threaded expectation";
          }
          // Per-query report isolation: sampling counters must never bleed
          // from a concurrent Monte Carlo query into an exact one.
          if (expect_samples != (answer->report.samples_drawn > 0)) {
            errors[c] = "per-query ExecReport not isolated";
          }
        };
        if (kind == 0) {
          check(*expect_safe, kSafeQuery, exact, /*expect_samples=*/false);
        } else if (kind == 1) {
          check(*expect_hard, kUnsafeQuery, exact, /*expect_samples=*/false);
        } else {
          check(*expect_mc, kUnsafeQuery, sampled, /*expect_samples=*/true);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;

  EXPECT_EQ(session.queries_served(),
            static_cast<uint64_t>(kClients * kQueriesPerClient));
  ExecReport total = session.CumulativeReport();
  // 16 of the 48 client queries took the Monte Carlo path; all of their
  // samples (and only theirs) aggregate into the session report.
  uint64_t mc_queries = 0;
  for (int c = 0; c < kClients; ++c) {
    for (int q = 0; q < kQueriesPerClient; ++q) {
      if ((c + q) % 3 == 2) ++mc_queries;
    }
  }
  EXPECT_EQ(total.samples_drawn,
            mc_queries * expect_mc->report.samples_drawn);
}

TEST(SessionStressTest, ConcurrentCachedQueriesAgree) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 2});
  auto expected = pdb.Query(kUnsafeQuery);
  ASSERT_TRUE(expected.ok());
  constexpr int kClients = 8;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < 4; ++q) {
        auto answer = session.Query(kUnsafeQuery);
        if (!answer.ok()) {
          errors[c] = answer.status().ToString();
        } else if (answer->probability != expected->probability) {
          errors[c] = "cached answer diverged";
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;
  EXPECT_EQ(session.queries_served(), 32u);
  // At most a handful of misses before the cache takes over; every entry
  // keys the same sentence, so the cache holds exactly one result.
  EXPECT_EQ(session.cache_size(), 1u);
  EXPECT_GT(session.result_cache_hits(), 0u);
}

TEST(SessionTest, LruEvictionKeepsHotEntries) {
  // Four distinct safe queries against a 3-entry cache. The hot query is
  // re-touched after every one-off, so the LRU policy must evict the stale
  // one-offs and never the hot entry. (The pre-LRU cache simply stopped
  // inserting at capacity, so recency made no difference.)
  ProbDatabase pdb(HardDatabase(4));
  Session session(&pdb, {.num_threads = 1, .max_cache_entries = 3});
  const std::string hot = kSafeQuery;
  const std::vector<std::string> one_offs = {
      "R(x), S(x,y), T(y)", "S(x,y), T(y)", "R(x), T(y)", "S(x,y)"};
  ASSERT_TRUE(session.Query(hot).ok());
  for (const std::string& q : one_offs) {
    ASSERT_TRUE(session.Query(q).ok());
    ASSERT_TRUE(session.Query(hot).ok());  // keep the hot key most-recent
  }
  EXPECT_EQ(session.cache_size(), 3u);
  uint64_t hits_before = session.result_cache_hits();
  ASSERT_TRUE(session.Query(hot).ok());
  // The hot query survived all four evictions: this lookup is a pure hit.
  EXPECT_EQ(session.result_cache_hits(), hits_before + 1);
}

TEST(SessionTest, ZeroCapacityCacheNeverStoresResults) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1, .max_cache_entries = 0});
  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  EXPECT_EQ(session.cache_size(), 0u);
  EXPECT_EQ(session.result_cache_hits(), 0u);
}

TEST(SessionTest, SharedWmcCacheSpeedsUpRepeatsBitIdentically) {
  ProbDatabase pdb(HardDatabase(4));
  QueryOptions options;
  // Reference answer from a cache-less session.
  Session cold(&pdb, {.num_threads = 1,
                      .cache_results = false,
                      .share_wmc_cache = false});
  auto reference = cold.Query(kUnsafeQuery, options);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->exact);

  // Result cache off so the repeat really re-runs DPLL — against a warm
  // shared WMC cache.
  Session warm(&pdb, {.num_threads = 1, .cache_results = false});
  ASSERT_NE(warm.wmc_cache(), nullptr);
  auto first = warm.Query(kUnsafeQuery, options);
  auto second = warm.Query(kUnsafeQuery, options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Bit-identical to the cache-less run, cold or warm.
  EXPECT_EQ(first->probability, reference->probability);
  EXPECT_EQ(second->probability, reference->probability);
  // The repeat hit the shared cache (the top-level formula alone ensures
  // at least one hit) and the session-level stats saw it.
  EXPECT_GT(second->report.wmc_shared_hits, 0u);
  WmcCacheStats stats = warm.wmc_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_EQ(warm.CumulativeReport().wmc_shared_hits, stats.hits);
}

TEST(SessionTest, MutationInvalidatesSharedWmcCache) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1, .cache_results = false});
  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  ASSERT_GT(session.wmc_cache_stats().entries, 0u);

  // Explicit invalidation drops every shared-cache entry.
  session.InvalidateCache();
  EXPECT_EQ(session.wmc_cache_stats().entries, 0u);

  ASSERT_TRUE(session.Query(kUnsafeQuery).ok());
  size_t warm_entries = session.wmc_cache_stats().entries;
  ASSERT_GT(warm_entries, 0u);

  // A database mutation invalidates lazily: the first query after it must
  // start from an empty cache (same query, same lineage — without the drop
  // the entry count could only grow) and still answer exactly what a fresh
  // cache-less session answers on the mutated database.
  Relation extra("V", Schema::Anonymous(1));
  ASSERT_TRUE(extra.AddTuple({Value(static_cast<int64_t>(1))}, 0.5).ok());
  ASSERT_TRUE(pdb.AddRelation(std::move(extra)).ok());

  auto after = session.Query(kUnsafeQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(session.wmc_cache_stats().entries, warm_entries);
  Session fresh(&pdb, {.num_threads = 1,
                       .cache_results = false,
                       .share_wmc_cache = false});
  auto reference = fresh.Query(kUnsafeQuery);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(after->probability, reference->probability);
}

// ---------------------------------------------------------------------------
// Shared WMC cache stress: 8 clients hammering one sharded cache (TSan'd)
// ---------------------------------------------------------------------------

TEST(SessionStressTest, SharedWmcCacheStress) {
  ProbDatabase pdb(HardDatabase(4));
  QueryOptions exact;
  exact.exec.num_threads = 4;

  // Single-threaded expectations from a cache-less session: shared-cache
  // hits must be bit-identical, so every concurrent answer has to match.
  Session cold(&pdb, {.num_threads = 1,
                      .cache_results = false,
                      .share_wmc_cache = false});
  auto expect_safe = cold.Query(kSafeQuery, exact);
  auto expect_hard = cold.Query(kUnsafeQuery, exact);
  ASSERT_TRUE(expect_safe.ok());
  ASSERT_TRUE(expect_hard.ok());

  // Result cache off: every query re-runs inference, and all of them race
  // on the sharded WMC cache. A tiny byte budget keeps the CLOCK eviction
  // path exercised under contention as well.
  Session session(&pdb, {.num_threads = 4,
                         .cache_results = false,
                         .share_wmc_cache = true,
                         .wmc_cache_bytes = size_t{16} << 10,
                         .wmc_cache_shards = 4});
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        bool hard = (c + q) % 2 == 0;
        const QueryAnswer& expected = hard ? *expect_hard : *expect_safe;
        auto answer =
            session.Query(hard ? kUnsafeQuery : kSafeQuery, exact);
        if (!answer.ok()) {
          errors[c] = answer.status().ToString();
        } else if (answer->probability != expected.probability) {
          errors[c] = "shared-cache answer diverged from cache-less run";
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(errors[c], "") << "client " << c;

  // 24 of the 48 queries re-solved the same hard lineage; after the first,
  // each one starts from a shared-cache hit on the full formula.
  WmcCacheStats stats = session.wmc_cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
  EXPECT_LE(stats.bytes, size_t{16} << 10);
  ExecReport total = session.CumulativeReport();
  EXPECT_EQ(total.wmc_shared_hits, stats.hits);
  EXPECT_EQ(total.wmc_shared_misses, stats.misses);
}

}  // namespace
}  // namespace pdb
