#include <gtest/gtest.h>

#include "incomplete/incomplete.h"
#include "logic/parser.h"
#include "test_common.h"
#include "util/string_util.h"

namespace pdb {
namespace {

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

// R(1), R(?n); S(1, 2), S(?n, 3).
IncompleteDatabase SampleDb() {
  IncompleteDatabase db;
  CoddRelation r("R", Schema::Anonymous(1));
  PDB_CHECK(r.AddRow({CoddTerm::Const(Value(1))}).ok());
  PDB_CHECK(r.AddRow({CoddTerm::Null("n")}).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  CoddRelation s("S", Schema::Anonymous(2));
  PDB_CHECK(s.AddRow({CoddTerm::Const(Value(1)), CoddTerm::Const(Value(2))})
                .ok());
  PDB_CHECK(s.AddRow({CoddTerm::Null("n"), CoddTerm::Const(Value(3))}).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

std::vector<Value> Domain() {
  // Constants of the database plus fresh values (so enumeration covers
  // "null differs from everything" worlds).
  return {Value(1), Value(2), Value(3), Value(97), Value(98)};
}

TEST(CoddTest, RowValidation) {
  CoddRelation r("R", Schema::Anonymous(2));
  EXPECT_FALSE(r.AddRow({CoddTerm::Const(Value(1))}).ok());  // arity
  EXPECT_FALSE(
      r.AddRow({CoddTerm::Const(Value("x")), CoddTerm::Const(Value(1))})
          .ok());  // type
  EXPECT_TRUE(
      r.AddRow({CoddTerm::Null("a"), CoddTerm::Const(Value(1))}).ok());
}

TEST(IncompleteTest, InstantiateSubstitutesAndDeduplicates) {
  IncompleteDatabase db = SampleDb();
  auto world = db.Instantiate({{"n", Value(1)}});
  ASSERT_TRUE(world.ok());
  // R(1) and R(?n -> 1) collapse to one tuple.
  EXPECT_EQ((*world->Get("R"))->size(), 1u);
  EXPECT_TRUE((*world->Get("S"))->Contains({Value(1), Value(3)}));
  // Missing valuation entries are errors.
  EXPECT_FALSE(db.Instantiate({}).ok());
  // Wrong type is an error.
  EXPECT_FALSE(db.Instantiate({{"n", Value("oops")}}).ok());
}

TEST(IncompleteTest, CertainAnswers) {
  IncompleteDatabase db = SampleDb();
  // R(1) holds in every world.
  EXPECT_TRUE(*db.IsCertain(UcqOf("R(1)")));
  // Some S-tuple with first column 1 always exists.
  Ucq s1({ConjunctiveQuery(
      {Atom("S", {Term::Const(Value(1)), Term::Var("y")})})});
  EXPECT_TRUE(*db.IsCertain(s1));
  // R(x), S(x, y) is certain: x = 1 works in every world? S(1,2) and R(1)
  // are both constant rows, so yes.
  EXPECT_TRUE(*db.IsCertain(UcqOf("R(x), S(x,y)")));
  // S(2, 3) only holds when ?n = 2: possible but not certain.
  Ucq s23({ConjunctiveQuery(
      {Atom("S", {Term::Const(Value(2)), Term::Const(Value(3))})})});
  EXPECT_FALSE(*db.IsCertain(s23));
  EXPECT_TRUE(*db.IsPossible(s23, Domain()));
  // S(97, 97) holds in no world.
  Ucq nowhere({ConjunctiveQuery(
      {Atom("S", {Term::Const(Value(97)), Term::Const(Value(97))})})});
  EXPECT_FALSE(*db.IsCertain(nowhere));
  EXPECT_FALSE(*db.IsPossible(nowhere, Domain()));
}

TEST(IncompleteTest, NaiveEvaluationMatchesEnumeration) {
  IncompleteDatabase db = SampleDb();
  const char* queries[] = {
      "R(x)",
      "R(x), S(x,y)",
      "S(x, 3)",
      "S(x, y), R(y)",
      "R(2)",
  };
  for (const char* text : queries) {
    Ucq ucq = UcqOf(text);
    auto naive = db.IsCertain(ucq);
    auto enumerated = db.IsCertainByEnumeration(ucq, Domain());
    ASSERT_TRUE(naive.ok()) << text;
    ASSERT_TRUE(enumerated.ok()) << text;
    EXPECT_EQ(*naive, *enumerated) << text;
  }
}

TEST(IncompleteTest, SharedNullCorrelatesRows) {
  // ?n appears in R and S: worlds where R contains n also have S(n, 3) —
  // so "exists x (R(x) & S(x, 3))" is certain even though no constant row
  // witnesses it.
  IncompleteDatabase db = SampleDb();
  EXPECT_TRUE(*db.IsCertain(UcqOf("R(x), S(x, 3)")));
  EXPECT_TRUE(*db.IsCertainByEnumeration(UcqOf("R(x), S(x, 3)"), Domain()));
}

TEST(IncompleteTest, NoNullsDegeneratesToOrdinaryEvaluation) {
  IncompleteDatabase db;
  CoddRelation r("R", Schema::Anonymous(1));
  PDB_CHECK(r.AddRow({CoddTerm::Const(Value(5))}).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  EXPECT_TRUE(*db.IsCertain(UcqOf("R(5)")));
  EXPECT_FALSE(*db.IsCertain(UcqOf("R(6)")));
  EXPECT_EQ(db.NullLabels().size(), 0u);
}

TEST(IncompleteTest, EnumerationGuard) {
  IncompleteDatabase db;
  CoddRelation r("R", Schema::Anonymous(2));
  for (int i = 0; i < 12; ++i) {
    PDB_CHECK(r.AddRow({CoddTerm::Null(StrFormat("a%d", i)),
                        CoddTerm::Null(StrFormat("b%d", i))})
                  .ok());
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  EXPECT_EQ(db.IsCertainByEnumeration(UcqOf("R(x,y)"), Domain(), 1000)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  // Naive evaluation is unaffected by the blowup.
  EXPECT_TRUE(*db.IsCertain(UcqOf("R(x,y)")));
}

}  // namespace
}  // namespace pdb
