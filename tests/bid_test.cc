#include <gtest/gtest.h>

#include "bid/bid.h"
#include "logic/parser.h"
#include "test_common.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

// Sensor readings: per sensor (block key), the value is 40, 41 or missing.
BidDatabase SensorDb() {
  BidDatabase db;
  BidRelation reading("Reading", Schema::Anonymous(2), /*key_arity=*/1);
  PDB_CHECK(reading.AddTuple({Value(1), Value(40)}, 0.6).ok());
  PDB_CHECK(reading.AddTuple({Value(1), Value(41)}, 0.3).ok());
  PDB_CHECK(reading.AddTuple({Value(2), Value(40)}, 0.5).ok());
  PDB_CHECK(db.AddRelation(std::move(reading)).ok());
  return db;
}

TEST(BidRelationTest, BlockValidation) {
  BidRelation rel("R", Schema::Anonymous(2), 1);
  ASSERT_TRUE(rel.AddTuple({Value(1), Value(10)}, 0.6).ok());
  // Same block: total would exceed 1.
  EXPECT_EQ(rel.AddTuple({Value(1), Value(11)}, 0.5).code(),
            StatusCode::kInvalidArgument);
  // Fits within the block.
  EXPECT_TRUE(rel.AddTuple({Value(1), Value(11)}, 0.4).ok());
  // Other blocks are unaffected.
  EXPECT_TRUE(rel.AddTuple({Value(2), Value(10)}, 0.9).ok());
  // Bad probabilities and duplicates.
  EXPECT_FALSE(rel.AddTuple({Value(3), Value(1)}, 0.0).ok());
  EXPECT_FALSE(rel.AddTuple({Value(2), Value(10)}, 0.05).ok());
  EXPECT_EQ(rel.blocks().size(), 2u);
}

TEST(BidEncodingTest, MarginalsAndExclusivity) {
  BidDatabase db = SensorDb();
  FormulaManager mgr;
  auto encoding = BuildBidEncoding(db, &mgr);
  ASSERT_TRUE(encoding.ok());
  const auto& ind = encoding->indicators.at("Reading");
  // Marginal of each tuple equals its declared probability.
  EXPECT_NEAR(*EnumerateProbability(&mgr, ind[0], encoding->probs), 0.6,
              1e-12);
  EXPECT_NEAR(*EnumerateProbability(&mgr, ind[1], encoding->probs), 0.3,
              1e-12);
  EXPECT_NEAR(*EnumerateProbability(&mgr, ind[2], encoding->probs), 0.5,
              1e-12);
  // Tuples in one block are mutually exclusive.
  NodeId both = mgr.And(ind[0], ind[1]);
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, both, encoding->probs), 0.0);
  // Tuples in different blocks are independent.
  NodeId cross = mgr.And(ind[0], ind[2]);
  EXPECT_NEAR(*EnumerateProbability(&mgr, cross, encoding->probs), 0.6 * 0.5,
              1e-12);
}

TEST(BidQueryTest, SimpleClosedForms) {
  BidDatabase db = SensorDb();
  // P(some sensor reads 40) = 1 - (1-0.6)(1-0.5) = 0.8.
  auto p40 = db.QueryProbability(UcqOf("Reading(s, 40)"));
  ASSERT_TRUE(p40.ok());
  EXPECT_NEAR(*p40, 0.8, 1e-12);
  // P(sensor 1 reports anything) = 0.9.
  Ucq any1({ConjunctiveQuery(
      {Atom("Reading", {Term::Const(Value(1)), Term::Var("v")})})});
  EXPECT_NEAR(*db.QueryProbability(any1), 0.9, 1e-12);
  // Mutually exclusive values never co-occur.
  Ucq both({ConjunctiveQuery(
      {Atom("Reading", {Term::Const(Value(1)), Term::Const(Value(40))}),
       Atom("Reading", {Term::Const(Value(1)), Term::Const(Value(41))})})});
  EXPECT_NEAR(*db.QueryProbability(both), 0.0, 1e-12);
}

TEST(BidQueryTest, ChainEncodingMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 101);
    BidDatabase db;
    BidRelation r("R", Schema::Anonymous(2), 1);
    // Random blocks with random sub-probabilities.
    for (int64_t block = 1; block <= 3; ++block) {
      double residual = 1.0;
      size_t options = 1 + rng.Uniform(3);
      for (size_t o = 0; o < options; ++o) {
        double p = residual * (0.2 + 0.5 * rng.NextDouble());
        if (p <= 0.0) break;
        PDB_CHECK(r.AddTuple({Value(block),
                              Value(static_cast<int64_t>(10 + o))},
                             p)
                      .ok());
        residual -= p;
      }
    }
    PDB_CHECK(db.AddRelation(std::move(r)).ok());
    BidRelation t("T", Schema::Anonymous(1), 1);
    PDB_CHECK(t.AddTuple({Value(10)}, 0.5).ok());
    PDB_CHECK(t.AddTuple({Value(11)}, 0.7).ok());
    PDB_CHECK(db.AddRelation(std::move(t)).ok());
    const char* queries[] = {"R(b, v)", "R(b, v), T(v)",
                             "R(b, 10) ; R(b, 11)"};
    for (const char* text : queries) {
      Ucq ucq = UcqOf(text);
      auto fast = db.QueryProbability(ucq);
      auto brute = db.QueryProbabilityBruteForce(ucq);
      ASSERT_TRUE(fast.ok());
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(*fast, *brute, 1e-9)
          << text << " seed " << seed;
    }
  }
}

TEST(BidQueryTest, MarginalIndependenceBaselineIsWrong) {
  // Treating a BID table as tuple-independent overestimates disjunctions
  // within a block; the chain encoding fixes it.
  BidDatabase db = SensorDb();
  Ucq either = UcqOf("Reading(1, 40) ; Reading(1, 41)");
  double correct = *db.QueryProbability(either);
  EXPECT_NEAR(correct, 0.9, 1e-12);  // disjoint: 0.6 + 0.3
  // Independence baseline: 1 - 0.4*0.7 = 0.72... wait that's lower; the
  // point is they differ.
  double independent = 1.0 - (1.0 - 0.6) * (1.0 - 0.3);
  EXPECT_GT(std::abs(correct - independent), 0.01);
}

TEST(BidSamplingTest, WorldFrequenciesMatchBlockDistribution) {
  BidDatabase db = SensorDb();
  Rng rng(77);
  int count40 = 0, count41 = 0, count_none = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    Database world = db.SampleWorld(&rng);
    const Relation* r = *world.Get("Reading");
    bool has40 = r->Contains({Value(1), Value(40)});
    bool has41 = r->Contains({Value(1), Value(41)});
    EXPECT_FALSE(has40 && has41);  // exclusivity
    if (has40) ++count40;
    else if (has41) ++count41;
    else ++count_none;
  }
  EXPECT_NEAR(count40 / double(kTrials), 0.6, 0.02);
  EXPECT_NEAR(count41 / double(kTrials), 0.3, 0.02);
  EXPECT_NEAR(count_none / double(kTrials), 0.1, 0.02);
}

}  // namespace
}  // namespace pdb
