#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "exec/thread_pool.h"
#include "logic/parser.h"
#include "test_common.h"
#include "wmc/dpll.h"
#include "wmc/enumeration.h"
#include "wmc/montecarlo.h"
#include "wmc/weights.h"

namespace pdb {
namespace {

// Builds a random formula over `num_vars` variables.
NodeId RandomFormula(FormulaManager* mgr, size_t num_vars, size_t depth,
                     Rng* rng) {
  if (depth == 0 || rng->Bernoulli(0.3)) {
    NodeId leaf = mgr->Var(static_cast<VarId>(rng->Uniform(num_vars)));
    return rng->Bernoulli(0.3) ? mgr->Not(leaf) : leaf;
  }
  size_t fanin = 2 + rng->Uniform(3);
  std::vector<NodeId> kids;
  for (size_t i = 0; i < fanin; ++i) {
    kids.push_back(RandomFormula(mgr, num_vars, depth - 1, rng));
  }
  return rng->Bernoulli(0.5) ? mgr->And(std::move(kids))
                             : mgr->Or(std::move(kids));
}

std::vector<double> RandomProbs(size_t n, Rng* rng) {
  std::vector<double> probs(n, 0.5);
  if (rng != nullptr) {
    for (double& p : probs) p = rng->NextDouble();
  }
  return probs;
}

// ---------------------------------------------------------------------------
// Enumeration oracle sanity
// ---------------------------------------------------------------------------

TEST(EnumerationTest, SingleVariable) {
  FormulaManager mgr;
  NodeId x = mgr.Var(0);
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, x, {0.3}), 0.3);
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, mgr.Not(x), {0.3}), 0.7);
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, mgr.True(), {}), 1.0);
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, mgr.False(), {}), 0.0);
}

TEST(EnumerationTest, IndependentAndOr) {
  FormulaManager mgr;
  NodeId f = mgr.And(mgr.Var(0), mgr.Var(1));
  EXPECT_DOUBLE_EQ(*EnumerateProbability(&mgr, f, {0.5, 0.4}), 0.2);
  NodeId g = mgr.Or(mgr.Var(0), mgr.Var(1));
  EXPECT_NEAR(*EnumerateProbability(&mgr, g, {0.5, 0.4}), 0.7, 1e-12);
}

TEST(EnumerationTest, GuardsVariableCount) {
  FormulaManager mgr;
  std::vector<NodeId> vars;
  for (VarId v = 0; v < 40; ++v) vars.push_back(mgr.Var(v));
  NodeId f = mgr.Or(std::move(vars));
  EXPECT_EQ(EnumerateProbability(&mgr, f, RandomProbs(40, nullptr))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(EnumerationTest, ExactMatchesDouble) {
  FormulaManager mgr;
  Rng rng(5);
  NodeId f = RandomFormula(&mgr, 8, 3, &rng);
  std::vector<double> probs = RandomProbs(8, &rng);
  double approx = *EnumerateProbability(&mgr, f, probs);
  BigRational exact = *EnumerateProbabilityExact(&mgr, f, probs);
  EXPECT_NEAR(exact.ToDouble(), approx, 1e-9);
}

TEST(EnumerationTest, CountModels) {
  FormulaManager mgr;
  // x0 | x1 over 2 vars: 3 models.
  EXPECT_EQ(*CountModels(&mgr, mgr.Or(mgr.Var(0), mgr.Var(1))), BigInt(3));
  // Appendix Figure 3 formula: (x1|x2)&(x1|x3)&(x2|x3) has 4 models.
  NodeId f = mgr.And(std::vector<NodeId>{mgr.Or(mgr.Var(0), mgr.Var(1)),
                                         mgr.Or(mgr.Var(0), mgr.Var(2)),
                                         mgr.Or(mgr.Var(1), mgr.Var(2))});
  EXPECT_EQ(*CountModels(&mgr, f), BigInt(4));
}

// ---------------------------------------------------------------------------
// Appendix Figure 3: weights vs probabilities
// ---------------------------------------------------------------------------

TEST(WeightsTest, AppendixWeightProbabilityCorrespondence) {
  // weight(F) / Z == p(F) when p_i = w_i / (1 + w_i).
  FormulaManager mgr;
  NodeId f = mgr.And(std::vector<NodeId>{mgr.Or(mgr.Var(0), mgr.Var(1)),
                                         mgr.Or(mgr.Var(0), mgr.Var(2)),
                                         mgr.Or(mgr.Var(1), mgr.Var(2))});
  const double w1 = 0.5, w2 = 2.0, w3 = 3.0;
  // Weighted semantics: weight pairs (w_i, 1).
  WeightMap weights = {{w1, 1.0}, {w2, 1.0}, {w3, 1.0}};
  double weight_f = *EnumerateWmc(&mgr, f, weights);
  // Closed form from the appendix: w2w3 + w1w3 + w1w2 + w1w2w3.
  EXPECT_NEAR(weight_f, w2 * w3 + w1 * w3 + w1 * w2 + w1 * w2 * w3, 1e-12);
  double z = (1 + w1) * (1 + w2) * (1 + w3);
  std::vector<double> probs = {w1 / (1 + w1), w2 / (1 + w2), w3 / (1 + w3)};
  EXPECT_NEAR(weight_f / z, *EnumerateProbability(&mgr, f, probs), 1e-12);
}

// ---------------------------------------------------------------------------
// DPLL vs enumeration (property tests)
// ---------------------------------------------------------------------------

struct DpllCase {
  bool components;
  DpllHeuristic heuristic;
};

class DpllPropertyTest : public ::testing::TestWithParam<DpllCase> {};

TEST_P(DpllPropertyTest, MatchesEnumerationOnRandomFormulas) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    FormulaManager mgr;
    Rng rng(seed * 7919 + 13);
    NodeId f = RandomFormula(&mgr, 10, 3, &rng);
    std::vector<double> probs = RandomProbs(10, &rng);
    double expected = *EnumerateProbability(&mgr, f, probs);
    DpllOptions options;
    options.use_components = GetParam().components;
    options.heuristic = GetParam().heuristic;
    DpllCounter counter(&mgr, WeightsFromProbabilities(probs), options);
    auto got = counter.Compute(f);
    ASSERT_TRUE(got.ok());
    EXPECT_NEAR(*got, expected, 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DpllPropertyTest,
    ::testing::Values(DpllCase{true, DpllHeuristic::kMostOccurrences},
                      DpllCase{false, DpllHeuristic::kMostOccurrences},
                      DpllCase{true, DpllHeuristic::kLowestVar},
                      DpllCase{false, DpllHeuristic::kLowestVar}));

TEST(DpllTest, GeneralWeightsWithFreedVariables) {
  // f = x0 (x1 unconstrained). WMC relative to vars(f) must not include
  // x1; but cofactors that drop variables must reintroduce (w+w̄).
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.And(mgr.Var(0), mgr.Var(1)), mgr.Var(0));
  // Simplification does not fold this to x0 (no absorption rule), so the
  // counter must handle x1 disappearing in cofactors.
  WeightMap weights = {{2.0, 3.0}, {5.0, 7.0}};
  DpllCounter counter(&mgr, weights);
  // Models over {x0,x1}: (1,0): 2*7=14, (1,1): 2*5=10 -> 24.
  EXPECT_NEAR(*counter.Compute(f), 24.0, 1e-12);
}

TEST(DpllTest, SkolemWeightsCancel) {
  // With w(A) = 1, w̄(A) = -1: WMC(!phi | A) sums to 0 for assignments
  // where phi holds and A is unconstrained... verify on a tiny case:
  // F = !x0 | a. WMC over {x0, a} with w(x0)=p, w̄=1-p:
  //   x0=0: a free -> (1-p)*(1 + -1) = 0
  //   x0=1: a must be 1 -> p*1 = p
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.Not(mgr.Var(0)), mgr.Var(1));
  WeightMap weights = {{0.3, 0.7}, {1.0, -1.0}};
  DpllCounter counter(&mgr, weights);
  EXPECT_NEAR(*counter.Compute(f), 0.3, 1e-12);
}

TEST(DpllTest, DecisionLimit) {
  FormulaManager mgr;
  // The triangle CNF needs several Shannon expansions.
  NodeId f = mgr.And(std::vector<NodeId>{mgr.Or(mgr.Var(0), mgr.Var(1)),
                                         mgr.Or(mgr.Var(0), mgr.Var(2)),
                                         mgr.Or(mgr.Var(1), mgr.Var(2))});
  DpllOptions options;
  options.max_decisions = 1;
  DpllCounter counter(&mgr, WeightsFromProbabilities(RandomProbs(3, nullptr)),
                      options);
  EXPECT_EQ(counter.Compute(f).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DpllTest, StatsArePopulated) {
  FormulaManager mgr;
  // Two independent conjuncts force a component split.
  NodeId f = mgr.And(mgr.Or(mgr.Var(0), mgr.Var(1)),
                     mgr.Or(mgr.Var(2), mgr.Var(3)));
  DpllCounter counter(&mgr, WeightsFromProbabilities(RandomProbs(4, nullptr)));
  ASSERT_TRUE(counter.Compute(f).ok());
  EXPECT_GE(counter.stats().component_splits, 1u);
  EXPECT_GE(counter.stats().decisions, 2u);
}

// ---------------------------------------------------------------------------
// Monte Carlo
// ---------------------------------------------------------------------------

TEST(MonteCarloTest, NaiveConverges) {
  FormulaManager mgr;
  Rng formula_rng(21);
  NodeId f = RandomFormula(&mgr, 10, 3, &formula_rng);
  std::vector<double> probs = RandomProbs(10, &formula_rng);
  double expected = *EnumerateProbability(&mgr, f, probs);
  Rng rng(1234);
  Estimate est = NaiveMonteCarlo(&mgr, f, probs, 200000, &rng);
  EXPECT_NEAR(est.value, expected, 5 * est.std_error + 1e-6);
  EXPECT_LT(est.std_error, 0.005);
}

TEST(MonteCarloTest, KarpLubyConverges) {
  // DNF from the H0 lineage on a small random TID.
  Database db;
  Rng gen(5);
  testing::AddRandomRelation(&db, "R", 1, &gen);
  testing::AddRandomRelation(&db, "S", 2, &gen);
  testing::AddRandomRelation(&db, "T", 1, &gen);
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y), T(y)"));
  auto dnf = BuildUcqDnf(*ucq, db);
  ASSERT_TRUE(dnf.ok());
  if (dnf->terms.empty()) GTEST_SKIP() << "degenerate random instance";
  // Exact reference via formula enumeration.
  FormulaManager mgr;
  std::vector<NodeId> terms;
  for (const auto& term : dnf->terms) {
    std::vector<NodeId> lits;
    for (VarId v : term) lits.push_back(mgr.Var(v));
    terms.push_back(mgr.And(std::move(lits)));
  }
  NodeId f = mgr.Or(std::move(terms));
  double expected = *EnumerateProbability(&mgr, f, dnf->probs);
  Rng rng(99);
  auto est = KarpLubyDnf(dnf->terms, dnf->probs, 200000, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->value, expected, 5 * est->std_error + 1e-6);
}

TEST(MonteCarloTest, KarpLubyEdgeCases) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(KarpLubyDnf({}, {}, 100, &rng)->value, 0.0);
  // All-zero probabilities.
  EXPECT_DOUBLE_EQ(KarpLubyDnf({{0}}, {0.0}, 100, &rng)->value, 0.0);
  // Certain single term.
  EXPECT_DOUBLE_EQ(KarpLubyDnf({{0}}, {1.0}, 100, &rng)->value, 1.0);
  // Variable out of range.
  EXPECT_FALSE(KarpLubyDnf({{5}}, {0.5}, 10, &rng).ok());
}

TEST(MonteCarloTest, AdaptiveKarpLubyStopsEarlyAtTargetStdError) {
  // Two overlapping terms over three variables: nonzero variance, so the
  // standard error shrinks as 1/sqrt(n) and a loose target must be reached
  // long before the full budget.
  std::vector<std::vector<VarId>> terms = {{0, 1}, {1, 2}};
  std::vector<double> probs = {0.4, 0.5, 0.6};
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.And(mgr.Var(0), mgr.Var(1)),
                    mgr.And(mgr.Var(1), mgr.Var(2)));
  double expected = *EnumerateProbability(&mgr, f, probs);

  AdaptiveSampleOptions options;
  options.max_samples = 1u << 20;
  options.batch_samples = 2000;
  options.target_std_error = 0.01;
  Rng rng(7);
  auto est = KarpLubyDnfAdaptive(terms, probs, options, &rng);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est->samples, options.max_samples);
  EXPECT_GE(est->samples, 2u * options.batch_samples);  // min_batches = 2
  EXPECT_LE(est->std_error, options.target_std_error);
  EXPECT_NEAR(est->value, expected, 5 * est->std_error + 1e-6);
}

TEST(MonteCarloTest, AdaptiveKarpLubyFullRunIsThreadCountInvariant) {
  std::vector<std::vector<VarId>> terms = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<double> probs = {0.3, 0.5, 0.7};
  AdaptiveSampleOptions options;
  options.max_samples = 40000;
  options.batch_samples = 9000;  // uneven tail batch on purpose
  // target_std_error = 0: no early stop, the full budget is drawn.

  Rng seq_rng(42);
  auto sequential = KarpLubyDnfAdaptive(terms, probs, options, &seq_rng);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(sequential->samples, options.max_samples);

  ThreadPool pool(4);
  ExecContext ctx(&pool);
  Rng par_rng(42);
  auto parallel = KarpLubyDnfAdaptive(terms, probs, options, &par_rng, &ctx);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->value, sequential->value);
  EXPECT_EQ(parallel->std_error, sequential->std_error);
  EXPECT_EQ(parallel->samples, sequential->samples);
}

TEST(MonteCarloTest, AdaptiveKarpLubyEdgeCases) {
  Rng rng(3);
  AdaptiveSampleOptions options;
  options.max_samples = 1000;
  EXPECT_DOUBLE_EQ(KarpLubyDnfAdaptive({}, {}, options, &rng)->value, 0.0);
  EXPECT_DOUBLE_EQ(
      KarpLubyDnfAdaptive({{0}}, {0.0}, options, &rng)->value, 0.0);
  auto certain = KarpLubyDnfAdaptive({{0}}, {1.0}, options, &rng);
  EXPECT_DOUBLE_EQ(certain->value, 1.0);
  EXPECT_EQ(certain->samples, options.max_samples);
  EXPECT_FALSE(KarpLubyDnfAdaptive({{5}}, {0.5}, options, &rng).ok());
}

}  // namespace
}  // namespace pdb
