#include <gtest/gtest.h>

#include "logic/analysis.h"
#include "logic/containment.h"
#include "logic/cq.h"
#include "logic/fo.h"
#include "logic/parser.h"
#include "test_common.h"

namespace pdb {
namespace {

Result<FoPtr> Parse(const std::string& text) { return ParseFo(text); }

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesExample21) {
  auto q = Parse("forall x forall y (S(x,y) => R(x))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->kind(), FoKind::kForall);
  EXPECT_EQ((*q)->ToString(), "forall x forall y (!S(x, y) | R(x))");
}

TEST(ParserTest, ParsesQuantifierVariableLists) {
  // A variable list before a parenthesized body needs the dot separator.
  auto q = Parse("forall x y . (S(x,y) => R(x))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToString(), "forall x forall y (!S(x, y) | R(x))");
}

TEST(ParserTest, QuantifierDirectlyOverAtom) {
  auto q = Parse("exists x R(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToString(), "exists x R(x)");
}

TEST(ParserTest, ParsesConstants) {
  auto q = Parse("exists y S('a1', y) & R(7)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->FreeVariables().size(), 0u);
}

TEST(ParserTest, PrecedenceAndOverOr) {
  auto q = Parse("R(1) | S(1,1) & T(1)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->kind(), FoKind::kOr);
}

TEST(ParserTest, Implication) {
  auto q = Parse("R(1) => S(1,1) => T(1)");  // right-associative
  ASSERT_TRUE(q.ok());
  // a => (b => c) == !a | (!b | c), flattened by Or.
  EXPECT_EQ((*q)->ToString(), "(!R(1) | !S(1, 1) | T(1))");
}

TEST(ParserTest, Iff) {
  auto q = Parse("R(1) <=> T(1)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->kind(), FoKind::kOr);  // (a&b) | (!a&!b)
}

TEST(ParserTest, WordConnectives) {
  auto q = Parse("not R(1) and (S(1,2) or T(2))");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->kind(), FoKind::kAnd);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("R(").ok());
  EXPECT_FALSE(Parse("forall (R(x))").ok());
  EXPECT_FALSE(Parse("R(x) &").ok());
  EXPECT_FALSE(Parse("R(x) R(y)").ok());
  EXPECT_FALSE(Parse("R('unterminated)").ok());
  EXPECT_FALSE(Parse("R(x) = S(x)").ok());
}

TEST(ParserTest, UcqShorthand) {
  auto q = ParseUcqShorthand("R(x), S(x,y) ; T(u), S(u,v)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->FreeVariables().empty());
  auto ucq = FoToUcq(*q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 2u);
  EXPECT_EQ(ucq->disjuncts()[0].size(), 2u);
}

// ---------------------------------------------------------------------------
// Transformations
// ---------------------------------------------------------------------------

TEST(FoTest, NnfPushesNegation) {
  auto q = Parse("!(exists x (R(x) & !T(x)))");
  ASSERT_TRUE(q.ok());
  FoPtr nnf = ToNnf(*q);
  EXPECT_EQ(nnf->ToString(), "forall x (!R(x) | T(x))");
}

TEST(FoTest, DoubleNegationCollapses) {
  auto q = Parse("!!R(1)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToString(), "R(1)");
}

TEST(FoTest, DualSwapsEverything) {
  auto q = Parse("forall x forall y (R(x) | S(x,y) | T(y))");
  auto dual = DualQuery(*q);
  ASSERT_TRUE(dual.ok());
  EXPECT_EQ((*dual)->ToString(),
            "exists x exists y (R(x) & S(x, y) & T(y))");
  // Dual of the dual is the original.
  auto back = DualQuery(*dual);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(StructurallyEqual(*back, *q));
}

TEST(FoTest, DualRejectsNegation) {
  auto q = Parse("!R(1)");
  EXPECT_FALSE(DualQuery(*q).ok());
}

TEST(FoTest, SubstituteAndRename) {
  auto q = Parse("exists y S(x, y)");
  FoPtr grounded = Substitute(*q, "x", Value("a1"));
  EXPECT_TRUE(grounded->FreeVariables().empty());
  FoPtr renamed = RenameVariable(*q, "x", "z");
  EXPECT_EQ(renamed->FreeVariables(), std::set<std::string>{"z"});
  // The bound variable is untouched (and shadowing is respected).
  FoPtr shadow = Substitute(*q, "y", Value("b"));
  EXPECT_TRUE(StructurallyEqual(shadow, *q));
}

TEST(FoTest, EvaluateOnWorld) {
  Database world = testing::BuildFigure1Database();  // probs ignored
  std::vector<Value> domain = world.ActiveDomain();
  auto q1 = Parse("exists x (R(x))");
  EXPECT_TRUE(EvaluateOnWorld(*q1, world, domain));
  auto q2 = Parse("forall x forall y (S(x,y) => R(x))");
  // S(a4, b6) present but R(a4) absent: constraint fails.
  EXPECT_FALSE(EvaluateOnWorld(*q2, world, domain));
  auto q3 = Parse("exists x exists y (R(x) & S(x,y))");
  EXPECT_TRUE(EvaluateOnWorld(*q3, world, domain));
}

TEST(FoTest, EmptyDomainQuantifierSemantics) {
  Database empty_world;
  PDB_CHECK(empty_world.CreateRelation("R", Schema::Anonymous(1)).ok());
  std::vector<Value> empty_domain;
  // Vacuous truth / falsity over the empty domain.
  EXPECT_TRUE(EvaluateOnWorld(*Parse("forall x R(x)"), empty_world,
                              empty_domain));
  EXPECT_FALSE(EvaluateOnWorld(*Parse("exists x R(x)"), empty_world,
                               empty_domain));
}

TEST(FoTest, NestedShadowingInStandardizeApart) {
  // exists x (R(x) & exists x T(x)): the inner x shadows the outer one.
  auto q = Parse("exists x (R(x) & exists x T(x))");
  ASSERT_TRUE(q.ok());
  FoPtr apart = StandardizeApart(*q);
  auto ucq = FoToUcq(*q);
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  // Two distinct variables: R's argument and T's argument must differ.
  const auto& atoms = ucq->disjuncts()[0].atoms();
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_NE(atoms[0].args[0], atoms[1].args[0]);
}

TEST(FoTest, IffSemanticsOnWorlds) {
  Database world;
  Relation r("R", Schema::Anonymous(1));
  Relation t("T", Schema::Anonymous(1));
  PDB_CHECK(r.AddTuple({Value(1)}, 1.0).ok());
  PDB_CHECK(t.AddTuple({Value(2)}, 1.0).ok());
  PDB_CHECK(world.AddRelation(std::move(r)).ok());
  PDB_CHECK(world.AddRelation(std::move(t)).ok());
  std::vector<Value> domain = {Value(1), Value(2)};
  // R(1) <=> T(2): both true.
  EXPECT_TRUE(EvaluateOnWorld(*Parse("R(1) <=> T(2)"), world, domain));
  // R(2) <=> T(1): both false.
  EXPECT_TRUE(EvaluateOnWorld(*Parse("R(2) <=> T(1)"), world, domain));
  // R(1) <=> T(1): true vs false.
  EXPECT_FALSE(EvaluateOnWorld(*Parse("R(1) <=> T(1)"), world, domain));
}

// ---------------------------------------------------------------------------
// UCQ conversion
// ---------------------------------------------------------------------------

TEST(CqTest, FoToUcqDistributes) {
  auto q = Parse("exists x ((R(x) | T(x)) & exists y S(x,y))");
  auto ucq = FoToUcq(*q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 2u);  // R&S | T&S
  for (const auto& cq : ucq->disjuncts()) EXPECT_EQ(cq.size(), 2u);
}

TEST(CqTest, FoToUcqStandardizesApart) {
  auto q = Parse("(exists x R(x)) & (exists x T(x))");
  auto ucq = FoToUcq(*q);
  ASSERT_TRUE(ucq.ok());
  ASSERT_EQ(ucq->size(), 1u);
  // The two x's must not be unified.
  EXPECT_EQ(ucq->disjuncts()[0].Variables().size(), 2u);
}

TEST(CqTest, FoToUcqRejectsForallAndNegation) {
  EXPECT_FALSE(FoToUcq(*Parse("forall x R(x)")).ok());
  EXPECT_FALSE(FoToUcq(*Parse("exists x !R(x)")).ok());
  EXPECT_FALSE(FoToUcq(*Parse("R(x)")).ok());  // free variable
}

TEST(CqTest, RenameAndSubstitute) {
  ConjunctiveQuery cq(
      {Atom("R", {Term::Var("x")}), Atom("S", {Term::Var("x"), Term::Var("y")})});
  ConjunctiveQuery renamed = cq.RenameVariables("_1");
  EXPECT_EQ(renamed.Variables(), (std::set<std::string>{"x_1", "y_1"}));
  ConjunctiveQuery grounded = cq.Substitute("x", Value(5));
  EXPECT_EQ(grounded.Variables(), std::set<std::string>{"y"});
}

// ---------------------------------------------------------------------------
// Analysis: hierarchy, roots, components, separators
// ---------------------------------------------------------------------------

ConjunctiveQuery CqOf(const std::string& shorthand) {
  auto fo = ParseUcqShorthand(shorthand);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  PDB_CHECK(ucq->size() == 1);
  return ucq->disjuncts()[0];
}

Ucq UcqOf(const std::string& shorthand) {
  auto fo = ParseUcqShorthand(shorthand);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

TEST(AnalysisTest, HierarchicalExamples) {
  EXPECT_TRUE(IsHierarchical(CqOf("R(x), S(x,y)")));
  EXPECT_FALSE(IsHierarchical(CqOf("R(x), S(x,y), T(y)")));  // H0's CQ
  EXPECT_TRUE(IsHierarchical(CqOf("R(x), S(x,y), U(x,y)")));
  EXPECT_TRUE(IsHierarchical(CqOf("R(x), T(y)")));  // disjoint at() sets
  // Q_J is hierarchical per Definition 4.2 (x,y vs u,v are disjoint).
  EXPECT_TRUE(IsHierarchical(CqOf("R(x), S(x,y), T(u), S2(u,v)")));
}

TEST(AnalysisTest, RootVariables) {
  // Built directly so variable names are stable (FoToUcq renames apart).
  Term x = Term::Var("x"), y = Term::Var("y");
  ConjunctiveQuery rs({Atom("R", {x}), Atom("S", {x, y})});
  EXPECT_EQ(RootVariables(rs), std::set<std::string>{"x"});
  ConjunctiveQuery h0({Atom("R", {x}), Atom("S", {x, y}), Atom("T", {y})});
  EXPECT_TRUE(RootVariables(h0).empty());
  ConjunctiveQuery s_only({Atom("S", {x, y})});
  EXPECT_EQ(RootVariables(s_only), (std::set<std::string>{"x", "y"}));
}

TEST(AnalysisTest, ConnectedComponents) {
  auto components = VariableConnectedComponents(CqOf("R(x), S(x,y), T(u)"));
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 2u);
  EXPECT_EQ(components[1].size(), 1u);
  // Ground atoms are singletons.
  ConjunctiveQuery with_ground({Atom("R", {Term::Const(Value(1))}),
                                Atom("S", {Term::Var("x"), Term::Var("y")})});
  EXPECT_EQ(VariableConnectedComponents(with_ground).size(), 2u);
}

TEST(AnalysisTest, GroupBySharedSymbols) {
  std::vector<std::set<std::string>> sets = {
      {"R", "S"}, {"T"}, {"S", "U"}, {"V"}};
  auto groups = GroupBySharedSymbols(sets);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{1}));
  EXPECT_EQ(groups[2], (std::vector<size_t>{3}));
}

TEST(AnalysisTest, SeparatorSimple) {
  Term x = Term::Var("x"), y = Term::Var("y");
  Ucq ucq({ConjunctiveQuery({Atom("R", {x}), Atom("S", {x, y})})});
  auto sep = FindSeparator(ucq);
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ((*sep)[0], "x");
}

TEST(AnalysisTest, SeparatorAcrossDisjuncts) {
  // Dual-of-Q_J style union: roots x and u, S-position 0 in both.
  Term x = Term::Var("x"), y = Term::Var("y");
  Term u = Term::Var("u"), v = Term::Var("v");
  Ucq ucq({ConjunctiveQuery({Atom("R", {x}), Atom("S", {x, y})}),
           ConjunctiveQuery({Atom("T", {u}), Atom("S", {u, v})})});
  auto sep = FindSeparator(ucq);
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ((*sep)[0], "x");
  EXPECT_EQ((*sep)[1], "u");
}

TEST(AnalysisTest, NoSeparatorForH0Union) {
  // H0-hard union: S carries its root at position 0 in one disjunct and
  // position 1 in the other.
  EXPECT_FALSE(FindSeparator(UcqOf("R(x), S(x,y) ; S(x,y), T(y)")).has_value());
}

TEST(AnalysisTest, NoSeparatorWithNonRootAtom) {
  EXPECT_FALSE(FindSeparator(UcqOf("R(x), S(x,y), T(y)")).has_value());
}

TEST(AnalysisTest, SeparatorWithSelfJoin) {
  // S(x,y) & S(x,z): x is a separator even with the self-join.
  Term x = Term::Var("x"), y = Term::Var("y"), z = Term::Var("z");
  Ucq with_sep({ConjunctiveQuery({Atom("S", {x, y}), Atom("S", {x, z})})});
  auto sep = FindSeparator(with_sep);
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ((*sep)[0], "x");
  // S(x,y) & S(y,x): no consistent position.
  Ucq no_sep({ConjunctiveQuery({Atom("S", {x, y}), Atom("S", {y, x})})});
  EXPECT_FALSE(FindSeparator(no_sep).has_value());
}

// ---------------------------------------------------------------------------
// Unateness and rewriting
// ---------------------------------------------------------------------------

TEST(AnalysisTest, Polarities) {
  auto q = Parse("forall x ((R(x) => S(x)) & (R(x) => T(x)))");
  auto pol = PredicatePolarities(ToNnf(*q));
  EXPECT_TRUE(pol["R"].negative);
  EXPECT_FALSE(pol["R"].positive);
  EXPECT_TRUE(pol["S"].positive);
  EXPECT_TRUE(IsUnate(*q));
  auto non_unate = Parse("forall x ((R(x) => S(x)) & (S(x) => T(x)))");
  EXPECT_FALSE(IsUnate(*non_unate));
}

TEST(AnalysisTest, ComplementRelation) {
  Database db = testing::BuildFigure1Database();
  std::vector<Value> domain = db.ActiveDomain();
  auto complement = ComplementRelation(**db.Get("R"), domain, 1000);
  ASSERT_TRUE(complement.ok());
  EXPECT_EQ(complement->name(), "R__c");
  EXPECT_EQ(complement->size(), 10u);  // full active domain
  EXPECT_DOUBLE_EQ(complement->ProbOf({Value("a1")}), 1.0 - 0.3);
  EXPECT_DOUBLE_EQ(complement->ProbOf({Value("a4")}), 1.0);  // not in R
  // Guard fires when the complement is too large.
  EXPECT_EQ(ComplementRelation(**db.Get("S"), domain, 10).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(AnalysisTest, RewriteUnateUniversal) {
  Database db = testing::BuildFigure1Database();
  auto q = Parse("forall x forall y (S(x,y) => R(x))");
  auto rewrite = RewriteUnateForUcq(*q, db);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(rewrite->complemented);
  ASSERT_EQ(rewrite->ucq.size(), 1u);
  // Negation of the constraint: exists x y (S(x,y) & !R(x)).
  EXPECT_EQ(rewrite->ucq.disjuncts()[0].Predicates(),
            (std::set<std::string>{"R__c", "S"}));
  EXPECT_TRUE(rewrite->database.HasRelation("R__c"));
}

TEST(AnalysisTest, RewriteRejectsMixedAndNonUnate) {
  Database db = testing::BuildFigure1Database();
  EXPECT_EQ(RewriteUnateForUcq(*Parse("forall x exists y S(x,y)"), db)
                .status()
                .code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(
      RewriteUnateForUcq(
          *Parse("forall x ((R(x) => S(x,x)) & (S(x,x) => R(x)))"), db)
          .status()
          .code(),
      StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Containment / canonicalization
// ---------------------------------------------------------------------------

TEST(ContainmentTest, HomomorphismBasics) {
  // R(x),S(x,y) maps into R(a),S(a,b) style queries and vice versa.
  ConjunctiveQuery general = CqOf("S(x,y)");
  ConjunctiveQuery specific(
      {Atom("S", {Term::Var("u"), Term::Var("u")})});  // S(u,u)
  EXPECT_TRUE(HasHomomorphism(general, specific));   // x,y -> u,u
  EXPECT_FALSE(HasHomomorphism(specific, general));  // u -> x=y impossible
}

TEST(ContainmentTest, ImplicationDirection) {
  ConjunctiveQuery strong = CqOf("R(x), S(x,y)");
  ConjunctiveQuery weak = CqOf("S(x,y)");
  EXPECT_TRUE(CqImplies(strong, weak));
  EXPECT_FALSE(CqImplies(weak, strong));
}

TEST(ContainmentTest, EquivalenceUpToRenamingAndRedundancy) {
  ConjunctiveQuery a = CqOf("S(x,y)");
  ConjunctiveQuery b = CqOf("S(u,v), S(u,w)");  // w redundant copy
  EXPECT_TRUE(CqEquivalent(a, b));
}

TEST(ContainmentTest, MinimizeRemovesRedundantAtoms) {
  ConjunctiveQuery q = CqOf("S(u,v), S(u,w)");
  ConjunctiveQuery core = MinimizeCq(q);
  EXPECT_EQ(core.size(), 1u);
  // A non-redundant self-join stays.
  ConjunctiveQuery path = CqOf("S(x,y), S(y,z)");
  EXPECT_EQ(MinimizeCq(path).size(), 2u);
}

TEST(ContainmentTest, CanonicalStringIdentifiesEquivalents) {
  EXPECT_EQ(CanonicalCqString(CqOf("R(a), S(a,b)")),
            CanonicalCqString(CqOf("R(u), S(u,w)")));
  EXPECT_EQ(CanonicalCqString(CqOf("S(x,y)")),
            CanonicalCqString(CqOf("S(u,v), S(u,w)")));
  EXPECT_NE(CanonicalCqString(CqOf("S(x,y), S(y,z)")),
            CanonicalCqString(CqOf("S(x,y)")));
}

TEST(ContainmentTest, CanonicalStringWithConstants) {
  ConjunctiveQuery a({Atom("R", {Term::Const(Value(1)), Term::Var("x")})});
  ConjunctiveQuery b({Atom("R", {Term::Const(Value(1)), Term::Var("z")})});
  ConjunctiveQuery c({Atom("R", {Term::Const(Value(2)), Term::Var("z")})});
  EXPECT_EQ(CanonicalCqString(a), CanonicalCqString(b));
  EXPECT_NE(CanonicalCqString(a), CanonicalCqString(c));
}

}  // namespace
}  // namespace pdb
