/// \file lineage_test.cc
/// \brief The compiled CQ grounding engine: differential equivalence with
/// the reference matcher (all join orders, all atom permutations), bit-exact
/// parallel lineage construction, and the session index cache under
/// concurrency.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "boolean/lineage.h"
#include "core/session.h"
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "storage/columnar.h"
#include "storage/index_cache.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

using pdb::testing::AddRandomRelation;
using pdb::testing::RandomCq;
using pdb::testing::RandomTidOptions;
using pdb::testing::RandomUcq;
using pdb::testing::RandomVocabularyDb;

/// Flattened match list: (relation, row) per atom, in emission order.
using MatchList = std::vector<std::vector<std::pair<std::string, size_t>>>;

MatchList Collect(const ConjunctiveQuery& cq, const Database& db,
                  const GroundingOptions& options) {
  MatchList out;
  Status st = EnumerateCqMatches(
      cq, db,
      [&](const CqMatch& match) {
        std::vector<std::pair<std::string, size_t>> rows;
        for (const LineageVar& lv : match.atom_rows) {
          rows.emplace_back(lv.relation, lv.row);
        }
        out.push_back(std::move(rows));
      },
      options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

MatchList CollectReference(const ConjunctiveQuery& cq, const Database& db) {
  MatchList out;
  Status st = EnumerateCqMatchesReference(cq, db, [&](const CqMatch& match) {
    std::vector<std::pair<std::string, size_t>> rows;
    for (const LineageVar& lv : match.atom_rows) {
      rows.emplace_back(lv.relation, lv.row);
    }
    out.push_back(std::move(rows));
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

// 200 random (database, CQ) cases: the compiled engine must reproduce the
// reference matcher's match list exactly — same matches, same order — under
// both join-order policies.
TEST(CompiledGrounding, MatchesReferenceOnRandomCases) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 7919 + 17);
    Database db = RandomVocabularyDb(&rng);
    ConjunctiveQuery cq = RandomCq(&rng);
    MatchList expected = CollectReference(cq, db);
    GroundingOptions cost_based;
    cost_based.order = AtomOrderPolicy::kCostBased;
    GroundingOptions syntactic;
    syntactic.order = AtomOrderPolicy::kSyntactic;
    EXPECT_EQ(Collect(cq, db, cost_based), expected)
        << "seed " << seed << " cq " << cq.ToString();
    EXPECT_EQ(Collect(cq, db, syntactic), expected)
        << "seed " << seed << " cq " << cq.ToString();
  }
}

// Every permutation of a sample query's atoms agrees with the reference on
// the permuted query — the canonical match order is a property of the atom
// list as written, whatever order the engine joins in.
TEST(CompiledGrounding, AllAtomPermutationsMatchReference) {
  Rng rng(42);
  Database db = RandomVocabularyDb(&rng);
  std::vector<Atom> atoms = {
      Atom("R", {Term::Var("x")}),
      Atom("S", {Term::Var("x"), Term::Var("y")}),
      Atom("U", {Term::Var("y"), Term::Var("z")}),
      Atom("T", {Term::Var("z")}),
  };
  std::vector<size_t> perm = {0, 1, 2, 3};
  do {
    std::vector<Atom> permuted;
    for (size_t i : perm) permuted.push_back(atoms[i]);
    ConjunctiveQuery cq(permuted);
    EXPECT_EQ(Collect(cq, db, GroundingOptions{}), CollectReference(cq, db))
        << cq.ToString();
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(CompiledGrounding, EmptyCqYieldsOneEmptyMatch) {
  Rng rng(1);
  Database db = RandomVocabularyDb(&rng);
  ConjunctiveQuery cq;
  MatchList matches = Collect(cq, db, GroundingOptions{});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].empty());
  EXPECT_EQ(matches, CollectReference(cq, db));
}

TEST(CompiledGrounding, ReportsMissingRelationAndArityMismatch) {
  Rng rng(2);
  Database db = RandomVocabularyDb(&rng);
  ConjunctiveQuery missing({Atom("Nope", {Term::Var("x")})});
  EXPECT_FALSE(
      EnumerateCqMatches(missing, db, [](const CqMatch&) {}).ok());
  ConjunctiveQuery arity({Atom("S", {Term::Var("x")})});
  Status st = EnumerateCqMatches(arity, db, [](const CqMatch&) {});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("arity mismatch"), std::string::npos);
}

// 200 random (database, CQ) cases through the vectorized columnar
// executor, forced on regardless of relation size: the match stream must
// equal the reference matcher's exactly — same matches, same order — under
// both join-order policies, and agree with the row path forced off on the
// same cases. This is the oracle for the dictionary encoding, the code
// translation tables, and the batch candidate filters.
TEST(ColumnarGrounding, MatchesReferenceOnRandomCases) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed * 6151 + 3);
    Database db = RandomVocabularyDb(&rng);
    ConjunctiveQuery cq = RandomCq(&rng);
    MatchList expected = CollectReference(cq, db);
    for (AtomOrderPolicy policy :
         {AtomOrderPolicy::kCostBased, AtomOrderPolicy::kSyntactic}) {
      GroundingOptions columnar;
      columnar.order = policy;
      columnar.columnar = ColumnarMode::kAlways;
      GroundingOptions row;
      row.order = policy;
      row.columnar = ColumnarMode::kNever;
      EXPECT_EQ(Collect(cq, db, columnar), expected)
          << "seed " << seed << " cq " << cq.ToString();
      EXPECT_EQ(Collect(cq, db, row), expected)
          << "seed " << seed << " cq " << cq.ToString();
    }
  }
}

/// A chain TID big enough to clear both parallel thresholds.
Database BigChainDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1, ValueType::kInt));
  Relation s("S", Schema::Anonymous(2, ValueType::kInt));
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))},
                         0.1 + 0.8 * rng.NextDouble())
                  .ok());
    for (size_t j = 0; j < 4; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>((i + j) % n))},
                           0.1 + 0.8 * rng.NextDouble())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

// Parallel grounding (fan-out over the pool + per-chunk formula managers
// merged via AbsorbFrom) must be BIT-identical to the sequential build:
// same node ids, same variable table, same DPLL probability.
TEST(ParallelLineage, BitIdenticalToSequential) {
  Database db = BigChainDatabase(64);
  Ucq ucq({ConjunctiveQuery(
      {Atom("R", {Term::Var("x")}),
       Atom("S", {Term::Var("x"), Term::Var("y")})})});

  FormulaManager seq_mgr;
  auto seq = BuildUcqLineage(ucq, db, &seq_mgr, GroundingOptions{});
  ASSERT_TRUE(seq.ok());

  ThreadPool pool(4);
  ExecContext ctx(&pool);
  GroundingOptions par_options;
  par_options.exec = &ctx;
  par_options.parallel_min_rows = 1;
  par_options.parallel_min_matches = 1;
  FormulaManager par_mgr;
  auto par = BuildUcqLineage(ucq, db, &par_mgr, par_options);
  ASSERT_TRUE(par.ok());

  // Structural bit-identity: same root id in managers with identical node
  // counts and an identical variable table means the two managers hold the
  // very same DAG — every downstream computation (DPLL included) is then
  // identical by construction.
  EXPECT_EQ(par->root, seq->root);
  EXPECT_EQ(par_mgr.NumNodes(), seq_mgr.NumNodes());
  ASSERT_EQ(par->vars.size(), seq->vars.size());
  for (size_t i = 0; i < par->vars.size(); ++i) {
    EXPECT_EQ(par->vars[i].relation, seq->vars[i].relation);
    EXPECT_EQ(par->vars[i].row, seq->vars[i].row);
  }
  EXPECT_EQ(par->probs, seq->probs);

  ExecReport report = ctx.Report();
  EXPECT_GT(report.lineage_matches, 0u);
  EXPECT_GT(report.lineage_nodes, 0u);
}

// Random UCQs through the parallel path agree with sequential on the exact
// probability across many seeds.
TEST(ParallelLineage, RandomUcqsBitIdentical) {
  ThreadPool pool(3);
  for (uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed * 31 + 5);
    Database db = RandomVocabularyDb(&rng);
    Ucq ucq = RandomUcq(&rng);

    FormulaManager seq_mgr;
    auto seq = BuildUcqLineage(ucq, db, &seq_mgr, GroundingOptions{});
    ASSERT_TRUE(seq.ok());

    ExecContext ctx(&pool);
    GroundingOptions par_options;
    par_options.exec = &ctx;
    par_options.parallel_min_rows = 1;
    par_options.parallel_min_matches = 1;
    FormulaManager par_mgr;
    auto par = BuildUcqLineage(ucq, db, &par_mgr, par_options);
    ASSERT_TRUE(par.ok());

    EXPECT_EQ(par->root, seq->root) << "seed " << seed;
    EXPECT_EQ(par_mgr.NumNodes(), seq_mgr.NumNodes()) << "seed " << seed;
    EXPECT_EQ(par->probs, seq->probs) << "seed " << seed;
  }
}

// Past the columnar row threshold the vectorized path is the default.
// Sequential-columnar, parallel-columnar, and the forced row path must all
// build the very same lineage DAG — same root, same node count, same
// variable table, same probabilities — on a self-join that exercises the
// cross-column code translation tables.
TEST(ColumnarLineage, BitIdenticalAcrossPathsAndParallelism) {
  Database db = BigChainDatabase(96);
  Ucq ucq({ConjunctiveQuery(
      {Atom("R", {Term::Var("x")}),
       Atom("S", {Term::Var("x"), Term::Var("y")}),
       Atom("S", {Term::Var("y"), Term::Var("z")})})});

  FormulaManager row_mgr;
  GroundingOptions row_options;
  row_options.columnar = ColumnarMode::kNever;
  auto row = BuildUcqLineage(ucq, db, &row_mgr, row_options);
  ASSERT_TRUE(row.ok());

  FormulaManager col_mgr;
  GroundingOptions col_options;
  col_options.columnar = ColumnarMode::kAlways;
  auto col = BuildUcqLineage(ucq, db, &col_mgr, col_options);
  ASSERT_TRUE(col.ok());

  ThreadPool pool(4);
  ExecContext ctx(&pool);
  GroundingOptions par_options = col_options;
  par_options.exec = &ctx;
  par_options.parallel_min_rows = 1;
  par_options.parallel_min_matches = 1;
  FormulaManager par_mgr;
  auto par = BuildUcqLineage(ucq, db, &par_mgr, par_options);
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(col->root, row->root);
  EXPECT_EQ(col_mgr.NumNodes(), row_mgr.NumNodes());
  ASSERT_EQ(col->vars.size(), row->vars.size());
  for (size_t i = 0; i < col->vars.size(); ++i) {
    EXPECT_EQ(col->vars[i].relation, row->vars[i].relation);
    EXPECT_EQ(col->vars[i].row, row->vars[i].row);
  }
  EXPECT_EQ(col->probs, row->probs);
  EXPECT_EQ(par->root, row->root);
  EXPECT_EQ(par_mgr.NumNodes(), row_mgr.NumNodes());
  EXPECT_EQ(par->probs, row->probs);
}

// A query constant absent from every dictionary takes the impossible
// fast-path: zero matches, no crash, and the reference agrees.
TEST(ColumnarGrounding, AbsentConstantYieldsNoMatches) {
  Database db = BigChainDatabase(64);
  ConjunctiveQuery cq({Atom("S", {Term::Const(Value(int64_t{-5})),
                                  Term::Var("y")})});
  GroundingOptions columnar;
  columnar.columnar = ColumnarMode::kAlways;
  EXPECT_TRUE(Collect(cq, db, columnar).empty());
  EXPECT_TRUE(CollectReference(cq, db).empty());
}

TEST(IndexCacheTest, BuildsOnceAndHitsAfterwards) {
  Rng rng(3);
  Database db = RandomVocabularyDb(&rng);
  const Relation* s = db.Get("S").value();
  IndexCache cache;
  bool built = false;
  auto a = cache.GetOrBuild(*s, {0}, &built);
  EXPECT_TRUE(built);
  auto b = cache.GetOrBuild(*s, {0}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(a.get(), b.get());
  auto c = cache.GetOrBuild(*s, {1}, &built);
  EXPECT_TRUE(built);
  EXPECT_NE(a.get(), c.get());
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

// Columnar images and columnar code indexes are cached under their own
// flavors: distinct from hash-index entries over the same (relation,
// columns), hit on re-request, and reattached to the relation's own
// sidecar after a Clear (the image is not rebuilt from scratch).
TEST(IndexCacheTest, ColumnarFlavorsCachedIndependently) {
  Rng rng(6);
  Database db = RandomVocabularyDb(&rng);
  const Relation* s = db.Get("S").value();
  IndexCache cache;
  bool built = false;
  auto img = cache.GetOrBuildColumnar(*s, &built);
  EXPECT_TRUE(built);
  auto img_again = cache.GetOrBuildColumnar(*s, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(img.get(), img_again.get());
  auto idx = cache.GetOrBuildColumnarIndex(*s, {0}, &built);
  EXPECT_TRUE(built);
  auto idx_again = cache.GetOrBuildColumnarIndex(*s, {0}, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(idx.get(), idx_again.get());
  auto hash = cache.GetOrBuild(*s, {0}, &built);
  EXPECT_TRUE(built);  // hash flavor over {0} is a separate entry
  EXPECT_NE(hash.get(), nullptr);
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.builds, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 3u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  auto img_fresh = cache.GetOrBuildColumnar(*s, &built);
  EXPECT_TRUE(built);  // a fresh cache entry...
  EXPECT_EQ(img_fresh.get(), img.get());  // ...over the same shared image
  // The returned index answers lookups correctly.
  const ColumnarRelation& cols = *img;
  for (size_t row = 0; row < s->size(); ++row) {
    uint32_t code = cols.codes(0)[row];
    const uint32_t* rows = nullptr;
    size_t count = 0;
    idx->Lookup(code, &rows, &count);
    EXPECT_TRUE(std::find(rows, rows + count, row) != rows + count);
  }
}

// Eight clients hammer one cache over the same relations (with periodic
// clears from a ninth); every returned index must answer lookups
// correctly — and under TSan this doubles as the data-race check.
TEST(IndexCacheTest, ConcurrentClientsAndClears) {
  Rng rng(4);
  Database db = RandomVocabularyDb(&rng);
  const Relation* s = db.Get("S").value();
  const Relation* u = db.Get("U").value();
  IndexCache cache;
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      Rng local(static_cast<uint64_t>(t) + 100);
      for (int iter = 0; iter < 400; ++iter) {
        const Relation* rel = (iter % 2 == 0) ? s : u;
        std::vector<size_t> cols =
            local.Bernoulli(0.5) ? std::vector<size_t>{0}
                                 : std::vector<size_t>{1};
        auto index = cache.GetOrBuild(*rel, cols);
        // The shared_ptr keeps the index alive across concurrent clears.
        size_t row = local.Uniform(rel->size());
        Tuple key = {rel->tuple(row)[cols[0]]};
        const std::vector<size_t>& bucket = index->Lookup(key);
        EXPECT_FALSE(bucket.empty());
        EXPECT_TRUE(std::find(bucket.begin(), bucket.end(), row) !=
                    bucket.end());
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load()) {
      cache.Clear();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : clients) t.join();
  stop.store(true);
  clearer.join();
  EXPECT_GT(cache.stats().builds, 0u);
}

// The session carries one index cache across queries: the second identical
// grounding hits instead of rebuilding, and a database mutation drops the
// entries with the rest of the generation-keyed caches.
TEST(SessionIndexCache, ReusedAcrossQueriesAndInvalidated) {
  ProbDatabase pdb;
  {
    Rng rng(5);
    Database db = RandomVocabularyDb(&rng);
    for (const std::string& name : db.RelationNames()) {
      PDB_CHECK(pdb.AddRelation(*db.Get(name).value()).ok());
    }
  }
  SessionOptions options;
  options.num_threads = 1;
  options.cache_results = false;  // force re-grounding per query
  Session session(&pdb, options);
  QueryOptions q;
  ConjunctiveQuery cq({Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("U", {Term::Var("y"), Term::Var("z")})});
  ASSERT_TRUE(session.QueryWithAnswers(cq, {"x"}, q).ok());
  IndexCacheStats first = session.index_cache_stats();
  EXPECT_GT(first.builds, 0u);
  ASSERT_TRUE(session.QueryWithAnswers(cq, {"x"}, q).ok());
  IndexCacheStats second = session.index_cache_stats();
  EXPECT_EQ(second.builds, first.builds);  // nothing rebuilt
  EXPECT_GT(second.hits, first.hits);
  ExecReport report = session.CumulativeReport();
  EXPECT_GT(report.lineage_matches, 0u);
  EXPECT_GT(report.index_builds + report.index_cache_hits, 0u);

  // Mutating the database bumps the generation; the next query must drop
  // the stale indexes and rebuild.
  Relation extra("V", Schema::Anonymous(1, ValueType::kInt));
  PDB_CHECK(extra.AddTuple({Value(static_cast<int64_t>(1))}, 0.5).ok());
  PDB_CHECK(pdb.AddRelation(std::move(extra)).ok());
  ASSERT_TRUE(session.QueryWithAnswers(cq, {"x"}, q).ok());
  EXPECT_GT(session.index_cache_stats().builds, second.builds);
}

// Planted correlation: Corr(x, y) carries y == x on every row, so the
// independence product (size / distinct(x) / distinct(y) = 0.01 rows per
// probe) wildly understates it, while the composite distinct count (100
// observed pairs) prices the probe correctly at 1 row. The cost-based
// order must therefore prefer the genuinely-selective Other — equally
// priced at 1 row but smaller — over the correlated trap when both
// columns are bound.
TEST(CostBasedOrdering, CompositeDistinctBeatsIndependenceOnCorrelation) {
  Database db;
  Relation driver("Sm", Schema::Anonymous(2, ValueType::kInt));
  for (int64_t i = 0; i < 10; ++i) {
    PDB_CHECK(driver.AddTuple({Value(i), Value(i)}, 0.5).ok());
  }
  // 100 rows, y == x: distinct(x) = distinct(y) = 100, composite = 100.
  Relation corr("Corr", Schema::Anonymous(2, ValueType::kInt));
  for (int64_t i = 0; i < 100; ++i) {
    PDB_CHECK(corr.AddTuple({Value(i), Value(i)}, 0.5).ok());
  }
  // 20 rows, (i mod 4, i mod 5): distinct(x) = 4, distinct(y) = 5, and by
  // CRT all 20 pairs are distinct — composite = 20, so the composite and
  // independence estimates agree at 1 row per probe.
  Relation other("Other", Schema::Anonymous(2, ValueType::kInt));
  for (int64_t i = 0; i < 20; ++i) {
    PDB_CHECK(other.AddTuple({Value(i % 4), Value(i % 5)}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(driver)).ok());
  PDB_CHECK(db.AddRelation(std::move(corr)).ok());
  PDB_CHECK(db.AddRelation(std::move(other)).ok());

  ConjunctiveQuery cq({Atom("Corr", {Term::Var("x"), Term::Var("y")}),
                       Atom("Other", {Term::Var("x"), Term::Var("y")}),
                       Atom("Sm", {Term::Var("x"), Term::Var("y")})});
  GroundingOptions options;
  options.order = AtomOrderPolicy::kCostBased;
  auto plan = PlanCqJoin(cq, db, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->steps.size(), 3u);
  // Smallest relation drives; then both candidates estimate 1 row per
  // probe under composite stats and the tie breaks to the smaller Other.
  // (The independence product would order Corr second at 0.01 estimated
  // rows — exactly the correlated-pair trap.)
  EXPECT_EQ(plan->steps[0].predicate, "Sm");
  EXPECT_EQ(plan->steps[1].predicate, "Other");
  EXPECT_EQ(plan->steps[2].predicate, "Corr");
  EXPECT_DOUBLE_EQ(plan->steps[1].estimated_rows, 1.0);
  EXPECT_DOUBLE_EQ(plan->steps[2].estimated_rows, 1.0);
}

}  // namespace
}  // namespace pdb
