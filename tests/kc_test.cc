#include <gtest/gtest.h>

#include "boolean/lineage.h"
#include "kc/circuit.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "test_common.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// OBDD basics
// ---------------------------------------------------------------------------

TEST(ObddTest, TerminalAndLiteral) {
  Obdd obdd({0, 1});
  EXPECT_EQ(obdd.And(obdd.True(), obdd.False()), obdd.False());
  Obdd::Ref x0 = obdd.MakeNode(0, obdd.False(), obdd.True());
  EXPECT_EQ(obdd.Size(x0), 1u);
  EXPECT_EQ(obdd.Not(obdd.Not(x0)), x0);
}

TEST(ObddTest, ReductionRules) {
  Obdd obdd({0, 1});
  // lo == hi collapses.
  Obdd::Ref x1 = obdd.MakeNode(1, obdd.False(), obdd.True());
  EXPECT_EQ(obdd.MakeNode(0, x1, x1), x1);
  // Unique table: same triple -> same node.
  EXPECT_EQ(obdd.MakeNode(0, obdd.False(), x1),
            obdd.MakeNode(0, obdd.False(), x1));
}

TEST(ObddTest, CompileMatchesEnumeration) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FormulaManager mgr;
    Rng rng(seed + 1000);
    // Random formula over 8 vars (reusing the generator shape inline).
    std::vector<NodeId> literals;
    for (VarId v = 0; v < 8; ++v) literals.push_back(mgr.Var(v));
    std::vector<NodeId> clauses;
    for (int c = 0; c < 6; ++c) {
      std::vector<NodeId> lits;
      for (int l = 0; l < 3; ++l) {
        NodeId lit = literals[rng.Uniform(8)];
        if (rng.Bernoulli(0.5)) lit = mgr.Not(lit);
        lits.push_back(lit);
      }
      clauses.push_back(mgr.Or(std::move(lits)));
    }
    NodeId f = mgr.And(std::move(clauses));
    std::vector<double> probs(8);
    for (double& p : probs) p = rng.NextDouble();
    Obdd obdd(IdentityOrder(8));
    auto compiled = obdd.Compile(&mgr, f);
    ASSERT_TRUE(compiled.ok());
    EXPECT_NEAR(obdd.Wmc(*compiled, WeightsFromProbabilities(probs)),
                *EnumerateProbability(&mgr, f, probs), 1e-9)
        << "seed " << seed;
  }
}

TEST(ObddTest, CountModels) {
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.Var(0), mgr.Var(1));  // 3 models over 2 vars
  Obdd obdd(IdentityOrder(2));
  EXPECT_EQ(obdd.CountModels(*obdd.Compile(&mgr, f)), BigInt(3));
  // Model count accounts for skipped levels: same formula in a 4-var order
  // has 3 * 4 = 12 models.
  Obdd wide(IdentityOrder(4));
  EXPECT_EQ(wide.CountModels(*wide.Compile(&mgr, f)), BigInt(12));
}

TEST(ObddTest, MissingVariableInOrderIsError) {
  FormulaManager mgr;
  Obdd obdd(IdentityOrder(1));
  EXPECT_FALSE(obdd.Compile(&mgr, mgr.Var(5)).ok());
}

// ---------------------------------------------------------------------------
// Theorem 7.1(i): OBDD size, hierarchical vs non-hierarchical
// ---------------------------------------------------------------------------

// Builds the chain database R(i), S(i,j) for i in [n], j in [fanout].
Database TwoLevelDb(size_t n, size_t fanout) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    for (size_t j = 1; j <= fanout; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           0.5)
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

// Complete bipartite H0 database over n x n.
Database H0Db(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation t("T", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, 0.5).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           0.5)
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

TEST(ObddSizeTest, HierarchicalLineageHasLinearObdd) {
  auto fo = ParseUcqShorthand("R(x), S(x,y)");
  std::vector<size_t> sizes;
  for (size_t n : {4, 8, 16}) {
    Database db = TwoLevelDb(n, 2);
    FormulaManager mgr;
    auto lineage = BuildLineage(*fo, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    Obdd obdd(HierarchicalOrder(*lineage, db));
    auto root = obdd.Compile(&mgr, lineage->root);
    ASSERT_TRUE(root.ok());
    sizes.push_back(obdd.Size(*root));
  }
  // Linear growth: size(2n) <= 2.5 * size(n) and absolute size stays tiny.
  EXPECT_LE(sizes[1], sizes[0] * 5 / 2 + 4);
  EXPECT_LE(sizes[2], sizes[1] * 5 / 2 + 4);
  EXPECT_LE(sizes[2], 16u * 3u * 3u);
}

TEST(ObddSizeTest, NonHierarchicalLineageBlowsUpUnderEveryOrder) {
  // Theorem 7.1(i)(b): every OBDD for the H0 lineage has size
  // >= (2^n - 1)/n. Verify exhaustively over all orders at n = 2 and for a
  // sample of orders at n = 3.
  auto fo = ParseUcqShorthand("R(x), S(x,y), T(y)");
  for (size_t n : {2u, 3u}) {
    Database db = H0Db(n);
    FormulaManager mgr;
    auto lineage = BuildLineage(*fo, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    const size_t num_vars = lineage->vars.size();
    size_t best = SIZE_MAX;
    if (num_vars <= 8) {
      for (const auto& order : AllOrders(num_vars)) {
        Obdd obdd(order);
        auto root = obdd.Compile(&mgr, lineage->root);
        ASSERT_TRUE(root.ok());
        best = std::min(best, obdd.Size(*root));
      }
    } else {
      Rng rng(n);
      std::vector<VarId> order = IdentityOrder(num_vars);
      for (int trial = 0; trial < 200; ++trial) {
        for (size_t i = order.size(); i > 1; --i) {
          std::swap(order[i - 1], order[rng.Uniform(i)]);
        }
        Obdd obdd(order);
        auto root = obdd.Compile(&mgr, lineage->root);
        ASSERT_TRUE(root.ok());
        best = std::min(best, obdd.Size(*root));
      }
    }
    EXPECT_GE(best, ((size_t{1} << n) - 1) / n) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Circuits: Figure 2 of the paper
// ---------------------------------------------------------------------------

TEST(CircuitTest, Figure2aFbdd) {
  // FBDD for (!X)YZ | XY | XZ, variables X=0, Y=1, Z=2 (Fig. 2a).
  Circuit c;
  // Left branch (X=0): Y then Z.
  Circuit::Ref z_node = c.Decision(2, c.False(), c.True());
  Circuit::Ref y_then_z = c.Decision(1, c.False(), z_node);
  // Right branch (X=1): Y -> true, else Z.
  Circuit::Ref y_or_z = c.Decision(1, z_node, c.True());
  Circuit::Ref root = c.Decision(0, y_then_z, y_or_z);
  ASSERT_TRUE(c.ValidateFbdd(root).ok());
  // Truth table check against the formula.
  FormulaManager mgr;
  NodeId x = mgr.Var(0), y = mgr.Var(1), z = mgr.Var(2);
  NodeId f = mgr.Or(std::vector<NodeId>{
      mgr.And(std::vector<NodeId>{mgr.Not(x), y, z}), mgr.And(x, y),
      mgr.And(x, z)});
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<bool> assignment = {bool(mask & 1), bool(mask & 2),
                                    bool(mask & 4)};
    EXPECT_EQ(c.Evaluate(root, assignment), mgr.Evaluate(f, assignment));
  }
  // WMC equality.
  std::vector<double> probs = {0.3, 0.6, 0.8};
  EXPECT_NEAR(c.Wmc(root, WeightsFromProbabilities(probs)),
              *EnumerateProbability(&mgr, f, probs), 1e-12);
}

TEST(CircuitTest, Figure2bDecisionDnnf) {
  // decision-DNNF for (!X)YZU | XYZ | XZU (Fig. 2b): decision on X; the
  // X=0 branch is Y&Z&U (conjunction of independent decisions), the X=1
  // branch is Z & (Y or U).
  Circuit c;
  Circuit::Ref y = c.Decision(1, c.False(), c.True());
  Circuit::Ref z = c.Decision(2, c.False(), c.True());
  Circuit::Ref u = c.Decision(3, c.False(), c.True());
  Circuit::Ref yzu = c.And({y, z, u});
  Circuit::Ref y_or_u = c.Decision(1, u, c.True());
  Circuit::Ref x1 = c.And({z, y_or_u});
  Circuit::Ref root = c.Decision(0, yzu, x1);
  ASSERT_TRUE(c.ValidateDecisionDnnf(root).ok());
  EXPECT_FALSE(c.ValidateFbdd(root).ok());  // has AND nodes
  FormulaManager mgr;
  NodeId fx = mgr.Var(0), fy = mgr.Var(1), fz = mgr.Var(2), fu = mgr.Var(3);
  NodeId f = mgr.Or(std::vector<NodeId>{
      mgr.And(std::vector<NodeId>{mgr.Not(fx), fy, fz, fu}),
      mgr.And(std::vector<NodeId>{fx, fy, fz}),
      mgr.And(std::vector<NodeId>{fx, fz, fu})});
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<bool> assignment = {bool(mask & 1), bool(mask & 2),
                                    bool(mask & 4), bool(mask & 8)};
    EXPECT_EQ(c.Evaluate(root, assignment), mgr.Evaluate(f, assignment));
  }
  std::vector<double> probs = {0.2, 0.4, 0.5, 0.9};
  EXPECT_NEAR(c.Wmc(root, WeightsFromProbabilities(probs)),
              *EnumerateProbability(&mgr, f, probs), 1e-12);
  EXPECT_EQ(c.CountModels(root), *CountModels(&mgr, f));
}

TEST(CircuitTest, ValidatorsRejectBrokenCircuits) {
  Circuit c;
  // Repeated variable along a path.
  Circuit::Ref inner = c.Decision(0, c.False(), c.True());
  Circuit::Ref repeated = c.Decision(0, inner, c.True());
  EXPECT_FALSE(c.ValidateFbdd(repeated).ok());
  // Non-decomposable AND.
  Circuit::Ref x = c.Decision(0, c.False(), c.True());
  Circuit::Ref and_node = c.And({x, x});
  EXPECT_FALSE(c.ValidateDecisionDnnf(and_node).ok());
}

TEST(CircuitTest, DeterministicOrWmc) {
  // d-DNNF: x | (!x & y) — children are disjoint events.
  Circuit c;
  Circuit::Ref x = c.Literal(0, true);
  Circuit::Ref not_x = c.Literal(0, false);
  Circuit::Ref y = c.Literal(1, true);
  Circuit::Ref branch = c.And({not_x, y});
  Circuit::Ref root = c.Or({x, branch});
  std::vector<double> probs = {0.3, 0.7};
  // P = 0.3 + 0.7*0.7 = 0.79.
  EXPECT_NEAR(c.Wmc(root, WeightsFromProbabilities(probs)), 0.79, 1e-12);
}

// ---------------------------------------------------------------------------
// Trace compilation: DPLL trace == decision-DNNF
// ---------------------------------------------------------------------------

TEST(TraceCompilerTest, TraceIsValidDecisionDnnfAndMatchesCount) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Database db;
    Rng rng(seed + 50);
    testing::AddRandomRelation(&db, "R", 1, &rng);
    testing::AddRandomRelation(&db, "S", 2, &rng);
    testing::AddRandomRelation(&db, "T", 1, &rng);
    auto fo = ParseUcqShorthand("R(x), S(x,y), T(y)");
    FormulaManager mgr;
    auto lineage = BuildLineage(*fo, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    auto result = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->circuit.ValidateDecisionDnnf(result->root).ok());
    // Circuit WMC == DPLL count == enumeration.
    EXPECT_NEAR(result->circuit.Wmc(result->root,
                                    WeightsFromProbabilities(lineage->probs)),
                result->probability, 1e-9);
    if (lineage->vars.size() <= 20) {
      EXPECT_NEAR(result->probability,
                  *EnumerateProbability(&mgr, lineage->root, lineage->probs),
                  1e-9);
    }
  }
}

TEST(TraceCompilerTest, CacheHitsShareSubcircuits) {
  // The trace of a cached DPLL run is a DAG: compiling the same subformula
  // twice must not duplicate nodes.
  FormulaManager mgr;
  NodeId shared = mgr.Or(mgr.Var(0), mgr.Var(1));
  NodeId f = mgr.And(mgr.Or(shared, mgr.Var(2)), mgr.Or(shared, mgr.Var(3)));
  auto result = CompileToDecisionDnnf(
      &mgr, f, WeightsFromProbabilities({0.5, 0.5, 0.5, 0.5}));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->circuit.Size(result->root), 32u);
}

// ---------------------------------------------------------------------------
// Orders
// ---------------------------------------------------------------------------

TEST(OrderTest, GreedySwapSearchRecoversGoodOrders) {
  // Start from a deliberately interleaved (bad) order of the hierarchical
  // lineage; the local search should recover a near-block order.
  Database db = TwoLevelDb(6, 2);
  FormulaManager mgr;
  auto lineage = BuildLineage(*ParseUcqShorthand("R(x), S(x,y)"), db, &mgr);
  ASSERT_TRUE(lineage.ok());
  std::vector<VarId> good = HierarchicalOrder(*lineage, db);
  Obdd good_obdd(good);
  size_t good_size = good_obdd.Size(*good_obdd.Compile(&mgr, lineage->root));
  // Bad order: reverse-interleave.
  std::vector<VarId> bad;
  for (size_t i = 0; i < good.size(); i += 2) bad.push_back(good[i]);
  for (size_t i = 1; i < good.size(); i += 2) bad.push_back(good[i]);
  std::reverse(bad.begin() + static_cast<ptrdiff_t>(bad.size() / 2),
               bad.end());
  Obdd bad_obdd(bad);
  size_t bad_size = bad_obdd.Size(*bad_obdd.Compile(&mgr, lineage->root));
  size_t found_size = 0;
  auto found = GreedySwapOrderSearch(&mgr, lineage->root, bad, 50,
                                     &found_size);
  ASSERT_TRUE(found.ok());
  // Local search never worsens the order (the fully scrambled start can
  // itself be a swap-local minimum — expected of sifting-style moves).
  EXPECT_LE(found_size, bad_size);
  // From a light perturbation of the good order it recovers the optimum.
  std::vector<VarId> perturbed = good;
  std::swap(perturbed[1], perturbed[2]);
  std::swap(perturbed[4], perturbed[5]);
  size_t recovered_size = 0;
  auto recovered = GreedySwapOrderSearch(&mgr, lineage->root, perturbed, 50,
                                         &recovered_size);
  ASSERT_TRUE(recovered.ok());
  EXPECT_LE(recovered_size, good_size);
  // The returned order really compiles to the reported size, and counts
  // the same function.
  Obdd check(*found);
  auto compiled = check.Compile(&mgr, lineage->root);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(check.Size(*compiled), found_size);
  EXPECT_NEAR(check.Wmc(*compiled, WeightsFromProbabilities(lineage->probs)),
              good_obdd.Wmc(*good_obdd.Compile(&mgr, lineage->root),
                            WeightsFromProbabilities(lineage->probs)),
              1e-12);
}

TEST(OrderTest, AllOrdersEnumeratesPermutations) {
  EXPECT_EQ(AllOrders(3).size(), 6u);
  EXPECT_EQ(AllOrders(0).size(), 1u);
}

TEST(OrderTest, HierarchicalOrderGroupsBlocks) {
  Database db = TwoLevelDb(3, 2);
  FormulaManager mgr;
  auto lineage = BuildLineage(*ParseUcqShorthand("R(x), S(x,y)"), db, &mgr);
  ASSERT_TRUE(lineage.ok());
  std::vector<VarId> order = HierarchicalOrder(*lineage, db);
  ASSERT_EQ(order.size(), lineage->vars.size());
  // Consecutive runs share the same first column value.
  std::vector<std::string> keys;
  for (VarId v : order) {
    const LineageVar& lv = lineage->vars[v];
    keys.push_back((*db.Get(lv.relation))->tuple(lv.row)[0].ToString());
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

}  // namespace
}  // namespace pdb
