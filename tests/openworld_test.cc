#include <gtest/gtest.h>

#include "boolean/lineage.h"
#include "logic/parser.h"
#include "openworld/openworld.h"
#include "test_common.h"
#include "wmc/dpll.h"

namespace pdb {
namespace {

Ucq UcqOf(const char* text) {
  auto fo = ParseUcqShorthand(text);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok());
  return *ucq;
}

Database SmallDb() {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  PDB_CHECK(r.AddTuple({Value(1)}, 0.5).ok());
  PDB_CHECK(s.AddTuple({Value(1), Value(2)}, 0.5).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

TEST(OpenWorldTest, LambdaCompletionAddsUnlistedTuples) {
  OpenWorldDatabase open(SmallDb(), 0.1);
  auto completed = open.LambdaCompletion();
  ASSERT_TRUE(completed.ok());
  // Active domain {1, 2}: R gets 2 tuples, S gets 4.
  EXPECT_EQ((*completed->Get("R"))->size(), 2u);
  EXPECT_EQ((*completed->Get("S"))->size(), 4u);
  // Listed tuples keep their probability; unlisted get lambda.
  EXPECT_DOUBLE_EQ((*completed->Get("R"))->ProbOf({Value(1)}), 0.5);
  EXPECT_DOUBLE_EQ((*completed->Get("R"))->ProbOf({Value(2)}), 0.1);
  EXPECT_DOUBLE_EQ((*completed->Get("S"))->ProbOf({Value(2), Value(2)}), 0.1);
}

TEST(OpenWorldTest, ZeroLambdaIsClosedWorld) {
  OpenWorldDatabase open(SmallDb(), 0.0);
  auto interval = open.QueryInterval(UcqOf("R(x), S(x,y)"));
  ASSERT_TRUE(interval.ok());
  EXPECT_DOUBLE_EQ(interval->lower, interval->upper);
  EXPECT_DOUBLE_EQ(interval->lower, 0.25);  // 0.5 * 0.5
}

TEST(OpenWorldTest, IntervalBracketsAndGrowsWithLambda) {
  Ucq q = UcqOf("R(x), S(x,y)");
  double prev_upper = 0.0;
  for (double lambda : {0.0, 0.05, 0.2, 0.5}) {
    OpenWorldDatabase open(SmallDb(), lambda);
    auto interval = open.QueryInterval(q);
    ASSERT_TRUE(interval.ok()) << "lambda " << lambda;
    EXPECT_LE(interval->lower, interval->upper + 1e-12);
    EXPECT_DOUBLE_EQ(interval->lower, 0.25);  // lower is closed-world
    EXPECT_GE(interval->upper, prev_upper - 1e-12);  // monotone in lambda
    prev_upper = interval->upper;
  }
}

TEST(OpenWorldTest, UpperEndpointMatchesDirectEvaluation) {
  OpenWorldDatabase open(SmallDb(), 0.3);
  Ucq q = UcqOf("R(x), S(x,y)");
  auto interval = open.QueryInterval(q);
  ASSERT_TRUE(interval.ok());
  auto completed = open.LambdaCompletion();
  ASSERT_TRUE(completed.ok());
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(q, *completed, &mgr);
  ASSERT_TRUE(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  EXPECT_NEAR(interval->upper, *counter.Compute(lineage->root), 1e-10);
}

TEST(OpenWorldTest, HardQueryStillBracketed) {
  Database db;
  Rng rng(3);
  testing::RandomTidOptions options;
  options.domain_size = 3;
  testing::AddRandomRelation(&db, "R", 1, &rng, options);
  testing::AddRandomRelation(&db, "S", 2, &rng, options);
  testing::AddRandomRelation(&db, "T", 1, &rng, options);
  OpenWorldDatabase open(std::move(db), 0.1);
  auto interval = open.QueryInterval(UcqOf("R(x), S(x,y), T(y)"));
  ASSERT_TRUE(interval.ok());
  EXPECT_LE(interval->lower, interval->upper + 1e-12);
  EXPECT_GT(interval->upper, interval->lower);  // open world adds mass
}

TEST(OpenWorldTest, GuardsAndErrors) {
  OpenWorldDatabase bad(SmallDb(), 1.5);
  EXPECT_EQ(bad.LambdaCompletion().status().code(), StatusCode::kOutOfRange);
  OpenWorldDatabase open(SmallDb(), 0.1);
  EXPECT_EQ(open.LambdaCompletion(/*max_tuples=*/1).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdb
