// Observability tests: metrics registry semantics (including an 8-thread
// hammer built for TSan), Prometheus/JSON exposition (golden file + grammar
// validator), trace span nesting and the session trace ring buffer, and the
// regression that the registry tickers agree with CumulativeReport after a
// mixed workload. This file is built under TSan in CI.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pdb.h"
#include "core/session.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

/// Complete bipartite H0 instance (same construction as session_test.cc):
/// R(x), S(x,y), T(y) is non-hierarchical, hence exact evaluation goes
/// through grounded DPLL.
Database HardDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  Rng rng(3);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

/// Same shape but with named columns so SQL can address them.
Database HardSqlDatabase(size_t n) {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kInt}}));
  Relation s("S", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  Relation t("T", Schema({{"y", ValueType::kInt}}));
  Rng rng(7);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

const char* kUnsafeQuery = "R(x), S(x,y), T(y)";
const char* kSafeQuery = "R(x), S(x,y)";

// ---------------------------------------------------------------------------
// Counters, gauges, histograms
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Set(7);  // overlay semantics
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(MetricsTest, HistogramLog2Buckets) {
  Histogram h;
  h.Record(0);     // bucket 0: exactly {0}
  h.Record(1);     // bucket 1: [1, 2)
  h.Record(2);     // bucket 2: [2, 4)
  h.Record(3);     // bucket 2
  h.Record(1024);  // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.bucket(3), 0u);
}

TEST(MetricsTest, HistogramExtremeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(UINT64_MAX);  // bit_width 64 -> last bucket
  EXPECT_EQ(h.bucket(Histogram::kNumBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsTest, HistogramSnapshotMeanAndQuantile) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("q");
  for (int i = 0; i < 99; ++i) h->Record(4);  // bucket 3, upper bound 7
  h->Record(1 << 20);                         // one outlier
  MetricsSnapshot snap = reg.Snapshot();
  const HistogramSnapshot& hs = snap.histograms.at("q");
  EXPECT_DOUBLE_EQ(hs.Mean(), (99.0 * 4 + (1 << 20)) / 100.0);
  EXPECT_DOUBLE_EQ(hs.Quantile(0.5), 7.0);
  // The outlier lives in bucket 21, upper bound 2^21 - 1.
  EXPECT_DOUBLE_EQ(hs.Quantile(1.0), 2097151.0);
  HistogramSnapshot empty;
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.Quantile(0.99), 0.0);
}

TEST(MetricsTest, RegistryGetOrCreateIsStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("pdb_thing_total");
  Counter* b = reg.GetCounter("pdb_thing_total");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("other"), a);
  EXPECT_NE(static_cast<void*>(reg.GetGauge("g")),
            static_cast<void*>(reg.GetHistogram("h")));
}

TEST(MetricsTest, ConcurrentHammerIsExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &go, t] {
      // Resolve once, update lock-free — the intended usage pattern.
      Counter* shared = reg.GetCounter("shared_total");
      Counter* own = reg.GetCounter("worker_" + std::to_string(t) + "_total");
      Gauge* level = reg.GetGauge("level");
      Histogram* h = reg.GetHistogram("latency_us");
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kIters; ++i) {
        shared->Add(1);
        own->Add(2);
        level->Add(t % 2 == 0 ? 1 : -1);
        h->Record(static_cast<uint64_t>(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("shared_total"),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("worker_" + std::to_string(t) + "_total"),
              static_cast<uint64_t>(2) * kIters);
  }
  EXPECT_EQ(snap.gauges.at("level"), 0);
  const HistogramSnapshot& h = snap.histograms.at("latency_us");
  EXPECT_EQ(h.count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t per_thread_sum = static_cast<uint64_t>(kIters) * (kIters - 1) / 2;
  EXPECT_EQ(h.sum, kThreads * per_thread_sum);
}

// ---------------------------------------------------------------------------
// Exposition: Prometheus golden file + grammar, JSON
// ---------------------------------------------------------------------------

/// The registry rendered by the golden-file and grammar tests.
MetricsRegistry* GoldenRegistry() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("pdb_queries_total")->Add(3);
    r->GetCounter("pdb_admission_rejected_total")->Add(2);
    r->GetCounter("pdb_checkpoint_duration_us_total")->Add(1500);
    r->GetCounter("pdb_index_builds_total")->Add(4);
    r->GetCounter("pdb_index_cache_hits_total")->Add(12);
    r->GetCounter("pdb_lineage_matches_total")->Add(7);
    r->GetCounter("pdb_lineage_nodes_total")->Add(21);
    r->GetCounter("pdb_shed_total")->Add(5);
    r->GetCounter("weird.name-1")->Add(1);  // sanitized to weird_name_1
    r->GetGauge("pdb_requests_in_flight")->Set(1);
    r->GetGauge("pdb_result_cache_entries")->Set(2);
    r->GetGauge("pdb_sessions_active")->Set(3);
    r->GetGauge("temp_delta")->Set(-5);
    Histogram* h = r->GetHistogram("pdb_query_latency_us");
    h->Record(0);
    h->Record(1);
    h->Record(5);
    h->Record(1024);
    // WAL fsync latency (recorded in microseconds; see durable_db.cc).
    Histogram* ws = r->GetHistogram("pdb_wal_sync_seconds");
    ws->Record(120);
    ws->Record(450);
    return r;
  }();
  return reg;
}

/// Minimal validator for the Prometheus text exposition format: every line
/// is a comment or `name[{le="bound"}] value`, names match the grammar,
/// histogram bucket series are cumulative and end with +Inf == _count.
void ValidatePrometheusText(const std::string& text) {
  auto valid_name = [](const std::string& s) {
    if (s.empty()) return false;
    auto head = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
             c == ':';
    };
    if (!head(s[0])) return false;
    for (char c : s) {
      if (!head(c) && !(c >= '0' && c <= '9')) return false;
    }
    return true;
  };
  std::istringstream in(text);
  std::string line;
  std::string open_histogram;  // histogram currently being emitted
  uint64_t last_cumulative = 0;
  bool saw_inf = false;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    SCOPED_TRACE("line " + std::to_string(lineno) + ": " + line);
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name, kind;
      ls >> hash >> kw >> name >> kind;
      ASSERT_EQ(hash, "#");
      ASSERT_EQ(kw, "TYPE");
      ASSERT_TRUE(valid_name(name));
      ASSERT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram");
      if (!open_histogram.empty()) {
        EXPECT_TRUE(saw_inf);
      }
      open_histogram = kind == "histogram" ? name : "";
      last_cumulative = 0;
      saw_inf = false;
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable sample value";
    std::string name = series;
    std::string le;
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      name = series.substr(0, brace);
      ASSERT_EQ(series.back(), '}');
      std::string labels = series.substr(brace + 1,
                                         series.size() - brace - 2);
      ASSERT_EQ(labels.rfind("le=\"", 0), 0u);
      ASSERT_EQ(labels.back(), '"');
      le = labels.substr(4, labels.size() - 5);
    }
    ASSERT_TRUE(valid_name(name));
    if (!open_histogram.empty() && name == open_histogram + "_bucket") {
      ASSERT_FALSE(le.empty());
      uint64_t cumulative = std::strtoull(value.c_str(), nullptr, 10);
      EXPECT_GE(cumulative, last_cumulative) << "buckets must be cumulative";
      if (le == "+Inf") {
        saw_inf = true;
      } else {
        last_cumulative = cumulative;
        std::strtod(le.c_str(), &end);
        ASSERT_EQ(*end, '\0') << "unparseable le bound";
      }
    }
  }
  if (!open_histogram.empty()) {
    EXPECT_TRUE(saw_inf);
  }
}

TEST(MetricsExpositionTest, PrometheusMatchesGoldenFile) {
  std::ifstream golden(std::string(PDB_TESTDATA_DIR) +
                       "/metrics_golden.prom");
  ASSERT_TRUE(golden.good());
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(GoldenRegistry()->RenderPrometheus(), want.str());
}

TEST(MetricsExpositionTest, PrometheusGrammarHolds) {
  ValidatePrometheusText(GoldenRegistry()->RenderPrometheus());
}

TEST(MetricsExpositionTest, LiveSessionTextParsesUnderGrammar) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  Session session(&pdb, {.num_threads = 1});
  ASSERT_TRUE(session.Query("R(x), S(x,y)").ok());
  ASSERT_TRUE(session.QuerySqlBoolean("SELECT PROB() FROM R, S "
                                      "WHERE R.x = S.x")
                  .ok());
  std::string text = session.MetricsText();
  EXPECT_NE(text.find("pdb_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("pdb_query_latency_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("pdb_sql_statement_latency_us_count 1"),
            std::string::npos);
  ValidatePrometheusText(text);
}

TEST(MetricsExpositionTest, JsonCarriesCountersAndHistograms) {
  std::string json = GoldenRegistry()->RenderJson();
  EXPECT_NE(json.find("\"pdb_queries_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"weird.name-1\":1"), std::string::npos);
  EXPECT_NE(json.find("\"temp_delta\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[0,1],[1,1],[3,1],[11,1]]"),
            std::string::npos);
  // Balanced braces/brackets (no string in the payload contains either).
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(TraceTest, NullTraceSpanIsInert) {
  TraceSpan span(nullptr, TracePhase::kDpll);
  span.SetPhase(TracePhase::kLifted);
  span.AddCounter("decisions", 1);
  span.End();  // must not crash
}

TEST(TraceTest, SpanNestingAndTopLevel) {
  QueryTrace trace;
  {
    TraceSpan outer(&trace, TracePhase::kDpll);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      TraceSpan inner(&trace, TracePhase::kCacheProbe);
      inner.AddCounter("hit", 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    outer.AddCounter("decisions", 42);
  }
  trace.Finish();
  auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer first.
  EXPECT_EQ(spans[0].phase, TracePhase::kDpll);
  EXPECT_EQ(spans[1].phase, TracePhase::kCacheProbe);
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[1].start_ns + spans[1].duration_ns,
            spans[0].start_ns + spans[0].duration_ns);
  // The nested probe span is excluded from the top-level breakdown.
  EXPECT_EQ(trace.TopLevelNs(), spans[0].duration_ns);
  EXPECT_EQ(trace.PhaseNs(TracePhase::kCacheProbe), spans[1].duration_ns);
  EXPECT_GT(trace.PhaseNs(TracePhase::kDpll),
            trace.PhaseNs(TracePhase::kCacheProbe));
  EXPECT_GE(trace.total_ns(), trace.TopLevelNs());

  std::string text = trace.ToString();
  EXPECT_NE(text.find("dpll"), std::string::npos);
  EXPECT_NE(text.find("cache_probe"), std::string::npos);
  EXPECT_NE(text.find("decisions=42"), std::string::npos);
}

TEST(TraceTest, FinishIsIdempotent) {
  QueryTrace trace;
  trace.Finish();
  uint64_t t1 = trace.total_ns();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  trace.Finish();
  EXPECT_EQ(trace.total_ns(), t1);
}

TEST(TraceTest, PhaseNamesAreStable) {
  EXPECT_STREQ(TracePhaseName(TracePhase::kParse), "parse");
  EXPECT_STREQ(TracePhaseName(TracePhase::kSafetyCheck), "safety_check");
  EXPECT_STREQ(TracePhaseName(TracePhase::kMonteCarlo), "monte_carlo");
}

TEST(TraceTest, PhaseNamesRoundTrip) {
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    TracePhase phase = static_cast<TracePhase>(i);
    TracePhase parsed;
    ASSERT_TRUE(TracePhaseFromName(TracePhaseName(phase), &parsed));
    EXPECT_EQ(parsed, phase);
  }
  TracePhase unused;
  EXPECT_FALSE(TracePhaseFromName("nonsense", &unused));
  EXPECT_FALSE(TracePhaseFromName("", &unused));
}

TEST(TraceJsonTest, RoundTripPreservesEverySpanAndCounter) {
  QueryTrace trace;
  {
    TraceSpan parse(&trace, TracePhase::kParse);
  }
  {
    TraceSpan dpll(&trace, TracePhase::kDpll);
    dpll.AddCounter("decisions", 12345);
    dpll.AddCounter("cache_hits", 0);
    {
      TraceSpan probe(&trace, TracePhase::kCacheProbe);
      probe.AddCounter("hit", 1);
    }
  }
  trace.Finish();

  std::string json = TraceToJson(trace);
  EXPECT_EQ(json, TraceData::FromTrace(trace).ToJson());
  auto parsed = TraceFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->total_ns, trace.total_ns());
  auto spans = trace.spans();
  ASSERT_EQ(parsed->spans.size(), spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed->spans[i].phase, spans[i].phase);
    EXPECT_EQ(parsed->spans[i].start_ns, spans[i].start_ns);
    EXPECT_EQ(parsed->spans[i].duration_ns, spans[i].duration_ns);
    ASSERT_EQ(parsed->spans[i].counters.size(), spans[i].counters.size());
    for (size_t j = 0; j < spans[i].counters.size(); ++j) {
      EXPECT_EQ(parsed->spans[i].counters[j].name, spans[i].counters[j].name);
      EXPECT_EQ(parsed->spans[i].counters[j].value,
                spans[i].counters[j].value);
    }
  }
  // The re-serialization of the parsed data is byte-identical.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(TraceJsonTest, EmptyTraceRoundTrips) {
  QueryTrace trace;
  trace.Finish();
  auto parsed = TraceFromJson(TraceToJson(trace));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->spans.empty());
}

TEST(TraceJsonTest, CounterNamesWithSpecialCharactersSurviveEscaping) {
  TraceData data;
  data.total_ns = 7;
  QueryTrace::Span span;
  span.phase = TracePhase::kMonteCarlo;
  span.start_ns = 1;
  span.duration_ns = 2;
  span.counters.push_back({"we\"ird\\name\n", 3});
  data.spans.push_back(span);
  auto parsed = TraceFromJson(data.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->spans.size(), 1u);
  ASSERT_EQ(parsed->spans[0].counters.size(), 1u);
  EXPECT_EQ(parsed->spans[0].counters[0].name, "we\"ird\\name\n");
  EXPECT_EQ(parsed->ToJson(), data.ToJson());
}

TEST(TraceJsonTest, MalformedInputsAreRejected) {
  const char* bad[] = {
      "",
      "{",
      "{}",
      "{\"total_ns\":1}",  // missing spans
      "{\"total_ns\":1,\"spans\":[]} trailing",
      "{\"total_ns\":1,\"spans\":[{\"phase\":\"warp\",\"start_ns\":0,"
      "\"duration_ns\":0,\"counters\":[]}]}",  // unknown phase
      "{\"total_ns\":-1,\"spans\":[]}",        // negative
      "{\"spans\":[],\"total_ns\":1}",         // wrong key order (strict)
  };
  for (const char* json : bad) {
    SCOPED_TRACE(json);
    EXPECT_FALSE(TraceFromJson(json).ok());
  }
  EXPECT_TRUE(TraceFromJson("{\"total_ns\":1,\"spans\":[]}").ok());
}

TEST(TraceJsonTest, LiveQueryTraceRoundTrips) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions traced;
  traced.trace = true;
  auto answer = session.Query(kUnsafeQuery, traced);
  ASSERT_TRUE(answer.ok());
  ASSERT_NE(answer->trace, nullptr);
  auto parsed = TraceFromJson(TraceToJson(*answer->trace));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->spans.size(), answer->trace->spans().size());
  EXPECT_EQ(parsed->ToJson(), TraceToJson(*answer->trace));
}

TEST(TraceTest, TracedSessionQueryCarriesPhases) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});

  QueryOptions untraced;
  auto plain = session.Query(kSafeQuery, untraced);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->trace, nullptr);

  QueryOptions traced;
  traced.trace = true;
  auto safe = session.Query("S(x,y), T(y)", traced);
  ASSERT_TRUE(safe.ok());
  ASSERT_NE(safe->trace, nullptr);
  EXPECT_GT(safe->trace->PhaseNs(TracePhase::kParse), 0u);
  EXPECT_GT(safe->trace->PhaseNs(TracePhase::kCacheProbe), 0u);
  EXPECT_GT(safe->trace->PhaseNs(TracePhase::kLifted), 0u);
  EXPECT_EQ(safe->trace->PhaseNs(TracePhase::kDpll), 0u);

  auto unsafe = session.Query(kUnsafeQuery, traced);
  ASSERT_TRUE(unsafe.ok());
  ASSERT_NE(unsafe->trace, nullptr);
  // The lifted attempt failed Unsupported: it shows up as the safety
  // check, and the work lands in lineage + dpll.
  EXPECT_GT(unsafe->trace->PhaseNs(TracePhase::kSafetyCheck), 0u);
  EXPECT_GT(unsafe->trace->PhaseNs(TracePhase::kLineage), 0u);
  EXPECT_GT(unsafe->trace->PhaseNs(TracePhase::kDpll), 0u);
  EXPECT_EQ(unsafe->trace->PhaseNs(TracePhase::kLifted), 0u);
  // DPLL span carries its decision counter.
  bool saw_decisions = false;
  for (const auto& span : unsafe->trace->spans()) {
    if (span.phase != TracePhase::kDpll) continue;
    for (const auto& c : span.counters) {
      if (c.name == "decisions" && c.value > 0) saw_decisions = true;
    }
  }
  EXPECT_TRUE(saw_decisions);
}

TEST(TraceTest, CacheHitTraceHasProbeButNoExecution) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions traced;
  traced.trace = true;
  ASSERT_TRUE(session.Query(kUnsafeQuery, traced).ok());
  auto hit = session.Query(kUnsafeQuery, traced);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(session.result_cache_hits(), 1u);
  ASSERT_NE(hit->trace, nullptr);
  EXPECT_GT(hit->trace->PhaseNs(TracePhase::kCacheProbe), 0u);
  EXPECT_EQ(hit->trace->PhaseNs(TracePhase::kDpll), 0u);
  bool saw_hit_counter = false;
  for (const auto& span : hit->trace->spans()) {
    if (span.phase != TracePhase::kCacheProbe) continue;
    for (const auto& c : span.counters) {
      if (c.name == "hit" && c.value == 1) saw_hit_counter = true;
    }
  }
  EXPECT_TRUE(saw_hit_counter);
}

TEST(TraceTest, RingBufferKeepsNewestFirstAndEvicts) {
  ProbDatabase pdb(HardDatabase(3));
  SessionOptions opts;
  opts.num_threads = 1;
  opts.trace_ring_size = 2;
  Session session(&pdb, opts);
  QueryOptions traced;
  traced.trace = true;
  auto a1 = session.Query("R(x)", traced);
  auto a2 = session.Query("T(y)", traced);
  auto a3 = session.Query(kSafeQuery, traced);
  ASSERT_TRUE(a1.ok());
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(a3.ok());

  // Untraced queries never enter the ring.
  ASSERT_TRUE(session.Query("S(x,y), T(y)").ok());

  auto traces = session.recent_traces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0], a3->trace);  // newest first
  EXPECT_EQ(traces[1], a2->trace);
  for (const auto& t : traces) EXPECT_GT(t->total_ns(), 0u);
}

TEST(TraceTest, TopLevelSpansCoverEndToEndWithinTenPercent) {
  // Acceptance: on a grounded (DPLL-dominated) query, the sum of
  // non-nested span durations accounts for >= 90% of the end-to-end
  // latency, i.e. the trace does not lose the query's time budget in
  // untimed gaps.
  ProbDatabase pdb(HardDatabase(6));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions traced;
  traced.trace = true;
  auto answer = session.Query(kUnsafeQuery, traced);
  ASSERT_TRUE(answer.ok());
  ASSERT_NE(answer->trace, nullptr);
  uint64_t total = answer->trace->total_ns();
  uint64_t top = answer->trace->TopLevelNs();
  ASSERT_GT(total, 0u);
  EXPECT_LE(top, total);
  EXPECT_GE(static_cast<double>(top), 0.9 * static_cast<double>(total))
      << answer->trace->ToString();
}

// ---------------------------------------------------------------------------
// Event log + slow-query log
// ---------------------------------------------------------------------------

TEST(EventLogTest, EmitsJsonLinesWithFields) {
  uint64_t now = 1'000'000;
  EventLogOptions opts;
  opts.clock_us = [&] { return now; };
  EventLog log(opts);
  log.Log(LogLevel::kInfo, "server_start",
          {LogField::Str("host", "127.0.0.1"), LogField::Uint("port", 8080),
           LogField::Double("load", 0.5)});
  auto lines = log.recent();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ts_us\":1000000"), std::string::npos);
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event\":\"server_start\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"host\":\"127.0.0.1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"port\":8080"), std::string::npos);
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, LevelGateDropsBelowMinimum) {
  EventLogOptions opts;
  opts.min_level = LogLevel::kWarn;
  EventLog log(opts);
  log.Log(LogLevel::kDebug, "noise");
  log.Log(LogLevel::kInfo, "chatter");
  log.Log(LogLevel::kWarn, "trouble");
  log.Log(LogLevel::kError, "fire");
  auto lines = log.recent();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("trouble"), std::string::npos);
  EXPECT_NE(lines[1].find("fire"), std::string::npos);
}

TEST(EventLogTest, RateLimiterRefillsWithInjectedClock) {
  uint64_t now = 0;
  EventLogOptions opts;
  opts.max_events_per_sec = 2;
  opts.clock_us = [&] { return now; };
  EventLog log(opts);
  log.Log(LogLevel::kInfo, "a");
  log.Log(LogLevel::kInfo, "b");
  log.Log(LogLevel::kInfo, "c");  // bucket empty: suppressed
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  now += 1'000'000;  // one second refills the bucket
  log.Log(LogLevel::kInfo, "d");
  EXPECT_EQ(log.emitted(), 3u);
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(EventLogTest, RingEvictsOldestFirst) {
  EventLogOptions opts;
  opts.ring_size = 2;
  opts.max_events_per_sec = 0;  // unlimited
  EventLog log(opts);
  log.Log(LogLevel::kInfo, "one");
  log.Log(LogLevel::kInfo, "two");
  log.Log(LogLevel::kInfo, "three");
  auto lines = log.recent();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("two"), std::string::npos);
  EXPECT_NE(lines[1].find("three"), std::string::npos);
  EXPECT_EQ(log.emitted(), 3u);
}

TEST(EventLogTest, AppendsToFileSink) {
  std::string path =
      ::testing::TempDir() + "/event_log_test_" +
      std::to_string(static_cast<uint64_t>(::getpid())) + ".jsonl";
  std::remove(path.c_str());
  {
    EventLogOptions opts;
    opts.file_path = path;
    EventLog log(opts);
    ASSERT_TRUE(log.file_error().ok()) << log.file_error().ToString();
    log.Log(LogLevel::kInfo, "first");
    log.Log(LogLevel::kWarn, "second");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, EntryJsonRoundTrips) {
  QueryTrace trace;
  trace.RecordSpan(TracePhase::kDpll, 10, 20, {{"decisions", 3}});
  trace.Finish();

  SlowQueryEntry entry;
  entry.ts_us = 1722000000000000ull;
  entry.latency_us = 52'417;
  entry.client = "tenant-\"7\"";
  entry.method = "grounded-exact";
  entry.statement = "SELECT PROB() FROM R, S WHERE R.x = S.x";
  entry.trace_json = TraceToJson(trace);

  std::string json = SlowQueryEntryToJson(entry);
  auto parsed = SlowQueryEntryFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ts_us, entry.ts_us);
  EXPECT_EQ(parsed->latency_us, entry.latency_us);
  EXPECT_EQ(parsed->client, entry.client);
  EXPECT_EQ(parsed->method, entry.method);
  EXPECT_EQ(parsed->statement, entry.statement);
  EXPECT_EQ(parsed->trace_json, entry.trace_json);
  EXPECT_EQ(parsed->explain_json, "");
  // Re-serialization is byte-identical.
  EXPECT_EQ(SlowQueryEntryToJson(*parsed), json);
}

TEST(SlowQueryLogTest, MalformedEntriesAreRejected) {
  const char* bad[] = {
      "",
      "{",
      "{}",
      "{\"ts_us\":1}",
      "{\"ts_us\":1,\"latency_us\":2,\"client\":\"\",\"method\":\"\","
      "\"statement\":\"q\",\"trace\":{\"bogus\":1},\"explain\":null}",
      "{\"ts_us\":-1,\"latency_us\":2,\"client\":\"\",\"method\":\"\","
      "\"statement\":\"q\",\"trace\":null,\"explain\":null}",
  };
  for (const char* json : bad) {
    SCOPED_TRACE(json);
    EXPECT_FALSE(SlowQueryEntryFromJson(json).ok());
  }
}

TEST(SlowQueryLogTest, ThresholdGateAndRingBound) {
  EventLog sink;
  SlowQueryLog::Options opts;
  opts.threshold_us = 1000;
  opts.ring_size = 2;
  opts.sink = &sink;
  SlowQueryLog log(opts);

  SlowQueryEntry fast;
  fast.latency_us = 999;
  fast.statement = "fast";
  EXPECT_FALSE(log.MaybeRecord(fast));
  EXPECT_EQ(log.total_captured(), 0u);
  EXPECT_TRUE(sink.recent().empty());

  for (uint64_t i = 0; i < 3; ++i) {
    SlowQueryEntry slow;
    slow.latency_us = 1000 + i;
    slow.statement = "slow-" + std::to_string(i);
    EXPECT_TRUE(log.MaybeRecord(slow));
  }
  EXPECT_EQ(log.total_captured(), 3u);
  auto entries = log.entries();
  ASSERT_EQ(entries.size(), 2u);  // ring bound
  EXPECT_EQ(entries[0].statement, "slow-2");  // newest first
  EXPECT_EQ(entries[1].statement, "slow-1");

  // Captured entries mirror to the sink as warn-level slow_query events.
  auto mirrored = sink.recent();
  ASSERT_EQ(mirrored.size(), 3u);
  EXPECT_NE(mirrored[0].find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(mirrored[0].find("\"event\":\"slow_query\""), std::string::npos);
  EXPECT_NE(mirrored[0].find("slow-0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Session integration: tickers vs CumulativeReport, overlays, answers API
// ---------------------------------------------------------------------------

TEST(SessionMetricsTest, TickersMatchCumulativeReportAfterMixedWorkload) {
  ProbDatabase pdb(HardDatabase(4));
  Session session(&pdb, {.num_threads = 2});

  QueryOptions exact;
  exact.exec.num_threads = 2;
  ASSERT_TRUE(session.Query(kSafeQuery, exact).ok());  // lifted

  // Sampled before the exact run: once the exact run populates the shared
  // WMC cache, even a 1-decision budget resolves this query exactly.
  QueryOptions sampled;
  sampled.prefer_lifted = false;
  sampled.max_dpll_decisions = 1;  // force the Monte Carlo fallback
  sampled.monte_carlo_samples = 20000;
  auto mc = session.Query(kUnsafeQuery, sampled);
  ASSERT_TRUE(mc.ok());
  ASSERT_EQ(mc->method, InferenceMethod::kMonteCarlo);

  ASSERT_TRUE(session.Query(kUnsafeQuery, exact).ok());  // grounded DPLL
  ASSERT_TRUE(session.Query(kUnsafeQuery, exact).ok());  // cache hit

  ConjunctiveQuery cq({Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});
  ASSERT_TRUE(session.QueryWithAnswers(cq, {"x"}, exact).ok());

  ExecReport report = session.CumulativeReport();
  MetricsSnapshot snap = session.SnapshotMetrics();
  auto counter = [&](const char* name) { return snap.counters.at(name); };

  // Every counter that mirrors a CumulativeReport field must agree with it
  // exactly: both sides are folded from the same per-query ExecReports
  // under the session lock.
  EXPECT_EQ(counter("pdb_exec_tasks_total"), report.tasks_run);
  EXPECT_EQ(counter("pdb_mc_samples_total"), report.samples_drawn);
  EXPECT_EQ(counter("pdb_mc_batches_total"), report.mc_batches);
  EXPECT_EQ(counter("pdb_dpll_decisions_total"), report.dpll_decisions);
  EXPECT_EQ(counter("pdb_dpll_cache_hits_total"), report.cache_hits);
  EXPECT_EQ(counter("pdb_dpll_component_splits_total"),
            report.dpll_component_splits);
  EXPECT_EQ(counter("pdb_dpll_parallel_splits_total"),
            report.dpll_parallel_splits);
  EXPECT_EQ(counter("pdb_wmc_shared_hits_total"), report.wmc_shared_hits);
  EXPECT_EQ(counter("pdb_wmc_shared_misses_total"), report.wmc_shared_misses);
  EXPECT_EQ(counter("pdb_wmc_shared_inserts_total"),
            report.wmc_shared_inserts);
  EXPECT_EQ(counter("pdb_wmc_shared_evictions_total"),
            report.wmc_shared_evictions);
  EXPECT_EQ(counter("pdb_lineage_matches_total"), report.lineage_matches);
  EXPECT_EQ(counter("pdb_lineage_nodes_total"), report.lineage_nodes);
  EXPECT_EQ(counter("pdb_index_builds_total"), report.index_builds);
  EXPECT_EQ(counter("pdb_index_cache_hits_total"), report.index_cache_hits);
  // Shed accounting: pdb_shed_total covers BOTH shed flavors — parallel
  // tasks the saturated pool degraded to inline execution and server-side
  // admission drops — while pdb_admission_rejected_total counts only the
  // latter. The invariant must hold exactly, like every other ticker.
  EXPECT_EQ(counter("pdb_shed_total"),
            report.shed_tasks + report.admission_rejected);
  EXPECT_EQ(counter("pdb_admission_rejected_total"),
            report.admission_rejected);
  // The QueryWithAnswers candidate sweep grounds through the compiled
  // engine and the exact queries ground FO lineage, so the lineage
  // counters must have moved.
  EXPECT_GT(report.lineage_matches, 0u);
  EXPECT_GT(report.lineage_nodes, 0u);
  EXPECT_EQ(snap.gauges.at("pdb_wmc_shared_bytes"),
            static_cast<int64_t>(report.wmc_shared_bytes));

  // Lifecycle tickers.
  EXPECT_EQ(counter("pdb_queries_total"), session.queries_served());
  EXPECT_EQ(counter("pdb_query_errors_total"), 0u);
  EXPECT_GE(counter("pdb_result_cache_hits_total"), 1u);
  EXPECT_GE(counter("pdb_queries_lifted_total"), 1u);
  EXPECT_GE(counter("pdb_queries_grounded_exact_total"), 1u);
  EXPECT_GE(counter("pdb_queries_monte_carlo_total"), 1u);
  EXPECT_EQ(snap.histograms.at("pdb_query_latency_us").count,
            session.queries_served());
  EXPECT_EQ(snap.gauges.at("pdb_result_cache_entries"),
            static_cast<int64_t>(session.cache_size()));

  // Level gauges: a live session exports itself, and with the workload done
  // nothing is in flight.
  EXPECT_EQ(snap.gauges.at("pdb_sessions_active"), 1);
  EXPECT_EQ(snap.gauges.at("pdb_requests_in_flight"), 0);
  EXPECT_EQ(session.requests_in_flight(), 0);

  // Parse errors tick pdb_query_errors_total.
  EXPECT_FALSE(session.Query("R(x").ok());
  EXPECT_EQ(session.SnapshotMetrics().counters.at("pdb_query_errors_total"),
            1u);
}

TEST(SessionMetricsTest, NoteAdmissionRejectedFoldsIntoReportAndTickers) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  ASSERT_TRUE(session.Query(kSafeQuery).ok());
  session.NoteAdmissionRejected();
  session.NoteAdmissionRejected();
  session.NoteAdmissionRejected();

  ExecReport report = session.CumulativeReport();
  EXPECT_EQ(report.admission_rejected, 3u);
  MetricsSnapshot snap = session.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("pdb_admission_rejected_total"), 3u);
  // Admission drops are load shed, so they count into pdb_shed_total too.
  EXPECT_EQ(snap.counters.at("pdb_shed_total"),
            report.shed_tasks + report.admission_rejected);
  // A shed request is not a served query.
  EXPECT_EQ(snap.counters.at("pdb_queries_total"), 1u);
  std::string text = report.ToString();
  EXPECT_NE(text.find("3 admission rejections"), std::string::npos);
}

TEST(MetricsTest, SnapshotMergeFromAddsAndKeepsDisjointMetrics) {
  MetricsRegistry a;
  a.GetCounter("pdb_queries_total")->Add(3);
  a.GetCounter("only_a_total")->Add(1);
  a.GetGauge("pdb_sessions_active")->Set(1);
  a.GetHistogram("lat")->Record(4);
  a.GetHistogram("lat")->Record(1024);

  MetricsRegistry b;
  b.GetCounter("pdb_queries_total")->Add(5);
  b.GetCounter("only_b_total")->Add(2);
  b.GetGauge("pdb_sessions_active")->Set(1);
  b.GetHistogram("lat")->Record(5);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.counters.at("pdb_queries_total"), 8u);
  EXPECT_EQ(merged.counters.at("only_a_total"), 1u);
  EXPECT_EQ(merged.counters.at("only_b_total"), 2u);
  // Summing per-session "am I alive" gauges counts the pooled sessions.
  EXPECT_EQ(merged.gauges.at("pdb_sessions_active"), 2);
  const HistogramSnapshot& lat = merged.histograms.at("lat");
  EXPECT_EQ(lat.count, 3u);
  EXPECT_EQ(lat.sum, 4u + 1024 + 5);
  EXPECT_EQ(lat.buckets[3], 2u);   // 4 and 5 share bucket 3
  EXPECT_EQ(lat.buckets[11], 1u);  // 1024
}

TEST(SessionMetricsTest, ExecReportToStringShowsSharedCacheLines) {
  ExecReport report;
  report.num_threads = 2;
  report.wmc_shared_inserts = 3;
  report.wmc_shared_evictions = 2;
  report.wmc_shared_bytes = 4096;
  std::string text = report.ToString();
  EXPECT_NE(text.find("3 shared WMC inserts"), std::string::npos);
  EXPECT_NE(text.find("2 shared WMC evictions"), std::string::npos);
  EXPECT_NE(text.find("4096 shared WMC bytes"), std::string::npos);
  ExecReport zero;
  EXPECT_EQ(zero.ToString().find("shared WMC"), std::string::npos);
}

TEST(SessionMetricsTest, AnswerInfoSurfacesMethodAndStdError) {
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});

  QueryOptions sampled;
  sampled.prefer_lifted = false;
  sampled.max_dpll_decisions = 1;  // force sampling per tuple
  sampled.monte_carlo_samples = 5000;
  std::vector<AnswerTupleInfo> info;
  auto rows = session.QueryWithAnswers(cq, {"x"}, sampled, &info);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(info.size(), rows->size());
  ASSERT_GT(info.size(), 0u);
  for (const auto& i : info) {
    EXPECT_EQ(i.method, InferenceMethod::kMonteCarlo);
    EXPECT_FALSE(i.exact);
    EXPECT_GT(i.std_error, 0.0);
    EXPECT_FALSE(i.explanation.empty());
  }

  QueryOptions exact;
  std::vector<AnswerTupleInfo> exact_info;
  ASSERT_TRUE(session.QueryWithAnswers(cq, {"x"}, exact, &exact_info).ok());
  ASSERT_EQ(exact_info.size(), info.size());
  for (const auto& i : exact_info) {
    EXPECT_TRUE(i.exact);
    EXPECT_EQ(i.std_error, 0.0);
  }
}

TEST(SessionMetricsTest, SqlWithStderrDrivesAdaptiveSampling) {
  ProbDatabase pdb(HardSqlDatabase(4));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions options;
  options.prefer_lifted = false;
  options.max_dpll_decisions = 1;  // force the Monte Carlo fallback
  options.monte_carlo_samples = 1u << 22;  // cap, not the stop rule
  auto answer = session.QuerySqlBoolean(
      "SELECT PROB() FROM R, S, T WHERE R.x = S.x AND S.y = T.y "
      "WITH STDERR 0.02",
      options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method, InferenceMethod::kMonteCarlo);
  EXPECT_FALSE(answer->exact);
  EXPECT_GT(answer->std_error, 0.0);
  EXPECT_LE(answer->std_error, 0.02);
  // The adaptive estimator stops early: far fewer samples than the cap.
  EXPECT_LT(answer->report.samples_drawn, uint64_t{1} << 22);
  EXPECT_GT(answer->report.mc_batches, 0u);
}

TEST(SessionMetricsTest, TracedSqlStatementHasCompileSpan) {
  ProbDatabase pdb(HardSqlDatabase(3));
  Session session(&pdb, {.num_threads = 1});
  QueryOptions traced;
  traced.trace = true;
  auto answer = session.QuerySqlBoolean(
      "SELECT PROB() FROM R, S WHERE R.x = S.x", traced);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_NE(answer->trace, nullptr);
  EXPECT_GT(answer->trace->PhaseNs(TracePhase::kCompile), 0u);
  EXPECT_GT(answer->trace->PhaseNs(TracePhase::kLifted), 0u);
  auto snap = session.SnapshotMetrics();
  EXPECT_EQ(snap.histograms.at("pdb_sql_statement_latency_us").count, 1u);
}

TEST(SessionMetricsTest, ScrapersRaceQueriesCleanly) {
  // Queries, scrapes, and trace reads from concurrent threads; run under
  // TSan in CI.
  ProbDatabase pdb(HardDatabase(3));
  Session session(&pdb, {.num_threads = 2});
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string text = session.MetricsText();
      EXPECT_NE(text.find("pdb_queries_total"), std::string::npos);
      (void)session.MetricsJson();
      (void)session.recent_traces();
      (void)session.CumulativeReport();
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&session, t] {
      QueryOptions options;
      options.trace = (t % 2 == 0);
      options.exec.num_threads = 2;
      for (int i = 0; i < 8; ++i) {
        auto answer = session.Query(i % 2 == 0 ? kSafeQuery : kUnsafeQuery,
                                    options);
        EXPECT_TRUE(answer.ok());
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(session.SnapshotMetrics().counters.at("pdb_queries_total"),
            session.queries_served());
}

}  // namespace
}  // namespace pdb
