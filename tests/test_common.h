/// \file test_common.h
/// \brief Shared fixtures: the paper's Figure 1 database, random TIDs, and
/// cross-implementation probability helpers.

#ifndef PDB_TESTS_TEST_COMMON_H_
#define PDB_TESTS_TEST_COMMON_H_

#include <string>
#include <vector>

#include "logic/cq.h"
#include "storage/database.h"
#include "util/check.h"
#include "util/random.h"

namespace pdb::testing {

/// Probabilities used for Figure 1 (concrete values for p1..p3, q1..q6).
struct Figure1Probs {
  double p1 = 0.3, p2 = 0.5, p3 = 0.9;
  double q1 = 0.1, q2 = 0.2, q3 = 0.4, q4 = 0.6, q5 = 0.7, q6 = 0.8;
};

/// Builds the TID of Figure 1(a): R(x) with a1..a3, S(x,y) with the six
/// rows, string-typed constants 'a1'..'a4', 'b1'..'b6'.
inline Database BuildFigure1Database(const Figure1Probs& p = {}) {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kString}}));
  PDB_CHECK(r.AddTuple({Value("a1")}, p.p1).ok());
  PDB_CHECK(r.AddTuple({Value("a2")}, p.p2).ok());
  PDB_CHECK(r.AddTuple({Value("a3")}, p.p3).ok());
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  Relation s("S", Schema({{"x", ValueType::kString},
                          {"y", ValueType::kString}}));
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b1")}, p.q1).ok());
  PDB_CHECK(s.AddTuple({Value("a1"), Value("b2")}, p.q2).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b3")}, p.q3).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b4")}, p.q4).ok());
  PDB_CHECK(s.AddTuple({Value("a2"), Value("b5")}, p.q5).ok());
  PDB_CHECK(s.AddTuple({Value("a4"), Value("b6")}, p.q6).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  return db;
}

/// The closed form for Example 2.1 on Figure 1:
/// (p1 + (1-p1)(1-q1)(1-q2)) (p2 + (1-p2)(1-q3)(1-q4)(1-q5)) (1-q6).
inline double Example21ClosedForm(const Figure1Probs& p = {}) {
  return (p.p1 + (1 - p.p1) * (1 - p.q1) * (1 - p.q2)) *
         (p.p2 + (1 - p.p2) * (1 - p.q3) * (1 - p.q4) * (1 - p.q5)) *
         (1 - p.q6);
}

/// Options for random TID generation.
struct RandomTidOptions {
  size_t domain_size = 4;
  /// Chance that each possible tuple is stored at all.
  double presence = 0.7;
  /// Probabilities are sampled uniformly from (0,1); with this chance a
  /// stored tuple instead gets an extreme probability (0 or 1).
  double extreme_chance = 0.1;
};

/// Adds a relation of the given arity filled with random integer tuples.
inline void AddRandomRelation(Database* db, const std::string& name,
                              size_t arity, Rng* rng,
                              const RandomTidOptions& options = {}) {
  Relation rel(name, Schema::Anonymous(arity, ValueType::kInt));
  size_t total = 1;
  for (size_t i = 0; i < arity; ++i) total *= options.domain_size;
  for (size_t combo = 0; combo < total; ++combo) {
    if (!rng->Bernoulli(options.presence)) continue;
    Tuple tuple;
    size_t rest = combo;
    for (size_t i = 0; i < arity; ++i) {
      tuple.push_back(
          Value(static_cast<int64_t>(rest % options.domain_size + 1)));
      rest /= options.domain_size;
    }
    double p = rng->NextDouble();
    if (rng->Bernoulli(options.extreme_chance)) {
      p = rng->Bernoulli(0.5) ? 0.0 : 1.0;
    }
    PDB_CHECK(rel.AddTuple(std::move(tuple), p).ok());
  }
  PDB_CHECK(db->AddRelation(std::move(rel)).ok());
}

/// Generates a random Boolean CQ over the vocabulary R/1, S/2, T/1, U/2
/// with variables drawn from a small pool (so joins actually happen) and
/// occasional constants.
inline ConjunctiveQuery RandomCq(Rng* rng) {
  const char* unary[] = {"R", "T"};
  const char* binary[] = {"S", "U"};
  const char* vars[] = {"x", "y", "z"};
  size_t num_atoms = 1 + rng->Uniform(3);
  ConjunctiveQuery cq;
  for (size_t i = 0; i < num_atoms; ++i) {
    auto term = [&]() {
      if (rng->Bernoulli(0.15)) {
        return Term::Const(Value(static_cast<int64_t>(1 + rng->Uniform(3))));
      }
      return Term::Var(vars[rng->Uniform(3)]);
    };
    if (rng->Bernoulli(0.5)) {
      cq.AddAtom(Atom(unary[rng->Uniform(2)], {term()}));
    } else {
      cq.AddAtom(Atom(binary[rng->Uniform(2)], {term(), term()}));
    }
  }
  return cq;
}

/// A random union of 1-3 RandomCq disjuncts (safe and unsafe alike).
inline Ucq RandomUcq(Rng* rng) {
  size_t disjuncts = 1 + rng->Uniform(3);
  Ucq ucq;
  for (size_t i = 0; i < disjuncts; ++i) ucq.AddDisjunct(RandomCq(rng));
  return ucq;
}

/// A random TID over the RandomCq vocabulary (domain {1,2,3}).
inline Database RandomVocabularyDb(Rng* rng) {
  Database db;
  RandomTidOptions options;
  options.domain_size = 3;
  options.presence = 0.75;
  AddRandomRelation(&db, "R", 1, rng, options);
  AddRandomRelation(&db, "S", 2, rng, options);
  AddRandomRelation(&db, "T", 1, rng, options);
  AddRandomRelation(&db, "U", 2, rng, options);
  return db;
}

}  // namespace pdb::testing

#endif  // PDB_TESTS_TEST_COMMON_H_
