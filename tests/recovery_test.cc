// Crash-recovery differential tests: randomized workloads against
// DurableDatabase, killed deterministically at every single I/O operation
// via FaultInjectionEnv, then recovered and compared — structurally and by
// query answers — against an in-memory oracle holding exactly the
// acknowledged-synced prefix of the workload.
//
// The durability contract under test (storage/durable_db.h):
//  - SyncMode::kAlways + a clean crash (unsynced data lost whole): the
//    recovered database equals the oracle at last_synced_seq() exactly;
//  - a torn crash (an arbitrary prefix of unsynced bytes survives): the
//    recovered database equals the oracle at some seq >= last_synced_seq()
//    — never less (acknowledged-synced writes are never lost), and never a
//    state that was not a prefix of the submitted operations;
//  - recovery never fails on legitimately crashed state (Open always
//    succeeds after a crash, truncating torn tails).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/session.h"
#include "fault_env.h"
#include "storage/durable_db.h"
#include "storage/write_batch.h"
#include "test_common.h"
#include "util/random.h"
#include "util/string_util.h"

namespace pdb {
namespace {

using testing::FaultInjectionEnv;
using testing::RandomUcq;

// ---------------------------------------------------------------------
// Workload model: a deterministic op list derived from a seed.

struct WorkloadOp {
  enum Kind { kCreate, kInsert, kCheckpoint, kBatch } kind = kInsert;
  std::string relation;
  size_t arity = 1;
  Tuple tuple;
  double prob = 1.0;
  // kBatch: the staged mutations (kCreate / kInsert only), committed
  // atomically through ApplyBatch — one WAL record, all-or-nothing.
  std::vector<WorkloadOp> batch_ops;
};

std::vector<WorkloadOp> MakeWorkload(uint64_t seed, size_t num_ops) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const struct {
    const char* name;
    size_t arity;
  } vocab[] = {{"R", 1}, {"S", 2}, {"T", 1}, {"U", 2}};
  std::vector<WorkloadOp> ops;
  // Create two relations up front so early inserts have a target.
  for (size_t i = 0; i < 2; ++i) {
    WorkloadOp op;
    op.kind = WorkloadOp::kCreate;
    op.relation = vocab[i].name;
    op.arity = vocab[i].arity;
    ops.push_back(op);
  }
  auto random_insert = [&](WorkloadOp* op) {
    op->kind = WorkloadOp::kInsert;
    size_t v = rng.Uniform(4);
    op->relation = vocab[v].name;
    op->arity = vocab[v].arity;
    for (size_t c = 0; c < vocab[v].arity; ++c) {
      op->tuple.emplace_back(static_cast<int64_t>(1 + rng.Uniform(3)));
    }
    op->prob = rng.Bernoulli(0.1) ? (rng.Bernoulli(0.5) ? 0.0 : 1.0)
                                  : rng.NextDouble();
  };
  while (ops.size() < num_ops) {
    WorkloadOp op;
    uint64_t roll = rng.Uniform(100);
    if (roll < 10) {
      op.kind = WorkloadOp::kCreate;
      size_t v = rng.Uniform(4);
      op.relation = vocab[v].name;
      op.arity = vocab[v].arity;
    } else if (roll < 15) {
      op.kind = WorkloadOp::kCheckpoint;
    } else if (roll < 35) {
      // Atomic batches, 2–5 mutations, occasionally leading with a DDL
      // create so replay must honor the in-batch catalog change. The tiny
      // value domain makes in-batch and cross-batch duplicates (which
      // reject the WHOLE batch) routine.
      op.kind = WorkloadOp::kBatch;
      size_t n = 2 + rng.Uniform(4);
      if (rng.Bernoulli(0.25)) {
        WorkloadOp create;
        create.kind = WorkloadOp::kCreate;
        size_t v = rng.Uniform(4);
        create.relation = vocab[v].name;
        create.arity = vocab[v].arity;
        op.batch_ops.push_back(std::move(create));
      }
      while (op.batch_ops.size() < n) {
        WorkloadOp row;
        random_insert(&row);
        op.batch_ops.push_back(std::move(row));
      }
    } else {
      random_insert(&op);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// Applies one op to a plain in-memory Database with the same validation
// rules as DurableDatabase; returns true when the op would be logged
// (i.e. consumes a sequence number).
bool OracleApply(Database* db, const WorkloadOp& op) {
  switch (op.kind) {
    case WorkloadOp::kCreate: {
      if (db->HasRelation(op.relation)) return false;
      return db
          ->AddRelation(
              Relation(op.relation, Schema::Anonymous(op.arity)))
          .ok();
    }
    case WorkloadOp::kInsert: {
      auto rel = db->GetMutable(op.relation);
      if (!rel.ok()) return false;
      return (*rel)->AddTuple(op.tuple, op.prob).ok();
    }
    case WorkloadOp::kCheckpoint:
      return false;  // no state change, no sequence number
    case WorkloadOp::kBatch:
      return false;  // handled by OracleApplyBatch (atomic, multi-seq)
  }
  return false;
}

// Atomic-batch oracle: mirrors DurableDatabase::ApplyBatch — the whole
// batch is validated against a trial copy first; any invalid op rejects
// everything (no state change, no sequence numbers). On success every
// mutation applies in order. Returns the per-mutation intermediate states
// appended (empty when rejected); only the LAST of those is a state
// recovery may ever observe, since a batch replays all-or-nothing.
std::vector<Database> OracleApplyBatch(Database* db, const WorkloadOp& op) {
  Database trial(*db);
  for (const WorkloadOp& sub : op.batch_ops) {
    if (!OracleApply(&trial, sub)) return {};
  }
  std::vector<Database> intermediates;
  for (const WorkloadOp& sub : op.batch_ops) {
    PDB_CHECK(OracleApply(db, sub));
    intermediates.push_back(*db);
  }
  return intermediates;
}

// Runs one op against the durable database (errors expected under crash
// injection are fine — the caller tracks progress via sequence numbers).
void DurableApply(DurableDatabase* db, const WorkloadOp& op) {
  switch (op.kind) {
    case WorkloadOp::kCreate:
      db->CreateRelation(op.relation, Schema::Anonymous(op.arity))
          .ok();  // may legitimately fail (duplicate, injected fault)
      break;
    case WorkloadOp::kInsert:
      db->Insert(op.relation, op.tuple, op.prob).ok();
      break;
    case WorkloadOp::kCheckpoint:
      db->Checkpoint().ok();
      break;
    case WorkloadOp::kBatch: {
      WriteBatch batch;
      for (const WorkloadOp& sub : op.batch_ops) {
        if (sub.kind == WorkloadOp::kCreate) {
          batch.CreateRelation(sub.relation, Schema::Anonymous(sub.arity));
        } else {
          batch.Insert(sub.relation, sub.tuple, sub.prob);
        }
      }
      db->ApplyBatch(&batch).ok();  // rejection/fault are fine
      break;
    }
  }
}

// states[j] = the database after the first j *logged* mutations;
// states[0] is empty. boundary[j] marks the seqs recovery may legally
// land on: mid-batch seqs are NOT boundaries — a WriteBatch record
// replays whole or not at all, so observing one is an atomicity bug.
struct Oracle {
  std::vector<Database> states;
  std::vector<bool> boundary;
};

Oracle OracleStates(const std::vector<WorkloadOp>& ops) {
  Oracle oracle;
  oracle.states.emplace_back();
  oracle.boundary.push_back(true);
  Database current;
  for (const WorkloadOp& op : ops) {
    if (op.kind == WorkloadOp::kBatch) {
      std::vector<Database> mid = OracleApplyBatch(&current, op);
      for (size_t i = 0; i < mid.size(); ++i) {
        oracle.states.push_back(std::move(mid[i]));
        oracle.boundary.push_back(i + 1 == mid.size());
      }
    } else if (OracleApply(&current, op)) {
      oracle.states.push_back(current);
      oracle.boundary.push_back(true);
    }
  }
  return oracle;
}

// Structural, bit-exact equality: names, schemas, rows, probabilities.
::testing::AssertionResult DatabasesEqual(const Database& got,
                                          const Database& want) {
  auto got_names = got.RelationNames();
  auto want_names = want.RelationNames();
  if (got_names != want_names) {
    return ::testing::AssertionFailure()
           << "relation sets differ: got " << got_names.size() << ", want "
           << want_names.size();
  }
  for (const std::string& name : want_names) {
    const Relation& g = **got.Get(name);
    const Relation& w = **want.Get(name);
    if (!(g.schema() == w.schema())) {
      return ::testing::AssertionFailure() << name << ": schemas differ";
    }
    if (g.size() != w.size()) {
      return ::testing::AssertionFailure()
             << name << ": row counts differ: got " << g.size() << ", want "
             << w.size();
    }
    for (size_t i = 0; i < w.size(); ++i) {
      if (g.tuple(i) != w.tuple(i)) {
        return ::testing::AssertionFailure()
               << name << " row " << i << ": tuples differ";
      }
      if (std::memcmp(&g.probs()[i], &w.probs()[i], sizeof(double)) != 0) {
        return ::testing::AssertionFailure()
               << name << " row " << i << ": probabilities differ ("
               << g.prob(i) << " vs " << w.prob(i) << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// Bit-identical query answers on the recovered database vs the oracle.
void ExpectSameAnswers(uint64_t seed, const Database& recovered,
                       const Database& oracle) {
  ProbDatabase got{Database(recovered)};
  ProbDatabase want{Database(oracle)};
  QueryOptions options;
  options.exec.num_threads = 1;
  Rng rng(seed ^ 0xABCDEF);
  for (int q = 0; q < 3; ++q) {
    Ucq ucq = RandomUcq(&rng);
    std::string text = ucq.ToString();
    auto a = got.Query(text, options);
    auto b = want.Query(text, options);
    ASSERT_EQ(a.ok(), b.ok()) << text;
    if (a.ok()) {
      EXPECT_EQ(a->probability, b->probability) << text;
      EXPECT_EQ(a->exact, b->exact) << text;
    }
  }
}

DurableOptions Options(Env* env, uint64_t checkpoint_every_n = 0) {
  DurableOptions options;
  options.env = env;
  options.sync_mode = SyncMode::kAlways;
  options.checkpoint_every_n = checkpoint_every_n;
  return options;
}

// ---------------------------------------------------------------------
// The differential crash suite.

class RecoveryCrashFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryCrashFuzz, EveryCrashPointRecoversTheSyncedPrefix) {
  const uint64_t seed = GetParam();
  const size_t num_ops = 10 + seed % 7;
  // Some seeds run with aggressive auto-checkpointing so crash points land
  // inside snapshot writes, renames, WAL rolls, and old-file deletion.
  const uint64_t checkpoint_every = (seed % 3 == 0) ? 4 : 0;
  std::vector<WorkloadOp> ops = MakeWorkload(seed, num_ops);
  Oracle oracle = OracleStates(ops);
  const std::vector<Database>& states = oracle.states;

  // Dry run: count the workload's I/O operations (open + ops + close).
  uint64_t total_io = 0;
  {
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    auto db = DurableDatabase::Open("/db", Options(&fault, checkpoint_every));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (const WorkloadOp& op : ops) DurableApply(db->get(), op);
    ASSERT_TRUE((*db)->Close().ok());
    // Sanity: the full run must land exactly on the final oracle state.
    ASSERT_TRUE(DatabasesEqual((*db)->pdb().database(), states.back()));
    ASSERT_EQ((*db)->last_seq(), states.size() - 1);
    total_io = fault.ops();
  }
  ASSERT_GT(total_io, 0u);

  // Crash at every single I/O point.
  for (uint64_t crash = 0; crash < total_io; ++crash) {
    SCOPED_TRACE(StrFormat("crash at I/O op %llu of %llu",
                           static_cast<unsigned long long>(crash),
                           static_cast<unsigned long long>(total_io)));
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    uint64_t synced_seq = 0;
    {
      fault.CrashAfter(crash);
      auto db = DurableDatabase::Open("/db",
                                      Options(&fault, checkpoint_every));
      if (db.ok()) {
        for (const WorkloadOp& op : ops) DurableApply(db->get(), op);
        synced_seq = (*db)->last_synced_seq();
        // Do NOT Close(): the process just died.
      }
      // Open itself failing at this crash point means no op was ever
      // acknowledged: synced_seq stays 0 and recovery must yield the
      // empty database (or whatever the injected-crash open left — which
      // is nothing, since the first synced write happens after open).
    }
    // The crash: everything unsynced is gone.
    fault.DropUnsyncedData();
    fault.ClearFaults();

    auto reopened = DurableDatabase::Open("/db",
                                          Options(&fault, checkpoint_every));
    ASSERT_TRUE(reopened.ok())
        << "recovery must never fail on crashed state: "
        << reopened.status().ToString();
    ASSERT_LT(synced_seq, states.size());
    ASSERT_TRUE(oracle.boundary[synced_seq])
        << "acknowledged seq " << synced_seq
        << " lands mid-batch: an ApplyBatch ack was not atomic";
    EXPECT_TRUE(
        DatabasesEqual((*reopened)->pdb().database(), states[synced_seq]))
        << "recovered state != oracle at synced seq " << synced_seq;
    EXPECT_EQ((*reopened)->last_seq(), synced_seq);

    // Differential queries on a sample of crash points (full structural
    // equality already ran on every point; queries are the expensive bit).
    if (crash % 17 == 0 || crash + 1 == total_io) {
      ExpectSameAnswers(seed, (*reopened)->pdb().database(),
                        states[synced_seq]);
    }

    // The reopened database must accept new writes (the I/O-error latch
    // belongs to the dead process, not the recovered one).
    Tuple probe{Value(int64_t{7})};
    if (!(*reopened)->pdb().database().HasRelation("R")) {
      ASSERT_TRUE(
          (*reopened)->CreateRelation("R", Schema::Anonymous(1)).ok());
    }
    auto rel = (*reopened)->pdb().database().Get("R");
    if (!(*rel)->Contains(probe)) {
      EXPECT_TRUE((*reopened)->Insert("R", probe, 0.5).ok());
    }
  }
}

TEST_P(RecoveryCrashFuzz, TornCrashesRecoverSomeAcknowledgedPrefix) {
  const uint64_t seed = GetParam();
  const size_t num_ops = 10 + seed % 7;
  std::vector<WorkloadOp> ops = MakeWorkload(seed, num_ops);
  Oracle oracle = OracleStates(ops);
  const std::vector<Database>& states = oracle.states;

  uint64_t total_io = 0;
  {
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    auto db = DurableDatabase::Open("/db", Options(&fault));
    ASSERT_TRUE(db.ok());
    for (const WorkloadOp& op : ops) DurableApply(db->get(), op);
    ASSERT_TRUE((*db)->Close().ok());
    total_io = fault.ops();
  }

  // Tear at a sample of crash points (every point is covered by the exact
  // suite above; the torn model adds a random surviving tail prefix).
  Rng tear_rng(seed * 31 + 5);
  for (uint64_t crash = seed % 5; crash < total_io; crash += 5) {
    SCOPED_TRACE(StrFormat("torn crash at I/O op %llu",
                           static_cast<unsigned long long>(crash)));
    MemEnv mem;
    FaultInjectionEnv fault(&mem);
    uint64_t synced_seq = 0;
    {
      fault.CrashAfter(crash);
      auto db = DurableDatabase::Open("/db", Options(&fault));
      if (db.ok()) {
        for (const WorkloadOp& op : ops) DurableApply(db->get(), op);
        synced_seq = (*db)->last_synced_seq();
      }
    }
    fault.DropUnsyncedDataTorn(&tear_rng);
    fault.ClearFaults();

    auto reopened = DurableDatabase::Open("/db", Options(&fault));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    // A torn tail may preserve records past the last synced op, but never
    // lose a synced one: the recovered state must be the oracle at some
    // j >= synced_seq.
    uint64_t recovered_seq = (*reopened)->last_seq();
    ASSERT_GE(recovered_seq, synced_seq);
    ASSERT_LT(recovered_seq, states.size());
    ASSERT_TRUE(oracle.boundary[recovered_seq])
        << "torn-tail recovery landed mid-batch at seq " << recovered_seq
        << ": a WriteBatch record was split";
    EXPECT_TRUE(DatabasesEqual((*reopened)->pdb().database(),
                               states[recovered_seq]))
        << "recovered state is not the oracle prefix at its own seq "
        << recovered_seq;
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, RecoveryCrashFuzz,
                         ::testing::Range(uint64_t{0}, uint64_t{100}));

// ---------------------------------------------------------------------
// Directed coverage.

TEST(DurableDatabaseTest, OpenCreatesEmptyDatabase) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->last_seq(), 0u);
  EXPECT_TRUE((*db)->pdb().database().RelationNames().empty());
}

TEST(DurableDatabaseTest, RoundTripsAllValueTypesBitExactly) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  Tuple row{Value(int64_t{-42}), Value(0.1 + 0.2), Value(std::string("a\0b", 3))};
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    Schema schema({{"i", ValueType::kInt},
                   {"d", ValueType::kDouble},
                   {"s", ValueType::kString}});
    ASSERT_TRUE((*db)->CreateRelation("Mixed", schema).ok());
    ASSERT_TRUE((*db)->Insert("Mixed", row, 0.1 + 0.2).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  const Relation& rel = **(*db)->pdb().database().Get("Mixed");
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.tuple(0), row);
  double expected = 0.1 + 0.2;
  EXPECT_EQ(std::memcmp(&rel.probs()[0], &expected, sizeof(double)), 0);
}

TEST(DurableDatabaseTest, ValidationFailuresAreNeverLogged) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
  ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
  uint64_t seq = (*db)->last_seq();
  // Duplicate relation, missing relation, bad arity, duplicate tuple,
  // probability out of range: all rejected before touching the log.
  EXPECT_FALSE((*db)->CreateRelation("R", Schema::Anonymous(2)).ok());
  EXPECT_FALSE((*db)->Insert("Nope", {Value(int64_t{1})}, 0.5).ok());
  EXPECT_FALSE(
      (*db)->Insert("R", {Value(int64_t{1}), Value(int64_t{2})}, 0.5).ok());
  EXPECT_FALSE((*db)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
  EXPECT_FALSE((*db)->Insert("R", {Value(int64_t{2})}, 1.5).ok());
  EXPECT_EQ((*db)->last_seq(), seq);
}

TEST(DurableDatabaseTest, CheckpointCompactsAndRecoveryUsesSnapshot) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("R", {Value(int64_t{i})}, 0.1 * (i + 1) / 2).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{99})}, 0.5).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  const RecoveryStats& rec = (*db)->recovery_stats();
  EXPECT_EQ(rec.snapshot_seq, 11u);     // create + 10 inserts
  EXPECT_EQ(rec.replayed_records, 1u);  // the post-checkpoint insert
  EXPECT_EQ((*db)->last_seq(), 12u);
  EXPECT_EQ((**(*db)->pdb().database().Get("R")).size(), 11u);
}

// Files in `dir` whose name starts with `prefix`, sorted (MemEnv sorts).
std::vector<std::string> FilesWithPrefix(Env* env, const std::string& dir,
                                         const std::string& prefix) {
  auto children = env->GetChildren(dir);
  PDB_CHECK(children.ok());
  std::vector<std::string> out;
  for (const std::string& name : *children) {
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  return out;
}

// Default retention (1): each checkpoint leaves exactly the snapshot it
// wrote plus the fresh WAL segment — older files are gone.
TEST(DurableDatabaseTest, DefaultRetentionKeepsOnlyLatestCheckpoint) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{round})}, 0.5).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_EQ(FilesWithPrefix(&mem, "/data", "snap-").size(), 1u);
    EXPECT_EQ(FilesWithPrefix(&mem, "/data", "wal-").size(), 1u);
  }
}

// --retain-checkpoints 2: after three checkpoints the two newest
// snapshots survive, together with every WAL segment needed to recover
// from the *older* retained snapshot; recovery still lands on the full
// state (it starts from the newest snapshot).
TEST(DurableDatabaseTest, RetentionKeepsNSnapshotsAndNeededWal) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  options.retain_checkpoints = 2;
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{round})}, 0.5).ok());
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
    EXPECT_EQ(FilesWithPrefix(&mem, "/data", "snap-").size(), 2u);
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{99})}, 0.5).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((**(*db)->pdb().database().Get("R")).size(), 4u);
  EXPECT_EQ((*db)->recovery_stats().replayed_records, 1u);
}

// The point of retaining an older checkpoint: when the newest snapshot is
// damaged, recovery skips it and rebuilds the identical state from the
// previous snapshot plus the retained WAL segments.
TEST(DurableDatabaseTest, RetainedCheckpointCoversCorruptNewestSnapshot) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  options.retain_checkpoints = 2;
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
    for (int round = 0; round < 2; ++round) {
      ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{round})}, 0.5).ok());
      ASSERT_TRUE((*db)->Checkpoint().ok());
    }
    ASSERT_TRUE((*db)->Close().ok());
  }
  std::vector<std::string> snaps = FilesWithPrefix(&mem, "/data", "snap-");
  ASSERT_EQ(snaps.size(), 2u);
  {  // Overwrite the newest snapshot with garbage.
    auto file = mem.NewWritableFile("/data/" + snaps.back());
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("not a snapshot").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->recovery_stats().snapshots_skipped, 1u);
  const Relation& rel = **(*db)->pdb().database().Get("R");
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains({Value(int64_t{0})}));
  EXPECT_TRUE(rel.Contains({Value(int64_t{1})}));
}

TEST(DurableDatabaseTest, IoErrorLatchesReadOnlyAndReopenClears) {
  MemEnv mem;
  testing::FaultInjectionEnv fault(&mem);
  DurableOptions options;
  options.env = &fault;
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
  fault.FailOnce("sync", 0);
  EXPECT_EQ((*db)->Insert("R", {Value(int64_t{1})}, 0.5).code(),
            StatusCode::kIoError);
  // Latched: even though faults are gone, the handle refuses writes (the
  // log tail is no longer trustworthy).
  EXPECT_EQ((*db)->Insert("R", {Value(int64_t{2})}, 0.5).code(),
            StatusCode::kFailedPrecondition);
  fault.DropUnsyncedData();
  auto reopened = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
}

TEST(DurableDatabaseTest, SyncModeNoneLosesUnsyncedAcksButKeepsSynced) {
  MemEnv mem;
  testing::FaultInjectionEnv fault(&mem);
  DurableOptions options;
  options.env = &fault;
  options.sync_mode = SyncMode::kNone;
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
    ASSERT_TRUE((*db)->SyncWal().ok());
    EXPECT_EQ((*db)->last_synced_seq(), 2u);
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{2})}, 0.5).ok());
    EXPECT_EQ((*db)->last_seq(), 3u);
    EXPECT_EQ((*db)->last_synced_seq(), 2u);
    // Crash without close: fail all further I/O so the destructor's
    // close cannot sync the tail the "crash" is supposed to lose.
    fault.CrashAfter(fault.ops());
  }
  fault.DropUnsyncedData();
  fault.ClearFaults();
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->last_seq(), 2u);
  EXPECT_EQ((**(*db)->pdb().database().Get("R")).size(), 1u);
}

// ---------------------------------------------------------------------
// Warm-restart of the shared WMC cache (the acceptance criterion: a
// repeated hard query after restart hits the shared cache, hit counter
// > 0, without recomputation).

TEST(WmcWarmRestartTest, ReloadedStoreServesSharedCacheHits) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  // The unsafe triangle-ish query: forced through grounded inference, so
  // it populates the shared WMC cache.
  const std::string query = "R(x), S(x,y), T(y)";
  double first_answer = 0;
  {
    auto db = DurableDatabase::Open("/data", options);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation(
        "R", Schema({{"x", ValueType::kInt}})).ok());
    ASSERT_TRUE((*db)->CreateRelation(
        "T", Schema({{"y", ValueType::kInt}})).ok());
    ASSERT_TRUE((*db)->CreateRelation(
        "S", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}})).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("R", {Value(int64_t{i})}, 0.3 + 0.05 * i).ok());
      ASSERT_TRUE(
          (*db)->Insert("T", {Value(int64_t{i})}, 0.2 + 0.05 * i).ok());
      for (int j = 0; j < 6; ++j) {
        if ((i + j) % 2 == 0) {
          ASSERT_TRUE((*db)
                          ->Insert("S", {Value(int64_t{i}), Value(int64_t{j})},
                                   0.5 + 0.04 * j)
                          .ok());
        }
      }
    }

    auto cache = std::make_shared<WmcCache>();
    SessionOptions session_options;
    session_options.num_threads = 1;
    session_options.external_wmc_cache = cache;
    Session session(&(*db)->pdb(), session_options);
    auto answer = session.Query(query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    first_answer = answer->probability;
    ASSERT_GT(cache->stats().inserts, 0u);

    ASSERT_TRUE((*db)->SpillWmcCache(*cache).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }

  // "Restart": reopen, reload the component store into a fresh cache, and
  // answer the same query through a fresh session.
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  auto cache = std::make_shared<WmcCache>();
  auto loaded = (*db)->LoadWmcCache(cache.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_GT(*loaded, 0u);
  EXPECT_EQ(cache->stats().entries, *loaded);

  SessionOptions session_options;
  session_options.num_threads = 1;
  session_options.external_wmc_cache = cache;
  Session session(&(*db)->pdb(), session_options);
  auto answer = session.Query(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->probability, first_answer);  // bit-identical
  EXPECT_GT(cache->stats().hits, 0u)
      << "the warm cache served no hits: warm restart is not working";
}

TEST(WmcWarmRestartTest, TornComponentStoreLoadsValidPrefix) {
  MemEnv mem;
  DurableOptions options;
  options.env = &mem;
  auto db = DurableDatabase::Open("/data", options);
  ASSERT_TRUE(db.ok());
  WmcCache cache;
  for (uint64_t i = 0; i < 2000; ++i) {
    WmcCache::Key key;
    key.sig.hi = i * 7919;
    key.sig.lo = i;
    key.weight_fp = ~i;
    cache.Insert(key, 0.5);
  }
  ASSERT_TRUE((*db)->SpillWmcCache(cache).ok());

  // Tear the store inside its final record: the loader takes the valid
  // prefix (the full earlier batches) instead of failing.
  std::string contents = mem.FileContents("/data/wmc.store");
  ASSERT_GT(contents.size(), 5u);
  mem.SetFileContents("/data/wmc.store",
                      contents.substr(0, contents.size() - 5));
  WmcCache reloaded;
  auto loaded = (*db)->LoadWmcCache(&reloaded);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(*loaded, 0u);
  EXPECT_LT(*loaded, 2000u);
  EXPECT_EQ(reloaded.stats().entries, *loaded);
}

}  // namespace
}  // namespace pdb
