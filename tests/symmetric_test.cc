#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "logic/parser.h"
#include "symmetric/fo2.h"
#include "symmetric/symmetric.h"
#include "test_common.h"
#include "mln/mln.h"
#include "wmc/dpll.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

SymmetricDatabase H0Sym(double pr, double ps, double pt, size_t n) {
  return SymmetricDatabase({{"R", 1, pr}, {"S", 2, ps}, {"T", 1, pt}}, n);
}

// Exact grounded reference on the materialized symmetric database.
double GroundTruth(const FoPtr& sentence, const SymmetricDatabase& sym) {
  auto db = sym.Materialize();
  PDB_CHECK(db.ok());
  FormulaManager mgr;
  auto domain = sym.Domain();
  auto lineage = BuildLineage(sentence, *db, &mgr, &domain);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  auto p = counter.Compute(lineage->root);
  PDB_CHECK(p.ok());
  return *p;
}

// ---------------------------------------------------------------------------
// SymmetricDatabase basics
// ---------------------------------------------------------------------------

TEST(SymmetricDbTest, MaterializeShape) {
  SymmetricDatabase sym = H0Sym(0.5, 0.25, 0.75, 3);
  auto db = sym.Materialize();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db->Get("R"))->size(), 3u);
  EXPECT_EQ((*db->Get("S"))->size(), 9u);
  EXPECT_DOUBLE_EQ((*db->Get("S"))->prob(0), 0.25);
  // Guard.
  SymmetricDatabase big({{"S", 2, 0.5}}, 10000);
  EXPECT_EQ(big.Materialize().status().code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// The paper's closed form for H0 (§8)
// ---------------------------------------------------------------------------

TEST(SymmetricTest, H0ClosedFormMatchesBruteForceTinyDomains) {
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  ASSERT_TRUE(h0.ok());
  for (size_t n : {1u, 2u, 3u}) {
    for (auto [pr, ps, pt] : {std::tuple{0.5, 0.5, 0.5},
                              std::tuple{0.25, 0.75, 0.5},
                              std::tuple{0.0, 1.0, 0.5}}) {
      SymmetricDatabase sym = H0Sym(pr, ps, pt, n);
      double closed = H0SymmetricClosedForm(pr, ps, pt, n).ToDouble();
      double brute = GroundTruth(*h0, sym);
      EXPECT_NEAR(closed, brute, 1e-9)
          << "n=" << n << " p=(" << pr << "," << ps << "," << pt << ")";
    }
  }
}

TEST(SymmetricTest, H0ClosedFormApproxAgreesWithExact) {
  for (size_t n : {5u, 10u, 20u}) {
    double exact = H0SymmetricClosedForm(0.5, 0.75, 0.25, n).ToDouble();
    double approx = H0SymmetricClosedFormApprox(0.5, 0.75, 0.25, n);
    EXPECT_NEAR(approx, exact, 1e-9 + 1e-9 * exact) << "n=" << n;
  }
}

TEST(SymmetricTest, H0ClosedFormScalesToLargeDomains) {
  // Polynomial-time evaluation far beyond brute force (Theorem 8.1 spirit).
  double p100 = H0SymmetricClosedFormApprox(0.5, 0.9, 0.5, 100);
  EXPECT_GE(p100, 0.0);
  EXPECT_LE(p100, 1.0);
}

// ---------------------------------------------------------------------------
// FO2 shape recognition
// ---------------------------------------------------------------------------

TEST(Fo2ShapeTest, RecognizesClauses) {
  auto s = ParseFo2Shape(*ParseFo(
      "(forall x forall y (R(x) | S(x,y))) & (forall x exists y S(x,y))"));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->clauses.size(), 2u);
  EXPECT_EQ(s->clauses[0].shape, Fo2Clause::Shape::kForallForall);
  EXPECT_EQ(s->clauses[1].shape, Fo2Clause::Shape::kForallExists);
}

TEST(Fo2ShapeTest, NormalizesVariableNames) {
  auto s = ParseFo2Shape(*ParseFo("forall u forall v (S(u,v) => R(u))"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->clauses[0].matrix->FreeVariables(),
            (std::set<std::string>{"x", "y"}));
}

TEST(Fo2ShapeTest, SingleVariableClause) {
  auto s = ParseFo2Shape(*ParseFo("forall x R(x)"));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->clauses[0].shape, Fo2Clause::Shape::kForallForall);
}

TEST(Fo2ShapeTest, RejectsThreeVariables) {
  EXPECT_FALSE(
      ParseFo2Shape(*ParseFo("forall x forall y forall z (S(x,y) | S(y,z))"))
          .ok());
  EXPECT_FALSE(ParseFo2Shape(*ParseFo("exists x R(x)")).ok());
}

// ---------------------------------------------------------------------------
// FO2 symmetric WFOMC (Theorem 8.1)
// ---------------------------------------------------------------------------

struct Fo2Case {
  const char* name;
  const char* sentence;
};

class Fo2WfomcTest : public ::testing::TestWithParam<Fo2Case> {};

TEST_P(Fo2WfomcTest, MatchesBruteForceOnTinyDomains) {
  auto q = ParseFo(GetParam().sentence);
  ASSERT_TRUE(q.ok());
  for (size_t n : {1u, 2u, 3u}) {
    SymmetricDatabase sym = H0Sym(0.25, 0.5, 0.75, n);
    auto lifted = SymmetricPqe(*q, sym);
    ASSERT_TRUE(lifted.ok())
        << GetParam().name << ": " << lifted.status().ToString();
    double brute = GroundTruth(*q, sym);
    EXPECT_NEAR(lifted->ToDouble(), brute, 1e-9)
        << GetParam().name << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sentences, Fo2WfomcTest,
    ::testing::Values(
        Fo2Case{"h0", "forall x forall y (R(x) | S(x,y) | T(y))"},
        Fo2Case{"implication", "forall x forall y (S(x,y) => R(x))"},
        Fo2Case{"dual_h0", "exists x exists y (R(x) & S(x,y) & T(y))"},
        Fo2Case{"symmetric_rel", "forall x forall y (S(x,y) => S(y,x))"},
        Fo2Case{"reflexive", "forall x S(x,x)"},
        Fo2Case{"irreflexive_like", "forall x (S(x,x) => R(x))"},
        Fo2Case{"forall_exists", "forall x exists y S(x,y)"},
        Fo2Case{"fe_conj",
                "(forall x exists y S(x,y)) & (forall x forall y (S(x,y) "
                "=> R(x)))"},
        Fo2Case{"exists_unary", "exists x R(x)"},
        Fo2Case{"unary_only", "forall x (R(x) | T(x))"}),
    [](const ::testing::TestParamInfo<Fo2Case>& info) {
      return info.param.name;
    });

TEST(Fo2WfomcTest2, MatchesH0ClosedForm) {
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  for (size_t n : {2u, 4u, 8u}) {
    SymmetricDatabase sym = H0Sym(0.5, 0.25, 0.75, n);
    auto cells = SymmetricPqe(*h0, sym);
    ASSERT_TRUE(cells.ok());
    BigRational closed = H0SymmetricClosedForm(0.5, 0.25, 0.75, n);
    EXPECT_EQ(*cells, closed) << "n=" << n;  // both are exact rationals
  }
}

TEST(Fo2WfomcTest2, PolynomialScalingToLargeDomains) {
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  SymmetricDatabase sym = H0Sym(0.5, 0.9, 0.5, 60);
  auto p = SymmetricPqeApprox(*h0, sym);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_GE(*p, 0.0);
  EXPECT_LE(*p, 1.0);
  EXPECT_NEAR(*p, H0SymmetricClosedFormApprox(0.5, 0.9, 0.5, 60), 1e-6);
}

TEST(Fo2WfomcTest2, SkolemizationExactness) {
  // forall x exists y S(x,y): P = (1 - (1-p)^n)^n by independence.
  auto q = ParseFo("forall x exists y S(x,y)");
  for (size_t n : {1u, 2u, 4u, 6u}) {
    SymmetricDatabase sym({{"S", 2, 0.5}}, n);
    auto p = SymmetricPqe(*q, sym);
    ASSERT_TRUE(p.ok());
    double expected =
        std::pow(1.0 - std::pow(0.5, static_cast<double>(n)),
                 static_cast<double>(n));
    EXPECT_NEAR(p->ToDouble(), expected, 1e-9) << "n=" << n;
  }
}

TEST(Fo2WfomcTest2, ExtremeProbabilities) {
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  SymmetricDatabase all_s({{"R", 1, 0.5}, {"S", 2, 1.0}}, 3);
  // S certain: constraint holds iff R full: p = (1/2)^3.
  EXPECT_NEAR(SymmetricPqe(*q, all_s)->ToDouble(), 0.125, 1e-12);
  SymmetricDatabase no_s({{"R", 1, 0.5}, {"S", 2, 0.0}}, 3);
  EXPECT_NEAR(SymmetricPqe(*q, no_s)->ToDouble(), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Lifted MLN inference (SlimShot-style): the paper-§3 translation produces
// a symmetric database, so conditional MLN queries reduce to FO2 counting.
// ---------------------------------------------------------------------------

TEST(Fo2MlnTest, SymmetricMlnInferenceMatchesEnumeration) {
  const double w = 3.9;
  // Gamma = forall x,y (F(x,y) | !Manager(x,y) | HC(x));
  // Q = exists x,y (Manager(x,y) & HC(x)); then
  // p_MLN(Q) = 1 - P(!Q & Gamma) / P(Gamma), both FO2-countable.
  auto gamma = ParseFo(
      "forall x forall y (F(x,y) | !Manager(x,y) | HighlyCompensated(x))");
  auto not_q_and_gamma = ParseFo(
      "(forall x forall y (!Manager(x,y) | !HighlyCompensated(x))) & "
      "(forall x forall y (F(x,y) | !Manager(x,y) | "
      "HighlyCompensated(x)))");
  ASSERT_TRUE(gamma.ok() && not_q_and_gamma.ok());
  // Reference: exact MLN enumeration at n = 2 (via the mln module).
  Mln mln;
  ASSERT_TRUE(mln.AddPredicate("Manager", 2).ok());
  ASSERT_TRUE(mln.AddPredicate("HighlyCompensated", 1).ok());
  auto delta = ParseFo("Manager(m, e) => HighlyCompensated(m)");
  ASSERT_TRUE(mln.AddConstraint(w, {"m", "e"}, *delta).ok());
  mln.SetDomain({Value(1), Value(2)});
  auto q = ParseFo("exists m exists e (Manager(m,e) & HighlyCompensated(m))");
  double reference = *mln.ExactQueryProbability(*q);

  SymmetricDatabase db2({{"Manager", 2, 0.5},
                         {"HighlyCompensated", 1, 0.5},
                         {"F", 2, 1.0 / w}},
                        2);
  auto p_gamma = SymmetricPqe(*gamma, db2);
  auto p_notq_gamma = SymmetricPqe(*not_q_and_gamma, db2);
  ASSERT_TRUE(p_gamma.ok()) << p_gamma.status().ToString();
  ASSERT_TRUE(p_notq_gamma.ok()) << p_notq_gamma.status().ToString();
  double lifted_mln = 1.0 - (*p_notq_gamma / *p_gamma).ToDouble();
  EXPECT_NEAR(lifted_mln, reference, 1e-9);
}

TEST(Fo2MlnTest, LiftedMlnScalesFarBeyondEnumeration) {
  const double w = 3.9;
  SymmetricDatabase big({{"Manager", 2, 0.5},
                         {"HighlyCompensated", 1, 0.5},
                         {"F", 2, 1.0 / w}},
                        30);  // 930 ground atoms: enumeration is hopeless
  auto gamma = ParseFo(
      "forall x forall y (F(x,y) | !Manager(x,y) | HighlyCompensated(x))");
  auto p_gamma = SymmetricPqe(*gamma, big);
  ASSERT_TRUE(p_gamma.ok());
  EXPECT_GT(p_gamma->ToDouble(), 0.0);
  EXPECT_LT(p_gamma->ToDouble(), 1.0);
}

TEST(Fo2WfomcTest2, GuardsTermExplosion) {
  auto h0 = ParseFo("forall x forall y (R(x) | S(x,y) | T(y))");
  SymmetricDatabase sym = H0Sym(0.5, 0.5, 0.5, 500);
  EXPECT_EQ(SymmetricPqe(*h0, sym, /*max_terms=*/1000).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdb
