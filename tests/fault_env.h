/// \file fault_env.h
/// \brief Deterministic fault-injecting filesystem for crash-recovery tests.
///
/// `FaultInjectionEnv` wraps a `MemEnv` and numbers every I/O operation —
/// each `Append`/`Flush`/`Sync`/`Close` on any file and each Env-level call
/// alike. A test can then:
///
///  - `CrashAfter(n)`: the n-th operation and everything after it fail with
///    an injected IoError, simulating the process dying mid-I/O. Running a
///    workload once to count its operations and then once per crash point
///    kills it deterministically at *every* I/O step;
///  - `DropUnsyncedData()`: revert every file to its last successfully
///    synced length — the prefix-durability model of a real crash (the OS
///    page cache dies; fsynced bytes survive);
///  - `DropUnsyncedDataTorn(&rng)`: the same, but each file keeps a random
///    prefix of its unsynced suffix — a torn final write cut at an
///    arbitrary byte;
///  - `FailOnce(op, nth)`: fail the nth occurrence of one operation kind
///    with an IoError (targeted error-path testing, no crash).
///
/// Durability model (matches the contract documented in storage/env.h):
/// `Sync` checkpoints the file's current length as durable; `RenameFile`
/// and `RemoveFile` are atomic and immediately durable; a file created and
/// never synced survives only as an empty file. Single-threaded use.

#ifndef PDB_TESTS_FAULT_ENV_H_
#define PDB_TESTS_FAULT_ENV_H_

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/random.h"
#include "util/string_util.h"

namespace pdb::testing {

class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(MemEnv* base) : base_(base) {}

  /// Total I/O operations issued so far (failed ones included).
  uint64_t ops() const { return ops_; }

  /// Operations numbered >= n (0-based) fail with an injected IoError.
  void CrashAfter(uint64_t n) { crash_at_ = n; }
  /// Stops injecting the crash (the "restarted process" runs clean).
  void ClearFaults() {
    crash_at_.reset();
    fail_op_.clear();
  }
  /// True once an operation has been failed by the crash point.
  bool crashed() const { return crashed_; }

  /// Fails the `nth` (0-based) future occurrence of operation `op`
  /// ("append", "flush", "sync", "close", "new_writable", "read",
  /// "children", "remove", "rename", "mkdir", "truncate", "size") once.
  void FailOnce(const std::string& op, uint64_t nth) {
    fail_op_[op] = nth;
  }

  /// Reverts every file to its synced prefix: what a real crash leaves
  /// behind with nothing torn mid-write.
  void DropUnsyncedData() { DropUnsynced(nullptr); }

  /// Reverts every file to its synced prefix plus a random-length prefix
  /// of the unsynced suffix — a write torn at an arbitrary byte.
  void DropUnsyncedDataTorn(Rng* rng) { DropUnsynced(rng); }

  /// Bytes recorded as durable for `path` (0 when never synced).
  uint64_t SyncedBytes(const std::string& path) const {
    auto it = synced_.find(path);
    return it == synced_.end() ? 0 : it->second;
  }

  // Env interface -----------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    PDB_RETURN_NOT_OK(MaybeFault("new_writable"));
    auto file = base_->NewWritableFile(path);
    if (!file.ok()) return file.status();
    // A fresh file is not durable until synced; at best an empty file
    // survives the crash (creation metadata).
    synced_[path] = 0;
    return Result<std::unique_ptr<WritableFile>>(
        std::make_unique<FaultFile>(this, path, std::move(*file)));
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    PDB_RETURN_NOT_OK(MaybeFault("new_writable"));
    auto file = base_->NewAppendableFile(path);
    if (!file.ok()) return file.status();
    if (synced_.find(path) == synced_.end()) synced_[path] = 0;
    return Result<std::unique_ptr<WritableFile>>(
        std::make_unique<FaultFile>(this, path, std::move(*file)));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    PDB_RETURN_NOT_OK(MaybeFault("read"));
    return base_->ReadFileToString(path, out);
  }

  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    PDB_RETURN_NOT_OK(MaybeFault("size"));
    return base_->GetFileSize(path);
  }

  Result<std::vector<std::string>> GetChildren(const std::string& dir)
      override {
    PDB_RETURN_NOT_OK(MaybeFault("children"));
    return base_->GetChildren(dir);
  }

  Status RemoveFile(const std::string& path) override {
    PDB_RETURN_NOT_OK(MaybeFault("remove"));
    Status status = base_->RemoveFile(path);
    if (status.ok()) synced_.erase(path);
    return status;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    PDB_RETURN_NOT_OK(MaybeFault("rename"));
    Status status = base_->RenameFile(from, to);
    if (status.ok()) {
      // Atomic and durable: the target inherits the source's synced
      // prefix (the durable layer always syncs before renaming).
      auto it = synced_.find(from);
      synced_[to] = it == synced_.end() ? 0 : it->second;
      synced_.erase(from);
    }
    return status;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    PDB_RETURN_NOT_OK(MaybeFault("mkdir"));
    return base_->CreateDirIfMissing(dir);
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    PDB_RETURN_NOT_OK(MaybeFault("truncate"));
    Status status = base_->TruncateFile(path, size);
    if (status.ok()) {
      auto it = synced_.find(path);
      if (it != synced_.end()) it->second = std::min(it->second, size);
    }
    return status;
  }

 private:
  class FaultFile : public WritableFile {
   public:
    FaultFile(FaultInjectionEnv* env, std::string path,
              std::unique_ptr<WritableFile> base)
        : env_(env), path_(std::move(path)), base_(std::move(base)) {}

    Status Append(std::string_view data) override {
      PDB_RETURN_NOT_OK(env_->MaybeFault("append"));
      return base_->Append(data);
    }
    Status Flush() override {
      PDB_RETURN_NOT_OK(env_->MaybeFault("flush"));
      return base_->Flush();
    }
    Status Sync() override {
      PDB_RETURN_NOT_OK(env_->MaybeFault("sync"));
      PDB_RETURN_NOT_OK(base_->Sync());
      env_->synced_[path_] = env_->base_->FileContents(path_).size();
      return Status::OK();
    }
    Status Close() override {
      PDB_RETURN_NOT_OK(env_->MaybeFault("close"));
      return base_->Close();
    }

   private:
    FaultInjectionEnv* env_;
    std::string path_;
    std::unique_ptr<WritableFile> base_;
  };

  Status MaybeFault(const char* op) {
    uint64_t n = ops_++;
    if (crash_at_.has_value() && n >= *crash_at_) {
      crashed_ = true;
      return Status::IoError(
          StrFormat("injected crash at I/O op %llu (%s)",
                    static_cast<unsigned long long>(n), op));
    }
    auto it = fail_op_.find(op);
    if (it != fail_op_.end()) {
      if (it->second == 0) {
        fail_op_.erase(it);
        return Status::IoError(StrFormat("injected %s failure", op));
      }
      --it->second;
    }
    return Status::OK();
  }

  void DropUnsynced(Rng* rng) {
    // Snapshot the name list first: truncation mutates the map.
    std::vector<std::string> paths;
    for (const auto& [path, synced] : synced_) paths.push_back(path);
    for (const std::string& path : paths) {
      if (!base_->FileExists(path)) continue;
      std::string contents = base_->FileContents(path);
      uint64_t keep = synced_[path];
      if (rng != nullptr && contents.size() > keep) {
        // Torn write: an arbitrary prefix of the unsynced suffix survived.
        keep += rng->Uniform(contents.size() - keep + 1);
      }
      if (keep < contents.size()) {
        base_->SetFileContents(path, contents.substr(0, keep));
      }
    }
  }

  MemEnv* base_;
  uint64_t ops_ = 0;
  std::optional<uint64_t> crash_at_;
  bool crashed_ = false;
  std::map<std::string, uint64_t> fail_op_;
  std::map<std::string, uint64_t> synced_;  // path -> durable bytes
};

}  // namespace pdb::testing

#endif  // PDB_TESTS_FAULT_ENV_H_
