// Tests for the cross-query WMC cache: canonical signature stability,
// weight fingerprints, sharded CLOCK eviction, and concurrent access (this
// file is also built under TSan in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "boolean/formula.h"
#include "util/random.h"
#include "wmc/dpll.h"
#include "wmc/weights.h"
#include "wmc/wmc_cache.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// Canonical signatures
// ---------------------------------------------------------------------------

TEST(FormulaSignatureTest, StableAcrossBuildOrder) {
  // (x0 & x1) | (x2 & x3), built twice with children supplied in opposite
  // orders. The stored child order differs (it is NodeId order, which
  // tracks construction order), but the signature must not.
  FormulaManager a;
  NodeId fa = a.Or(a.And(a.Var(0), a.Var(1)), a.And(a.Var(2), a.Var(3)));
  FormulaManager b;
  NodeId fb = b.Or(b.And(b.Var(3), b.Var(2)), b.And(b.Var(1), b.Var(0)));
  EXPECT_EQ(a.SignatureOf(fa), b.SignatureOf(fb));
}

TEST(FormulaSignatureTest, StableAcrossExport) {
  FormulaManager src;
  // Unrelated nodes first: they shift every later NodeId, so the compact
  // clone below lands on different ids than the source.
  src.And(src.Var(40), src.Var(41));
  Rng rng(11);
  std::vector<NodeId> terms;
  for (int t = 0; t < 6; ++t) {
    std::vector<NodeId> lits;
    for (int l = 0; l < 3; ++l) {
      NodeId v = src.Var(static_cast<VarId>(rng.Uniform(10)));
      lits.push_back(rng.Bernoulli(0.3) ? src.Not(v) : v);
    }
    terms.push_back(src.And(std::move(lits)));
  }
  NodeId f = src.Or(std::move(terms));

  // ExportTo requires a pristine destination (terminals only); the clone
  // renumbers the reachable nodes densely, so ids differ from the source.
  FormulaManager dst;
  NodeId g = src.ExportTo(f, &dst);
  EXPECT_NE(f, g);
  EXPECT_EQ(src.SignatureOf(f), dst.SignatureOf(g));
}

TEST(FormulaSignatureTest, DistinguishesStructure) {
  FormulaManager m;
  NodeId x = m.Var(0), y = m.Var(1);
  std::vector<FormulaSignature> sigs = {
      m.SignatureOf(m.True()),       m.SignatureOf(m.False()),
      m.SignatureOf(x),              m.SignatureOf(y),
      m.SignatureOf(m.Not(x)),       m.SignatureOf(m.And(x, y)),
      m.SignatureOf(m.Or(x, y)),     m.SignatureOf(m.And(x, m.Var(2))),
      m.SignatureOf(m.Not(m.And(x, y))),
  };
  for (size_t i = 0; i < sigs.size(); ++i) {
    for (size_t j = i + 1; j < sigs.size(); ++j) {
      EXPECT_FALSE(sigs[i] == sigs[j]) << "sig " << i << " == sig " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Weight fingerprints
// ---------------------------------------------------------------------------

TEST(WeightFingerprintTest, SensitiveToWeightsAndVarSet) {
  WeightMap weights = WeightsFromProbabilities({0.1, 0.2, 0.3});
  uint64_t base = WeightFingerprint({0, 1}, weights);
  EXPECT_EQ(base, WeightFingerprint({0, 1}, weights));  // deterministic

  WeightMap nudged = weights;
  nudged[1].w_true += 1e-16;  // any bit flip must change the fingerprint
  EXPECT_NE(base, WeightFingerprint({0, 1}, nudged));
  EXPECT_NE(base, WeightFingerprint({0, 2}, weights));
  EXPECT_NE(base, WeightFingerprint({0, 1, 2}, weights));
  // Weights of variables outside the set are irrelevant.
  WeightMap other = weights;
  other[2].w_true = 0.9;
  EXPECT_EQ(base, WeightFingerprint({0, 1}, other));
}

// ---------------------------------------------------------------------------
// Cache behaviour
// ---------------------------------------------------------------------------

WmcCache::Key MakeKey(uint64_t i) {
  // Distinct, well-spread signatures; the value stored under a key is
  // derived from i so lookups can verify they got the right entry.
  return {{i * 0x9e3779b97f4a7c15ULL + 1, i * 0xc2b2ae3d27d4eb4fULL + 2}, i};
}

TEST(WmcCacheTest, LookupInsertAndCounters) {
  WmcCache cache({.num_shards = 4, .max_bytes = 1 << 20});
  WmcCache::Key key = MakeKey(7);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, 0.125);
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.125);

  // Re-inserting an existing key refreshes recency, not the counters.
  cache.Insert(key, 0.125);
  WmcCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key).has_value());
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.inserts, 1u);  // counters survive Clear
}

TEST(WmcCacheTest, EvictsUnderByteBudget) {
  constexpr size_t kBudget = 4 << 10;
  WmcCache cache({.num_shards = 1, .max_bytes = kBudget});
  constexpr uint64_t kKeys = 1000;
  for (uint64_t i = 0; i < kKeys; ++i) {
    cache.Insert(MakeKey(i), static_cast<double>(i));
  }
  WmcCacheStats stats = cache.stats();
  EXPECT_EQ(stats.inserts, kKeys);
  EXPECT_LT(stats.entries, kKeys);
  EXPECT_LE(stats.bytes, kBudget);
  EXPECT_EQ(stats.evictions, kKeys - stats.entries);
  // Whatever survived still maps to its own value.
  size_t resident = 0;
  for (uint64_t i = 0; i < kKeys; ++i) {
    auto hit = cache.Lookup(MakeKey(i));
    if (!hit.has_value()) continue;
    ++resident;
    EXPECT_EQ(*hit, static_cast<double>(i));
  }
  EXPECT_EQ(resident, stats.entries);
}

TEST(WmcCacheTest, ClockGivesReferencedEntriesASecondChance) {
  // Discover the slot capacity of a one-shard cache empirically (it is a
  // function of an internal per-entry byte estimate).
  WmcCacheOptions options{.num_shards = 1, .max_bytes = 2 << 10};
  size_t capacity = 0;
  {
    WmcCache probe(options);
    for (uint64_t i = 0; probe.stats().evictions == 0; ++i) {
      probe.Insert(MakeKey(i), 0.0);
    }
    capacity = probe.stats().entries;
  }
  ASSERT_GE(capacity, 4u);

  WmcCache cache(options);
  for (uint64_t i = 0; i < capacity; ++i) {
    cache.Insert(MakeKey(i), static_cast<double>(i));
  }
  // First eviction sweeps every reference bit clear, then reclaims slot 0.
  cache.Insert(MakeKey(capacity), 0.0);
  // Touch one survivor: its reference bit is the only one set now.
  ASSERT_TRUE(cache.Lookup(MakeKey(2)).has_value());
  // Two more evictions pass the hand over cold neighbours and the touched
  // entry: the cold ones go, the touched one gets its second chance.
  cache.Insert(MakeKey(capacity + 1), 0.0);
  cache.Insert(MakeKey(capacity + 2), 0.0);
  EXPECT_TRUE(cache.Lookup(MakeKey(2)).has_value());
  EXPECT_FALSE(cache.Lookup(MakeKey(1)).has_value());
}

TEST(WmcCacheTest, ConcurrentHammer) {
  // 8 threads race inserts and lookups over an overlapping key range on a
  // deliberately tiny cache, maximising eviction churn. Correctness: a hit
  // must always return the value that belongs to the key.
  WmcCache cache({.num_shards = 4, .max_bytes = 8 << 10});
  constexpr int kThreads = 8;
  constexpr uint64_t kKeyRange = 512;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::string> errors(kThreads);
  std::vector<uint64_t> lookups(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        uint64_t i = rng.Uniform(kKeyRange);
        WmcCache::Key key = MakeKey(i);
        if (rng.Bernoulli(0.5)) {
          cache.Insert(key, static_cast<double>(i));
        } else {
          ++lookups[t];
          auto hit = cache.Lookup(key);
          if (hit.has_value() && *hit != static_cast<double>(i)) {
            errors[t] = "lookup returned another key's value";
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << "thread " << t;
  uint64_t total_lookups = 0;
  for (uint64_t n : lookups) total_lookups += n;
  WmcCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, total_lookups);
  EXPECT_LE(stats.bytes, size_t{8} << 10);
}

// ---------------------------------------------------------------------------
// End-to-end: DpllCounter against a shared cache
// ---------------------------------------------------------------------------

TEST(WmcCacheTest, DpllSharedCacheHitIsBitIdentical) {
  // A hard (non-read-once) formula: (x0&x1)|(x1&x2)|(x2&x3)|(x3&x0).
  auto build = [](FormulaManager* m) {
    return m->Or({m->And(m->Var(0), m->Var(1)), m->And(m->Var(1), m->Var(2)),
                  m->And(m->Var(2), m->Var(3)),
                  m->And(m->Var(3), m->Var(0))});
  };
  WeightMap weights = WeightsFromProbabilities({0.3, 0.5, 0.7, 0.9});

  // Reference: no shared cache.
  FormulaManager m1;
  DpllCounter plain(&m1, weights, {});
  auto expected = plain.Compute(build(&m1));
  ASSERT_TRUE(expected.ok());

  WmcCache cache;
  DpllOptions with_cache;
  with_cache.shared_cache = &cache;
  with_cache.shared_cache_min_vars = 2;

  // Cold run populates the cache and must not perturb the result.
  FormulaManager m2;
  DpllCounter cold(&m2, weights, with_cache);
  auto first = cold.Compute(build(&m2));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, *expected);
  ASSERT_GT(cache.stats().inserts, 0u);

  // Warm run in a *fresh manager* (different NodeIds): the top-level probe
  // hits, so the whole count is served from the cache, bit for bit.
  FormulaManager m3;
  DpllCounter warm(&m3, weights, with_cache);
  auto second = warm.Compute(build(&m3));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *expected);
  EXPECT_GT(warm.stats().shared_hits, 0u);
  EXPECT_EQ(warm.stats().decisions, 0u);  // answered without any branching
}

TEST(WmcCacheTest, DifferentWeightsNeverShareEntries) {
  auto build = [](FormulaManager* m) {
    return m->Or(m->And(m->Var(0), m->Var(1)), m->And(m->Var(1), m->Var(2)));
  };
  WmcCache cache;
  DpllOptions with_cache;
  with_cache.shared_cache = &cache;
  with_cache.shared_cache_min_vars = 2;

  FormulaManager m1;
  DpllCounter a(&m1, WeightsFromProbabilities({0.3, 0.5, 0.7}), with_cache);
  auto first = a.Compute(build(&m1));
  ASSERT_TRUE(first.ok());

  // Same structure, different weights: must miss the cache and produce the
  // weights' own answer.
  WeightMap other = WeightsFromProbabilities({0.2, 0.4, 0.6});
  FormulaManager m2;
  DpllCounter b(&m2, other, with_cache);
  auto second = b.Compute(build(&m2));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(b.stats().shared_hits, 0u);

  FormulaManager m3;
  DpllCounter plain(&m3, other, {});
  auto expected = plain.Compute(build(&m3));
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*second, *expected);
}

}  // namespace
}  // namespace pdb
