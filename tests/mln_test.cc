#include <gtest/gtest.h>

#include "logic/parser.h"
#include "mln/mln.h"
#include "mln/translate.h"
#include "test_common.h"
#include "util/random.h"

namespace pdb {
namespace {

// The paper's §3 example: Manager/HighlyCompensated with weight 3.9, over a
// tiny domain.
Mln ManagerMln(double weight, size_t domain_size) {
  Mln mln;
  PDB_CHECK(mln.AddPredicate("Manager", 2).ok());
  PDB_CHECK(mln.AddPredicate("HighlyCompensated", 1).ok());
  auto delta = ParseFo("Manager(m, e) => HighlyCompensated(m)");
  PDB_CHECK(delta.ok());
  PDB_CHECK(mln.AddConstraint(weight, {"m", "e"}, *delta).ok());
  std::vector<Value> domain;
  for (size_t i = 1; i <= domain_size; ++i) {
    domain.push_back(Value(static_cast<int64_t>(i)));
  }
  mln.SetDomain(std::move(domain));
  return mln;
}

TEST(MlnTest, ConstraintValidation) {
  Mln mln;
  ASSERT_TRUE(mln.AddPredicate("R", 1).ok());
  EXPECT_FALSE(mln.AddPredicate("R", 2).ok());  // duplicate
  auto formula = ParseFo("R(x)");
  EXPECT_FALSE(mln.AddConstraint(-1.0, {"x"}, *formula).ok());  // bad weight
  EXPECT_FALSE(mln.AddConstraint(2.0, {"y"}, *formula).ok());   // var mismatch
  auto unknown = ParseFo("Zap(x)");
  EXPECT_FALSE(mln.AddConstraint(2.0, {"x"}, *unknown).ok());
  EXPECT_TRUE(mln.AddConstraint(2.0, {"x"}, *formula).ok());
}

TEST(MlnTest, GroundingCounts) {
  Mln mln = ManagerMln(3.9, 2);
  EXPECT_EQ(mln.NumGroundAtoms(), 4u + 2u);  // Manager 2x2, HC 2
  auto ground = mln.GroundConstraints();
  ASSERT_TRUE(ground.ok());
  EXPECT_EQ(ground->size(), 4u);  // (m,e) in 2x2
  for (const auto& [w, sentence] : *ground) {
    EXPECT_DOUBLE_EQ(w, 3.9);
    EXPECT_TRUE(sentence->FreeVariables().empty());
  }
}

TEST(MlnTest, UniformWhenNoConstraints) {
  Mln mln;
  ASSERT_TRUE(mln.AddPredicate("R", 1).ok());
  mln.SetDomain({Value(1), Value(2)});
  // Without constraints every world has weight 1: p(R(1)) = 1/2.
  auto p = mln.ExactQueryProbability(*ParseFo("R(1)"));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5, 1e-12);
  auto z = mln.PartitionFunction();
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(*z, 4.0, 1e-12);  // 2^2 worlds, weight 1 each
}

TEST(MlnTest, SingleGroundAtomClosedForm) {
  // One predicate R over a single constant, constraint (w, R(x)):
  // p(R) = w / (1 + w).
  Mln mln;
  ASSERT_TRUE(mln.AddPredicate("R", 1).ok());
  mln.SetDomain({Value(1)});
  ASSERT_TRUE(mln.AddConstraint(3.0, {"x"}, *ParseFo("R(x)")).ok());
  auto p = mln.ExactQueryProbability(*ParseFo("R(1)"));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 3.0 / 4.0, 1e-12);
}

TEST(MlnTest, ManagerExampleMonotoneInEvidenceStructure) {
  // "the more employees m manages the higher the probability of being
  // highly compensated" — check the paper's §3 narrative quantitatively:
  // p(HC(1) | Manager(1,*) count) increases with the count.
  Mln mln = ManagerMln(3.9, 2);
  auto p_hc = *mln.ExactQueryProbability(*ParseFo("HighlyCompensated(1)"));
  auto p_hc_given_one = *mln.ExactQueryProbability(
      *ParseFo("HighlyCompensated(1) & Manager(1,2)"));
  auto p_one = *mln.ExactQueryProbability(*ParseFo("Manager(1,2)"));
  auto p_hc_given_two = *mln.ExactQueryProbability(
      *ParseFo("HighlyCompensated(1) & Manager(1,1) & Manager(1,2)"));
  auto p_two =
      *mln.ExactQueryProbability(*ParseFo("Manager(1,1) & Manager(1,2)"));
  double cond1 = p_hc_given_one / p_one;
  double cond2 = p_hc_given_two / p_two;
  EXPECT_GT(cond1, p_hc);
  EXPECT_GT(cond2, cond1);
}

// ---------------------------------------------------------------------------
// Proposition 3.1: translation equivalence
// ---------------------------------------------------------------------------

TEST(MlnTranslationTest, AuxProbabilityMatchesPaper) {
  // w = 3.9: the appendix's weight pair (1/(w-1), 1) corresponds to
  // probability 1/w (the paper prints the weight 1/2.9 as the probability;
  // exact enumeration confirms 1/w — see EXPERIMENTS.md).
  Mln mln = ManagerMln(3.9, 2);
  auto translation = TranslateMln(mln, MlnTranslationMode::kDisjunctive);
  ASSERT_TRUE(translation.ok());
  const Relation* aux = *translation->database.Get("F0");
  ASSERT_EQ(aux->size(), 4u);
  for (size_t i = 0; i < aux->size(); ++i) {
    EXPECT_NEAR(aux->prob(i), 1.0 / 3.9, 1e-12);
  }
  const Relation* manager = *translation->database.Get("Manager");
  for (size_t i = 0; i < manager->size(); ++i) {
    EXPECT_DOUBLE_EQ(manager->prob(i), 0.5);
  }
}

TEST(MlnTranslationTest, Proposition31Equivalence) {
  Mln mln = ManagerMln(3.9, 2);
  const char* queries[] = {
      "HighlyCompensated(1)",
      "Manager(1,2)",
      "Manager(1,2) & HighlyCompensated(1)",
      "exists m exists e (Manager(m,e) & HighlyCompensated(m))",
      "forall m (HighlyCompensated(m))",
  };
  auto translation = TranslateMln(mln, MlnTranslationMode::kDisjunctive);
  ASSERT_TRUE(translation.ok());
  for (const char* text : queries) {
    auto q = ParseFo(text);
    ASSERT_TRUE(q.ok()) << text;
    double exact = *mln.ExactQueryProbability(*q);
    auto translated = TranslatedQueryProbability(*translation, *q);
    ASSERT_TRUE(translated.ok()) << text;
    EXPECT_NEAR(*translated, exact, 1e-9) << text;
  }
}

TEST(MlnTranslationTest, BiconditionalModeMatchesToo) {
  Mln mln = ManagerMln(3.9, 2);
  auto translation = TranslateMln(mln, MlnTranslationMode::kBiconditional);
  ASSERT_TRUE(translation.ok());
  auto q = ParseFo("HighlyCompensated(1)");
  double exact = *mln.ExactQueryProbability(*q);
  EXPECT_NEAR(*TranslatedQueryProbability(*translation, *q), exact, 1e-9);
}

TEST(MlnTranslationTest, SmallWeightsUseBiconditional) {
  // w < 1 ("managers are typically NOT highly compensated").
  Mln mln = ManagerMln(0.4, 2);
  auto translation = TranslateMln(mln);  // auto mode
  ASSERT_TRUE(translation.ok());
  auto q = ParseFo("HighlyCompensated(1)");
  double exact = *mln.ExactQueryProbability(*q);
  EXPECT_NEAR(*TranslatedQueryProbability(*translation, *q), exact, 1e-9);
  // Forced disjunctive mode must reject w <= 1.
  EXPECT_FALSE(TranslateMln(mln, MlnTranslationMode::kDisjunctive).ok());
}

TEST(MlnTranslationTest, RandomMlnsMatch) {
  // Property test: random two-predicate MLNs over a 2-element domain.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 37);
    Mln mln;
    ASSERT_TRUE(mln.AddPredicate("A", 1).ok());
    ASSERT_TRUE(mln.AddPredicate("B", 1).ok());
    mln.SetDomain({Value(1), Value(2)});
    double w1 = 0.3 + 4.0 * rng.NextDouble();
    double w2 = 0.3 + 4.0 * rng.NextDouble();
    ASSERT_TRUE(mln.AddConstraint(w1, {"x"}, *ParseFo("A(x) => B(x)")).ok());
    ASSERT_TRUE(mln.AddConstraint(w2, {"x"}, *ParseFo("B(x)")).ok());
    auto translation = TranslateMln(mln);
    ASSERT_TRUE(translation.ok());
    const char* queries[] = {"A(1)", "B(2)", "A(1) & B(1)",
                             "exists x (A(x) & B(x))"};
    for (const char* text : queries) {
      auto q = ParseFo(text);
      double exact = *mln.ExactQueryProbability(*q);
      auto translated = TranslatedQueryProbability(*translation, *q);
      ASSERT_TRUE(translated.ok());
      EXPECT_NEAR(*translated, exact, 1e-8)
          << text << " seed " << seed << " w1=" << w1 << " w2=" << w2;
    }
  }
}

TEST(MlnTest, ExactInferenceGuardsSize) {
  Mln mln;
  ASSERT_TRUE(mln.AddPredicate("Manager", 2).ok());
  std::vector<Value> domain;
  for (int64_t i = 1; i <= 5; ++i) domain.push_back(Value(i));
  mln.SetDomain(std::move(domain));  // 25 ground atoms > limit
  EXPECT_EQ(mln.ExactQueryProbability(*ParseFo("Manager(1,1)"))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace pdb
