// Randomized cross-engine consistency tests ("fuzzing" with a fixed seed
// schedule): random queries over random TIDs, checked across every engine
// that accepts them. Any disagreement is a bug in at least one engine, so
// these tests gate the whole inference stack at once.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "boolean/lineage.h"
#include "storage/coding.h"
#include "storage/durable_db.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "storage/write_batch.h"
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "test_common.h"
#include "util/string_util.h"
#include "wmc/dpll.h"
#include "plans/enumerate.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

using testing::RandomCq;
using testing::RandomUcq;

Database RandomDb(Rng* rng) { return testing::RandomVocabularyDb(rng); }

class EngineAgreementFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementFuzz, AllEnginesAgreeOnRandomUcqs) {
  Rng rng(GetParam() * 2654435761u + 17);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 12; ++round) {
    Ucq ucq = RandomUcq(&rng);
    SCOPED_TRACE(ucq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(ucq, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    // Reference: DPLL (itself validated against enumeration below when
    // small enough).
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    if (mgr.VarsOf(lineage->root).size() <= 18) {
      double brute =
          *EnumerateProbability(&mgr, lineage->root, lineage->probs);
      ASSERT_NEAR(*truth, brute, 1e-9);
    }
    // Lifted (when the rules apply).
    auto lifted = LiftedProbability(ucq, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    } else {
      EXPECT_EQ(lifted.status().code(), StatusCode::kUnsupported);
    }
    // OBDD compilation.
    Obdd obdd(IdentityOrder(lineage->vars.size()));
    auto root = obdd.Compile(&mgr, lineage->root);
    ASSERT_TRUE(root.ok());
    EXPECT_NEAR(obdd.Wmc(*root, WeightsFromProbabilities(lineage->probs)),
                *truth, 1e-8);
    // decision-DNNF trace.
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    ASSERT_TRUE(compiled.ok());
    EXPECT_NEAR(compiled->probability, *truth, 1e-8);
    EXPECT_TRUE(
        compiled->circuit.ValidateDecisionDnnf(compiled->root).ok());
    EXPECT_NEAR(
        compiled->circuit.Wmc(compiled->root,
                              WeightsFromProbabilities(lineage->probs)),
        *truth, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementFuzz,
                         ::testing::Range<uint64_t>(0, 10));

class AtomOrderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AtomOrderFuzz, ShuffledAtomOrdersAgree) {
  // The compiled grounding engine picks its own join order; permuting the
  // query's written atom order must change neither the match stream
  // (relative to the reference matcher run on the same permutation) nor
  // the query probability.
  Rng rng(GetParam() * 69621 + 13);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery cq = RandomCq(&rng);
    double first_probability = -1.0;
    std::vector<Atom> atoms = cq.atoms();
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      for (size_t i = atoms.size(); i > 1; --i) {
        std::swap(atoms[i - 1], atoms[rng.Uniform(i)]);
      }
      ConjunctiveQuery permuted(atoms);
      SCOPED_TRACE(permuted.ToString());
      std::vector<std::vector<size_t>> expected, cost_based, syntactic,
          columnar;
      auto collect = [](std::vector<std::vector<size_t>>* out) {
        return [out](const CqMatch& m) {
          std::vector<size_t> rows;
          for (const LineageVar& lv : m.atom_rows) rows.push_back(lv.row);
          out->push_back(std::move(rows));
        };
      };
      ASSERT_TRUE(
          EnumerateCqMatchesReference(permuted, db, collect(&expected))
              .ok());
      GroundingOptions cost_options;
      cost_options.order = AtomOrderPolicy::kCostBased;
      ASSERT_TRUE(EnumerateCqMatches(permuted, db, collect(&cost_based),
                                     cost_options)
                      .ok());
      GroundingOptions syntactic_options;
      syntactic_options.order = AtomOrderPolicy::kSyntactic;
      ASSERT_TRUE(EnumerateCqMatches(permuted, db, collect(&syntactic),
                                     syntactic_options)
                      .ok());
      // The dense-code columnar fast path, forced on regardless of
      // relation size, must emit the identical match stream.
      GroundingOptions columnar_options;
      columnar_options.order = AtomOrderPolicy::kCostBased;
      columnar_options.columnar = ColumnarMode::kAlways;
      ASSERT_TRUE(EnumerateCqMatches(permuted, db, collect(&columnar),
                                     columnar_options)
                      .ok());
      EXPECT_EQ(cost_based, expected);
      EXPECT_EQ(syntactic, expected);
      EXPECT_EQ(columnar, expected);
      // The probability is a property of the query, not of the written
      // atom order (variable numbering differs across permutations, so
      // compare numerically, not structurally).
      FormulaManager mgr;
      auto lineage = BuildUcqLineage(Ucq({permuted}), db, &mgr);
      ASSERT_TRUE(lineage.ok());
      DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
      auto p = counter.Compute(lineage->root);
      ASSERT_TRUE(p.ok());
      if (first_probability < 0) {
        first_probability = *p;
      } else {
        EXPECT_NEAR(*p, first_probability, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomOrderFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class UniversalQueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniversalQueryFuzz, UnateUniversalSentencesMatchGroundedInference) {
  // Random unate universal sentences forall x forall y (clause of negated
  // S/U atoms and positive R/T atoms), evaluated via the lifted rewrite and
  // via direct lineage.
  Rng rng(GetParam() * 7919 + 3);
  Database db = RandomDb(&rng);
  const char* positive_preds[] = {"R", "T"};
  for (int round = 0; round < 8; ++round) {
    // Build: forall x forall y (S(x,y) => <positive part>), with the
    // positive part a random disjunction over R(x), T(y), U-negations.
    std::vector<FoPtr> disjuncts;
    disjuncts.push_back(
        Fo::Not(Fo::MakeAtom(Atom("S", {Term::Var("x"), Term::Var("y")}))));
    size_t extra = 1 + rng.Uniform(2);
    for (size_t i = 0; i < extra; ++i) {
      const char* pred = positive_preds[rng.Uniform(2)];
      const char* var = rng.Bernoulli(0.5) ? "x" : "y";
      disjuncts.push_back(Fo::MakeAtom(Atom(pred, {Term::Var(var)})));
    }
    FoPtr sentence =
        Fo::Forall("x", Fo::Forall("y", Fo::Or(std::move(disjuncts))));
    SCOPED_TRACE(sentence->ToString());
    FormulaManager mgr;
    auto lineage = BuildLineage(sentence, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    auto lifted = LiftedProbabilityFo(sentence, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniversalQueryFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class PlanBoundsFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanBoundsFuzz, EveryPlanUpperBoundsEverySelfJoinFreeCq) {
  // Theorem 6.1 as a property: every enumerated plan's value >= truth.
  Rng rng(GetParam() * 104729 + 11);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery cq = RandomCq(&rng);
    if (!cq.IsSelfJoinFree() || cq.Variables().size() > 4) continue;
    SCOPED_TRACE(cq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(Ucq({cq}), db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    double truth = *counter.Compute(lineage->root);
    // Include via plans/enumerate.h — pulled through test target deps.
    auto plans = EnumerateAllPlans(cq);
    ASSERT_TRUE(plans.ok());
    for (const PlanPtr& plan : *plans) {
      auto value = ExecuteBooleanPlan(plan, db);
      ASSERT_TRUE(value.ok());
      EXPECT_GE(*value, truth - 1e-9) << plan->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanBoundsFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class ComponentDecompositionFuzz : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ComponentDecompositionFuzz, PlantedDisjointBlocksSplitAsExpected) {
  // Random conjunctions with planted variable-disjoint blocks. Each block
  // is a single clause (disjunction of literals) over its own private
  // variables, so cofactoring inside a block never creates a new
  // conjunction: the ONLY component split the counter can perform is the
  // planted top-level one, and `component_splits` must be exactly 1.
  Rng rng(GetParam() * 48271 + 7);
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    size_t num_blocks = 2 + rng.Uniform(4);  // >= 2: a real split
    FormulaManager mgr;
    std::vector<double> probs;
    std::vector<NodeId> blocks;
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t width = 2 + rng.Uniform(4);
      std::vector<NodeId> literals;
      for (size_t i = 0; i < width; ++i) {
        VarId v = static_cast<VarId>(probs.size());
        probs.push_back(rng.NextDouble());
        NodeId lit = mgr.Var(v);
        if (rng.Bernoulli(0.4)) lit = mgr.Not(lit);
        literals.push_back(lit);
      }
      blocks.push_back(mgr.Or(std::move(literals)));
    }
    NodeId root = mgr.And(blocks);
    SCOPED_TRACE(StrFormat("blocks=%zu vars=%zu", num_blocks, probs.size()));

    // Reference: components disabled.
    DpllOptions no_components;
    no_components.use_components = false;
    DpllCounter flat(&mgr, WeightsFromProbabilities(probs), no_components);
    auto flat_value = flat.Compute(root);
    ASSERT_TRUE(flat_value.ok());
    EXPECT_EQ(flat.stats().component_splits, 0u);

    // Components on, sequential: exactly the planted split.
    DpllOptions sequential;
    sequential.parallel_components = false;
    DpllCounter seq(&mgr, WeightsFromProbabilities(probs), sequential);
    auto seq_value = seq.Compute(root);
    ASSERT_TRUE(seq_value.ok());
    EXPECT_EQ(seq.stats().component_splits, 1u);
    EXPECT_EQ(seq.stats().parallel_splits, 0u);
    EXPECT_NEAR(*seq_value, *flat_value, 1e-12);

    // Components on, 4 workers, threshold 0: same single split, solved on
    // the pool, bit-identical to the sequential count.
    ExecContext ctx(&pool);
    DpllOptions par;
    par.exec = &ctx;
    par.parallel_min_vars = 0;
    DpllCounter parallel(&mgr, WeightsFromProbabilities(probs), par);
    auto par_value = parallel.Compute(root);
    ASSERT_TRUE(par_value.ok());
    EXPECT_EQ(parallel.stats().component_splits, 1u);
    EXPECT_EQ(parallel.stats().parallel_splits, 1u);
    EXPECT_EQ(*par_value, *seq_value);

    // Ground truth when small enough to enumerate.
    if (probs.size() <= 18) {
      EXPECT_NEAR(*EnumerateProbability(&mgr, root, probs), *seq_value,
                  1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentDecompositionFuzz,
                         ::testing::Range<uint64_t>(0, 6));

// ---------------------------------------------------------------------
// WAL reader robustness: arbitrary corruption, truncation, and bit flips
// must yield a clean stop on a (possibly shorter) valid prefix of the
// written records — never a crash, a hang, or a fabricated record.

/// Writes `records` through a LogWriter and returns the raw log bytes.
std::string BuildLog(const std::vector<std::string>& records) {
  MemEnv env;
  auto file = env.NewWritableFile("/log");
  PDB_CHECK(file.ok());
  LogWriter writer(file->get());
  for (const std::string& record : records) {
    PDB_CHECK(writer.AddRecord(record).ok());
  }
  PDB_CHECK((*file)->Close().ok());
  return env.FileContents("/log");
}

/// The invariant every damaged log must satisfy: the reader returns an
/// exact prefix of the original records, and truncating the file at
/// `valid_prefix_size()` yields a clean log with that same prefix — which
/// is precisely what crash recovery does to a torn WAL tail.
void ExpectValidPrefix(std::string_view damaged,
                       const std::vector<std::string>& originals) {
  LogReader reader(damaged);
  std::vector<std::string> records;
  std::string record;
  size_t bound = damaged.size() + 16;
  while (records.size() < bound && reader.ReadRecord(&record)) {
    records.push_back(record);
  }
  ASSERT_LT(records.size(), bound) << "reader failed to terminate";
  ASSERT_LE(records.size(), originals.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(records[i], originals[i]) << "record " << i << " not a prefix";
  }
  ASSERT_LE(reader.valid_prefix_size(), damaged.size());
  LogReader clean(damaged.substr(0, reader.valid_prefix_size()));
  std::vector<std::string> reread;
  while (clean.ReadRecord(&record)) reread.push_back(record);
  EXPECT_EQ(reread, records)
      << "truncation at valid_prefix_size() is not a clean log";
  EXPECT_FALSE(clean.corruption_detected());
}

class WalReaderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalReaderFuzz, CleanLogRoundTrips) {
  Rng rng(GetParam() * 2862933555777941757ULL + 3037000493ULL);
  std::vector<std::string> records;
  size_t count = 1 + rng.Uniform(16);
  for (size_t i = 0; i < count; ++i) {
    // Mostly small records; occasionally spanning fragments (> one block)
    // or empty, to exercise FULL and FIRST/MIDDLE/LAST framing plus block
    // trailers.
    size_t size;
    uint64_t roll = rng.Uniform(10);
    if (roll == 0) {
      size = wal::kBlockSize + rng.Uniform(2 * wal::kBlockSize);
    } else if (roll == 1) {
      size = 0;
    } else {
      size = rng.Uniform(300);
    }
    std::string record(size, '\0');
    for (char& c : record) c = static_cast<char>(rng.Uniform(256));
    records.push_back(std::move(record));
  }
  std::string contents = BuildLog(records);

  LogReader reader(contents);
  std::vector<std::string> got;
  std::string record;
  while (reader.ReadRecord(&record)) got.push_back(record);
  EXPECT_EQ(got, records);
  EXPECT_FALSE(reader.corruption_detected());
  EXPECT_EQ(reader.valid_prefix_size(), contents.size());
}

TEST_P(WalReaderFuzz, TruncationYieldsAValidPrefix) {
  Rng rng(GetParam() * 6364136223846793005ULL + 1442695040888963407ULL);
  std::vector<std::string> records;
  size_t count = 2 + rng.Uniform(10);
  for (size_t i = 0; i < count; ++i) {
    size_t size = rng.Bernoulli(0.15)
                      ? wal::kBlockSize + rng.Uniform(wal::kBlockSize)
                      : rng.Uniform(200);
    std::string record(size, '\0');
    for (char& c : record) c = static_cast<char>(rng.Uniform(256));
    records.push_back(std::move(record));
  }
  std::string contents = BuildLog(records);

  // Every short length near record boundaries, plus a random sample of
  // arbitrary cuts (cutting at every single byte of a multi-block log is
  // needlessly slow).
  std::vector<size_t> cuts = {0, 1, wal::kHeaderSize - 1, wal::kHeaderSize};
  for (int i = 0; i < 64; ++i) cuts.push_back(rng.Uniform(contents.size()));
  for (size_t cut : cuts) {
    if (cut > contents.size()) continue;
    SCOPED_TRACE(StrFormat("truncated to %zu of %zu bytes", cut,
                           contents.size()));
    ExpectValidPrefix(std::string_view(contents).substr(0, cut), records);
  }
}

TEST_P(WalReaderFuzz, BitFlipsNeverFabricateRecords) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 99);
  std::vector<std::string> records;
  size_t count = 2 + rng.Uniform(10);
  for (size_t i = 0; i < count; ++i) {
    size_t size = rng.Bernoulli(0.1)
                      ? wal::kBlockSize + rng.Uniform(wal::kBlockSize)
                      : rng.Uniform(200);
    std::string record(size, '\0');
    for (char& c : record) c = static_cast<char>(rng.Uniform(256));
    records.push_back(std::move(record));
  }
  const std::string contents = BuildLog(records);

  for (int trial = 0; trial < 32; ++trial) {
    std::string damaged = contents;
    // One to four independent single-bit flips anywhere in the file.
    size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(damaged.size());
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1u << rng.Uniform(8)));
    }
    SCOPED_TRACE(StrFormat("trial %d", trial));
    ExpectValidPrefix(damaged, records);
  }
}

TEST_P(WalReaderFuzz, ArbitraryGarbageNeverCrashesTheReader) {
  Rng rng(GetParam() * 1181783497276652981ULL + 7);
  for (int trial = 0; trial < 16; ++trial) {
    size_t size = rng.Uniform(3 * wal::kBlockSize);
    std::string garbage(size, '\0');
    // Mix of pure noise, zero runs (preallocated-file tails), and noise
    // with plausible type bytes sprinkled in.
    uint64_t flavor = rng.Uniform(3);
    if (flavor != 1) {
      for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    }
    if (flavor == 2) {
      for (size_t i = 6; i < garbage.size(); i += wal::kHeaderSize) {
        garbage[i] = static_cast<char>(1 + rng.Uniform(4));
      }
    }
    LogReader reader(garbage);
    std::string record;
    size_t bound = garbage.size() + 16;
    size_t reads = 0;
    while (reads < bound && reader.ReadRecord(&record)) ++reads;
    EXPECT_LT(reads, bound) << "reader failed to terminate on garbage";
    EXPECT_LE(reader.valid_prefix_size(), garbage.size());
    // Whatever it salvaged, the truncate-and-reread recovery step must be
    // stable: the valid prefix is a clean log.
    LogReader clean(
        std::string_view(garbage).substr(0, reader.valid_prefix_size()));
    size_t reread = 0;
    while (reread < bound && clean.ReadRecord(&record)) ++reread;
    EXPECT_EQ(reread, reads);
    EXPECT_FALSE(clean.corruption_detected());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalReaderFuzz,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------
// WriteBatch record robustness: one level above log framing. A
// CRC-valid record whose *payload* is a malformed batch (truncated op
// list, inflated count, unknown op byte, trailing garbage) must be
// treated as damage — recovery keeps everything before it, applies NONE
// of the batch's mutations (never a prefix), drops the untrusted
// suffix, and leaves a writable database.

/// Record payloads of the single WAL segment under `dir`, in log order.
std::vector<std::string> WalRecords(MemEnv* env, const std::string& dir) {
  auto children = env->GetChildren(dir);
  PDB_CHECK(children.ok());
  std::string wal_name;
  for (const std::string& name : *children) {
    if (name.rfind("wal-", 0) == 0) {
      PDB_CHECK(wal_name.empty());  // the builder ran without checkpoints
      wal_name = name;
    }
  }
  PDB_CHECK(!wal_name.empty());
  const std::string contents = env->FileContents(dir + "/" + wal_name);
  LogReader reader(contents);
  std::vector<std::string> records;
  std::string record;
  while (reader.ReadRecord(&record)) records.push_back(record);
  PDB_CHECK(!reader.corruption_detected());
  return records;
}

class BatchRecordFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchRecordFuzz, MalformedBatchPayloadsNeverApplyPartially) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 0xd1342543de82ef95ULL + 29);

  // Build a genuine WAL: create + single insert (seqs 1-2), one batch of
  // three (seqs 3-5), then a post-batch insert (seq 6) that must vanish
  // with the untrusted suffix once the batch record is damaged.
  MemEnv source;
  {
    DurableOptions options;
    options.env = &source;
    auto db = DurableDatabase::Open("/src", options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(
        (*db)->CreateRelation("R", Schema::Anonymous(1)).ok());
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{1})}, 0.5).ok());
    ASSERT_TRUE((*db)->InsertMany("R", {{{Value(int64_t{10})}, 0.5},
                                        {{Value(int64_t{11})}, 0.5},
                                        {{Value(int64_t{12})}, 0.5}})
                    .ok());
    ASSERT_TRUE((*db)->Insert("R", {Value(int64_t{2})}, 0.5).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  std::vector<std::string> records = WalRecords(&source, "/src");
  // Locate the batch record (varint seq, then the op byte).
  size_t batch_index = records.size();
  for (size_t i = 0; i < records.size(); ++i) {
    std::string_view in(records[i]);
    uint64_t seq = 0;
    ASSERT_TRUE(GetVarint64(&in, &seq));
    ASSERT_FALSE(in.empty());
    if (static_cast<uint8_t>(in.front()) == kWalOpWriteBatch) {
      batch_index = i;
      break;
    }
  }
  ASSERT_LT(batch_index, records.size());
  const std::string& batch = records[batch_index];
  const size_t header = batch.size() - [&] {
    std::string_view in(batch);
    uint64_t seq = 0;
    GetVarint64(&in, &seq);
    return in.size() - 1;  // past the op byte
  }();

  // One corruption per seed round: all CRC-valid, all malformed payloads.
  std::vector<std::string> mutants;
  mutants.push_back(batch.substr(0, header));  // empty batch body
  mutants.push_back(                           // truncated mid-op
      batch.substr(0, header + 1 + rng.Uniform(batch.size() - header - 1)));
  mutants.push_back(batch + "garbage");        // trailing bytes
  {
    std::string inflated = batch;
    inflated[header] = static_cast<char>(inflated[header] + 1);  // count+1
    mutants.push_back(std::move(inflated));
  }
  {
    std::string bad_op = batch;
    bad_op[header + 1] = '\x7f';  // first op's code byte: unknown op
    mutants.push_back(std::move(bad_op));
  }
  {
    std::string flipped = batch;  // random payload bit flip
    size_t pos = header + rng.Uniform(flipped.size() - header);
    flipped[pos] =
        static_cast<char>(flipped[pos] ^ (1u << rng.Uniform(8)));
    mutants.push_back(std::move(flipped));
  }

  for (size_t m = 0; m < mutants.size(); ++m) {
    SCOPED_TRACE(StrFormat("mutant %zu (seed %llu)", m,
                           static_cast<unsigned long long>(seed)));
    // Re-frame the records with the damaged batch into a fresh WAL.
    MemEnv env;
    ASSERT_TRUE(env.CreateDirIfMissing("/db").ok());
    auto file = env.NewWritableFile("/db/wal-00000000000000000001.log");
    ASSERT_TRUE(file.ok());
    {
      LogWriter writer(file->get());
      for (size_t i = 0; i < records.size(); ++i) {
        ASSERT_TRUE(
            writer.AddRecord(i == batch_index ? mutants[m] : records[i])
                .ok());
      }
      ASSERT_TRUE((*file)->Close().ok());
    }

    DurableOptions options;
    options.env = &env;
    auto db = DurableDatabase::Open("/db", options);
    ASSERT_TRUE(db.ok())
        << "recovery must not fail on a malformed batch record: "
        << db.status().ToString();
    const Relation& rel = **(*db)->pdb().database().Get("R");
    if ((*db)->last_seq() == 6u) {
      // A random bit flip may leave a decodable, valid batch (e.g. a
      // flipped probability bit): then everything replays.
      ASSERT_EQ(m, mutants.size() - 1);
      EXPECT_EQ(rel.size(), 5u);
      continue;
    }
    // Damage detected: exactly the pre-batch prefix, none of the batch,
    // and not the post-batch insert either.
    EXPECT_EQ((*db)->last_seq(), 2u);
    EXPECT_EQ(rel.size(), 1u);
    EXPECT_TRUE(rel.Contains({Value(int64_t{1})}));
    EXPECT_FALSE(rel.Contains({Value(int64_t{10})}));
    EXPECT_FALSE(rel.Contains({Value(int64_t{11})}));
    EXPECT_FALSE(rel.Contains({Value(int64_t{12})}));
    EXPECT_FALSE(rel.Contains({Value(int64_t{2})}));
    EXPECT_TRUE((*db)->recovery_stats().tail_truncated);
    // The recovered handle accepts new writes on a clean tail.
    EXPECT_TRUE((*db)->Insert("R", {Value(int64_t{99})}, 0.5).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchRecordFuzz,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------
// Observability JSON readers: TraceFromJson and SlowQueryEntryFromJson are
// strict parsers over operator-controlled input (/debug payloads, log
// files). Any truncation, bit flip, or garbage must produce a clean
// InvalidArgument — never a crash or a hang — and well-formed documents
// must round-trip byte-identically.

/// A representative trace document with every shape the writer emits:
/// multiple spans, empty and multi-entry counter lists, escaped names.
std::string BuildTraceJson(Rng* rng) {
  TraceData data;
  data.total_ns = rng->Uniform(1'000'000'000);
  size_t spans = rng->Uniform(6);
  for (size_t i = 0; i < spans; ++i) {
    QueryTrace::Span span;
    span.phase = static_cast<TracePhase>(rng->Uniform(kNumTracePhases));
    span.start_ns = rng->Uniform(1'000'000);
    span.duration_ns = rng->Uniform(1'000'000);
    size_t counters = rng->Uniform(3);
    for (size_t c = 0; c < counters; ++c) {
      std::string name;
      size_t len = 1 + rng->Uniform(8);
      for (size_t k = 0; k < len; ++k) {
        name.push_back(static_cast<char>(rng->Uniform(256)));
      }
      span.counters.push_back({std::move(name), rng->Uniform(1u << 30)});
    }
    data.spans.push_back(std::move(span));
  }
  return data.ToJson();
}

std::string BuildSlowEntryJson(Rng* rng) {
  SlowQueryEntry entry;
  entry.ts_us = rng->Uniform(1u << 30);
  entry.latency_us = rng->Uniform(1u << 20);
  auto random_text = [&](size_t max_len) {
    std::string s;
    size_t len = rng->Uniform(max_len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng->Uniform(256)));
    }
    return s;
  };
  entry.client = random_text(12);
  entry.method = random_text(12);
  entry.statement = random_text(40);
  if (rng->Bernoulli(0.6)) entry.trace_json = BuildTraceJson(rng);
  return SlowQueryEntryToJson(entry);
}

class ObsJsonFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObsJsonFuzz, WellFormedDocumentsRoundTrip) {
  Rng rng(GetParam() * 0x2545F4914F6CDD1DULL + 21);
  for (int trial = 0; trial < 16; ++trial) {
    std::string trace_json = BuildTraceJson(&rng);
    auto trace = TraceFromJson(trace_json);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    EXPECT_EQ(trace->ToJson(), trace_json);

    std::string entry_json = BuildSlowEntryJson(&rng);
    auto entry = SlowQueryEntryFromJson(entry_json);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();
    EXPECT_EQ(SlowQueryEntryToJson(*entry), entry_json);
  }
}

TEST_P(ObsJsonFuzz, TruncationIsRejectedNeverACrash) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 5);
  std::string trace_json = BuildTraceJson(&rng);
  std::string entry_json = BuildSlowEntryJson(&rng);
  for (size_t cut = 0; cut < trace_json.size(); ++cut) {
    EXPECT_FALSE(TraceFromJson(trace_json.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  for (size_t cut = 0; cut < entry_json.size(); ++cut) {
    EXPECT_FALSE(SlowQueryEntryFromJson(entry_json.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST_P(ObsJsonFuzz, MutatedDocumentsNeverCrashAndStableWhenAccepted) {
  Rng rng(GetParam() * 6364136223846793005ULL + 31);
  for (int trial = 0; trial < 24; ++trial) {
    std::string doc =
        rng.Bernoulli(0.5) ? BuildTraceJson(&rng) : BuildSlowEntryJson(&rng);
    size_t edits = 1 + rng.Uniform(4);
    for (size_t e = 0; e < edits; ++e) {
      if (doc.empty()) break;
      size_t pos = rng.Uniform(doc.size());
      switch (rng.Uniform(3)) {
        case 0:
          doc[pos] = static_cast<char>(doc[pos] ^ (1u << rng.Uniform(8)));
          break;
        case 1:
          doc.erase(pos, 1);
          break;
        default:
          doc.insert(pos, 1, static_cast<char>(rng.Uniform(256)));
          break;
      }
    }
    // Either parser may accept or reject the mutant; if accepted, the
    // re-serialization must itself parse (no half-valid states escape).
    auto trace = TraceFromJson(doc);
    if (trace.ok()) {
      EXPECT_TRUE(TraceFromJson(trace->ToJson()).ok());
    }
    auto entry = SlowQueryEntryFromJson(doc);
    if (entry.ok()) {
      EXPECT_TRUE(
          SlowQueryEntryFromJson(SlowQueryEntryToJson(*entry)).ok());
    }
  }
}

TEST_P(ObsJsonFuzz, ArbitraryGarbageIsRejected) {
  Rng rng(GetParam() * 1181783497276652981ULL + 13);
  for (int trial = 0; trial < 24; ++trial) {
    size_t size = rng.Uniform(512);
    std::string garbage(size, '\0');
    uint64_t flavor = rng.Uniform(3);
    for (char& c : garbage) {
      c = flavor == 0
              ? static_cast<char>(rng.Uniform(256))
              : static_cast<char>("{}[]\",:0123456789"[rng.Uniform(17)]);
    }
    // Must terminate and must not crash; acceptance of pure garbage is
    // effectively impossible for these fixed-key-order grammars.
    (void)TraceFromJson(garbage);
    (void)SlowQueryEntryFromJson(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsJsonFuzz,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace pdb
