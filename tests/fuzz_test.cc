// Randomized cross-engine consistency tests ("fuzzing" with a fixed seed
// schedule): random queries over random TIDs, checked across every engine
// that accepts them. Any disagreement is a bug in at least one engine, so
// these tests gate the whole inference stack at once.

#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "test_common.h"
#include "wmc/dpll.h"
#include "plans/enumerate.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

// Generates a random Boolean CQ over the vocabulary R/1, S/2, T/1, U/2
// with variables drawn from a small pool (so joins actually happen) and
// occasional constants.
ConjunctiveQuery RandomCq(Rng* rng) {
  const char* unary[] = {"R", "T"};
  const char* binary[] = {"S", "U"};
  const char* vars[] = {"x", "y", "z"};
  size_t num_atoms = 1 + rng->Uniform(3);
  ConjunctiveQuery cq;
  for (size_t i = 0; i < num_atoms; ++i) {
    auto term = [&]() {
      if (rng->Bernoulli(0.15)) {
        return Term::Const(Value(static_cast<int64_t>(1 + rng->Uniform(3))));
      }
      return Term::Var(vars[rng->Uniform(3)]);
    };
    if (rng->Bernoulli(0.5)) {
      cq.AddAtom(Atom(unary[rng->Uniform(2)], {term()}));
    } else {
      cq.AddAtom(Atom(binary[rng->Uniform(2)], {term(), term()}));
    }
  }
  return cq;
}

Ucq RandomUcq(Rng* rng) {
  size_t disjuncts = 1 + rng->Uniform(3);
  Ucq ucq;
  for (size_t i = 0; i < disjuncts; ++i) ucq.AddDisjunct(RandomCq(rng));
  return ucq;
}

Database RandomDb(Rng* rng) {
  Database db;
  testing::RandomTidOptions options;
  options.domain_size = 3;
  options.presence = 0.75;
  testing::AddRandomRelation(&db, "R", 1, rng, options);
  testing::AddRandomRelation(&db, "S", 2, rng, options);
  testing::AddRandomRelation(&db, "T", 1, rng, options);
  testing::AddRandomRelation(&db, "U", 2, rng, options);
  return db;
}

class EngineAgreementFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementFuzz, AllEnginesAgreeOnRandomUcqs) {
  Rng rng(GetParam() * 2654435761u + 17);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 12; ++round) {
    Ucq ucq = RandomUcq(&rng);
    SCOPED_TRACE(ucq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(ucq, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    // Reference: DPLL (itself validated against enumeration below when
    // small enough).
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    if (mgr.VarsOf(lineage->root).size() <= 18) {
      double brute =
          *EnumerateProbability(&mgr, lineage->root, lineage->probs);
      ASSERT_NEAR(*truth, brute, 1e-9);
    }
    // Lifted (when the rules apply).
    auto lifted = LiftedProbability(ucq, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    } else {
      EXPECT_EQ(lifted.status().code(), StatusCode::kUnsupported);
    }
    // OBDD compilation.
    Obdd obdd(IdentityOrder(lineage->vars.size()));
    auto root = obdd.Compile(&mgr, lineage->root);
    ASSERT_TRUE(root.ok());
    EXPECT_NEAR(obdd.Wmc(*root, WeightsFromProbabilities(lineage->probs)),
                *truth, 1e-8);
    // decision-DNNF trace.
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    ASSERT_TRUE(compiled.ok());
    EXPECT_NEAR(compiled->probability, *truth, 1e-8);
    EXPECT_TRUE(
        compiled->circuit.ValidateDecisionDnnf(compiled->root).ok());
    EXPECT_NEAR(
        compiled->circuit.Wmc(compiled->root,
                              WeightsFromProbabilities(lineage->probs)),
        *truth, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementFuzz,
                         ::testing::Range<uint64_t>(0, 10));

class UniversalQueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniversalQueryFuzz, UnateUniversalSentencesMatchGroundedInference) {
  // Random unate universal sentences forall x forall y (clause of negated
  // S/U atoms and positive R/T atoms), evaluated via the lifted rewrite and
  // via direct lineage.
  Rng rng(GetParam() * 7919 + 3);
  Database db = RandomDb(&rng);
  const char* positive_preds[] = {"R", "T"};
  for (int round = 0; round < 8; ++round) {
    // Build: forall x forall y (S(x,y) => <positive part>), with the
    // positive part a random disjunction over R(x), T(y), U-negations.
    std::vector<FoPtr> disjuncts;
    disjuncts.push_back(
        Fo::Not(Fo::MakeAtom(Atom("S", {Term::Var("x"), Term::Var("y")}))));
    size_t extra = 1 + rng.Uniform(2);
    for (size_t i = 0; i < extra; ++i) {
      const char* pred = positive_preds[rng.Uniform(2)];
      const char* var = rng.Bernoulli(0.5) ? "x" : "y";
      disjuncts.push_back(Fo::MakeAtom(Atom(pred, {Term::Var(var)})));
    }
    FoPtr sentence =
        Fo::Forall("x", Fo::Forall("y", Fo::Or(std::move(disjuncts))));
    SCOPED_TRACE(sentence->ToString());
    FormulaManager mgr;
    auto lineage = BuildLineage(sentence, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    auto lifted = LiftedProbabilityFo(sentence, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniversalQueryFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class PlanBoundsFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanBoundsFuzz, EveryPlanUpperBoundsEverySelfJoinFreeCq) {
  // Theorem 6.1 as a property: every enumerated plan's value >= truth.
  Rng rng(GetParam() * 104729 + 11);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery cq = RandomCq(&rng);
    if (!cq.IsSelfJoinFree() || cq.Variables().size() > 4) continue;
    SCOPED_TRACE(cq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(Ucq({cq}), db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    double truth = *counter.Compute(lineage->root);
    // Include via plans/enumerate.h — pulled through test target deps.
    auto plans = EnumerateAllPlans(cq);
    ASSERT_TRUE(plans.ok());
    for (const PlanPtr& plan : *plans) {
      auto value = ExecuteBooleanPlan(plan, db);
      ASSERT_TRUE(value.ok());
      EXPECT_GE(*value, truth - 1e-9) << plan->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanBoundsFuzz,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace pdb
