// Randomized cross-engine consistency tests ("fuzzing" with a fixed seed
// schedule): random queries over random TIDs, checked across every engine
// that accepts them. Any disagreement is a bug in at least one engine, so
// these tests gate the whole inference stack at once.

#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "test_common.h"
#include "util/string_util.h"
#include "wmc/dpll.h"
#include "plans/enumerate.h"
#include "wmc/enumeration.h"

namespace pdb {
namespace {

using testing::RandomCq;
using testing::RandomUcq;

Database RandomDb(Rng* rng) { return testing::RandomVocabularyDb(rng); }

class EngineAgreementFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineAgreementFuzz, AllEnginesAgreeOnRandomUcqs) {
  Rng rng(GetParam() * 2654435761u + 17);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 12; ++round) {
    Ucq ucq = RandomUcq(&rng);
    SCOPED_TRACE(ucq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(ucq, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    // Reference: DPLL (itself validated against enumeration below when
    // small enough).
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    if (mgr.VarsOf(lineage->root).size() <= 18) {
      double brute =
          *EnumerateProbability(&mgr, lineage->root, lineage->probs);
      ASSERT_NEAR(*truth, brute, 1e-9);
    }
    // Lifted (when the rules apply).
    auto lifted = LiftedProbability(ucq, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    } else {
      EXPECT_EQ(lifted.status().code(), StatusCode::kUnsupported);
    }
    // OBDD compilation.
    Obdd obdd(IdentityOrder(lineage->vars.size()));
    auto root = obdd.Compile(&mgr, lineage->root);
    ASSERT_TRUE(root.ok());
    EXPECT_NEAR(obdd.Wmc(*root, WeightsFromProbabilities(lineage->probs)),
                *truth, 1e-8);
    // decision-DNNF trace.
    auto compiled = CompileToDecisionDnnf(
        &mgr, lineage->root, WeightsFromProbabilities(lineage->probs));
    ASSERT_TRUE(compiled.ok());
    EXPECT_NEAR(compiled->probability, *truth, 1e-8);
    EXPECT_TRUE(
        compiled->circuit.ValidateDecisionDnnf(compiled->root).ok());
    EXPECT_NEAR(
        compiled->circuit.Wmc(compiled->root,
                              WeightsFromProbabilities(lineage->probs)),
        *truth, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreementFuzz,
                         ::testing::Range<uint64_t>(0, 10));

class AtomOrderFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AtomOrderFuzz, ShuffledAtomOrdersAgree) {
  // The compiled grounding engine picks its own join order; permuting the
  // query's written atom order must change neither the match stream
  // (relative to the reference matcher run on the same permutation) nor
  // the query probability.
  Rng rng(GetParam() * 69621 + 13);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 10; ++round) {
    ConjunctiveQuery cq = RandomCq(&rng);
    double first_probability = -1.0;
    std::vector<Atom> atoms = cq.atoms();
    for (int shuffle = 0; shuffle < 4; ++shuffle) {
      for (size_t i = atoms.size(); i > 1; --i) {
        std::swap(atoms[i - 1], atoms[rng.Uniform(i)]);
      }
      ConjunctiveQuery permuted(atoms);
      SCOPED_TRACE(permuted.ToString());
      std::vector<std::vector<size_t>> expected, cost_based, syntactic;
      auto collect = [](std::vector<std::vector<size_t>>* out) {
        return [out](const CqMatch& m) {
          std::vector<size_t> rows;
          for (const LineageVar& lv : m.atom_rows) rows.push_back(lv.row);
          out->push_back(std::move(rows));
        };
      };
      ASSERT_TRUE(
          EnumerateCqMatchesReference(permuted, db, collect(&expected))
              .ok());
      GroundingOptions cost_options;
      cost_options.order = AtomOrderPolicy::kCostBased;
      ASSERT_TRUE(EnumerateCqMatches(permuted, db, collect(&cost_based),
                                     cost_options)
                      .ok());
      GroundingOptions syntactic_options;
      syntactic_options.order = AtomOrderPolicy::kSyntactic;
      ASSERT_TRUE(EnumerateCqMatches(permuted, db, collect(&syntactic),
                                     syntactic_options)
                      .ok());
      EXPECT_EQ(cost_based, expected);
      EXPECT_EQ(syntactic, expected);
      // The probability is a property of the query, not of the written
      // atom order (variable numbering differs across permutations, so
      // compare numerically, not structurally).
      FormulaManager mgr;
      auto lineage = BuildUcqLineage(Ucq({permuted}), db, &mgr);
      ASSERT_TRUE(lineage.ok());
      DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
      auto p = counter.Compute(lineage->root);
      ASSERT_TRUE(p.ok());
      if (first_probability < 0) {
        first_probability = *p;
      } else {
        EXPECT_NEAR(*p, first_probability, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomOrderFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class UniversalQueryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UniversalQueryFuzz, UnateUniversalSentencesMatchGroundedInference) {
  // Random unate universal sentences forall x forall y (clause of negated
  // S/U atoms and positive R/T atoms), evaluated via the lifted rewrite and
  // via direct lineage.
  Rng rng(GetParam() * 7919 + 3);
  Database db = RandomDb(&rng);
  const char* positive_preds[] = {"R", "T"};
  for (int round = 0; round < 8; ++round) {
    // Build: forall x forall y (S(x,y) => <positive part>), with the
    // positive part a random disjunction over R(x), T(y), U-negations.
    std::vector<FoPtr> disjuncts;
    disjuncts.push_back(
        Fo::Not(Fo::MakeAtom(Atom("S", {Term::Var("x"), Term::Var("y")}))));
    size_t extra = 1 + rng.Uniform(2);
    for (size_t i = 0; i < extra; ++i) {
      const char* pred = positive_preds[rng.Uniform(2)];
      const char* var = rng.Bernoulli(0.5) ? "x" : "y";
      disjuncts.push_back(Fo::MakeAtom(Atom(pred, {Term::Var(var)})));
    }
    FoPtr sentence =
        Fo::Forall("x", Fo::Forall("y", Fo::Or(std::move(disjuncts))));
    SCOPED_TRACE(sentence->ToString());
    FormulaManager mgr;
    auto lineage = BuildLineage(sentence, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    auto truth = counter.Compute(lineage->root);
    ASSERT_TRUE(truth.ok());
    auto lifted = LiftedProbabilityFo(sentence, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *truth, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniversalQueryFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class PlanBoundsFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanBoundsFuzz, EveryPlanUpperBoundsEverySelfJoinFreeCq) {
  // Theorem 6.1 as a property: every enumerated plan's value >= truth.
  Rng rng(GetParam() * 104729 + 11);
  Database db = RandomDb(&rng);
  for (int round = 0; round < 8; ++round) {
    ConjunctiveQuery cq = RandomCq(&rng);
    if (!cq.IsSelfJoinFree() || cq.Variables().size() > 4) continue;
    SCOPED_TRACE(cq.ToString());
    FormulaManager mgr;
    auto lineage = BuildUcqLineage(Ucq({cq}), db, &mgr);
    ASSERT_TRUE(lineage.ok());
    DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
    double truth = *counter.Compute(lineage->root);
    // Include via plans/enumerate.h — pulled through test target deps.
    auto plans = EnumerateAllPlans(cq);
    ASSERT_TRUE(plans.ok());
    for (const PlanPtr& plan : *plans) {
      auto value = ExecuteBooleanPlan(plan, db);
      ASSERT_TRUE(value.ok());
      EXPECT_GE(*value, truth - 1e-9) << plan->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanBoundsFuzz,
                         ::testing::Range<uint64_t>(0, 6));

class ComponentDecompositionFuzz : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ComponentDecompositionFuzz, PlantedDisjointBlocksSplitAsExpected) {
  // Random conjunctions with planted variable-disjoint blocks. Each block
  // is a single clause (disjunction of literals) over its own private
  // variables, so cofactoring inside a block never creates a new
  // conjunction: the ONLY component split the counter can perform is the
  // planted top-level one, and `component_splits` must be exactly 1.
  Rng rng(GetParam() * 48271 + 7);
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    size_t num_blocks = 2 + rng.Uniform(4);  // >= 2: a real split
    FormulaManager mgr;
    std::vector<double> probs;
    std::vector<NodeId> blocks;
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t width = 2 + rng.Uniform(4);
      std::vector<NodeId> literals;
      for (size_t i = 0; i < width; ++i) {
        VarId v = static_cast<VarId>(probs.size());
        probs.push_back(rng.NextDouble());
        NodeId lit = mgr.Var(v);
        if (rng.Bernoulli(0.4)) lit = mgr.Not(lit);
        literals.push_back(lit);
      }
      blocks.push_back(mgr.Or(std::move(literals)));
    }
    NodeId root = mgr.And(blocks);
    SCOPED_TRACE(StrFormat("blocks=%zu vars=%zu", num_blocks, probs.size()));

    // Reference: components disabled.
    DpllOptions no_components;
    no_components.use_components = false;
    DpllCounter flat(&mgr, WeightsFromProbabilities(probs), no_components);
    auto flat_value = flat.Compute(root);
    ASSERT_TRUE(flat_value.ok());
    EXPECT_EQ(flat.stats().component_splits, 0u);

    // Components on, sequential: exactly the planted split.
    DpllOptions sequential;
    sequential.parallel_components = false;
    DpllCounter seq(&mgr, WeightsFromProbabilities(probs), sequential);
    auto seq_value = seq.Compute(root);
    ASSERT_TRUE(seq_value.ok());
    EXPECT_EQ(seq.stats().component_splits, 1u);
    EXPECT_EQ(seq.stats().parallel_splits, 0u);
    EXPECT_NEAR(*seq_value, *flat_value, 1e-12);

    // Components on, 4 workers, threshold 0: same single split, solved on
    // the pool, bit-identical to the sequential count.
    ExecContext ctx(&pool);
    DpllOptions par;
    par.exec = &ctx;
    par.parallel_min_vars = 0;
    DpllCounter parallel(&mgr, WeightsFromProbabilities(probs), par);
    auto par_value = parallel.Compute(root);
    ASSERT_TRUE(par_value.ok());
    EXPECT_EQ(parallel.stats().component_splits, 1u);
    EXPECT_EQ(parallel.stats().parallel_splits, 1u);
    EXPECT_EQ(*par_value, *seq_value);

    // Ground truth when small enough to enumerate.
    if (probs.size() <= 18) {
      EXPECT_NEAR(*EnumerateProbability(&mgr, root, probs), *seq_value,
                  1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComponentDecompositionFuzz,
                         ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace pdb
