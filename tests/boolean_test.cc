#include <gtest/gtest.h>

#include "boolean/formula.h"
#include "boolean/lineage.h"
#include "logic/parser.h"
#include "test_common.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// FormulaManager: construction and simplification
// ---------------------------------------------------------------------------

TEST(FormulaTest, HashConsing) {
  FormulaManager mgr;
  NodeId a = mgr.Var(0);
  NodeId b = mgr.Var(1);
  EXPECT_EQ(mgr.And(a, b), mgr.And(b, a));  // sorted children
  EXPECT_EQ(mgr.Or(a, b), mgr.Or(b, a));
  EXPECT_EQ(mgr.Var(0), a);
  EXPECT_EQ(mgr.Not(mgr.Not(a)), a);
}

TEST(FormulaTest, ConstantFolding) {
  FormulaManager mgr;
  NodeId a = mgr.Var(0);
  EXPECT_EQ(mgr.And(a, mgr.True()), a);
  EXPECT_EQ(mgr.And(a, mgr.False()), mgr.False());
  EXPECT_EQ(mgr.Or(a, mgr.False()), a);
  EXPECT_EQ(mgr.Or(a, mgr.True()), mgr.True());
  EXPECT_EQ(mgr.And(std::vector<NodeId>{}), mgr.True());
  EXPECT_EQ(mgr.Or(std::vector<NodeId>{}), mgr.False());
}

TEST(FormulaTest, ComplementAnnihilation) {
  FormulaManager mgr;
  NodeId a = mgr.Var(0);
  EXPECT_EQ(mgr.And(a, mgr.Not(a)), mgr.False());
  EXPECT_EQ(mgr.Or(a, mgr.Not(a)), mgr.True());
}

TEST(FormulaTest, FlattensNested) {
  FormulaManager mgr;
  NodeId a = mgr.Var(0), b = mgr.Var(1), c = mgr.Var(2);
  NodeId nested = mgr.And(mgr.And(a, b), c);
  NodeId flat = mgr.And(std::vector<NodeId>{a, b, c});
  EXPECT_EQ(nested, flat);
  EXPECT_EQ(mgr.children(flat).size(), 3u);
}

TEST(FormulaTest, VarsOfIsSortedUnion) {
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.And(mgr.Var(3), mgr.Var(1)), mgr.Var(2));
  EXPECT_EQ(mgr.VarsOf(f), (std::vector<VarId>{1, 2, 3}));
  EXPECT_TRUE(mgr.VarsOf(mgr.True()).empty());
}

TEST(FormulaTest, Evaluate) {
  FormulaManager mgr;
  // (x0 & !x1) | x2
  NodeId f = mgr.Or(mgr.And(mgr.Var(0), mgr.Not(mgr.Var(1))), mgr.Var(2));
  EXPECT_TRUE(mgr.Evaluate(f, {true, false, false}));
  EXPECT_FALSE(mgr.Evaluate(f, {true, true, false}));
  EXPECT_TRUE(mgr.Evaluate(f, {false, false, true}));
  EXPECT_FALSE(mgr.Evaluate(f, {false, false, false}));
}

TEST(FormulaTest, CofactorSimplifies) {
  FormulaManager mgr;
  NodeId f = mgr.Or(mgr.And(mgr.Var(0), mgr.Var(1)), mgr.Var(2));
  EXPECT_EQ(mgr.Cofactor(f, 0, true), mgr.Or(mgr.Var(1), mgr.Var(2)));
  EXPECT_EQ(mgr.Cofactor(f, 0, false), mgr.Var(2));
  EXPECT_EQ(mgr.Cofactor(f, 3, true), f);  // var absent: unchanged
  // Cofactor through negation.
  NodeId g = mgr.Not(mgr.And(mgr.Var(0), mgr.Var(1)));
  EXPECT_EQ(mgr.Cofactor(g, 0, true), mgr.Not(mgr.Var(1)));
  EXPECT_EQ(mgr.Cofactor(g, 0, false), mgr.True());
}

TEST(FormulaTest, CountReachable) {
  FormulaManager mgr;
  NodeId shared = mgr.And(mgr.Var(0), mgr.Var(1));
  NodeId f = mgr.Or(shared, mgr.And(shared, mgr.Var(2)));
  // Nodes: or, and(0,1), and(0,1,2), x0, x1, x2 -> 6.
  EXPECT_EQ(mgr.CountReachable(f), 6u);
}

// ---------------------------------------------------------------------------
// Lineage
// ---------------------------------------------------------------------------

TEST(LineageTest, Example21LineageStructure) {
  Database db = testing::BuildFigure1Database();
  FormulaManager mgr;
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  auto lineage = BuildLineage(*q, db, &mgr);
  ASSERT_TRUE(lineage.ok());
  // All 9 uncertain tuples appear.
  EXPECT_EQ(lineage->vars.size(), 9u);
  // Probability bookkeeping matches the database.
  for (size_t v = 0; v < lineage->vars.size(); ++v) {
    const Relation* rel = *db.Get(lineage->vars[v].relation);
    EXPECT_DOUBLE_EQ(lineage->probs[v], rel->prob(lineage->vars[v].row));
  }
}

TEST(LineageTest, LineageAgreesWithWorldSemantics) {
  // For random worlds, evaluating the lineage under the world's indicator
  // assignment equals evaluating the query on the world (appendix def).
  Database db = testing::BuildFigure1Database();
  FormulaManager mgr;
  std::vector<Value> domain = db.ActiveDomain();
  auto q = ParseFo("forall x forall y (S(x,y) => R(x))");
  auto lineage = BuildLineage(*q, db, &mgr);
  ASSERT_TRUE(lineage.ok());
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    Database world = db.SampleWorld(&rng);
    std::vector<bool> assignment(lineage->vars.size(), false);
    for (size_t v = 0; v < lineage->vars.size(); ++v) {
      const LineageVar& lv = lineage->vars[v];
      const Relation* original = *db.Get(lv.relation);
      assignment[v] = (*world.Get(lv.relation))->Contains(
          original->tuple(lv.row));
    }
    EXPECT_EQ(mgr.Evaluate(lineage->root, assignment),
              EvaluateOnWorld(*q, world, domain));
  }
}

TEST(LineageTest, MissingTuplesGroundToFalse) {
  Database db = testing::BuildFigure1Database();
  FormulaManager mgr;
  // R('zzz') is not a possible tuple: the existential lineage is just the
  // disjunction over stored R tuples.
  auto q = ParseFo("exists x R(x)");
  auto lineage = BuildLineage(*q, db, &mgr);
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->vars.size(), 3u);
}

TEST(LineageTest, CertainTuplesFoldAway) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  ASSERT_TRUE(r.AddTuple({Value(1)}, 1.0).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  FormulaManager mgr;
  auto lineage = BuildLineage(*ParseFo("exists x R(x)"), db, &mgr);
  ASSERT_TRUE(lineage.ok());
  EXPECT_EQ(lineage->root, mgr.True());
  EXPECT_TRUE(lineage->vars.empty());
}

TEST(LineageTest, RejectsFreeVariablesAndUnknownRelations) {
  Database db = testing::BuildFigure1Database();
  FormulaManager mgr;
  EXPECT_FALSE(BuildLineage(*ParseFo("exists y S(x, y)"), db, &mgr).ok());
  EXPECT_FALSE(BuildLineage(*ParseFo("exists x Zap(x)"), db, &mgr).ok());
}

TEST(LineageTest, UcqLineageMatchesFoLineage) {
  Database db = testing::BuildFigure1Database();
  auto fo = ParseUcqShorthand("R(x), S(x,y)");
  auto ucq = FoToUcq(*fo);
  ASSERT_TRUE(ucq.ok());
  FormulaManager mgr1;
  auto join_lineage = BuildUcqLineage(*ucq, db, &mgr1);
  ASSERT_TRUE(join_lineage.ok());
  FormulaManager mgr2;
  auto fo_lineage = BuildLineage(*fo, db, &mgr2);
  ASSERT_TRUE(fo_lineage.ok());
  // Same number of satisfying assignments over the same variable origins:
  // check via truth tables keyed by (relation, row).
  // Both lineages involve R(a1),R(a2),S(a1,*),S(a2,*) tuples only.
  EXPECT_EQ(mgr1.VarsOf(join_lineage->root).size(),
            mgr2.VarsOf(fo_lineage->root).size());
}

TEST(LineageTest, EnumerateCqMatchesCountsJoins) {
  Database db = testing::BuildFigure1Database();
  auto ucq = FoToUcq(*ParseUcqShorthand("R(x), S(x,y)"));
  size_t matches = 0;
  ASSERT_TRUE(EnumerateCqMatches(ucq->disjuncts()[0], db,
                                 [&](const CqMatch&) { ++matches; })
                  .ok());
  // R(a1) joins S(a1,b1),S(a1,b2); R(a2) joins S(a2,b3..b5): 5 matches.
  EXPECT_EQ(matches, 5u);
}

TEST(LineageTest, EnumerateHandlesConstantsAndRepeats) {
  Database db;
  Relation s("S", Schema::Anonymous(2));
  ASSERT_TRUE(s.AddTuple({Value(1), Value(1)}, 0.5).ok());
  ASSERT_TRUE(s.AddTuple({Value(1), Value(2)}, 0.5).ok());
  ASSERT_TRUE(s.AddTuple({Value(2), Value(2)}, 0.5).ok());
  ASSERT_TRUE(db.AddRelation(std::move(s)).ok());
  // S(x,x): diagonal only.
  ConjunctiveQuery diag({Atom("S", {Term::Var("x"), Term::Var("x")})});
  size_t matches = 0;
  ASSERT_TRUE(
      EnumerateCqMatches(diag, db, [&](const CqMatch&) { ++matches; }).ok());
  EXPECT_EQ(matches, 2u);
  // S(1, y): constant selection.
  ConjunctiveQuery sel({Atom("S", {Term::Const(Value(1)), Term::Var("y")})});
  matches = 0;
  ASSERT_TRUE(
      EnumerateCqMatches(sel, db, [&](const CqMatch&) { ++matches; }).ok());
  EXPECT_EQ(matches, 2u);
}

TEST(LineageTest, DnfTermsDeduplicateVars) {
  Database db;
  Relation s("S", Schema::Anonymous(2));
  ASSERT_TRUE(s.AddTuple({Value(1), Value(1)}, 0.5).ok());
  ASSERT_TRUE(db.AddRelation(std::move(s)).ok());
  // S(x,y) & S(y,x) matched by the symmetric tuple (1,1) twice -> one var.
  ConjunctiveQuery cq({Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("S", {Term::Var("y"), Term::Var("x")})});
  auto dnf = BuildUcqDnf(Ucq({cq}), db);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->terms.size(), 1u);
  EXPECT_EQ(dnf->terms[0].size(), 1u);
}

}  // namespace
}  // namespace pdb
