/// Tests for the execution runtime (src/exec/): thread pool lifecycle,
/// parallel loops, cooperative cancellation/deadlines, and the bit-identical
/// thread-count invariance of the sharded Monte Carlo estimators.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "boolean/lineage.h"
#include "core/pdb.h"
#include "exec/context.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "logic/parser.h"
#include "util/check.h"
#include "util/random.h"
#include "wmc/dpll.h"
#include "wmc/montecarlo.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  // Submit far more tasks than workers and destroy immediately: shutdown
  // must run every pending task (none dropped) and must not hang.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 5000; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 5000);
}

TEST(ThreadPoolTest, ZeroMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(ThreadPool::HardwareThreads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, CountsExecutedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ExecContext ctx(&pool);
  ParallelFor(&ctx, 64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
  // The caller participates, so the pool ran at most 63 of the 64 bodies.
  EXPECT_LE(pool.tasks_executed(), 64u);
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelReduce
// ---------------------------------------------------------------------------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  ExecContext ctx(&pool);
  std::vector<std::atomic<int>> seen(1000);
  ParallelFor(&ctx, seen.size(), [&](size_t i) { seen[i].fetch_add(1); });
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(ctx.Report().tasks_run, 1000u);
}

TEST(ParallelForTest, WorksWithoutContextOrPool) {
  int sum = 0;
  ParallelFor(nullptr, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
  ExecContext ctx;  // no pool: sequential
  ParallelFor(&ctx, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 90);
}

TEST(ParallelForTest, NestedDoesNotDeadlock) {
  // Inner ParallelFor from inside pool tasks: caller participation
  // guarantees progress even with every worker busy.
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  std::atomic<int> counter{0};
  ParallelFor(&ctx, 8, [&](size_t) {
    ParallelFor(&ctx, 8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelReduceTest, FoldsInIndexOrder) {
  ThreadPool pool(4);
  ExecContext ctx(&pool);
  // Non-commutative combine exposes any ordering violation.
  std::string order = ParallelReduce<std::string>(
      &ctx, 26, std::string(),
      [](size_t i) { return std::string(1, static_cast<char>('a' + i)); },
      [](std::string acc, std::string part) { return acc + part; });
  EXPECT_EQ(order, "abcdefghijklmnopqrstuvwxyz");
}

// ---------------------------------------------------------------------------
// ExecContext: cancellation and deadlines
// ---------------------------------------------------------------------------

TEST(ExecContextTest, CancelStopsWork) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.Cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.Report().cancelled);
}

TEST(ExecContextTest, DeadlineLatchesAndClears) {
  ExecContext ctx;
  ctx.SetDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(ctx.DeadlineExceeded());
  EXPECT_TRUE(ctx.ShouldStop());
  ctx.ClearDeadline();
  EXPECT_FALSE(ctx.ShouldStop());
  // The report still remembers that a deadline fired.
  EXPECT_TRUE(ctx.Report().deadline_exceeded);
}

TEST(ExecContextTest, DeadlineStopsSamplingEarly) {
  FormulaManager mgr;
  std::vector<NodeId> clauses;
  for (VarId v = 0; v + 1 < 32; ++v) {
    clauses.push_back(mgr.Or(mgr.Var(v), mgr.Var(v + 1)));
  }
  NodeId f = mgr.And(std::move(clauses));
  std::vector<double> probs(32, 0.5);
  ExecContext ctx;
  ctx.SetDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Rng rng(7);
  // An expired deadline caps the draw far below the huge requested budget.
  Estimate est = NaiveMonteCarlo(&mgr, f, probs, 50'000'000, &rng, &ctx);
  EXPECT_LT(est.samples, 50'000'000u);
  EXPECT_EQ(ctx.Report().samples_drawn, est.samples);
  EXPECT_TRUE(ctx.Report().deadline_exceeded);
}

TEST(ExecContextTest, DpllHonoursExpiredDeadline) {
  FormulaManager mgr;
  std::vector<NodeId> clauses;
  for (VarId v = 0; v + 1 < 24; ++v) {
    clauses.push_back(mgr.Or(mgr.Var(v), mgr.Var(v + 1)));
  }
  NodeId f = mgr.And(std::move(clauses));
  std::vector<double> probs(24, 0.5);
  ExecContext ctx;
  ctx.SetDeadline(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  DpllOptions options;
  options.exec = &ctx;
  DpllCounter counter(&mgr, WeightsFromProbabilities(probs), options);
  auto result = counter.Compute(f);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Seed determinism: estimates are invariant to thread count
// ---------------------------------------------------------------------------

/// Layered Or/And formula over `n` variables with pseudorandom probs.
NodeId DeterminismFormula(FormulaManager* mgr, size_t n,
                          std::vector<double>* probs) {
  Rng gen(2026);
  std::vector<NodeId> clauses;
  for (VarId v = 0; v < n; ++v) {
    probs->push_back(0.05 + 0.9 * gen.NextDouble());
    clauses.push_back(
        mgr->Or(mgr->Var(v), mgr->And(mgr->Var((v + 3) % n),
                                      mgr->Var((v + 7) % n))));
  }
  return mgr->And(std::move(clauses));
}

TEST(DeterminismTest, NaiveMonteCarloIdenticalAcrossThreadCounts) {
  FormulaManager mgr;
  std::vector<double> probs;
  NodeId f = DeterminismFormula(&mgr, 24, &probs);

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    Rng rng(20200614);
    return NaiveMonteCarlo(&mgr, f, probs, 100000, &rng, &ctx);
  };
  Estimate one = run(1);
  Estimate two = run(2);
  Estimate eight = run(8);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(one.value, two.value);
  EXPECT_EQ(one.value, eight.value);
  EXPECT_EQ(one.std_error, two.std_error);
  EXPECT_EQ(one.std_error, eight.std_error);
  EXPECT_EQ(one.samples, two.samples);
  EXPECT_EQ(one.samples, eight.samples);

  // The sequential no-context path agrees too: same shard plan, inline.
  Rng rng(20200614);
  Estimate inline_est = NaiveMonteCarlo(&mgr, f, probs, 100000, &rng);
  EXPECT_EQ(one.value, inline_est.value);
  EXPECT_EQ(one.std_error, inline_est.std_error);
}

TEST(DeterminismTest, KarpLubyIdenticalAcrossThreadCounts) {
  // Chain DNF over 40 variables.
  std::vector<std::vector<VarId>> terms;
  std::vector<double> probs;
  Rng gen(11);
  for (VarId v = 0; v < 40; ++v) probs.push_back(0.1 + 0.8 * gen.NextDouble());
  for (VarId v = 0; v + 2 < 40; ++v) terms.push_back({v, v + 1, v + 2});

  auto run = [&](int threads) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    Rng rng(42);
    return KarpLubyDnf(terms, probs, 100000, &rng, &ctx);
  };
  auto one = run(1);
  auto two = run(2);
  auto eight = run(8);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(eight.ok());
  EXPECT_EQ(one->value, two->value);
  EXPECT_EQ(one->value, eight->value);
  EXPECT_EQ(one->std_error, two->std_error);
  EXPECT_EQ(one->std_error, eight->std_error);
}

TEST(DeterminismTest, RngSplitIsStableAndIndependent) {
  Rng parent(123);
  Rng a = parent.Split(0);
  Rng a_again = parent.Split(0);
  Rng b = parent.Split(1);
  uint64_t a1 = a.Next();
  EXPECT_EQ(a1, a_again.Next());  // same index -> same stream
  EXPECT_NE(a1, b.Next());        // different index -> different stream
  // Split does not advance the parent.
  Rng fresh(123);
  EXPECT_EQ(parent.Next(), fresh.Next());
}

// ---------------------------------------------------------------------------
// Engine integration: deadline-driven degradation, parallel fan-out
// ---------------------------------------------------------------------------

/// Complete bipartite H0 instance (R(i), S(i,j), T(j) over [n] x [n]) whose
/// query R(x), S(x,y), T(y) is non-hierarchical, hence #P-hard for exact
/// methods.
Database HardDatabase(size_t n) {
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  Rng rng(3);
  auto prob = [&] { return 0.1 + 0.8 * rng.NextDouble(); };
  for (size_t i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    PDB_CHECK(t.AddTuple({Value(static_cast<int64_t>(i))}, prob()).ok());
    for (size_t j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(static_cast<int64_t>(i)),
                            Value(static_cast<int64_t>(j))},
                           prob())
                    .ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

TEST(DeadlineFallbackTest, DpllDeadlineFallsBackToMonteCarlo) {
  ProbDatabase pdb(HardDatabase(18));
  QueryOptions options;
  options.exec.deadline_ms = 1;  // far too tight for exact WMC at n=18
  options.monte_carlo_samples = 20000;
  auto answer = pdb.Query("R(x), S(x,y), T(y)", options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method, InferenceMethod::kMonteCarlo);
  EXPECT_FALSE(answer->exact);
  EXPECT_NE(answer->explanation.find("deadline"), std::string::npos)
      << answer->explanation;
  EXPECT_TRUE(answer->report.deadline_exceeded);
  EXPECT_GT(answer->report.samples_drawn, 0u);
  // Karp-Luby is unbiased but unclamped; the enclosure is clamped.
  EXPECT_GT(answer->probability, 0.0);
  EXPECT_GE(answer->lower, 0.0);
  EXPECT_LE(answer->upper, 1.0);
}

TEST(DeadlineFallbackTest, GenerousDeadlineStaysExact) {
  ProbDatabase pdb(HardDatabase(3));
  QueryOptions options;
  options.exec.deadline_ms = 60'000;
  auto answer = pdb.Query("R(x), S(x,y), T(y)", options);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->exact);
  EXPECT_FALSE(answer->report.deadline_exceeded);
}

TEST(ParallelAnswersTest, FanOutMatchesSequential) {
  ProbDatabase pdb(HardDatabase(6));
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")}),
                       Atom("T", {Term::Var("y")})});
  QueryOptions sequential;
  sequential.exec.num_threads = 1;
  QueryOptions parallel = sequential;
  parallel.exec.num_threads = 4;
  auto seq = pdb.QueryWithAnswers(cq, {"x"}, sequential);
  auto par = pdb.QueryWithAnswers(cq, {"x"}, parallel);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq->size(), par->size());
  ASSERT_EQ(seq->size(), 6u);
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ(seq->tuple(i), par->tuple(i));
    // Same seed + same shard plan -> identical marginals even when the
    // per-tuple marginal needed the Monte Carlo path.
    EXPECT_EQ(seq->prob(i), par->prob(i));
  }
}

TEST(ParallelAnswersTest, BooleanQueryIdenticalAcrossThreadCounts) {
  ProbDatabase pdb(HardDatabase(10));
  QueryOptions options;
  options.max_dpll_decisions = 100;  // force the Monte Carlo path
  options.monte_carlo_samples = 50000;
  QueryOptions wide = options;
  wide.exec.num_threads = 8;
  auto narrow_answer = pdb.Query("R(x), S(x,y), T(y)", options);
  auto wide_answer = pdb.Query("R(x), S(x,y), T(y)", wide);
  ASSERT_TRUE(narrow_answer.ok());
  ASSERT_TRUE(wide_answer.ok());
  EXPECT_EQ(narrow_answer->method, InferenceMethod::kMonteCarlo);
  EXPECT_EQ(narrow_answer->probability, wide_answer->probability);
  EXPECT_EQ(narrow_answer->lower, wide_answer->lower);
  EXPECT_EQ(narrow_answer->upper, wide_answer->upper);
  EXPECT_EQ(wide_answer->report.num_threads, 8);
}

}  // namespace
}  // namespace pdb
