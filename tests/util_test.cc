#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/big_int.h"
#include "util/rational.h"
#include "util/random.h"
#include "util/scaled_float.h"
#include "util/status.h"
#include "util/string_util.h"

namespace pdb {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad things");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad things");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad things");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  PDB_ASSIGN_OR_RETURN(int v, in);
  return 2 * v;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

// ---------------------------------------------------------------------------
// BigInt
// ---------------------------------------------------------------------------

TEST(BigIntTest, SmallArithmetic) {
  BigInt a(123), b(-456);
  EXPECT_EQ((a + b).ToString(), "-333");
  EXPECT_EQ((a - b).ToString(), "579");
  EXPECT_EQ((a * b).ToString(), "-56088");
  EXPECT_EQ((b / a).ToString(), "-3");
  EXPECT_EQ((b % a).ToString(), "-87");
  EXPECT_EQ((-BigInt(456) / BigInt(123) * BigInt(123) +
             (-BigInt(456) % BigInt(123))),
            BigInt(-456));
}

TEST(BigIntTest, Int64Extremes) {
  BigInt min(INT64_MIN);
  EXPECT_EQ(min.ToString(), "-9223372036854775808");
  EXPECT_EQ(*min.ToInt64(), INT64_MIN);
  BigInt max(INT64_MAX);
  EXPECT_EQ(max.ToString(), "9223372036854775807");
  EXPECT_EQ(*max.ToInt64(), INT64_MAX);
  EXPECT_FALSE((max + BigInt(1)).ToInt64().ok());
}

TEST(BigIntTest, LargeMultiplication) {
  // 2^128 = 340282366920938463463374607431768211456.
  BigInt x = BigInt::Pow2(64);
  EXPECT_EQ((x * x).ToString(), "340282366920938463463374607431768211456");
}

TEST(BigIntTest, ParseRoundTrip) {
  const char* text = "-123456789012345678901234567890";
  auto parsed = BigInt::FromString(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), text);
  EXPECT_FALSE(BigInt::FromString("12x3").ok());
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
}

TEST(BigIntTest, DivisionLarge) {
  auto a = *BigInt::FromString("123456789012345678901234567890");
  auto b = *BigInt::FromString("987654321098765");
  BigInt q = a / b;
  BigInt r = a % b;
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r >= BigInt(0));
  EXPECT_TRUE(r < b);
}

TEST(BigIntTest, PowAndFactorial) {
  EXPECT_EQ(BigInt(3).Pow(5).ToString(), "243");
  EXPECT_EQ(BigInt(10).Pow(0), BigInt(1));
  EXPECT_EQ(BigInt::Factorial(20).ToString(), "2432902008176640000");
  EXPECT_EQ(BigInt::Factorial(0), BigInt(1));
}

TEST(BigIntTest, Binomial) {
  EXPECT_EQ(BigInt::Binomial(10, 3).ToString(), "120");
  EXPECT_EQ(BigInt::Binomial(50, 25).ToString(), "126410606437752");
  EXPECT_EQ(BigInt::Binomial(5, 9), BigInt(0));
  EXPECT_EQ(BigInt::Binomial(7, 0), BigInt(1));
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(-36)), BigInt(12));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_LT(BigInt(2), BigInt(10));
  EXPECT_FALSE(BigInt(3) < BigInt(3));
  std::set<BigInt> set{BigInt(3), BigInt(1), BigInt(2)};
  EXPECT_EQ(set.begin()->ToString(), "1");
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000000).ToDouble(), 1e6);
  EXPECT_NEAR(BigInt::Pow2(100).ToDouble(), std::pow(2.0, 100), 1e15);
  EXPECT_DOUBLE_EQ(BigInt(-42).ToDouble(), -42.0);
}

TEST(BigIntTest, TrailingZerosAndShifts) {
  EXPECT_EQ(BigInt(0).TrailingZeroBits(), 0);
  EXPECT_EQ(BigInt(1).TrailingZeroBits(), 0);
  EXPECT_EQ(BigInt(8).TrailingZeroBits(), 3);
  EXPECT_EQ(BigInt::Pow2(70).TrailingZeroBits(), 70);
  EXPECT_EQ((BigInt::Pow2(70) * BigInt(3)).TrailingZeroBits(), 70);
  EXPECT_TRUE(BigInt(1).IsPowerOfTwo());
  EXPECT_TRUE(BigInt::Pow2(97).IsPowerOfTwo());
  EXPECT_FALSE(BigInt(0).IsPowerOfTwo());
  EXPECT_FALSE(BigInt(6).IsPowerOfTwo());
  EXPECT_EQ(BigInt(40).ShiftRight(3), BigInt(5));
  EXPECT_EQ(BigInt::Pow2(100).ShiftRight(64), BigInt::Pow2(36));
  EXPECT_EQ((-BigInt(16)).ShiftRight(2), BigInt(-4));
  EXPECT_EQ(BigInt(5).ShiftRight(10), BigInt(0));
}

TEST(BigRationalTest, DyadicNormalizationFastPath) {
  // 12 / 2^4 = 3/4 through the trailing-zeros path.
  BigRational r(BigInt(12), BigInt::Pow2(4));
  EXPECT_EQ(r.ToString(), "3/4");
  // Huge dyadic values normalize without falling into Euclid.
  BigRational big(BigInt::Pow2(5000) * BigInt(6), BigInt::Pow2(5003));
  EXPECT_EQ(big.ToString(), "3/4");
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0);
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  EXPECT_EQ(BigInt::Pow2(97).BitLength(), 98);
}

// ---------------------------------------------------------------------------
// BigRational
// ---------------------------------------------------------------------------

TEST(BigRationalTest, NormalizesToLowestTerms) {
  BigRational r(BigInt(6), BigInt(-8));
  EXPECT_EQ(r.ToString(), "-3/4");
  EXPECT_EQ(BigRational(BigInt(0), BigInt(5)).ToString(), "0");
}

TEST(BigRationalTest, Arithmetic) {
  BigRational half(BigInt(1), BigInt(2));
  BigRational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
}

TEST(BigRationalTest, FromDoubleIsExact) {
  BigRational r = BigRational::FromDouble(0.5);
  EXPECT_EQ(r.ToString(), "1/2");
  BigRational x = BigRational::FromDouble(0.1);
  // 0.1 is not exactly 1/10 in binary; conversion must match the double.
  EXPECT_DOUBLE_EQ(x.ToDouble(), 0.1);
}

TEST(BigRationalTest, FromStringForms) {
  EXPECT_EQ(BigRational::FromString("3/9")->ToString(), "1/3");
  EXPECT_EQ(BigRational::FromString("0.25")->ToString(), "1/4");
  EXPECT_EQ(BigRational::FromString("-7")->ToString(), "-7");
  EXPECT_FALSE(BigRational::FromString("1/0").ok());
}

TEST(BigRationalTest, PowAndCompare) {
  BigRational half(BigInt(1), BigInt(2));
  EXPECT_EQ(half.Pow(10).ToString(), "1/1024");
  EXPECT_LT(half.Pow(3), half.Pow(2));
  EXPECT_GT(BigRational(1), half);
}

TEST(BigRationalTest, HugeMagnitudeToDouble) {
  BigRational tiny = BigRational(BigInt(1), BigInt::Pow2(5000));
  EXPECT_EQ(tiny.ToDouble(), 0.0);  // below double range, no NaN/crash
  BigRational ratio(BigInt::Pow2(5000) * BigInt(3), BigInt::Pow2(5001));
  EXPECT_DOUBLE_EQ(ratio.ToDouble(), 1.5);
}

// ---------------------------------------------------------------------------
// ScaledFloat
// ---------------------------------------------------------------------------

TEST(ScaledFloatTest, BasicOps) {
  ScaledFloat a(0.75), b(2.0);
  EXPECT_DOUBLE_EQ((a * b).ToDouble(), 1.5);
  EXPECT_DOUBLE_EQ((a + b).ToDouble(), 2.75);
  EXPECT_DOUBLE_EQ((b - a).ToDouble(), 1.25);
  EXPECT_DOUBLE_EQ((-a).ToDouble(), -0.75);
}

TEST(ScaledFloatTest, ExtremeExponents) {
  ScaledFloat half(0.5);
  ScaledFloat tiny = half.Pow(10000);  // 2^-10000, far below double range
  EXPECT_FALSE(tiny.is_zero());
  EXPECT_NEAR(tiny.Log10Abs(), -10000 * std::log10(2.0), 1e-6);
  ScaledFloat back = tiny * ScaledFloat(2.0).Pow(10000);
  EXPECT_DOUBLE_EQ(back.ToDouble(), 1.0);
}

TEST(ScaledFloatTest, FromBigInt) {
  BigInt big = BigInt::Factorial(100);
  ScaledFloat s = ScaledFloat::FromBigInt(big);
  EXPECT_NEAR(s.Log10Abs(), 157.97, 0.01);  // log10(100!) ~ 157.97
}

TEST(ScaledFloatTest, Division) {
  ScaledFloat a(3.0), b(0.5);
  EXPECT_DOUBLE_EQ((a / b).ToDouble(), 6.0);
  ScaledFloat tiny = ScaledFloat(0.5).Pow(2000);
  ScaledFloat ratio = tiny / tiny;
  EXPECT_DOUBLE_EQ(ratio.ToDouble(), 1.0);
  EXPECT_DOUBLE_EQ((ScaledFloat(0.0) / a).ToDouble(), 0.0);
}

TEST(ScaledFloatTest, AdditionAcrossScales) {
  ScaledFloat big = ScaledFloat(2.0).Pow(300);
  ScaledFloat one(1.0);
  // The tiny addend is dropped (beyond 53-bit precision) without error.
  EXPECT_DOUBLE_EQ((big + one).Log10Abs(), big.Log10Abs());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(13), 13u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(99);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitJoinTrim) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrTrim("  hello \t"), "hello");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
}

}  // namespace
}  // namespace pdb
