#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "core/pdb.h"
#include "core/session.h"
#include "sql/explain.h"
#include "sql/sql.h"
#include "test_common.h"

namespace pdb {
namespace {

// Customer(id, city), Orders(id, amount) with probabilities.
Database ShopDb() {
  Database db;
  Relation customer("Customer", Schema({{"id", ValueType::kInt},
                                        {"city", ValueType::kString}}));
  PDB_CHECK(customer.AddTuple({Value(1), Value("tacoma")}, 0.9).ok());
  PDB_CHECK(customer.AddTuple({Value(2), Value("spokane")}, 0.4).ok());
  PDB_CHECK(db.AddRelation(std::move(customer)).ok());
  Relation orders("Orders", Schema({{"id", ValueType::kInt},
                                    {"amount", ValueType::kInt}}));
  PDB_CHECK(orders.AddTuple({Value(1), Value(120)}, 0.5).ok());
  PDB_CHECK(orders.AddTuple({Value(2), Value(80)}, 0.25).ok());
  PDB_CHECK(db.AddRelation(std::move(orders)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(SqlParseTest, BooleanSelect) {
  auto parsed = ParseSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->boolean);
  ASSERT_EQ(parsed->from.size(), 2u);
  EXPECT_EQ(parsed->from[0].table, "Customer");
  EXPECT_EQ(parsed->from[0].alias, "c");
  ASSERT_EQ(parsed->where.size(), 1u);
}

TEST(SqlParseTest, ColumnSelectWithLiterals) {
  auto parsed = ParseSql(
      "select city from Customer where id = 1 and city = 'tacoma'");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->boolean);
  ASSERT_EQ(parsed->columns.size(), 1u);
  EXPECT_EQ(parsed->columns[0].column, "city");
  EXPECT_EQ(parsed->where.size(), 2u);
}

TEST(SqlParseTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSql("select prob() from Customer").ok());
  EXPECT_TRUE(ParseSql("SELECT id FROM Customer AS c;").ok());
}

TEST(SqlParseTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM Customer").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() Customer").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WHERE id =").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WHERE id < 3").ok());
  EXPECT_FALSE(ParseSql("SELECT x FROM t WHERE a = 'unterminated").ok());
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

TEST(SqlCompileTest, JoinBecomesSharedVariable) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id", db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->boolean);
  ASSERT_EQ(compiled->cq.size(), 2u);
  // The id columns share one variable.
  EXPECT_EQ(compiled->cq.atoms()[0].args[0],
            compiled->cq.atoms()[1].args[0]);
  EXPECT_TRUE(compiled->cq.IsSelfJoinFree());
}

TEST(SqlCompileTest, LiteralsPinConstants) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer WHERE city = 'tacoma'", db);
  ASSERT_TRUE(compiled.ok());
  const Term& city = compiled->cq.atoms()[0].args[1];
  ASSERT_TRUE(city.is_constant());
  EXPECT_EQ(city.constant().AsString(), "tacoma");
}

TEST(SqlCompileTest, UnqualifiedColumnsAndAmbiguity) {
  Database db = ShopDb();
  // "city" is unambiguous; "id" appears in both tables.
  EXPECT_TRUE(CompileSql("SELECT city FROM Customer", db).ok());
  auto ambiguous =
      CompileSql("SELECT PROB() FROM Customer, Orders WHERE id = 1", db);
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);
  auto unknown = CompileSql("SELECT zzz FROM Customer", db);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto missing_table = CompileSql("SELECT PROB() FROM Nope", db);
  EXPECT_EQ(missing_table.status().code(), StatusCode::kNotFound);
}

TEST(SqlCompileTest, ContradictionIsRejected) {
  Database db = ShopDb();
  auto contradiction = CompileSql(
      "SELECT PROB() FROM Customer WHERE id = 1 AND id = 2", db);
  EXPECT_FALSE(contradiction.ok());
}

// ---------------------------------------------------------------------------
// End-to-end through ProbDatabase
// ---------------------------------------------------------------------------

TEST(SqlQueryTest, BooleanProbability) {
  ProbDatabase engine(ShopDb());
  auto p = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(p.ok());
  // P = 1 - (1 - .9*.5)(1 - .4*.25) = 1 - .55*.9 = 0.505.
  EXPECT_NEAR(p->probability, 0.505, 1e-12);
  EXPECT_TRUE(p->exact);
  // Selection by literal.
  auto tacoma = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer WHERE city = 'tacoma'");
  EXPECT_NEAR(tacoma->probability, 0.9, 1e-12);
}

TEST(SqlQueryTest, AnswerRelation) {
  ProbDatabase engine(ShopDb());
  auto answers = engine.QuerySqlAnswers(
      "SELECT c.city FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  EXPECT_NEAR(answers->ProbOf({Value("tacoma")}), 0.9 * 0.5, 1e-12);
  EXPECT_NEAR(answers->ProbOf({Value("spokane")}), 0.4 * 0.25, 1e-12);
}

TEST(SqlQueryTest, MismatchedEntryPointsAreRejected) {
  ProbDatabase engine(ShopDb());
  EXPECT_FALSE(engine.QuerySqlBoolean("SELECT city FROM Customer").ok());
  EXPECT_FALSE(
      engine.QuerySqlAnswers("SELECT PROB() FROM Customer").ok());
}

TEST(SqlParseTest, WithStderrClause) {
  auto parsed = ParseSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id "
      "WITH STDERR 0.005");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->target_stderr, 0.005);

  // Absent clause leaves the default.
  auto plain = ParseSql("SELECT PROB() FROM Customer");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->target_stderr, 0.0);

  // Integer bounds, scientific notation, and lowercase keywords all parse.
  EXPECT_DOUBLE_EQ(
      ParseSql("SELECT PROB() FROM Customer WITH STDERR 1")->target_stderr,
      1.0);
  EXPECT_DOUBLE_EQ(
      ParseSql("select prob() from Customer with stderr 2.5e-3")
          ->target_stderr,
      0.0025);
}

TEST(SqlParseTest, WithStderrErrors) {
  // Missing/garbled clause pieces.
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH STDERR").ok());
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WITH TIMEOUT 0.1").ok());
  // The target must be positive.
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH STDERR 0").ok());
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WITH STDERR 0.0").ok());
  // Floats stay confined to WITH STDERR: WHERE literals reject them...
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WHERE id = 1.5").ok());
  // ...and qualified column refs still tokenize as ident '.' ident.
  EXPECT_TRUE(
      ParseSql("SELECT PROB() FROM Customer c WHERE c.id = 1").ok());
}

TEST(SqlCompileTest, WithStderrSurvivesCompilation) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id "
      "WITH STDERR 0.01",
      db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_DOUBLE_EQ(compiled->target_stderr, 0.01);
}

TEST(SqlQueryTest, SqlMatchesUcqPath) {
  ProbDatabase engine(ShopDb());
  auto via_sql = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  auto via_ucq = engine.Query("Customer(x, c), Orders(x, a)");
  ASSERT_TRUE(via_sql.ok());
  ASSERT_TRUE(via_ucq.ok());
  EXPECT_NEAR(via_sql->probability, via_ucq->probability, 1e-12);
}

// ---------------------------------------------------------------------------
// EXPLAIN [ANALYZE]
// ---------------------------------------------------------------------------

TEST(ExplainPrefixTest, StripsExplainAndOptionalAnalyze) {
  bool analyze = true;
  std::string rest;
  ASSERT_TRUE(
      StripExplainPrefix("EXPLAIN SELECT PROB() FROM R", &analyze, &rest));
  EXPECT_FALSE(analyze);
  EXPECT_EQ(rest, "SELECT PROB() FROM R");

  ASSERT_TRUE(StripExplainPrefix("  explain analyze  select x from R",
                                 &analyze, &rest));
  EXPECT_TRUE(analyze);
  EXPECT_EQ(rest, "select x from R");

  // Not EXPLAIN: untouched, returns false.
  EXPECT_FALSE(StripExplainPrefix("SELECT PROB() FROM R", &analyze, &rest));
  // An identifier that merely begins with the keyword is not the keyword.
  EXPECT_FALSE(StripExplainPrefix("EXPLAINX SELECT 1", &analyze, &rest));
  // ANALYZE alone (no EXPLAIN) is not a prefix either.
  EXPECT_FALSE(StripExplainPrefix("ANALYZE SELECT 1", &analyze, &rest));
  // "EXPLAIN ANALYZER ..." keeps ANALYZER as part of the statement.
  ASSERT_TRUE(StripExplainPrefix("EXPLAIN ANALYZER bogus", &analyze, &rest));
  EXPECT_FALSE(analyze);
  EXPECT_EQ(rest, "ANALYZER bogus");
}

/// n-wide uniform bipartite database: R(x) 1..n, S(x,y) the full n x n
/// grid, T(y) 1..n. The independence assumption behind the cost model
/// holds exactly, so per-step estimates should track actuals.
Database UniformJoinDb(int n) {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kInt}}));
  Relation s("S", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  Relation t("T", Schema({{"y", ValueType::kInt}}));
  for (int i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(int64_t{i})}, 0.5).ok());
    PDB_CHECK(t.AddTuple({Value(int64_t{i})}, 0.5).ok());
    for (int j = 1; j <= n; ++j) {
      PDB_CHECK(s.AddTuple({Value(int64_t{i}), Value(int64_t{j})}, 0.5).ok());
    }
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

/// Planted correlation: S holds n pairs but every one of them has x = 1,
/// so dividing |S| by distinct(S.x) = 1 predicts n rows per upstream R
/// binding while all but x = 1 produce zero.
Database CorrelatedJoinDb(int n) {
  Database db;
  Relation r("R", Schema({{"x", ValueType::kInt}}));
  Relation s("S", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  Relation t("T", Schema({{"y", ValueType::kInt}}));
  for (int i = 1; i <= n; ++i) {
    PDB_CHECK(r.AddTuple({Value(int64_t{i})}, 0.5).ok());
    PDB_CHECK(t.AddTuple({Value(int64_t{i})}, 0.5).ok());
    PDB_CHECK(s.AddTuple({Value(int64_t{1}), Value(int64_t{i})}, 0.5).ok());
  }
  PDB_CHECK(db.AddRelation(std::move(r)).ok());
  PDB_CHECK(db.AddRelation(std::move(s)).ok());
  PDB_CHECK(db.AddRelation(std::move(t)).ok());
  return db;
}

const char* kJoinSql =
    "SELECT PROB() FROM R, S, T WHERE R.x = S.x AND S.y = T.y";

/// Cumulative estimated cardinality after step `s`: step estimates are
/// per upstream partial match, so the running product is the prediction
/// comparable to the executor's per-step entered-row counts.
double CumulativeEstimate(const JoinPlanProfile& plan, size_t s) {
  double cum = 1.0;
  for (size_t i = 0; i <= s && i < plan.steps.size(); ++i) {
    if (plan.steps[i].estimated_rows < 0) return -1.0;
    cum *= plan.steps[i].estimated_rows;
  }
  return cum;
}

TEST(ExplainTest, PlainExplainPredictsWithoutExecuting) {
  ProbDatabase pdb(UniformJoinDb(4));
  Session session(&pdb, {.num_threads = 1});
  auto explain = session.ExplainSql(kJoinSql, /*analyze=*/false);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->analyze);
  EXPECT_FALSE(explain->executed);
  EXPECT_TRUE(explain->method_predicted);
  // R(x), S(x,y), T(y) is the H0 non-hierarchical pattern: unsafe.
  EXPECT_FALSE(explain->safe);
  EXPECT_EQ(explain->method, "grounded-exact");
  ASSERT_EQ(explain->plans.size(), 1u);
  const JoinPlanProfile& plan = explain->plans[0];
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_FALSE(plan.executed);
  for (const JoinStepProfile& step : plan.steps) {
    EXPECT_GT(step.relation_rows, 0u);
    EXPECT_GE(step.estimated_rows, 0.0);
    EXPECT_EQ(step.actual_rows, 0u);
  }
  std::string text = explain->ToText();
  EXPECT_NE(text.find("routing: grounded-exact (predicted)"),
            std::string::npos);
  EXPECT_NE(text.find("(not executed)"), std::string::npos);
  std::string json = explain->ToJson();
  EXPECT_NE(json.find("\"executed\":false"), std::string::npos);
  EXPECT_EQ(json.find("\"probability\""), std::string::npos);
}

TEST(ExplainTest, SafeQueryRoutesLifted) {
  ProbDatabase pdb(UniformJoinDb(3));
  Session session(&pdb, {.num_threads = 1});
  auto explain =
      session.ExplainSql("SELECT PROB() FROM R, S WHERE R.x = S.x", false);
  ASSERT_TRUE(explain.ok());
  EXPECT_TRUE(explain->safe);
  EXPECT_EQ(explain->method, "lifted");
  EXPECT_NE(explain->safety.find("safe"), std::string::npos);
}

TEST(ExplainTest, AnalyzeExecutesAndAgreesWithExecReport) {
  ProbDatabase pdb(UniformJoinDb(4));
  Session session(&pdb, {.num_threads = 1});

  auto direct = session.QuerySqlBoolean(kJoinSql);
  ASSERT_TRUE(direct.ok());

  auto explain = session.ExplainSql(kJoinSql, /*analyze=*/true);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_TRUE(explain->analyze);
  EXPECT_TRUE(explain->executed);
  EXPECT_FALSE(explain->method_predicted);
  EXPECT_NEAR(explain->probability, direct->probability, 1e-12);
  EXPECT_TRUE(explain->exact);

  // Differential check against the engine's own counters: the executed
  // plan's match count is the final step's entered-row count and equals
  // what the ExecReport saw as lineage matches.
  ASSERT_EQ(explain->plans.size(), 1u);
  const JoinPlanProfile& plan = explain->plans[0];
  ASSERT_TRUE(plan.executed);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.matches, plan.steps.back().actual_rows);
  EXPECT_EQ(plan.matches, explain->report.lineage_matches);
  EXPECT_GT(explain->report.lineage_nodes, 0u);

  // Phase timings made it into the payload.
  EXPECT_GT(explain->trace.total_ns, 0u);
  EXPECT_FALSE(explain->trace.spans.empty());
  std::string text = explain->ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("probability:"), std::string::npos);
  EXPECT_NE(text.find("trace: total"), std::string::npos);
}

TEST(ExplainTest, AnalyzeBypassesResultCache) {
  ProbDatabase pdb(UniformJoinDb(4));
  Session session(&pdb, {.num_threads = 1});
  // Warm the result cache, then confirm ANALYZE still executes the join
  // (a cache hit would leave no executed plan to report).
  ASSERT_TRUE(session.QuerySqlBoolean(kJoinSql).ok());
  ASSERT_TRUE(session.QuerySqlBoolean(kJoinSql).ok());
  EXPECT_GE(session.result_cache_hits(), 1u);
  auto explain = session.ExplainSql(kJoinSql, /*analyze=*/true);
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->plans.size(), 1u);
  EXPECT_TRUE(explain->plans[0].executed);
  EXPECT_GT(explain->plans[0].matches, 0u);
}

TEST(ExplainTest, AnalyzeAnswersQueryReportsTuples) {
  ProbDatabase pdb(UniformJoinDb(3));
  Session session(&pdb, {.num_threads = 1});
  auto explain = session.ExplainSql(
      "SELECT R.x FROM R, S WHERE R.x = S.x", /*analyze=*/true);
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain->boolean);
  EXPECT_TRUE(explain->executed);
  EXPECT_EQ(explain->answer_tuples, 3u);
  std::string text = explain->ToText();
  EXPECT_NE(text.find("answers: 3 tuples"), std::string::npos);
}

TEST(ExplainTest, UniformDataEstimatesTrackActuals) {
  ProbDatabase pdb(UniformJoinDb(6));
  Session session(&pdb, {.num_threads = 1});
  auto explain = session.ExplainSql(kJoinSql, /*analyze=*/true);
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->plans.size(), 1u);
  const JoinPlanProfile& plan = explain->plans[0];
  ASSERT_TRUE(plan.executed);
  // Independence holds exactly here, so every cumulative estimate must be
  // within a constant factor of the observed per-step row count.
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    double estimate = CumulativeEstimate(plan, s);
    double actual = static_cast<double>(plan.steps[s].actual_rows);
    ASSERT_GE(estimate, 0.0);
    ASSERT_GT(actual, 0.0);
    EXPECT_LE(estimate / actual, 2.0) << "step " << s;
    EXPECT_GE(estimate / actual, 0.5) << "step " << s;
  }
}

TEST(ExplainTest, CorrelatedDataDivergenceIsReportedNotHidden) {
  const int n = 20;
  ProbDatabase pdb(CorrelatedJoinDb(n));
  Session session(&pdb, {.num_threads = 1});
  auto explain = session.ExplainSql(kJoinSql, /*analyze=*/true);
  ASSERT_TRUE(explain.ok());
  ASSERT_EQ(explain->plans.size(), 1u);
  const JoinPlanProfile& plan = explain->plans[0];
  ASSERT_TRUE(plan.executed);
  // The skewed S column breaks the independence assumption: somewhere the
  // cumulative estimate and the actual count diverge by at least 5x...
  double worst = 1.0;
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    double estimate = CumulativeEstimate(plan, s);
    double actual =
        std::max(1.0, static_cast<double>(plan.steps[s].actual_rows));
    if (estimate < 0) continue;
    worst = std::max(worst,
                     std::max(estimate / actual, actual / estimate));
  }
  EXPECT_GE(worst, 5.0);
  // ...and both numbers appear side by side in the rendering rather than
  // the estimate being replaced by the observed value.
  std::string json = explain->ToJson();
  EXPECT_NE(json.find("\"estimated_rows\":"), std::string::npos);
  EXPECT_NE(json.find("\"actual_rows\":"), std::string::npos);
  bool some_step_diverges = false;
  for (const JoinStepProfile& step : plan.steps) {
    if (step.estimated_rows >= 0 &&
        std::abs(step.estimated_rows -
                 static_cast<double>(step.actual_rows)) > 1e-9) {
      some_step_diverges = true;
    }
  }
  EXPECT_TRUE(some_step_diverges);
}

TEST(ExplainTest, RejectsUnparseableSql) {
  ProbDatabase pdb(UniformJoinDb(2));
  Session session(&pdb, {.num_threads = 1});
  EXPECT_FALSE(session.ExplainSql("SELECT FROM nothing", false).ok());
  EXPECT_FALSE(session.ExplainSql("not sql at all", true).ok());
}

}  // namespace
}  // namespace pdb
