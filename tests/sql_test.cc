#include <gtest/gtest.h>

#include "core/pdb.h"
#include "sql/sql.h"
#include "test_common.h"

namespace pdb {
namespace {

// Customer(id, city), Orders(id, amount) with probabilities.
Database ShopDb() {
  Database db;
  Relation customer("Customer", Schema({{"id", ValueType::kInt},
                                        {"city", ValueType::kString}}));
  PDB_CHECK(customer.AddTuple({Value(1), Value("tacoma")}, 0.9).ok());
  PDB_CHECK(customer.AddTuple({Value(2), Value("spokane")}, 0.4).ok());
  PDB_CHECK(db.AddRelation(std::move(customer)).ok());
  Relation orders("Orders", Schema({{"id", ValueType::kInt},
                                    {"amount", ValueType::kInt}}));
  PDB_CHECK(orders.AddTuple({Value(1), Value(120)}, 0.5).ok());
  PDB_CHECK(orders.AddTuple({Value(2), Value(80)}, 0.25).ok());
  PDB_CHECK(db.AddRelation(std::move(orders)).ok());
  return db;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

TEST(SqlParseTest, BooleanSelect) {
  auto parsed = ParseSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->boolean);
  ASSERT_EQ(parsed->from.size(), 2u);
  EXPECT_EQ(parsed->from[0].table, "Customer");
  EXPECT_EQ(parsed->from[0].alias, "c");
  ASSERT_EQ(parsed->where.size(), 1u);
}

TEST(SqlParseTest, ColumnSelectWithLiterals) {
  auto parsed = ParseSql(
      "select city from Customer where id = 1 and city = 'tacoma'");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->boolean);
  ASSERT_EQ(parsed->columns.size(), 1u);
  EXPECT_EQ(parsed->columns[0].column, "city");
  EXPECT_EQ(parsed->where.size(), 2u);
}

TEST(SqlParseTest, KeywordsAreCaseInsensitive) {
  EXPECT_TRUE(ParseSql("select prob() from Customer").ok());
  EXPECT_TRUE(ParseSql("SELECT id FROM Customer AS c;").ok());
}

TEST(SqlParseTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM Customer").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() Customer").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WHERE id =").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WHERE id < 3").ok());
  EXPECT_FALSE(ParseSql("SELECT x FROM t WHERE a = 'unterminated").ok());
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

TEST(SqlCompileTest, JoinBecomesSharedVariable) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id", db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_TRUE(compiled->boolean);
  ASSERT_EQ(compiled->cq.size(), 2u);
  // The id columns share one variable.
  EXPECT_EQ(compiled->cq.atoms()[0].args[0],
            compiled->cq.atoms()[1].args[0]);
  EXPECT_TRUE(compiled->cq.IsSelfJoinFree());
}

TEST(SqlCompileTest, LiteralsPinConstants) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer WHERE city = 'tacoma'", db);
  ASSERT_TRUE(compiled.ok());
  const Term& city = compiled->cq.atoms()[0].args[1];
  ASSERT_TRUE(city.is_constant());
  EXPECT_EQ(city.constant().AsString(), "tacoma");
}

TEST(SqlCompileTest, UnqualifiedColumnsAndAmbiguity) {
  Database db = ShopDb();
  // "city" is unambiguous; "id" appears in both tables.
  EXPECT_TRUE(CompileSql("SELECT city FROM Customer", db).ok());
  auto ambiguous =
      CompileSql("SELECT PROB() FROM Customer, Orders WHERE id = 1", db);
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);
  auto unknown = CompileSql("SELECT zzz FROM Customer", db);
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto missing_table = CompileSql("SELECT PROB() FROM Nope", db);
  EXPECT_EQ(missing_table.status().code(), StatusCode::kNotFound);
}

TEST(SqlCompileTest, ContradictionIsRejected) {
  Database db = ShopDb();
  auto contradiction = CompileSql(
      "SELECT PROB() FROM Customer WHERE id = 1 AND id = 2", db);
  EXPECT_FALSE(contradiction.ok());
}

// ---------------------------------------------------------------------------
// End-to-end through ProbDatabase
// ---------------------------------------------------------------------------

TEST(SqlQueryTest, BooleanProbability) {
  ProbDatabase engine(ShopDb());
  auto p = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(p.ok());
  // P = 1 - (1 - .9*.5)(1 - .4*.25) = 1 - .55*.9 = 0.505.
  EXPECT_NEAR(p->probability, 0.505, 1e-12);
  EXPECT_TRUE(p->exact);
  // Selection by literal.
  auto tacoma = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer WHERE city = 'tacoma'");
  EXPECT_NEAR(tacoma->probability, 0.9, 1e-12);
}

TEST(SqlQueryTest, AnswerRelation) {
  ProbDatabase engine(ShopDb());
  auto answers = engine.QuerySqlAnswers(
      "SELECT c.city FROM Customer c, Orders o WHERE c.id = o.id");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  EXPECT_NEAR(answers->ProbOf({Value("tacoma")}), 0.9 * 0.5, 1e-12);
  EXPECT_NEAR(answers->ProbOf({Value("spokane")}), 0.4 * 0.25, 1e-12);
}

TEST(SqlQueryTest, MismatchedEntryPointsAreRejected) {
  ProbDatabase engine(ShopDb());
  EXPECT_FALSE(engine.QuerySqlBoolean("SELECT city FROM Customer").ok());
  EXPECT_FALSE(
      engine.QuerySqlAnswers("SELECT PROB() FROM Customer").ok());
}

TEST(SqlParseTest, WithStderrClause) {
  auto parsed = ParseSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id "
      "WITH STDERR 0.005");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->target_stderr, 0.005);

  // Absent clause leaves the default.
  auto plain = ParseSql("SELECT PROB() FROM Customer");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->target_stderr, 0.0);

  // Integer bounds, scientific notation, and lowercase keywords all parse.
  EXPECT_DOUBLE_EQ(
      ParseSql("SELECT PROB() FROM Customer WITH STDERR 1")->target_stderr,
      1.0);
  EXPECT_DOUBLE_EQ(
      ParseSql("select prob() from Customer with stderr 2.5e-3")
          ->target_stderr,
      0.0025);
}

TEST(SqlParseTest, WithStderrErrors) {
  // Missing/garbled clause pieces.
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH").ok());
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH STDERR").ok());
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WITH TIMEOUT 0.1").ok());
  // The target must be positive.
  EXPECT_FALSE(ParseSql("SELECT PROB() FROM Customer WITH STDERR 0").ok());
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WITH STDERR 0.0").ok());
  // Floats stay confined to WITH STDERR: WHERE literals reject them...
  EXPECT_FALSE(
      ParseSql("SELECT PROB() FROM Customer WHERE id = 1.5").ok());
  // ...and qualified column refs still tokenize as ident '.' ident.
  EXPECT_TRUE(
      ParseSql("SELECT PROB() FROM Customer c WHERE c.id = 1").ok());
}

TEST(SqlCompileTest, WithStderrSurvivesCompilation) {
  Database db = ShopDb();
  auto compiled = CompileSql(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id "
      "WITH STDERR 0.01",
      db);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_DOUBLE_EQ(compiled->target_stderr, 0.01);
}

TEST(SqlQueryTest, SqlMatchesUcqPath) {
  ProbDatabase engine(ShopDb());
  auto via_sql = engine.QuerySqlBoolean(
      "SELECT PROB() FROM Customer c, Orders o WHERE c.id = o.id");
  auto via_ucq = engine.Query("Customer(x, c), Orders(x, a)");
  ASSERT_TRUE(via_sql.ok());
  ASSERT_TRUE(via_ucq.ok());
  EXPECT_NEAR(via_sql->probability, via_ucq->probability, 1e-12);
}

}  // namespace
}  // namespace pdb
