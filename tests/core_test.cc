#include <gtest/gtest.h>

#include "core/pdb.h"

#include <cmath>
#include "test_common.h"

namespace pdb {
namespace {

TEST(ProbDatabaseTest, QueryTextAcceptsFoAndShorthand) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  auto fo = pdb.Query("forall x forall y (S(x,y) => R(x))");
  ASSERT_TRUE(fo.ok());
  EXPECT_NEAR(fo->probability, testing::Example21ClosedForm(), 1e-12);
  EXPECT_EQ(fo->method, InferenceMethod::kLifted);
  EXPECT_TRUE(fo->exact);
  auto shorthand = pdb.Query("R(x), S(x,y)");
  ASSERT_TRUE(shorthand.ok());
  EXPECT_EQ(shorthand->method, InferenceMethod::kLifted);
  auto bad = pdb.Query("not a query at all (");
  EXPECT_FALSE(bad.ok());
}

TEST(ProbDatabaseTest, FallsBackToGroundedForHardQueries) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  // H0-ish query: unsafe, but the database is tiny so grounded WMC works.
  Database& db = pdb.database();
  Relation t("T", Schema({{"y", ValueType::kString}}));
  ASSERT_TRUE(t.AddTuple({Value("b1")}, 0.5).ok());
  ASSERT_TRUE(t.AddTuple({Value("b3")}, 0.5).ok());
  ASSERT_TRUE(db.AddRelation(std::move(t)).ok());
  auto answer = pdb.Query("R(x), S(x,y), T(y)");
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->method, InferenceMethod::kGroundedExact);
  EXPECT_TRUE(answer->exact);
  // Cross-check against a forced-grounded run of the safe path.
  QueryOptions no_lifted;
  no_lifted.prefer_lifted = false;
  auto safe_grounded = pdb.Query("R(x), S(x,y)", no_lifted);
  ASSERT_TRUE(safe_grounded.ok());
  EXPECT_EQ(safe_grounded->method, InferenceMethod::kGroundedExact);
  auto safe_lifted = pdb.Query("R(x), S(x,y)");
  EXPECT_NEAR(safe_grounded->probability, safe_lifted->probability, 1e-10);
}

TEST(ProbDatabaseTest, MonteCarloFallbackOnBudgetExhaustion) {
  // Big random H0 instance + a 1-decision budget forces approximation.
  Database db;
  Rng rng(8);
  testing::RandomTidOptions options;
  options.domain_size = 6;
  testing::AddRandomRelation(&db, "R", 1, &rng, options);
  testing::AddRandomRelation(&db, "S", 2, &rng, options);
  testing::AddRandomRelation(&db, "T", 1, &rng, options);
  ProbDatabase pdb(std::move(db));
  QueryOptions budget;
  budget.max_dpll_decisions = 1;
  budget.monte_carlo_samples = 50000;
  auto answer = pdb.Query("R(x), S(x,y), T(y)", budget);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->method, InferenceMethod::kMonteCarlo);
  EXPECT_FALSE(answer->exact);
  EXPECT_LE(answer->lower, answer->probability + 1e-12);
  EXPECT_GE(answer->upper, answer->probability - 1e-12);
  // The true value (computed without the budget) lies in the enclosure.
  auto exact = pdb.Query("R(x), S(x,y), T(y)");
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(exact->probability, answer->lower - 1e-9);
  EXPECT_LE(exact->probability, answer->upper + 1e-9);
}

TEST(ProbDatabaseTest, PlanBoundsWhenMonteCarloDisabled) {
  Database db;
  Rng rng(9);
  testing::RandomTidOptions options;
  options.domain_size = 6;
  testing::AddRandomRelation(&db, "R", 1, &rng, options);
  testing::AddRandomRelation(&db, "S", 2, &rng, options);
  testing::AddRandomRelation(&db, "T", 1, &rng, options);
  ProbDatabase pdb(std::move(db));
  QueryOptions opts;
  opts.max_dpll_decisions = 1;
  opts.allow_monte_carlo = false;
  auto answer = pdb.Query("R(x), S(x,y), T(y)", opts);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->method, InferenceMethod::kPlanBounds);
  auto exact = pdb.Query("R(x), S(x,y), T(y)");
  EXPECT_GE(exact->probability, answer->lower - 1e-9);
  EXPECT_LE(exact->probability, answer->upper + 1e-9);
}

TEST(ProbDatabaseTest, NonBooleanQueryAnswers) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  // Q(x) :- R(x), S(x,y): answers a1, a2 with their marginals.
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")})});
  auto answers = pdb.QueryWithAnswers(cq, {"x"});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  testing::Figure1Probs p;
  // P(a1) = p1 * (1 - (1-q1)(1-q2)).
  EXPECT_NEAR(answers->ProbOf({Value("a1")}),
              p.p1 * (1 - (1 - p.q1) * (1 - p.q2)), 1e-12);
  EXPECT_NEAR(answers->ProbOf({Value("a2")}),
              p.p2 * (1 - (1 - p.q3) * (1 - p.q4) * (1 - p.q5)), 1e-12);
  // Unknown head variable is rejected.
  EXPECT_FALSE(pdb.QueryWithAnswers(cq, {"zzz"}).ok());
}

TEST(ProbDatabaseTest, NonBooleanTwoHeadVariables) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  ConjunctiveQuery cq({Atom("R", {Term::Var("x")}),
                       Atom("S", {Term::Var("x"), Term::Var("y")})});
  auto answers = pdb.QueryWithAnswers(cq, {"x", "y"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 5u);  // the five joinable S rows
  testing::Figure1Probs p;
  EXPECT_NEAR(answers->ProbOf({Value("a1"), Value("b1")}), p.p1 * p.q1,
              1e-12);
}

TEST(ProbDatabaseTest, ConditionalProbability) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  auto q = ParseFo("exists y S('a1', y)");
  auto evidence = ParseFo("R('a1')");
  ASSERT_TRUE(q.ok() && evidence.ok());
  // S-events and R-events are independent, so conditioning is a no-op.
  auto cond = pdb.ConditionalProbability(*q, *evidence);
  ASSERT_TRUE(cond.ok());
  auto unconditional = pdb.Query("exists y S('a1', y)");
  EXPECT_NEAR(*cond, unconditional->probability, 1e-12);
  // Conditioning on the query itself gives 1.
  auto self = pdb.ConditionalProbability(*q, *q);
  EXPECT_NEAR(*self, 1.0, 1e-12);
  // Dependent case: P(exists x R(x) | R('a1')) = 1.
  auto some_r = ParseFo("exists x R(x)");
  EXPECT_NEAR(*pdb.ConditionalProbability(*some_r, *evidence), 1.0, 1e-12);
  // Zero-probability evidence is rejected.
  Database& db = pdb.database();
  Relation z("Z", Schema({{"x", ValueType::kString}}));
  ASSERT_TRUE(z.AddTuple({Value("a")}, 0.0).ok());
  ASSERT_TRUE(db.AddRelation(std::move(z)).ok());
  auto zero = ParseFo("Z('a')");
  EXPECT_FALSE(pdb.ConditionalProbability(*q, *zero).ok());
}

TEST(ProbDatabaseTest, TopInfluences) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  auto q = ParseFo("exists x exists y (R(x) & S(x,y))");
  ASSERT_TRUE(q.ok());
  auto influences = pdb.TopInfluences(*q, 3);
  ASSERT_TRUE(influences.ok());
  ASSERT_EQ(influences->size(), 3u);
  // Sorted by |influence| descending.
  for (size_t i = 1; i < influences->size(); ++i) {
    EXPECT_GE(std::abs((*influences)[i - 1].influence),
              std::abs((*influences)[i].influence));
  }
  // R(a2) dominates: it enables three S tuples with sizable probabilities.
  EXPECT_EQ((*influences)[0].relation, "R");
  EXPECT_EQ((*influences)[0].tuple, Tuple{Value("a2")});
  // Influence must match the conditional difference computed directly.
  testing::Figure1Probs p;
  double with_r2 = 1 - (1 - p.q3) * (1 - p.q4) * (1 - p.q5);
  double without_r2 = 1 - (1 - p.p1 * (1 - (1 - p.q1) * (1 - p.q2)));
  // P(Q | R(a2)=1) = 1-(1-[a1 part])(1-[a2 S-part]); compute directly:
  double a1_part = p.p1 * (1 - (1 - p.q1) * (1 - p.q2));
  double p1_val = 1 - (1 - a1_part) * (1 - with_r2);
  double p0_val = 1 - (1 - a1_part);
  (void)without_r2;
  EXPECT_NEAR((*influences)[0].influence, p1_val - p0_val, 1e-12);
}

TEST(ProbDatabaseTest, NoAnswersYieldsEmptyRelation) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  // R joined with S on a column that never matches: a3 has no S rows.
  ConjunctiveQuery cq({Atom("R", {Term::Const(Value("a3"))}),
                       Atom("S", {Term::Const(Value("a3")), Term::Var("y")})});
  auto answers = pdb.QueryWithAnswers(cq, {"y"});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 0u);
  // Boolean form of the same query is probability zero.
  auto boolean = pdb.Query("R('a3'), S('a3', y)");
  ASSERT_TRUE(boolean.ok());
  EXPECT_DOUBLE_EQ(boolean->probability, 0.0);
}

TEST(ProbDatabaseTest, ExplanationsAreInformative) {
  ProbDatabase pdb(testing::BuildFigure1Database());
  auto answer = pdb.Query("R(x), S(x,y)");
  ASSERT_TRUE(answer.ok());
  EXPECT_NE(answer->explanation.find("lifted"), std::string::npos);
}

}  // namespace
}  // namespace pdb
