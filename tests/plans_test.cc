#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "lifted/lifted.h"
#include "logic/parser.h"
#include "plans/bounds.h"
#include "plans/enumerate.h"
#include "plans/plan.h"
#include "test_common.h"
#include "wmc/dpll.h"

namespace pdb {
namespace {

ConjunctiveQuery CqOf(const std::string& shorthand) {
  auto fo = ParseUcqShorthand(shorthand);
  PDB_CHECK(fo.ok());
  auto ucq = FoToUcq(*fo);
  PDB_CHECK(ucq.ok() && ucq->size() == 1);
  return ucq->disjuncts()[0];
}

double GroundTruth(const ConjunctiveQuery& cq, const Database& db) {
  FormulaManager mgr;
  auto lineage = BuildUcqLineage(Ucq({cq}), db, &mgr);
  PDB_CHECK(lineage.ok());
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage->probs));
  return *counter.Compute(lineage->root);
}

// ---------------------------------------------------------------------------
// The paper's Plan_1 / Plan_2 example (§6 and footnote 9)
// ---------------------------------------------------------------------------

TEST(PlansTest, PaperFootnote9ClosedForms) {
  testing::Figure1Probs p;
  Database db = testing::BuildFigure1Database(p);
  ConjunctiveQuery cq = CqOf("R(x), S(x,y)");
  auto vars = cq.Variables();
  std::vector<std::string> var_list(vars.begin(), vars.end());
  // Identify which renamed variable plays x (the one in both atoms).
  std::string x = *RootVariables(cq).begin();
  std::string y;
  for (const auto& v : vars) {
    if (v != x) y = v;
  }
  // Plan_1: project everything after the join == eliminate x then y.
  auto plan1 = PlanForEliminationOrder(cq, {x, y});
  ASSERT_TRUE(plan1.ok());
  double got1 = *ExecuteBooleanPlan(*plan1, db);
  double expect1 = 1 - (1 - p.p1 * p.q1) * (1 - p.p1 * p.q2) *
                           (1 - p.p2 * p.q3) * (1 - p.p2 * p.q4) *
                           (1 - p.p2 * p.q5);
  EXPECT_NEAR(got1, expect1, 1e-12);
  // Plan_2: pre-aggregate S on x, then join with R == eliminate y then x.
  auto plan2 = PlanForEliminationOrder(cq, {y, x});
  ASSERT_TRUE(plan2.ok());
  double got2 = *ExecuteBooleanPlan(*plan2, db);
  double expect2 =
      1 - (1 - p.p1 * (1 - (1 - p.q1) * (1 - p.q2))) *
              (1 - p.p2 * (1 - (1 - p.q3) * (1 - p.q4) * (1 - p.q5)));
  EXPECT_NEAR(got2, expect2, 1e-12);
  // Plan_2 is the safe one: equals the true probability.
  EXPECT_NEAR(got2, GroundTruth(cq, db), 1e-12);
  // Plan_1 is an upper bound (Theorem 6.1).
  EXPECT_GE(got1, got2 - 1e-12);
}

TEST(PlansTest, SafePlanMatchesLiftedOnHierarchicalQueries) {
  const char* queries[] = {"R(x), S(x,y)", "R(x), S(x,y), U(x,y)",
                           "R(x), T(y)", "S(x,y)"};
  for (const char* text : queries) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      Database db;
      Rng rng(seed * 131 + 7);
      testing::AddRandomRelation(&db, "R", 1, &rng);
      testing::AddRandomRelation(&db, "S", 2, &rng);
      testing::AddRandomRelation(&db, "T", 1, &rng);
      testing::AddRandomRelation(&db, "U", 2, &rng);
      ConjunctiveQuery cq = CqOf(text);
      auto plan = BuildSafePlan(cq);
      ASSERT_TRUE(plan.ok()) << text;
      auto plan_value = ExecuteBooleanPlan(*plan, db);
      ASSERT_TRUE(plan_value.ok()) << text;
      auto lifted = LiftedProbability(Ucq({cq}), db);
      ASSERT_TRUE(lifted.ok()) << text;
      EXPECT_NEAR(*plan_value, *lifted, 1e-10) << text << " seed " << seed;
    }
  }
}

TEST(PlansTest, NoSafePlanForNonHierarchical) {
  EXPECT_EQ(BuildSafePlan(CqOf("R(x), S(x,y), T(y)")).status().code(),
            StatusCode::kUnsupported);
}

TEST(PlansTest, PlanEnumerationBasics) {
  ConjunctiveQuery cq = CqOf("R(x), S(x,y)");
  auto plans = EnumerateAllPlans(cq);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);  // two variable orders, distinct plans
  // Too many variables is guarded.
  EXPECT_EQ(EnumerateAllPlans(CqOf("A(a,b), B(c,d), C(e,f), D(g,h)"))
                .status()
                .code(),
            StatusCode::kResourceExhausted);
  // Self-joins are rejected.
  EXPECT_FALSE(PlanForEliminationOrder(CqOf("S(x,y), S(y,z)"),
                                       {"x", "y", "z"})
                   .ok());
}

TEST(PlansTest, ExecuteRejectsNonBooleanPlan) {
  Database db = testing::BuildFigure1Database();
  PlanPtr scan = PlanNode::Scan(Atom("R", {Term::Var("x")}));
  EXPECT_FALSE(ExecuteBooleanPlan(scan, db).ok());
  auto rel = ExecutePlan(scan, db);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->rows.size(), 3u);
}

TEST(PlansTest, ScanHandlesConstantsAndRepeats) {
  Database db;
  Relation s("S", Schema::Anonymous(2));
  ASSERT_TRUE(s.AddTuple({Value(1), Value(1)}, 0.5).ok());
  ASSERT_TRUE(s.AddTuple({Value(1), Value(2)}, 0.25).ok());
  ASSERT_TRUE(db.AddRelation(std::move(s)).ok());
  PlanPtr diag = PlanNode::Scan(Atom("S", {Term::Var("x"), Term::Var("x")}));
  auto diag_rel = ExecutePlan(diag, db);
  ASSERT_TRUE(diag_rel.ok());
  EXPECT_EQ(diag_rel->rows.size(), 1u);
  PlanPtr sel =
      PlanNode::Scan(Atom("S", {Term::Const(Value(1)), Term::Var("y")}));
  auto sel_rel = ExecutePlan(sel, db);
  ASSERT_TRUE(sel_rel.ok());
  EXPECT_EQ(sel_rel->rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// Theorem 6.1: bounds bracket the truth
// ---------------------------------------------------------------------------

class PlanBoundsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanBoundsTest, BoundsBracketGroundTruth) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Database db;
    Rng rng(seed * 977 + 3);
    testing::RandomTidOptions options;
    options.domain_size = 3;
    testing::AddRandomRelation(&db, "R", 1, &rng, options);
    testing::AddRandomRelation(&db, "S", 2, &rng, options);
    testing::AddRandomRelation(&db, "T", 1, &rng, options);
    ConjunctiveQuery cq = CqOf(GetParam());
    auto bounds = ComputePlanBounds(cq, db);
    ASSERT_TRUE(bounds.ok());
    double truth = GroundTruth(cq, db);
    EXPECT_LE(bounds->lower, truth + 1e-9)
        << GetParam() << " seed " << seed;
    EXPECT_GE(bounds->upper, truth - 1e-9)
        << GetParam() << " seed " << seed;
    if (bounds->safe_value.has_value()) {
      EXPECT_NEAR(*bounds->safe_value, truth, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Queries, PlanBoundsTest,
                         ::testing::Values("R(x), S(x,y), T(y)",  // #P-hard
                                           "R(x), S(x,y)",        // safe
                                           "S(x,y), T(y)"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           return std::string("q") +
                                  std::to_string(i.index);
                         });

TEST(PlanBoundsTest2, DissociationCountsOccurrences) {
  // In H0's lineage every R(a) occurs once per S(a,b),T(b) pair.
  Database db;
  Relation r("R", Schema::Anonymous(1));
  Relation s("S", Schema::Anonymous(2));
  Relation t("T", Schema::Anonymous(1));
  ASSERT_TRUE(r.AddTuple({Value(1)}, 0.5).ok());
  ASSERT_TRUE(t.AddTuple({Value(1)}, 0.5).ok());
  ASSERT_TRUE(t.AddTuple({Value(2)}, 0.5).ok());
  ASSERT_TRUE(s.AddTuple({Value(1), Value(1)}, 0.5).ok());
  ASSERT_TRUE(s.AddTuple({Value(1), Value(2)}, 0.5).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(s)).ok());
  ASSERT_TRUE(db.AddRelation(std::move(t)).ok());
  ConjunctiveQuery cq = CqOf("R(x), S(x,y), T(y)");
  auto dissociated = DissociateForLowerBound(cq, db);
  ASSERT_TRUE(dissociated.ok());
  // R(1) occurs in 2 lineage terms: prob -> 1 - (1-0.5)^(1/2).
  double expected = 1.0 - std::pow(0.5, 0.5);
  EXPECT_NEAR((*dissociated->Get("R"))->prob(0), expected, 1e-12);
  // S tuples occur once each: unchanged.
  EXPECT_DOUBLE_EQ((*dissociated->Get("S"))->prob(0), 0.5);
}

TEST(PlanBoundsTest2, SafeQueryBoundsAreTight) {
  Database db = testing::BuildFigure1Database();
  ConjunctiveQuery cq = CqOf("R(x), S(x,y)");
  auto bounds = ComputePlanBounds(cq, db);
  ASSERT_TRUE(bounds.ok());
  double truth = GroundTruth(cq, db);
  // The safe plan is among the enumerated plans, so the upper bound is
  // exactly the truth; the lower bound still brackets from below.
  EXPECT_NEAR(bounds->upper, truth, 1e-12);
  EXPECT_LE(bounds->lower, truth + 1e-12);
  ASSERT_TRUE(bounds->safe_value.has_value());
  EXPECT_NEAR(*bounds->safe_value, truth, 1e-12);
}

}  // namespace
}  // namespace pdb
