// Differential consistency harness: every inference backend evaluated on
// the same random (database, query) cases and cross-checked pairwise.
//
// 8 seeds x 25 rounds = 200 random cases. Per case the reference value is
// sequential DPLL with component decomposition; against it we check
//  - DPLL without components            (same arithmetic, reordered: 1e-9)
//  - DPLL components + 4 pool workers   (bit-identical: EXPECT_EQ)
//  - DPLL + shared WMC cache, cold/warm (bit-identical: EXPECT_EQ)
//  - brute-force enumeration            (ground truth when <= 18 vars)
//  - lifted inference                   (when the query is safe)
//  - OBDD and decision-DNNF compilation (exact backends)
//  - Karp-Luby sampling                 (within 4 sigma)
// Any disagreement is a bug in at least one backend.

#include <gtest/gtest.h>

#include <cmath>

#include "boolean/lineage.h"
#include "exec/context.h"
#include "exec/thread_pool.h"
#include "kc/obdd.h"
#include "kc/order.h"
#include "kc/trace_compiler.h"
#include "lifted/lifted.h"
#include "test_common.h"
#include "wmc/dpll.h"
#include "wmc/enumeration.h"
#include "wmc/montecarlo.h"
#include "wmc/wmc_cache.h"

namespace pdb {
namespace {

class DifferentialConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialConsistency, AllBackendsAgreeOnRandomCases) {
  Rng rng(GetParam() * 6364136223846793005ull + 1442695040888963407ull);
  // One shared 4-wide pool for the whole seed: this is exactly the shape a
  // Session provides, and it exercises pool reuse across many queries.
  ThreadPool pool(4);
  // One shared WMC cache for the whole seed, like a Session's: entries from
  // earlier rounds stay live (distinct formula managers, overlapping
  // subformula structure), so warm hits across rounds are exercised too.
  WmcCache shared_cache;
  for (int round = 0; round < 25; ++round) {
    // A fresh random database AND a fresh random query every round.
    Database db = testing::RandomVocabularyDb(&rng);
    Ucq ucq = testing::RandomUcq(&rng);
    SCOPED_TRACE(ucq.ToString());

    FormulaManager mgr;
    auto lineage = BuildUcqLineage(ucq, db, &mgr);
    ASSERT_TRUE(lineage.ok());
    const WeightMap weights = WeightsFromProbabilities(lineage->probs);

    // Grounding differential: the compiled join engine — under both
    // join-order policies, with the pool attached and the parallel
    // thresholds forced all the way down — must reproduce the reference
    // backtracking matcher's match stream exactly, and the lineage DAG it
    // builds must be node-for-node the one built sequentially above.
    // (Checked before any DPLL below, which adds cofactor nodes to `mgr`.)
    {
      ExecContext gctx(&pool);
      GroundingOptions grounding;
      grounding.exec = &gctx;
      grounding.parallel_min_rows = 1;
      grounding.parallel_min_matches = 1;
      for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
        std::vector<std::vector<size_t>> expected;
        ASSERT_TRUE(EnumerateCqMatchesReference(cq, db,
                                                [&](const CqMatch& m) {
                                                  std::vector<size_t> rows;
                                                  for (const LineageVar& lv :
                                                       m.atom_rows) {
                                                    rows.push_back(lv.row);
                                                  }
                                                  expected.push_back(
                                                      std::move(rows));
                                                })
                        .ok());
        for (AtomOrderPolicy policy : {AtomOrderPolicy::kCostBased,
                                       AtomOrderPolicy::kSyntactic}) {
          GroundingOptions per_policy = grounding;
          per_policy.order = policy;
          std::vector<std::vector<size_t>> actual;
          Status st = EnumerateCqMatches(
              cq, db,
              [&](const CqMatch& m) {
                std::vector<size_t> rows;
                for (const LineageVar& lv : m.atom_rows) {
                  rows.push_back(lv.row);
                }
                actual.push_back(std::move(rows));
              },
              per_policy);
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(actual, expected);
        }
      }
      FormulaManager par_mgr;
      auto par_lineage = BuildUcqLineage(ucq, db, &par_mgr, grounding);
      ASSERT_TRUE(par_lineage.ok());
      EXPECT_EQ(par_lineage->root, lineage->root);
      EXPECT_EQ(par_mgr.NumNodes(), mgr.NumNodes());
      EXPECT_EQ(par_lineage->probs, lineage->probs);
    }

    // Reference: sequential DPLL with component decomposition.
    DpllOptions seq_options;
    seq_options.parallel_components = false;
    DpllCounter seq(&mgr, weights, seq_options);
    auto reference = seq.Compute(lineage->root);
    ASSERT_TRUE(reference.ok());
    ASSERT_GE(*reference, -1e-12);
    ASSERT_LE(*reference, 1.0 + 1e-12);

    // DPLL without component decomposition: same Shannon expansions in a
    // different association order.
    DpllOptions flat_options;
    flat_options.use_components = false;
    DpllCounter flat(&mgr, weights, flat_options);
    auto flat_value = flat.Compute(lineage->root);
    ASSERT_TRUE(flat_value.ok());
    EXPECT_NEAR(*flat_value, *reference, 1e-9);

    // DPLL with components solved on 4 pool workers, threshold 0 so every
    // split goes through the parallel path: bit-identical to sequential.
    ExecContext ctx(&pool);
    DpllOptions par_options;
    par_options.exec = &ctx;
    par_options.parallel_min_vars = 0;
    DpllCounter par(&mgr, weights, par_options);
    auto par_value = par.Compute(lineage->root);
    ASSERT_TRUE(par_value.ok());
    EXPECT_EQ(*par_value, *reference);
    EXPECT_EQ(par.stats().component_splits, seq.stats().component_splits);

    // DPLL against the seed-lifetime shared cache, twice: the first run
    // may hit entries published by any earlier round, the second run hits
    // at least its own top-level entry. Every hit must be bit-identical to
    // the cache-less reference — this is the load-bearing guarantee of
    // cross-query memoization.
    for (int warm = 0; warm < 2; ++warm) {
      DpllOptions cached_options;
      cached_options.parallel_components = false;
      cached_options.shared_cache = &shared_cache;
      cached_options.shared_cache_min_vars = 2;
      DpllCounter cached(&mgr, weights, cached_options);
      auto cached_value = cached.Compute(lineage->root);
      ASSERT_TRUE(cached_value.ok());
      EXPECT_EQ(*cached_value, *reference);
    }
    // Parallel components and the shared cache combined.
    {
      DpllOptions both_options;
      both_options.exec = &ctx;
      both_options.parallel_min_vars = 0;
      both_options.shared_cache = &shared_cache;
      both_options.shared_cache_min_vars = 2;
      DpllCounter both(&mgr, weights, both_options);
      auto both_value = both.Compute(lineage->root);
      ASSERT_TRUE(both_value.ok());
      EXPECT_EQ(*both_value, *reference);
    }

    // Ground truth by brute-force enumeration (2^n assignments).
    if (mgr.VarsOf(lineage->root).size() <= 18) {
      auto brute = EnumerateProbability(&mgr, lineage->root, lineage->probs);
      ASSERT_TRUE(brute.ok());
      EXPECT_NEAR(*brute, *reference, 1e-9);
    }

    // Lifted inference whenever the safety rules accept the query.
    auto lifted = LiftedProbability(ucq, db);
    if (lifted.ok()) {
      EXPECT_NEAR(*lifted, *reference, 1e-8);
    } else {
      EXPECT_EQ(lifted.status().code(), StatusCode::kUnsupported);
    }

    // Knowledge compilation: OBDD.
    Obdd obdd(IdentityOrder(lineage->vars.size()));
    auto obdd_root = obdd.Compile(&mgr, lineage->root);
    ASSERT_TRUE(obdd_root.ok());
    EXPECT_NEAR(obdd.Wmc(*obdd_root, weights), *reference, 1e-8);

    // Knowledge compilation: decision-DNNF from the DPLL trace.
    auto compiled = CompileToDecisionDnnf(&mgr, lineage->root, weights);
    ASSERT_TRUE(compiled.ok());
    EXPECT_NEAR(compiled->probability, *reference, 1e-8);
    EXPECT_NEAR(compiled->circuit.Wmc(compiled->root, weights), *reference,
                1e-8);

    // Karp-Luby FPRAS on the DNF lineage: unbiased, so the estimate must
    // fall within 4 standard errors of the truth (plus an epsilon for the
    // degenerate zero-variance cases).
    auto dnf = BuildUcqDnf(ucq, db);
    ASSERT_TRUE(dnf.ok());
    if (!dnf->terms.empty()) {
      Rng mc_rng(rng.Next());
      auto estimate =
          KarpLubyDnf(dnf->terms, dnf->probs, 20000, &mc_rng, &ctx);
      if (estimate.ok()) {
        EXPECT_LE(std::abs(estimate->value - *reference),
                  4.0 * estimate->std_error + 1e-9)
            << "Karp-Luby " << estimate->value << " vs " << *reference
            << " (stderr " << estimate->std_error << ")";
      } else {
        // Rejected only when every term has probability zero.
        EXPECT_NEAR(*reference, 0.0, 1e-12);
      }
    } else {
      EXPECT_EQ(*reference, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialConsistency,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace pdb
