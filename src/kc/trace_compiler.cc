#include "kc/trace_compiler.h"

namespace pdb {

Result<DecisionDnnfResult> CompileToDecisionDnnf(FormulaManager* mgr,
                                                 NodeId root,
                                                 const WeightMap& weights,
                                                 DpllOptions options) {
  DecisionDnnfResult result;
  CircuitTraceSink sink(&result.circuit);
  options.trace = &sink;
  DpllCounter counter(mgr, weights, options);
  PDB_ASSIGN_OR_RETURN(result.probability, counter.Compute(root));
  result.root = static_cast<Circuit::Ref>(counter.root_trace());
  result.stats = counter.stats();
  return result;
}

}  // namespace pdb
