/// \file trace_compiler.h
/// \brief DPLL trace -> decision-DNNF compilation (paper §7).
///
/// Huang & Darwiche: the trace of a DPLL-style algorithm with caching and
/// components *is* a decision-DNNF. `CircuitTraceSink` materializes the
/// trace into a `Circuit`; `CompileToDecisionDnnf` runs the counter and
/// returns the circuit, so the circuit's size is exactly the runtime-trace
/// size that Theorem 7.1(ii) lower-bounds.

#ifndef PDB_KC_TRACE_COMPILER_H_
#define PDB_KC_TRACE_COMPILER_H_

#include <map>
#include <tuple>

#include "kc/circuit.h"
#include "wmc/dpll.h"

namespace pdb {

/// Builds circuit nodes from DPLL trace callbacks, deduplicating on
/// structure so cache hits share subcircuits.
class CircuitTraceSink : public DpllTraceSink {
 public:
  explicit CircuitTraceSink(Circuit* circuit) : circuit_(circuit) {}

  Ref TrueNode() override { return Circuit::kTrueRef; }
  Ref FalseNode() override { return Circuit::kFalseRef; }

  Ref Decision(VarId var, Ref lo, Ref hi) override {
    auto key = std::make_tuple(var, lo, hi);
    auto it = decisions_.find(key);
    if (it != decisions_.end()) return it->second;
    Ref ref = circuit_->Decision(var, static_cast<Circuit::Ref>(lo),
                                 static_cast<Circuit::Ref>(hi));
    decisions_.emplace(key, ref);
    return ref;
  }

  Ref AndNode(const std::vector<Ref>& children) override {
    auto it = ands_.find(children);
    if (it != ands_.end()) return it->second;
    std::vector<Circuit::Ref> kids;
    kids.reserve(children.size());
    for (Ref r : children) kids.push_back(static_cast<Circuit::Ref>(r));
    Ref ref = circuit_->And(std::move(kids));
    ands_.emplace(children, ref);
    return ref;
  }

 private:
  Circuit* circuit_;
  std::map<std::tuple<VarId, Ref, Ref>, Ref> decisions_;
  std::map<std::vector<Ref>, Ref> ands_;
};

/// Result of compiling a formula by running DPLL and recording the trace.
struct DecisionDnnfResult {
  Circuit circuit;
  Circuit::Ref root = Circuit::kFalseRef;
  double probability = 0.0;
  DpllStats stats;
};

/// Runs the DPLL counter on `root` with the given weights and returns the
/// decision-DNNF trace together with the computed count.
Result<DecisionDnnfResult> CompileToDecisionDnnf(FormulaManager* mgr,
                                                 NodeId root,
                                                 const WeightMap& weights,
                                                 DpllOptions options = {});

}  // namespace pdb

#endif  // PDB_KC_TRACE_COMPILER_H_
