/// \file obdd.h
/// \brief Ordered Binary Decision Diagrams (paper §7).
///
/// A reduced OBDD with an explicit variable order: levels 0..n-1 map to
/// VarIds. Standard unique-table construction with a memoized Apply.
/// Theorem 7.1(i): hierarchical self-join-free CQ lineages admit linear-size
/// OBDDs under the right order, non-hierarchical ones are exponential under
/// every order — kc/order.h provides the orders, bench_compilation measures
/// the sizes.

#ifndef PDB_KC_OBDD_H_
#define PDB_KC_OBDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "boolean/formula.h"
#include "wmc/weights.h"

namespace pdb {

/// An OBDD manager over a fixed variable order.
class Obdd {
 public:
  using Ref = uint32_t;
  static constexpr Ref kFalse = 0;
  static constexpr Ref kTrue = 1;

  /// `order[level]` is the VarId tested at that level (root level 0).
  /// Every variable of any formula compiled later must appear in the order.
  explicit Obdd(std::vector<VarId> order);

  Ref False() const { return kFalse; }
  Ref True() const { return kTrue; }

  /// The (reduced, unique) node testing `level` with the given branches.
  Ref MakeNode(uint32_t level, Ref lo, Ref hi);

  /// Compiles a formula into the OBDD via bottom-up Apply.
  Result<Ref> Compile(FormulaManager* mgr, NodeId root);

  Ref And(Ref a, Ref b);
  Ref Or(Ref a, Ref b);
  Ref Not(Ref a);

  /// Number of decision nodes reachable from `f` (terminals excluded).
  size_t Size(Ref f) const;

  /// Total nodes ever created (terminals excluded).
  size_t TotalNodes() const { return nodes_.size() - 2; }

  /// Weighted model count relative to all variables in the order.
  /// With probability weights this is the probability of the function.
  double Wmc(Ref f, const WeightMap& weights);

  /// Exact model count over all 2^n assignments of the ordered variables.
  BigInt CountModels(Ref f);

  uint32_t num_levels() const { return static_cast<uint32_t>(order_.size()); }
  VarId var_at_level(uint32_t level) const { return order_[level]; }

 private:
  struct Node {
    uint32_t level;
    Ref lo;
    Ref hi;
  };
  struct NodeKeyHash {
    size_t operator()(const std::tuple<uint32_t, Ref, Ref>& k) const;
  };
  struct OpKeyHash {
    size_t operator()(const std::tuple<int, Ref, Ref>& k) const;
  };

  uint32_t level(Ref f) const {
    return f <= 1 ? num_levels() : nodes_[f].level;
  }

  enum OpCode { kOpAnd = 0, kOpOr = 1, kOpNot = 2 };
  Ref Apply(OpCode op, Ref a, Ref b);

  std::vector<VarId> order_;
  std::unordered_map<VarId, uint32_t> level_of_var_;
  std::vector<Node> nodes_;  // [0]/[1] are placeholder terminals
  std::unordered_map<std::tuple<uint32_t, Ref, Ref>, Ref, NodeKeyHash>
      unique_;
  std::unordered_map<std::tuple<int, Ref, Ref>, Ref, OpKeyHash> op_cache_;
};

}  // namespace pdb

#endif  // PDB_KC_OBDD_H_
