#include "kc/circuit.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_set>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

Circuit::Circuit() {
  nodes_.push_back({CircuitKind::kFalse, true, 0, {}});
  nodes_.push_back({CircuitKind::kTrue, true, 0, {}});
}

Circuit::Ref Circuit::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<Ref>(nodes_.size() - 1);
}

Circuit::Ref Circuit::Literal(VarId var, bool positive) {
  return AddNode({CircuitKind::kLiteral, positive, var, {}});
}

Circuit::Ref Circuit::Decision(VarId var, Ref lo, Ref hi) {
  return AddNode({CircuitKind::kDecision, true, var, {lo, hi}});
}

Circuit::Ref Circuit::And(std::vector<Ref> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  return AddNode({CircuitKind::kAnd, true, 0, std::move(children)});
}

Circuit::Ref Circuit::Or(std::vector<Ref> children) {
  if (children.empty()) return False();
  if (children.size() == 1) return children[0];
  return AddNode({CircuitKind::kOr, true, 0, std::move(children)});
}

size_t Circuit::Size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    Ref cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    for (Ref c : nodes_[cur].children) stack.push_back(c);
  }
  return seen.size();
}

size_t Circuit::EdgeCount(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  size_t edges = 0;
  while (!stack.empty()) {
    Ref cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    edges += nodes_[cur].children.size();
    for (Ref c : nodes_[cur].children) stack.push_back(c);
  }
  return edges;
}

const std::vector<VarId>& Circuit::VarsOf(Ref f) {
  auto it = vars_cache_.find(f);
  if (it != vars_cache_.end()) return it->second;
  std::vector<VarId> vars;
  const Node& n = nodes_[f];
  if (n.kind == CircuitKind::kLiteral || n.kind == CircuitKind::kDecision) {
    vars.push_back(n.var);
  }
  for (Ref c : n.children) {
    const std::vector<VarId>& sub = VarsOf(c);
    std::vector<VarId> merged;
    merged.reserve(vars.size() + sub.size());
    std::set_union(vars.begin(), vars.end(), sub.begin(), sub.end(),
                   std::back_inserter(merged));
    vars = std::move(merged);
  }
  return vars_cache_.emplace(f, std::move(vars)).first->second;
}

double Circuit::Wmc(Ref f, const WeightMap& weights) {
  std::unordered_map<Ref, double> memo;
  // Product of (w+w̄) over vars in `all` missing from `sub`, optionally
  // skipping `decided`.
  auto freed = [&](const std::vector<VarId>& all, const std::vector<VarId>& sub,
                   VarId decided, bool has_decided) {
    double prod = 1.0;
    size_t j = 0;
    for (VarId v : all) {
      while (j < sub.size() && sub[j] < v) ++j;
      bool in_sub = j < sub.size() && sub[j] == v;
      if (!in_sub && !(has_decided && v == decided)) {
        prod *= weights[v].sum();
      }
    }
    return prod;
  };
  std::function<double(Ref)> eval = [&](Ref node) -> double {
    const Node& n = nodes_[node];
    switch (n.kind) {
      case CircuitKind::kFalse:
        return 0.0;
      case CircuitKind::kTrue:
        return 1.0;
      case CircuitKind::kLiteral:
        return n.positive ? weights[n.var].w_true : weights[n.var].w_false;
      default:
        break;
    }
    auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    double result = 0.0;
    const std::vector<VarId> all = VarsOf(node);
    switch (n.kind) {
      case CircuitKind::kDecision: {
        double lo_val = eval(n.children[0]) *
                        freed(all, VarsOf(n.children[0]), n.var, true);
        double hi_val = eval(n.children[1]) *
                        freed(all, VarsOf(n.children[1]), n.var, true);
        result = weights[n.var].w_false * lo_val +
                 weights[n.var].w_true * hi_val;
        break;
      }
      case CircuitKind::kAnd: {
        // Independent AND: children's variable sets partition vars(node).
        result = 1.0;
        for (Ref c : n.children) result *= eval(c);
        break;
      }
      case CircuitKind::kOr: {
        // Deterministic OR: children are disjoint events; each child's
        // count is promoted to the full variable set of this node.
        for (Ref c : n.children) {
          result += eval(c) * freed(all, VarsOf(c), 0, false);
        }
        break;
      }
      default:
        break;
    }
    memo.emplace(node, result);
    return result;
  };
  return eval(f);
}

BigInt Circuit::CountModels(Ref f) {
  // Model count relative to vars(node), then promoted by the caller.
  std::unordered_map<Ref, BigInt> memo;
  auto freed_count = [&](const std::vector<VarId>& all,
                         const std::vector<VarId>& sub, VarId decided,
                         bool has_decided) {
    int missing = 0;
    size_t j = 0;
    for (VarId v : all) {
      while (j < sub.size() && sub[j] < v) ++j;
      bool in_sub = j < sub.size() && sub[j] == v;
      if (!in_sub && !(has_decided && v == decided)) ++missing;
    }
    return BigInt::Pow2(missing);
  };
  std::function<BigInt(Ref)> eval = [&](Ref node) -> BigInt {
    const Node& n = nodes_[node];
    switch (n.kind) {
      case CircuitKind::kFalse:
        return BigInt(0);
      case CircuitKind::kTrue:
        return BigInt(1);
      case CircuitKind::kLiteral:
        return BigInt(1);
      default:
        break;
    }
    auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    BigInt result;
    const std::vector<VarId> all = VarsOf(node);
    switch (n.kind) {
      case CircuitKind::kDecision: {
        BigInt lo_val =
            eval(n.children[0]) *
            freed_count(all, VarsOf(n.children[0]), n.var, true);
        BigInt hi_val =
            eval(n.children[1]) *
            freed_count(all, VarsOf(n.children[1]), n.var, true);
        result = lo_val + hi_val;
        break;
      }
      case CircuitKind::kAnd: {
        result = BigInt(1);
        for (Ref c : n.children) result *= eval(c);
        break;
      }
      case CircuitKind::kOr: {
        for (Ref c : n.children) {
          result += eval(c) * freed_count(all, VarsOf(c), 0, false);
        }
        break;
      }
      default:
        break;
    }
    memo.emplace(node, result);
    return result;
  };
  return eval(f);
}

bool Circuit::Evaluate(Ref f, const std::vector<bool>& assignment) const {
  const Node& n = nodes_[f];
  switch (n.kind) {
    case CircuitKind::kFalse:
      return false;
    case CircuitKind::kTrue:
      return true;
    case CircuitKind::kLiteral: {
      bool value = n.var < assignment.size() && assignment[n.var];
      return n.positive ? value : !value;
    }
    case CircuitKind::kDecision: {
      bool value = n.var < assignment.size() && assignment[n.var];
      return Evaluate(value ? n.children[1] : n.children[0], assignment);
    }
    case CircuitKind::kAnd:
      for (Ref c : n.children) {
        if (!Evaluate(c, assignment)) return false;
      }
      return true;
    case CircuitKind::kOr:
      for (Ref c : n.children) {
        if (Evaluate(c, assignment)) return true;
      }
      return false;
  }
  return false;
}

namespace {

Status PathCheck(const Circuit& circuit, Circuit::Ref node,
                 std::set<VarId>* path, bool allow_and) {
  CircuitKind k = circuit.kind(node);
  switch (k) {
    case CircuitKind::kFalse:
    case CircuitKind::kTrue:
      return Status::OK();
    case CircuitKind::kLiteral:
      return Status::InvalidArgument("literal leaves are not FBDD nodes");
    case CircuitKind::kDecision: {
      VarId v = circuit.var(node);
      if (!path->insert(v).second) {
        return Status::InvalidArgument(
            StrFormat("variable x%u repeated along a path", v));
      }
      Status lo = PathCheck(circuit, circuit.lo(node), path, allow_and);
      if (lo.ok()) lo = PathCheck(circuit, circuit.hi(node), path, allow_and);
      path->erase(v);
      return lo;
    }
    case CircuitKind::kAnd: {
      if (!allow_and) {
        return Status::InvalidArgument("AND node in a plain FBDD");
      }
      for (Circuit::Ref c : circuit.children(node)) {
        PDB_RETURN_NOT_OK(PathCheck(circuit, c, path, allow_and));
      }
      return Status::OK();
    }
    case CircuitKind::kOr:
      return Status::InvalidArgument("OR node in a decision circuit");
  }
  return Status::OK();
}

}  // namespace

Status Circuit::ValidateFbdd(Ref f) const {
  std::set<VarId> path;
  return PathCheck(*this, f, &path, /*allow_and=*/false);
}

Status Circuit::ValidateDecisionDnnf(Ref f) {
  std::set<VarId> path;
  PDB_RETURN_NOT_OK(PathCheck(*this, f, &path, /*allow_and=*/true));
  // AND children must have pairwise disjoint variable sets.
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  while (!stack.empty()) {
    Ref cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    if (kind(cur) == CircuitKind::kAnd) {
      std::set<VarId> used;
      for (Ref c : children(cur)) {
        for (VarId v : VarsOf(c)) {
          if (!used.insert(v).second) {
            return Status::InvalidArgument(StrFormat(
                "AND children share variable x%u (not decomposable)", v));
          }
        }
      }
    }
    for (Ref c : children(cur)) stack.push_back(c);
  }
  return Status::OK();
}

}  // namespace pdb
