#include "kc/order.h"

#include <algorithm>
#include <numeric>

#include "kc/obdd.h"
#include "util/check.h"

namespace pdb {

std::vector<VarId> IdentityOrder(size_t num_vars) {
  std::vector<VarId> order(num_vars);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<VarId> OrderByTupleKey(
    const Lineage& lineage, const Database& db,
    const std::function<std::string(const LineageVar&, const Tuple&)>& key) {
  std::vector<std::pair<std::string, VarId>> keyed;
  keyed.reserve(lineage.vars.size());
  for (VarId v = 0; v < lineage.vars.size(); ++v) {
    const LineageVar& lv = lineage.vars[v];
    const Relation* rel = db.Get(lv.relation).value();
    std::string k = key(lv, rel->tuple(lv.row));
    // Relation name and row break ties deterministically.
    keyed.emplace_back(k + "\x01" + lv.relation + "\x01" +
                           std::to_string(lv.row),
                       v);
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<VarId> order;
  order.reserve(keyed.size());
  for (const auto& [k, v] : keyed) order.push_back(v);
  return order;
}

std::vector<VarId> HierarchicalOrder(const Lineage& lineage,
                                     const Database& db, size_t root_col) {
  return OrderByTupleKey(
      lineage, db, [root_col](const LineageVar& lv, const Tuple& tuple) {
        (void)lv;
        return root_col < tuple.size() ? tuple[root_col].ToString()
                                       : std::string();
      });
}

std::vector<std::vector<VarId>> AllOrders(size_t num_vars) {
  PDB_CHECK(num_vars <= 8);
  std::vector<VarId> order = IdentityOrder(num_vars);
  std::vector<std::vector<VarId>> out;
  do {
    out.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return out;
}

namespace {

// Compiles `root` under `order` and returns the OBDD size.
Result<size_t> SizeUnderOrder(FormulaManager* mgr, NodeId root,
                              const std::vector<VarId>& order) {
  Obdd obdd(order);
  PDB_ASSIGN_OR_RETURN(Obdd::Ref compiled, obdd.Compile(mgr, root));
  return obdd.Size(compiled);
}

}  // namespace

Result<std::vector<VarId>> GreedySwapOrderSearch(FormulaManager* mgr,
                                                 NodeId root,
                                                 std::vector<VarId> initial,
                                                 size_t max_passes,
                                                 size_t* best_size) {
  PDB_ASSIGN_OR_RETURN(size_t current, SizeUnderOrder(mgr, root, initial));
  for (size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (size_t i = 0; i + 1 < initial.size(); ++i) {
      std::swap(initial[i], initial[i + 1]);
      PDB_ASSIGN_OR_RETURN(size_t candidate,
                           SizeUnderOrder(mgr, root, initial));
      if (candidate < current) {
        current = candidate;
        improved = true;
      } else {
        std::swap(initial[i], initial[i + 1]);  // revert
      }
    }
    if (!improved) break;
  }
  if (best_size != nullptr) *best_size = current;
  return initial;
}

}  // namespace pdb
