/// \file circuit.h
/// \brief Knowledge-compilation circuits: FBDD, decision-DNNF, d-DNNF
/// (paper §7, Fig. 2).
///
/// One node store covers the whole family:
///  * FBDD: decision nodes only, no variable repeated along a path;
///  * decision-DNNF: FBDD plus independent-AND nodes (children with
///    disjoint variable sets);
///  * d-DNNF: adds deterministic-OR nodes (children pairwise disjoint as
///    events) and literal leaves.
/// `ValidateFbdd` / `ValidateDecisionDnnf` check the structural invariants;
/// WMC is linear in the circuit size.

#ifndef PDB_KC_CIRCUIT_H_
#define PDB_KC_CIRCUIT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "boolean/formula.h"
#include "util/status.h"
#include "wmc/weights.h"

namespace pdb {

enum class CircuitKind : uint8_t {
  kFalse,
  kTrue,
  kLiteral,   ///< a variable or its negation
  kDecision,  ///< Shannon node: if var then hi else lo
  kAnd,       ///< independent conjunction (disjoint variable sets)
  kOr,        ///< deterministic disjunction (disjoint events)
};

/// A DAG of circuit nodes. Node 0 is false, node 1 is true.
class Circuit {
 public:
  using Ref = uint32_t;
  static constexpr Ref kFalseRef = 0;
  static constexpr Ref kTrueRef = 1;

  Circuit();

  Ref False() const { return kFalseRef; }
  Ref True() const { return kTrueRef; }
  Ref Literal(VarId var, bool positive);
  Ref Decision(VarId var, Ref lo, Ref hi);
  Ref And(std::vector<Ref> children);
  Ref Or(std::vector<Ref> children);

  CircuitKind kind(Ref f) const { return nodes_[f].kind; }
  VarId var(Ref f) const { return nodes_[f].var; }
  bool literal_positive(Ref f) const { return nodes_[f].positive; }
  Ref lo(Ref f) const { return nodes_[f].children[0]; }
  Ref hi(Ref f) const { return nodes_[f].children[1]; }
  const std::vector<Ref>& children(Ref f) const { return nodes_[f].children; }

  /// Number of nodes reachable from `f` (terminals included).
  size_t Size(Ref f) const;
  /// Number of edges reachable from `f`.
  size_t EdgeCount(Ref f) const;
  /// Total nodes in the store.
  size_t TotalNodes() const { return nodes_.size(); }

  /// Sorted distinct variables below `f` (cached).
  const std::vector<VarId>& VarsOf(Ref f);

  /// Weighted model count relative to vars(f); with probability weights
  /// this is the probability of the represented function.
  double Wmc(Ref f, const WeightMap& weights);

  /// Exact model count over exactly vars(root) (2^|free| counted for
  /// don't-care variables below decision branches).
  BigInt CountModels(Ref f);

  /// Evaluates the circuit under an assignment.
  bool Evaluate(Ref f, const std::vector<bool>& assignment) const;

  /// Checks FBDD-ness: only decision nodes/terminals, and no path from `f`
  /// repeats a variable.
  Status ValidateFbdd(Ref f) const;

  /// Checks decision-DNNF-ness: decision/AND/terminals, AND children have
  /// pairwise disjoint variable sets, and no path repeats a decision
  /// variable.
  Status ValidateDecisionDnnf(Ref f);

 private:
  struct Node {
    CircuitKind kind;
    bool positive = true;
    VarId var = 0;
    std::vector<Ref> children;
  };

  Ref AddNode(Node node);

  std::vector<Node> nodes_;
  std::unordered_map<Ref, std::vector<VarId>> vars_cache_;
};

}  // namespace pdb

#endif  // PDB_KC_CIRCUIT_H_
