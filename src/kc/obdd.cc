#include "kc/obdd.h"

#include <functional>
#include <unordered_set>

#include "util/check.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace pdb {

size_t Obdd::NodeKeyHash::operator()(
    const std::tuple<uint32_t, Ref, Ref>& k) const {
  return HashValues(std::get<0>(k), std::get<1>(k), std::get<2>(k));
}

size_t Obdd::OpKeyHash::operator()(const std::tuple<int, Ref, Ref>& k) const {
  return HashValues(std::get<0>(k), std::get<1>(k), std::get<2>(k));
}

Obdd::Obdd(std::vector<VarId> order) : order_(std::move(order)) {
  for (uint32_t i = 0; i < order_.size(); ++i) {
    PDB_CHECK(level_of_var_.emplace(order_[i], i).second);
  }
  nodes_.push_back({UINT32_MAX, 0, 0});  // terminal false (placeholder)
  nodes_.push_back({UINT32_MAX, 0, 0});  // terminal true (placeholder)
}

Obdd::Ref Obdd::MakeNode(uint32_t level, Ref lo, Ref hi) {
  if (lo == hi) return lo;  // reduction rule
  auto key = std::make_tuple(level, lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  Ref ref = static_cast<Ref>(nodes_.size());
  nodes_.push_back({level, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

Obdd::Ref Obdd::Apply(OpCode op, Ref a, Ref b) {
  // Terminal cases.
  if (op == kOpNot) {
    if (a == kFalse) return kTrue;
    if (a == kTrue) return kFalse;
  } else if (op == kOpAnd) {
    if (a == kFalse || b == kFalse) return kFalse;
    if (a == kTrue) return b;
    if (b == kTrue) return a;
    if (a == b) return a;
    if (a > b) std::swap(a, b);  // commutative: canonicalize the cache key
  } else {  // kOpOr
    if (a == kTrue || b == kTrue) return kTrue;
    if (a == kFalse) return b;
    if (b == kFalse) return a;
    if (a == b) return a;
    if (a > b) std::swap(a, b);
  }
  auto key = std::make_tuple(static_cast<int>(op), a, b);
  auto it = op_cache_.find(key);
  if (it != op_cache_.end()) return it->second;
  Ref result;
  if (op == kOpNot) {
    const Node& n = nodes_[a];
    result = MakeNode(n.level, Apply(kOpNot, n.lo, 0), Apply(kOpNot, n.hi, 0));
  } else {
    uint32_t la = level(a);
    uint32_t lb = level(b);
    uint32_t top = std::min(la, lb);
    Ref a_lo = la == top ? nodes_[a].lo : a;
    Ref a_hi = la == top ? nodes_[a].hi : a;
    Ref b_lo = lb == top ? nodes_[b].lo : b;
    Ref b_hi = lb == top ? nodes_[b].hi : b;
    result = MakeNode(top, Apply(op, a_lo, b_lo), Apply(op, a_hi, b_hi));
  }
  op_cache_.emplace(key, result);
  return result;
}

Obdd::Ref Obdd::And(Ref a, Ref b) { return Apply(kOpAnd, a, b); }
Obdd::Ref Obdd::Or(Ref a, Ref b) { return Apply(kOpOr, a, b); }
Obdd::Ref Obdd::Not(Ref a) { return Apply(kOpNot, a, 0); }

Result<Obdd::Ref> Obdd::Compile(FormulaManager* mgr, NodeId root) {
  switch (mgr->kind(root)) {
    case FormulaKind::kFalse:
      return False();
    case FormulaKind::kTrue:
      return True();
    case FormulaKind::kVar: {
      auto it = level_of_var_.find(mgr->var(root));
      if (it == level_of_var_.end()) {
        return Status::InvalidArgument(
            StrFormat("variable x%u missing from the OBDD order",
                      mgr->var(root)));
      }
      return MakeNode(it->second, kFalse, kTrue);
    }
    case FormulaKind::kNot: {
      PDB_ASSIGN_OR_RETURN(Ref c, Compile(mgr, mgr->children(root)[0]));
      return Not(c);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      bool is_and = mgr->kind(root) == FormulaKind::kAnd;
      Ref acc = is_and ? kTrue : kFalse;
      for (NodeId c : mgr->children(root)) {
        PDB_ASSIGN_OR_RETURN(Ref compiled, Compile(mgr, c));
        acc = is_and ? And(acc, compiled) : Or(acc, compiled);
      }
      return acc;
    }
  }
  return Status::Internal("unreachable formula kind");
}

size_t Obdd::Size(Ref f) const {
  std::unordered_set<Ref> seen;
  std::vector<Ref> stack{f};
  size_t count = 0;
  while (!stack.empty()) {
    Ref cur = stack.back();
    stack.pop_back();
    if (cur <= 1 || !seen.insert(cur).second) continue;
    ++count;
    stack.push_back(nodes_[cur].lo);
    stack.push_back(nodes_[cur].hi);
  }
  return count;
}

double Obdd::Wmc(Ref f, const WeightMap& weights) {
  // wmc(node) is relative to the levels from node.level to the bottom;
  // skipped levels between a node and its children contribute (w + w̄).
  std::unordered_map<Ref, double> memo;
  // Product of (w + w̄) over the levels in [from, to): the weight mass of
  // variables skipped between a node and its child (don't-cares). Computed
  // directly (not via suffix-quotients) so zero-sum weights — e.g. the
  // skolemization pair (1, -1) — stay exact.
  auto skip_product = [&](uint32_t from, uint32_t to) {
    double prod = 1.0;
    for (uint32_t l = from; l < to; ++l) prod *= weights[order_[l]].sum();
    return prod;
  };
  std::function<double(Ref)> eval = [&](Ref node) -> double {
    if (node == kFalse) return 0.0;
    if (node == kTrue) return 1.0;
    auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[node];
    VarId v = order_[n.level];
    auto branch = [&](Ref child) {
      return eval(child) * skip_product(n.level + 1, level(child));
    };
    double result = weights[v].w_false * branch(n.lo) +
                    weights[v].w_true * branch(n.hi);
    memo.emplace(node, result);
    return result;
  };
  // The root may itself start below level 0.
  return eval(f) * skip_product(0, level(f));
}

BigInt Obdd::CountModels(Ref f) {
  std::unordered_map<Ref, BigInt> memo;
  std::function<BigInt(Ref)> eval = [&](Ref node) -> BigInt {
    if (node == kFalse) return BigInt(0);
    if (node == kTrue) return BigInt(1);
    auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[node];
    auto branch = [&](Ref child) {
      BigInt value = eval(child);
      uint32_t skipped = level(child) - n.level - 1;
      return value * BigInt::Pow2(static_cast<int>(skipped));
    };
    BigInt result = branch(n.lo) + branch(n.hi);
    memo.emplace(node, result);
    return result;
  };
  BigInt value = eval(f);
  return value * BigInt::Pow2(static_cast<int>(level(f)));
}

}  // namespace pdb
