/// \file order.h
/// \brief Variable orders for OBDD compilation.
///
/// Theorem 7.1(i): for a hierarchical self-join-free CQ the lineage admits a
/// linear-size OBDD — under an order that keeps each root-variable block
/// contiguous. `HierarchicalOrder` derives such an order from lineage
/// metadata; `IdentityOrder` is the baseline.

#ifndef PDB_KC_ORDER_H_
#define PDB_KC_ORDER_H_

#include <functional>
#include <string>
#include <vector>

#include "boolean/lineage.h"
#include "storage/database.h"

namespace pdb {

/// Variables 0..n-1 in index order.
std::vector<VarId> IdentityOrder(size_t num_vars);

/// Orders lineage variables by a caller-supplied key: variables are sorted
/// by (key, relation, row), so equal keys form contiguous blocks. The key
/// function receives each variable's origin and its tuple.
std::vector<VarId> OrderByTupleKey(
    const Lineage& lineage, const Database& db,
    const std::function<std::string(const LineageVar&, const Tuple&)>& key);

/// The hierarchical order for a two-level CQ like R(x), S(x,y): blocks
/// grouped by the value in column `root_col` of every relation (column 0 by
/// default) — R(a) adjacent to all S(a, *).
std::vector<VarId> HierarchicalOrder(const Lineage& lineage,
                                     const Database& db, size_t root_col = 0);

/// All permutations of the variables (for exhaustively verifying the
/// every-order lower bound on small instances). n! entries; n must be <= 8.
std::vector<std::vector<VarId>> AllOrders(size_t num_vars);

/// Local search over variable orders (a compile-based stand-in for BDD
/// sifting): starting from `initial`, repeatedly tries swapping adjacent
/// positions and keeps any swap that shrinks the compiled OBDD, until a
/// pass makes no progress or `max_passes` is reached. Returns the best
/// order found and its size via `best_size`. Each probe recompiles the
/// formula, so use on moderate instances.
Result<std::vector<VarId>> GreedySwapOrderSearch(FormulaManager* mgr,
                                                 NodeId root,
                                                 std::vector<VarId> initial,
                                                 size_t max_passes,
                                                 size_t* best_size);

}  // namespace pdb

#endif  // PDB_KC_ORDER_H_
