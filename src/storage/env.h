/// \file env.h
/// \brief Filesystem seam for the durable storage layer.
///
/// All file I/O of the WAL, snapshot, and component-store code goes through
/// an `Env` (the LevelDB idiom), so tests can substitute a deterministic
/// fault-injecting filesystem and inject a crash at every single I/O step.
/// Three implementations ship:
///
///  - `Env::Default()` — POSIX files with real fsync, used by pdbd;
///  - `MemEnv` — an in-memory filesystem for fast, hermetic tests;
///  - `FaultInjectionEnv` (tests/fault_env.h) — wraps another Env, counts
///    every I/O operation, and can kill the workload at any of them,
///    tear the final write at any byte, drop unsynced data, or fail one
///    specific operation.
///
/// The durability contract the layer above relies on: bytes passed to
/// `WritableFile::Append` are readable back once written (OS cache), but
/// only survive a crash once `Sync` returned OK; `RenameFile` of a synced
/// file atomically replaces the target.

#ifndef PDB_STORAGE_ENV_H_
#define PDB_STORAGE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pdb {

/// An append-only file handle. Not thread-safe; one writer per file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Buffers/writes `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;
  /// Pushes buffered data to the OS (readable back, not yet durable).
  virtual Status Flush() = 0;
  /// Makes every appended byte durable (fsync).
  virtual Status Sync() = 0;
  /// Flushes and releases the handle. Append/Sync after Close are errors.
  virtual Status Close() = 0;
};

/// Minimal filesystem interface: everything the durable layer touches.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Creates (truncating) `path` for writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  /// Opens `path` for appending, creating it if missing.
  virtual Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) = 0;
  /// Reads the whole file into `*out` (replacing its contents).
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  /// Names (not paths) of the entries of directory `dir`, sorted.
  virtual Result<std::vector<std::string>> GetChildren(
      const std::string& dir) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  /// Atomically renames `from` to `to`, replacing any existing `to`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  /// Truncates `path` to `size` bytes (used to cut a torn WAL tail).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// An in-memory Env for tests: fast, hermetic, and the substrate the
/// fault-injection wrapper mutates when simulating crashes. Thread-safe.
class MemEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Result<std::vector<std::string>> GetChildren(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

  /// Direct access for tests: the raw bytes of `path` (empty if absent).
  std::string FileContents(const std::string& path);
  /// Overwrites the raw bytes of `path` (creating it), bypassing the
  /// WritableFile interface — how corruption fuzzers plant damage.
  void SetFileContents(const std::string& path, std::string contents);

  /// Shared between the file map and open handles (POSIX
  /// unlink-while-open semantics). Public so the env's file handle class
  /// can name it.
  struct FileState {
    std::string contents;
  };

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;  // guarded by mu_
  std::vector<std::string> dirs_;                            // guarded by mu_
};

/// Joins a directory and a file name with exactly one separator.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace pdb

#endif  // PDB_STORAGE_ENV_H_
