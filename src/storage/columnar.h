/// \file columnar.h
/// \brief Dictionary-encoded columnar images of relations.
///
/// A `ColumnarRelation` is a read-only sidecar of a `Relation`: per column a
/// *sorted* dictionary of the distinct values and one contiguous
/// `uint32_t` code vector with the dictionary rank of every row. The join
/// executor (boolean/lineage.cc) runs over these dense code arrays instead
/// of `Tuple` objects — bind slots become integer codes, equality checks
/// become array compares, and hash-index probes become array lookups —
/// which is where the vectorized grounding path gets its speed.
///
/// Because the dictionary is sorted by the `Value` total order, rank
/// equality is value equality *within one column's code space*, the
/// dictionary doubles as the sorted distinct-value list
/// (`Relation::DistinctValues` returns it directly), and code spaces of two
/// different columns can be aligned with a linear two-pointer merge
/// (`BuildCodeTranslation`), which is how cross-column joins compare codes
/// without ever touching a `Value` on the hot path.
///
/// `ColumnarIndex` is the columnar analogue of `HashIndex`: rows grouped by
/// the (composite) code of a key-column list. Single-column keys use a CSR
/// layout (offset array indexed by code — an O(1) probe with no hashing);
/// multi-column keys use a hash map over the mixed-radix composite code.
/// Bucket row ids are ascending, matching `HashIndex`, so the two
/// executors enumerate matches in the same order.

#ifndef PDB_STORAGE_COLUMNAR_H_
#define PDB_STORAGE_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace pdb {

class Relation;

/// Dictionary-encoded, column-major image of one relation. Immutable once
/// built; safe to share across threads.
class ColumnarRelation {
 public:
  /// Sentinel for "value not in this column's dictionary". Never a valid
  /// code: dictionaries are capped below 2^32 - 1 entries.
  static constexpr uint32_t kNoCode = UINT32_MAX;

  /// Builds the columnar image of `rel` (O(rows * arity * log distinct)).
  static std::shared_ptr<const ColumnarRelation> Build(const Relation& rel);

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return columns_.size(); }

  /// Sorted distinct values of `col`; code `c` decodes to `dict(col)[c]`.
  const std::vector<Value>& dict(size_t col) const {
    return columns_[col].dict;
  }

  /// Per-row dictionary codes of `col` (size = num_rows()).
  const std::vector<uint32_t>& codes(size_t col) const {
    return columns_[col].codes;
  }

  /// Number of distinct values in `col` — the selectivity statistic the
  /// cost-based join order consumes.
  size_t distinct(size_t col) const { return columns_[col].dict.size(); }

  /// Code of `value` in `col`'s dictionary, or kNoCode when absent.
  uint32_t CodeOf(size_t col, const Value& value) const;

 private:
  struct Column {
    std::vector<Value> dict;      // sorted ascending
    std::vector<uint32_t> codes;  // one per row
  };

  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Translation table from `src` dictionary codes to `dst` dictionary codes:
/// `result[c]` is the code of `src[c]` in `dst`, or
/// `ColumnarRelation::kNoCode` when `dst` does not contain the value.
/// Linear two-pointer merge over the two sorted dictionaries.
std::vector<uint32_t> BuildCodeTranslation(const std::vector<Value>& src,
                                           const std::vector<Value>& dst);

/// Number of distinct composite keys over `key_cols` of `cols` — the
/// multi-column selectivity statistic. Unlike the per-column independence
/// product, this counts the key combinations that actually occur, so a
/// correlated pair (say y == x) reports n instead of n². Returns 0 when
/// the mixed-radix composite code would overflow 64 bits (callers fall
/// back to the independence product) or when `key_cols` is empty.
size_t DistinctComposite(const ColumnarRelation& cols,
                         const std::vector<size_t>& key_cols);

/// Equality index over a relation's code columns: rows grouped by the
/// composite code of `key_cols`. Bucket rows ascend, matching `HashIndex`.
class ColumnarIndex {
 public:
  /// Builds the index; keeps `cols` alive for its own lifetime.
  ColumnarIndex(std::shared_ptr<const ColumnarRelation> cols,
                std::vector<size_t> key_cols);

  const std::vector<size_t>& key_cols() const { return key_cols_; }

  /// True when the mixed-radix composite code would not fit in 64 bits
  /// (astronomically wide keys); callers fall back to the row-path
  /// `HashIndex` executor in that case.
  bool composite_overflow() const { return overflow_; }

  /// Mixed-radix multiplier of key part `p`: a composite code is
  /// sum over p of part_code[p] * radix(p).
  uint64_t radix(size_t p) const { return radix_[p]; }

  /// Rows whose composite key code equals `code`, as a pointer + count
  /// span (empty when the code has no rows).
  void Lookup(uint64_t code, const uint32_t** rows, size_t* count) const;

  /// Number of non-empty buckets — the distinct composite key count this
  /// index observed (0 when the composite overflowed). Single-column keys
  /// have one bucket per dictionary entry by construction.
  size_t num_buckets() const;

 private:
  std::shared_ptr<const ColumnarRelation> cols_;
  std::vector<size_t> key_cols_;
  std::vector<uint64_t> radix_;
  bool overflow_ = false;
  // Single-column key: CSR over the column's code space.
  std::vector<uint32_t> offsets_;  // size = dict size + 1
  std::vector<uint32_t> rows_;     // row ids grouped by code, ascending
  // Multi-column key: buckets over the (sparse) composite code space.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace pdb

#endif  // PDB_STORAGE_COLUMNAR_H_
