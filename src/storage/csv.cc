#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace pdb {

Result<Relation> RelationFromCsv(const std::string& name, const Schema& schema,
                                 const std::string& text,
                                 const CsvOptions& options) {
  Relation relation(name, schema);
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool skipped_header = !options.has_header;
  const size_t expected_fields =
      schema.arity() + (options.has_probability_column ? 1 : 0);
  while (std::getline(in, line)) {
    ++line_no;
    if (StrTrim(line).empty()) continue;
    if (!skipped_header) {
      skipped_header = true;
      continue;
    }
    std::vector<std::string> fields = StrSplit(line, options.separator);
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected %zu fields, got %zu", line_no,
                    expected_fields, fields.size()));
    }
    Tuple tuple;
    tuple.reserve(schema.arity());
    for (size_t i = 0; i < schema.arity(); ++i) {
      auto value = Value::Parse(fields[i], schema.attribute(i).type);
      if (!value.ok()) {
        return Status::InvalidArgument(StrFormat(
            "line %zu, field %zu: %s", line_no, i,
            value.status().message().c_str()));
      }
      tuple.push_back(std::move(*value));
    }
    double p = 1.0;
    if (options.has_probability_column) {
      auto prob = Value::Parse(fields.back(), ValueType::kDouble);
      if (!prob.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: bad probability '%s'", line_no,
                      fields.back().c_str()));
      }
      p = prob->AsDouble();
    }
    Status added = relation.AddTuple(std::move(tuple), p);
    if (!added.ok()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: %s", line_no, added.message().c_str()));
    }
  }
  return relation;
}

Result<std::pair<Tuple, double>> ParseCsvRow(const Schema& schema,
                                             const std::string& line,
                                             const CsvOptions& options) {
  std::vector<std::string> fields = StrSplit(line, options.separator);
  const bool with_prob =
      options.has_probability_column && fields.size() == schema.arity() + 1;
  if (!with_prob && fields.size() != schema.arity()) {
    return Status::InvalidArgument(StrFormat(
        "expected %zu fields%s, got %zu", schema.arity(),
        options.has_probability_column ? " (+1 for probability)" : "",
        fields.size()));
  }
  Tuple tuple;
  tuple.reserve(schema.arity());
  for (size_t i = 0; i < schema.arity(); ++i) {
    auto value = Value::Parse(fields[i], schema.attribute(i).type);
    if (!value.ok()) {
      return Status::InvalidArgument(
          StrFormat("field %zu: %s", i, value.status().message().c_str()));
    }
    tuple.push_back(std::move(*value));
  }
  double p = 1.0;
  if (with_prob) {
    auto prob = Value::Parse(fields.back(), ValueType::kDouble);
    if (!prob.ok()) {
      return Status::InvalidArgument(
          StrFormat("bad probability '%s'", fields.back().c_str()));
    }
    p = prob->AsDouble();
  }
  return std::make_pair(std::move(tuple), p);
}

Result<Relation> RelationFromCsvFile(const std::string& name,
                                     const Schema& schema,
                                     const std::string& path,
                                     const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return RelationFromCsv(name, schema, buffer.str(), options);
}

std::string RelationToCsv(const Relation& relation, char separator) {
  std::string out;
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    out += schema.attribute(i).name;
    out += separator;
  }
  out += "P\n";
  for (size_t row = 0; row < relation.size(); ++row) {
    const Tuple& t = relation.tuple(row);
    for (const Value& v : t) {
      out += v.ToString();
      out += separator;
    }
    out += StrFormat("%.17g\n", relation.prob(row));
  }
  return out;
}

Status RelationToCsvFile(const Relation& relation, const std::string& path,
                         char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument(
        StrFormat("cannot open '%s' for writing", path.c_str()));
  }
  out << RelationToCsv(relation, separator);
  return Status::OK();
}

}  // namespace pdb
