#include "storage/database.h"

#include <set>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

Status Database::AddRelation(Relation relation) {
  if (relations_.count(relation.name()) > 0) {
    return Status::InvalidArgument(
        StrFormat("relation '%s' already exists", relation.name().c_str()));
  }
  std::string name = relation.name();
  relations_.emplace(std::move(name), std::move(relation));
  return Status::OK();
}

Status Database::CreateRelation(const std::string& name, Schema schema) {
  return AddRelation(Relation(name, std::move(schema)));
}

bool Database::HasRelation(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrFormat("no relation named '%s'", name.c_str()));
  }
  return &it->second;
}

Result<Relation*> Database::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrFormat("no relation named '%s'", name.c_str()));
  }
  return &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::vector<Value> Database::ActiveDomain() const {
  std::set<Value> domain;
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t) domain.insert(v);
    }
  }
  return std::vector<Value>(domain.begin(), domain.end());
}

size_t Database::TupleCount() const {
  size_t count = 0;
  for (const auto& [name, rel] : relations_) count += rel.size();
  return count;
}

Database Database::SampleWorld(Rng* rng) const {
  Database world;
  for (const auto& [name, rel] : relations_) {
    Relation sampled(rel.name(), rel.schema());
    for (size_t i = 0; i < rel.size(); ++i) {
      if (rng->Bernoulli(rel.prob(i))) {
        // Tuples come from a valid relation, so re-adding cannot fail.
        PDB_CHECK(sampled.AddTuple(rel.tuple(i), 1.0).ok());
      }
    }
    PDB_CHECK(world.AddRelation(std::move(sampled)).ok());
  }
  return world;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += rel.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace pdb
