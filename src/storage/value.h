/// \file value.h
/// \brief Typed values and tuples — the unit of data in relations.

#ifndef PDB_STORAGE_VALUE_H_
#define PDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace pdb {

/// Type tag of a Value.
enum class ValueType {
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeToString(ValueType type);

/// A single typed datum. Totally ordered (first by type, then by value) so
/// values can key ordered and unordered containers alike.
class Value {
 public:
  /// Integer 0.
  Value() : data_(int64_t{0}) {}
  Value(int64_t v) : data_(v) {}                 // NOLINT(runtime/explicit)
  Value(int v) : data_(int64_t{v}) {}            // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                  // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }

  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Typed accessors; calling the wrong one is a programmer error.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Parses `text` as the requested type.
  static Result<Value> Parse(std::string_view text, ValueType type);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return data_ < other.data_; }

  std::string ToString() const;

  size_t hash() const;

 private:
  std::variant<int64_t, double, std::string> data_;
};

/// A row: a fixed-arity sequence of values.
using Tuple = std::vector<Value>;

/// Hash of a whole tuple.
size_t HashTuple(const Tuple& tuple);

/// Renders a tuple as "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

}  // namespace pdb

template <>
struct std::hash<pdb::Value> {
  size_t operator()(const pdb::Value& v) const { return v.hash(); }
};

template <>
struct std::hash<pdb::Tuple> {
  size_t operator()(const pdb::Tuple& t) const { return pdb::HashTuple(t); }
};

#endif  // PDB_STORAGE_VALUE_H_
