/// \file durable_db.h
/// \brief Durable wrapper around `ProbDatabase`: a write-ahead log with
/// group commit, crash recovery, off-write-path checkpoints, and a
/// warm-restart store for the shared WMC cache.
///
/// `DurableDatabase` makes the engine survive restarts (ROADMAP: "a server
/// restart loses everything"). Design, in the LevelDB/RocksDB idiom:
///
///  - every mutation (`AddRelation`, `Insert`, `ApplyBatch`) is serialized
///    into a CRC-framed WAL record (storage/wal.h) and appended — and, in
///    `SyncMode::kAlways`, fsynced — *before* it is applied to the
///    in-memory `ProbDatabase`; an OK return therefore means the operation
///    is durable (log-then-apply / write-ahead rule);
///  - a `WriteBatch` of N mutations becomes ONE WAL record, validated as a
///    unit before logging and replayed atomically on recovery: a torn tail
///    yields the whole batch or none of it, never a prefix;
///  - concurrent writers join a leader–follower commit group (the RocksDB
///    `JoinBatchGroup` shape): the first enqueued writer becomes leader,
///    drains every waiting batch into one WAL write, issues a SINGLE
///    `Sync` for the group, applies all mutations, and wakes the group —
///    so sustained multi-writer fsync cost amortizes across the group;
///  - `Open` replays the newest complete snapshot, then the WAL segments in
///    sequence order. A torn or corrupt tail record — the signature of a
///    crash mid-append — truncates the log at the last complete record
///    instead of failing the open: recovery always yields a prefix of the
///    acknowledged operations, never an error on legitimately crashed
///    state;
///  - `Checkpoint` runs off the write path: a brief seqno fence under the
///    commit mutex serializes the catalog to in-memory records and rolls a
///    fresh WAL segment; the expensive part — writing, fsyncing, renaming
///    `snap-<seq>` and deleting the files it made redundant — happens
///    without blocking writers, which keep committing to the new segment.
///    With `background_checkpoints` the `checkpoint_every_n` trigger hands
///    the whole job to a dedicated thread so not even the triggering
///    writer pays for it;
///  - the sidecar component store (`wmc.store`) persists shared-WMC-cache
///    entries (canonical signature + weight fingerprint + value). Warm
///    restarts reload it into a `WmcCache`, keeping the repeated-hard-query
///    win across process restarts. Safe by construction: the 192-bit keys
///    are pure functions of (formula structure, weights), so entries from
///    any database state can never serve a mismatched lookup.
///
/// All I/O goes through a `storage/env.h` seam; tests substitute a
/// deterministic fault-injecting filesystem (tests/fault_env.h) and crash
/// the workload at every single I/O step. `FaultInjectionEnv` is
/// single-threaded, which is why `background_checkpoints` defaults to off:
/// the crash-injection census runs every checkpoint inline and
/// deterministically, while pdbd opts in to the background thread.
///
/// Concurrency: mutators are thread-safe and group-commit with each other.
/// The inner `ProbDatabase` itself has no synchronization, so readers and
/// the commit path coordinate through `read_mutex()`: a query holds it
/// shared for the duration of its execution, and a commit group's leader
/// holds it exclusive only while applying the group's mutations to memory
/// — the WAL append and fsync (the slow part of a commit) never exclude
/// readers, and concurrent writers still amortize into one group. Callers
/// that never mutate after startup (e.g. an in-memory pdbd) may skip the
/// shared lock entirely.
///
/// After any WAL I/O error the database becomes read-only — the log tail
/// is no longer trustworthy, so accepting more writes could silently lose
/// them; reopening runs recovery and clears the condition.

#ifndef PDB_STORAGE_DURABLE_DB_H_
#define PDB_STORAGE_DURABLE_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/pdb.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "storage/write_batch.h"
#include "wmc/wmc_cache.h"

namespace pdb {

/// When WAL appends become durable.
enum class SyncMode {
  /// fsync after every commit group: an OK mutation is crash-durable.
  kAlways,
  /// Let the OS schedule writeback; fsync only at checkpoints and on
  /// `SyncWal`. Faster bulk loads; a crash loses the unsynced suffix.
  kNone,
};

/// Parses "always" | "none" (the pdbd --sync-mode values).
Result<SyncMode> ParseSyncMode(const std::string& text);

struct DurableOptions {
  /// Filesystem to operate on; null uses `Env::Default()` (POSIX).
  Env* env = nullptr;
  SyncMode sync_mode = SyncMode::kAlways;
  /// Auto-checkpoint after this many logged operations (0 = only when
  /// `Checkpoint` is called explicitly).
  uint64_t checkpoint_every_n = 0;
  /// Retention GC: after a successful checkpoint keep this many newest
  /// snapshots (the one just written included) plus every WAL segment
  /// still needed to recover from the oldest retained snapshot; older
  /// files are deleted. 0 behaves as 1 (always keep the latest).
  size_t retain_checkpoints = 1;
  /// Run `checkpoint_every_n`-triggered checkpoints on a dedicated
  /// background thread instead of inline on the triggering writer. Off by
  /// default: the crash-injection harness (tests/fault_env.h) is
  /// single-threaded and needs deterministic I/O ordering. pdbd turns it
  /// on.
  bool background_checkpoints = false;
  /// Group-commit window (the PostgreSQL `commit_delay` / MySQL
  /// `binlog_group_commit_sync_delay` shape): when other writers are
  /// already in flight but not yet queued, a new leader waits up to this
  /// many microseconds for them to join its group before logging, so one
  /// sync covers the lot. The wait ends early once every in-flight writer
  /// is queued, and a lone writer never waits — an idle or single-writer
  /// workload pays no added latency. Only consulted under
  /// `SyncMode::kAlways` (without fsyncs there is nothing to amortize).
  /// 0 (default) commits immediately.
  uint32_t group_commit_window_us = 0;
};

/// What recovery found and did during `Open`.
struct RecoveryStats {
  /// Sequence number of the snapshot loaded (0 when none existed).
  uint64_t snapshot_seq = 0;
  /// Mutations replayed on top of the snapshot (a WriteBatch record
  /// counts each mutation it carries).
  uint64_t replayed_records = 0;
  /// WAL segments visited during replay.
  uint64_t segments_replayed = 0;
  /// True when a torn or corrupt tail was found and cut off.
  bool tail_truncated = false;
  /// Bytes discarded by tail truncation.
  uint64_t truncated_bytes = 0;
  /// Snapshot files that failed validation and were skipped.
  uint64_t snapshots_skipped = 0;
};

/// A `ProbDatabase` whose mutations are write-ahead logged to `data_dir`
/// and recovered on open. Create via `Open`.
class DurableDatabase {
 public:
  /// Opens (creating if needed) the database stored in `data_dir`:
  /// loads the newest complete snapshot, replays the WAL — truncating a
  /// torn tail instead of failing — and starts a fresh WAL segment.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& data_dir, const DurableOptions& options = {});

  ~DurableDatabase();

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  /// The recovered in-memory database; issue queries against it (or a
  /// `Session` bound to it). Do not mutate it directly — use the logged
  /// mutators below, or the change will not survive a restart.
  ProbDatabase& pdb() { return pdb_; }
  const ProbDatabase& pdb() const { return pdb_; }

  /// Reader–writer exclusion between queries and the in-memory apply step
  /// of a commit. Hold shared while reading `pdb()` if mutations may run
  /// concurrently (pdbd takes it around every query when serving a
  /// durable store); the commit path takes it exclusive around the brief
  /// apply-to-memory step only, so a reader never waits on WAL I/O.
  std::shared_mutex& read_mutex() const { return apply_mu_; }

  /// Logs and applies a whole-relation add (schema + tuples). Fails
  /// without logging on a duplicate name.
  Status AddRelation(Relation relation);

  /// Logs and applies the registration of an empty relation.
  Status CreateRelation(const std::string& name, Schema schema);

  /// Logs and applies one tuple insert. Fails without logging on a
  /// missing relation, schema mismatch, duplicate tuple, or probability
  /// outside [0, 1] — an op that cannot apply is never written to the log.
  Status Insert(const std::string& relation, Tuple tuple, double p = 1.0);

  /// Atomically commits every mutation staged in `batch`: one WAL record,
  /// one sync, all-or-nothing on recovery. The whole batch is validated
  /// first; any invalid op rejects the batch without logging anything.
  /// The batch is left intact (call `Clear` to reuse it).
  Status ApplyBatch(WriteBatch* batch);

  /// Convenience: commits `rows` into `relation` as one atomic batch.
  Status InsertMany(const std::string& relation,
                    std::vector<std::pair<Tuple, double>> rows);

  /// Writes a point-in-time snapshot of the catalog, rolls the WAL, and
  /// deletes the now-redundant older files. Only the brief catalog
  /// serialization fence blocks concurrent writers; the file I/O does not.
  Status Checkpoint();

  /// fsyncs the WAL (a no-op barrier under `SyncMode::kAlways`).
  Status SyncWal();

  /// Atomically rewrites the sidecar component store with every entry of
  /// `cache` (signature, weight fingerprint, value).
  Status SpillWmcCache(const WmcCache& cache);

  /// Loads the component store into `cache`; tolerates a torn tail (loads
  /// the valid prefix). Returns the number of entries loaded.
  Result<uint64_t> LoadWmcCache(WmcCache* cache);

  /// Syncs and closes the WAL. Further mutations fail; queries still work.
  Status Close();

  /// Sequence number of the last applied operation.
  uint64_t last_seq() const;
  /// Sequence number of the last operation known durable (== `last_seq`
  /// under `SyncMode::kAlways` outside of an in-flight mutation).
  uint64_t last_synced_seq() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Storage metrics (WAL appends/syncs/bytes, batch/group-commit counts
  /// and group-size histogram, recovery replays and truncations,
  /// checkpoints, component-store levels). pdbd merges this registry into
  /// its /metrics exposition.
  MetricsRegistry& metrics() { return metrics_; }

  /// Storage-side IO trace: the recovery-replay span from Open, plus
  /// wal_append / wal_sync spans (capped — the ring keeps the totals
  /// honest while bounding memory) and checkpoint spans. pdbd points
  /// `ServerOptions::io_trace` here so GET /debug/profile folds storage
  /// latency into the same per-phase percentiles as query phases.
  const QueryTrace& io_trace() const { return io_trace_; }

 private:
  /// One writer waiting in (or leading) a commit group.
  struct Writer {
    explicit Writer(WriteBatch* b) : batch(b) {}
    WriteBatch* batch;
    Status status;
    bool done = false;
  };

  /// Effects of earlier ops in the same commit group / replayed batch,
  /// visible to validation before they are applied: relations created
  /// (name -> schema) and tuples inserted. Tuples are tracked per
  /// relation so duplicate detection spans the group.
  struct PendingState {
    std::unordered_map<std::string, Schema> new_relations;
    std::unordered_map<std::string, std::unordered_set<Tuple>> new_tuples;
  };

  /// A checkpoint fence taken under mu_: the catalog serialized to
  /// records plus the sequence number it covers. Writing the snapshot
  /// file from the fence needs no lock.
  struct CheckpointFence {
    uint64_t seq = 0;
    std::vector<std::string> records;
  };

  DurableDatabase(std::string data_dir, const DurableOptions& options);

  /// (op byte + self-delimiting body) — the unit both legacy single-op
  /// records and WriteBatch records are built from.
  static void EncodeOp(std::string* dst, const WriteBatch::Op& op);
  static bool DecodeOp(std::string_view* in, WriteBatch::Op* op);
  static bool DecodeOpBody(std::string_view* in, WriteBatch::Op* op);

  Status Recover();
  /// Replays one WAL segment; sets *stop when replay must not continue
  /// past this segment (corruption / torn tail / gap).
  Status ReplaySegment(const std::string& name, bool* stop);
  Result<uint64_t> LoadSnapshot(const std::string& name);
  Status RollWalLocked();

  /// The group-commit entry point every mutator funnels into: enqueue,
  /// become leader or wait, leader commits the whole group.
  Status CommitBatch(WriteBatch* batch);
  /// Leader body: validates, logs (one record per batch), syncs once,
  /// applies every batch in `group`. Sets *want_checkpoint when the
  /// auto-checkpoint threshold tripped. Caller holds mu_.
  void CommitGroupLocked(const std::vector<Writer*>& group,
                         bool* want_checkpoint);
  /// Validates one op against the live catalog plus `pending` (earlier
  /// ops of the same group/batch), recording its effects into `pending`
  /// on success. Caller holds mu_.
  Status ValidateOpLocked(const WriteBatch::Op& op, PendingState* pending);
  /// Applies one validated op. Caller holds mu_.
  Status ApplyOpLocked(WriteBatch::Op op);

  /// Serializes the catalog + rolls the WAL under mu_ (the brief fence).
  Status PrepareCheckpointLocked(CheckpointFence* fence);
  /// Writes, syncs, renames the snapshot from `fence` and runs retention
  /// GC — off mu_, under checkpoint_mu_.
  Status WriteCheckpointFence(CheckpointFence fence);
  /// Fence + write. `only_if_dirty` skips when nothing was logged since
  /// the last checkpoint (the background trigger path).
  Status DoCheckpoint(bool only_if_dirty);
  /// Wakes the background checkpoint thread (options_.background_checkpoints).
  void RequestBackgroundCheckpoint();
  void CheckpointThreadMain();

  void SetIoErrorLocked(const Status& status);
  void SetIoError(const Status& status);

  const std::string dir_;
  DurableOptions options_;
  Env* env_;

  ProbDatabase pdb_;

  MetricsRegistry metrics_;
  Counter* wal_records_;
  Counter* wal_bytes_;
  Counter* wal_syncs_;
  Counter* wal_batch_records_;
  Counter* wal_batch_mutations_;
  Counter* group_commits_;
  Counter* recovery_replayed_;
  Counter* recovery_truncations_;
  Counter* checkpoints_;
  Counter* wmc_store_spills_;
  Counter* wmc_store_loaded_;
  Counter* checkpoint_duration_us_;
  Histogram* wal_sync_seconds_;
  Histogram* group_size_;
  Gauge* wmc_store_entries_;
  Gauge* last_seq_gauge_;
  Gauge* relations_gauge_;

  /// IO spans (recovery / wal_append / wal_sync / checkpoint). QueryTrace
  /// is internally synchronized; per-phase span counts are capped in the
  /// .cc so a long-lived server does not grow this without bound.
  QueryTrace io_trace_;
  std::atomic<uint64_t> wal_append_spans_{0};
  std::atomic<uint64_t> wal_sync_spans_{0};

  /// The commit queue (RocksDB JoinBatchGroup shape). Writers enqueue
  /// under writers_mu_ and wait; the front writer leads. Ordered before
  /// mu_: a leader holds writers_mu_ only to snapshot/pop the queue,
  /// never while logging.
  std::mutex writers_mu_;
  std::condition_variable writers_cv_;
  std::deque<Writer*> writers_;  // guarded by writers_mu_
  /// Writers inside CommitBatch (queued, leading, or waking). A leader
  /// consults this against the queue length to decide whether the
  /// group-commit window is worth waiting out — if nobody else is in
  /// flight, no straggler can arrive and the window is skipped.
  std::atomic<uint64_t> inflight_writers_{0};

  /// Excludes queries (shared holders) from the in-memory apply step of a
  /// commit group (exclusive, taken under mu_). Never held while doing
  /// I/O. Lock order: mu_ then apply_mu_; shared holders take it alone.
  mutable std::shared_mutex apply_mu_;

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> wal_file_;       // guarded by mu_
  std::optional<LogWriter> wal_;                 // guarded by mu_
  std::string wal_path_;                         // guarded by mu_
  uint64_t last_seq_ = 0;                        // guarded by mu_
  uint64_t last_synced_seq_ = 0;                 // guarded by mu_
  uint64_t records_since_checkpoint_ = 0;        // guarded by mu_
  Status io_error_;                              // guarded by mu_
  bool closed_ = false;                          // guarded by mu_

  /// Serializes snapshot-file writes (explicit, auto, and background
  /// checkpoints) so fences are written in order. Never held under mu_.
  std::mutex checkpoint_mu_;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_checkpoint_requested_ = false;  // guarded by bg_mu_
  bool bg_stop_ = false;                  // guarded by bg_mu_
  std::thread checkpoint_thread_;

  RecoveryStats recovery_;  // written once during Open, then read-only
};

}  // namespace pdb

#endif  // PDB_STORAGE_DURABLE_DB_H_
