/// \file durable_db.h
/// \brief Durable wrapper around `ProbDatabase`: a write-ahead log, crash
/// recovery, point-in-time snapshots, and a warm-restart store for the
/// shared WMC cache.
///
/// `DurableDatabase` makes the engine survive restarts (ROADMAP: "a server
/// restart loses everything"). Design, in the LevelDB idiom:
///
///  - every mutation (`AddRelation`, `Insert`) is serialized into a
///    CRC-framed WAL record (storage/wal.h) and appended — and, in
///    `SyncMode::kAlways`, fsynced — *before* it is applied to the
///    in-memory `ProbDatabase`; an OK return therefore means the operation
///    is durable (log-then-apply / write-ahead rule);
///  - `Open` replays the newest complete snapshot, then the WAL segments in
///    sequence order. A torn or corrupt tail record — the signature of a
///    crash mid-append — truncates the log at the last complete record
///    instead of failing the open: recovery always yields a prefix of the
///    acknowledged operations, never an error on legitimately crashed
///    state;
///  - `Checkpoint` writes the whole catalog to `snap-<seq>.tmp`, fsyncs,
///    atomically renames, then starts a fresh WAL segment and deletes the
///    files the snapshot made redundant — bounding recovery time and disk
///    use (set `checkpoint_every_n` to do this automatically);
///  - the sidecar component store (`wmc.store`) persists shared-WMC-cache
///    entries (canonical signature + weight fingerprint + value). Warm
///    restarts reload it into a `WmcCache`, keeping the repeated-hard-query
///    win across process restarts. Safe by construction: the 192-bit keys
///    are pure functions of (formula structure, weights), so entries from
///    any database state can never serve a mismatched lookup.
///
/// All I/O goes through a `storage/env.h` seam; tests substitute a
/// deterministic fault-injecting filesystem (tests/fault_env.h) and crash
/// the workload at every single I/O step.
///
/// Concurrency: mutations serialize on an internal mutex. Queries run
/// lock-free against the inner `ProbDatabase` (the same single-writer /
/// many-readers contract the server already relies on: do not mutate while
/// queries are in flight).
///
/// After any WAL I/O error the database becomes read-only — the log tail
/// is no longer trustworthy, so accepting more writes could silently lose
/// them; reopening runs recovery and clears the condition.

#ifndef PDB_STORAGE_DURABLE_DB_H_
#define PDB_STORAGE_DURABLE_DB_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/pdb.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "wmc/wmc_cache.h"

namespace pdb {

/// When WAL appends become durable.
enum class SyncMode {
  /// fsync after every logged operation: an OK mutation is crash-durable.
  kAlways,
  /// Let the OS schedule writeback; fsync only at checkpoints and on
  /// `SyncWal`. Faster bulk loads; a crash loses the unsynced suffix.
  kNone,
};

/// Parses "always" | "none" (the pdbd --sync-mode values).
Result<SyncMode> ParseSyncMode(const std::string& text);

struct DurableOptions {
  /// Filesystem to operate on; null uses `Env::Default()` (POSIX).
  Env* env = nullptr;
  SyncMode sync_mode = SyncMode::kAlways;
  /// Auto-checkpoint after this many logged operations (0 = only when
  /// `Checkpoint` is called explicitly).
  uint64_t checkpoint_every_n = 0;
  /// Retention GC: after a successful checkpoint keep this many newest
  /// snapshots (the one just written included) plus every WAL segment
  /// still needed to recover from the oldest retained snapshot; older
  /// files are deleted. 0 behaves as 1 (always keep the latest).
  size_t retain_checkpoints = 1;
};

/// What recovery found and did during `Open`.
struct RecoveryStats {
  /// Sequence number of the snapshot loaded (0 when none existed).
  uint64_t snapshot_seq = 0;
  /// WAL records replayed on top of the snapshot.
  uint64_t replayed_records = 0;
  /// WAL segments visited during replay.
  uint64_t segments_replayed = 0;
  /// True when a torn or corrupt tail was found and cut off.
  bool tail_truncated = false;
  /// Bytes discarded by tail truncation.
  uint64_t truncated_bytes = 0;
  /// Snapshot files that failed validation and were skipped.
  uint64_t snapshots_skipped = 0;
};

/// A `ProbDatabase` whose mutations are write-ahead logged to `data_dir`
/// and recovered on open. Create via `Open`.
class DurableDatabase {
 public:
  /// Opens (creating if needed) the database stored in `data_dir`:
  /// loads the newest complete snapshot, replays the WAL — truncating a
  /// torn tail instead of failing — and starts a fresh WAL segment.
  static Result<std::unique_ptr<DurableDatabase>> Open(
      const std::string& data_dir, const DurableOptions& options = {});

  ~DurableDatabase();

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  /// The recovered in-memory database; issue queries against it (or a
  /// `Session` bound to it). Do not mutate it directly — use the logged
  /// mutators below, or the change will not survive a restart.
  ProbDatabase& pdb() { return pdb_; }
  const ProbDatabase& pdb() const { return pdb_; }

  /// Logs and applies a whole-relation add (schema + tuples). Fails
  /// without logging on a duplicate name.
  Status AddRelation(Relation relation);

  /// Logs and applies the registration of an empty relation.
  Status CreateRelation(const std::string& name, Schema schema);

  /// Logs and applies one tuple insert. Fails without logging on a
  /// missing relation, schema mismatch, duplicate tuple, or probability
  /// outside [0, 1] — an op that cannot apply is never written to the log.
  Status Insert(const std::string& relation, Tuple tuple, double p = 1.0);

  /// Writes a point-in-time snapshot of the catalog, rolls the WAL, and
  /// deletes the now-redundant older files.
  Status Checkpoint();

  /// fsyncs the WAL (a no-op barrier under `SyncMode::kAlways`).
  Status SyncWal();

  /// Atomically rewrites the sidecar component store with every entry of
  /// `cache` (signature, weight fingerprint, value).
  Status SpillWmcCache(const WmcCache& cache);

  /// Loads the component store into `cache`; tolerates a torn tail (loads
  /// the valid prefix). Returns the number of entries loaded.
  Result<uint64_t> LoadWmcCache(WmcCache* cache);

  /// Syncs and closes the WAL. Further mutations fail; queries still work.
  Status Close();

  /// Sequence number of the last applied operation.
  uint64_t last_seq() const;
  /// Sequence number of the last operation known durable (== `last_seq`
  /// under `SyncMode::kAlways` outside of an in-flight mutation).
  uint64_t last_synced_seq() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }

  /// Storage metrics (WAL appends/syncs/bytes, recovery replays and
  /// truncations, checkpoints, component-store levels). pdbd merges this
  /// registry into its /metrics exposition.
  MetricsRegistry& metrics() { return metrics_; }

  /// Storage-side IO trace: the recovery-replay span from Open, plus
  /// wal_append / wal_sync spans (capped — the ring keeps the totals
  /// honest while bounding memory) and checkpoint spans. pdbd points
  /// `ServerOptions::io_trace` here so GET /debug/profile folds storage
  /// latency into the same per-phase percentiles as query phases.
  const QueryTrace& io_trace() const { return io_trace_; }

 private:
  DurableDatabase(std::string data_dir, const DurableOptions& options);

  Status Recover();
  /// Replays one WAL segment; sets *stop when replay must not continue
  /// past this segment (corruption / torn tail / gap).
  Status ReplaySegment(const std::string& name, bool* stop);
  Result<uint64_t> LoadSnapshot(const std::string& name);
  Status RollWalLocked();
  Status CheckpointLocked();
  /// Appends (and per sync_mode fsyncs) an encoded record, then applies
  /// `apply`. Caller must hold mu_ and have validated the op.
  Status LogThenApplyLocked(std::string payload,
                            const std::function<Status()>& apply);
  void SetIoErrorLocked(const Status& status);

  const std::string dir_;
  DurableOptions options_;
  Env* env_;

  ProbDatabase pdb_;

  MetricsRegistry metrics_;
  Counter* wal_records_;
  Counter* wal_bytes_;
  Counter* wal_syncs_;
  Counter* recovery_replayed_;
  Counter* recovery_truncations_;
  Counter* checkpoints_;
  Counter* wmc_store_spills_;
  Counter* wmc_store_loaded_;
  Counter* checkpoint_duration_us_;
  Histogram* wal_sync_seconds_;
  Gauge* wmc_store_entries_;
  Gauge* last_seq_gauge_;
  Gauge* relations_gauge_;

  /// IO spans (recovery / wal_append / wal_sync / checkpoint). QueryTrace
  /// is internally synchronized; per-phase span counts are capped in the
  /// .cc so a long-lived server does not grow this without bound.
  QueryTrace io_trace_;
  std::atomic<uint64_t> wal_append_spans_{0};
  std::atomic<uint64_t> wal_sync_spans_{0};

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> wal_file_;       // guarded by mu_
  std::optional<LogWriter> wal_;                 // guarded by mu_
  std::string wal_path_;                         // guarded by mu_
  uint64_t last_seq_ = 0;                        // guarded by mu_
  uint64_t last_synced_seq_ = 0;                 // guarded by mu_
  uint64_t records_since_checkpoint_ = 0;        // guarded by mu_
  Status io_error_;                              // guarded by mu_
  bool closed_ = false;                          // guarded by mu_
  RecoveryStats recovery_;  // written once during Open, then read-only
};

}  // namespace pdb

#endif  // PDB_STORAGE_DURABLE_DB_H_
