/// \file write_batch.h
/// \brief A batch of mutations committed (and WAL-logged) atomically.
///
/// The RocksDB idiom: callers stage any number of mutations in a
/// `WriteBatch`, then hand it to `DurableDatabase::ApplyBatch`. The whole
/// batch is serialized into ONE CRC-framed WAL record (`kWalOpWriteBatch`),
/// synced once, and applied as a unit — recovery replays it all-or-nothing,
/// so a torn tail can never surface half a batch. Batching is also what
/// makes group commit pay: one fsync amortizes over every mutation in the
/// group instead of one fsync per tuple.
///
/// A batch is validated as a unit at commit time: if any staged op is
/// invalid (missing relation, schema mismatch, duplicate, bad probability),
/// the whole batch is rejected and nothing reaches the log.
///
/// Not thread-safe; build a batch on one thread, then commit it. The batch
/// is not cleared by a commit — call `Clear` to reuse the allocation.

#ifndef PDB_STORAGE_WRITE_BATCH_H_
#define PDB_STORAGE_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace pdb {

/// WAL operation codes (the byte after the sequence number in a record).
/// Shared between the WriteBatch payload encoding and the legacy
/// single-operation records, so a batch body is just a varint count
/// followed by `count` back-to-back single-op bodies.
enum WalOp : uint8_t {
  kWalOpAddRelation = 1,
  kWalOpInsert = 2,
  /// One record carrying N mutations, replayed atomically.
  kWalOpWriteBatch = 3,
};

/// An ordered list of mutations to commit atomically.
class WriteBatch {
 public:
  /// Stages one tuple insert into `relation`.
  void Insert(std::string relation, Tuple tuple, double p = 1.0) {
    Op op;
    op.code = kWalOpInsert;
    op.target = std::move(relation);
    op.tuple = std::move(tuple);
    op.p = p;
    ops_.push_back(std::move(op));
  }

  /// Stages a whole-relation add (schema + any tuples it already holds).
  void AddRelation(Relation relation) {
    Op op;
    op.code = kWalOpAddRelation;
    op.relation = std::move(relation);
    ops_.push_back(std::move(op));
  }

  /// Stages the registration of an empty relation.
  void CreateRelation(std::string name, Schema schema) {
    AddRelation(Relation(std::move(name), std::move(schema)));
  }

  /// Number of staged mutations.
  size_t count() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void Clear() { ops_.clear(); }

 private:
  friend class DurableDatabase;

  struct Op {
    uint8_t code = 0;
    std::string target;  // kWalOpInsert: destination relation name
    Tuple tuple;         // kWalOpInsert
    double p = 1.0;      // kWalOpInsert
    Relation relation;   // kWalOpAddRelation
  };

  std::vector<Op> ops_;
};

}  // namespace pdb

#endif  // PDB_STORAGE_WRITE_BATCH_H_
