/// \file relation.h
/// \brief Probabilistic relations: tuples plus marginal probabilities.
///
/// In a tuple-independent database (TID, paper §2) every stored tuple is an
/// independent probabilistic event with marginal probability `t.P`; tuples
/// not stored have probability 0. A deterministic relation is the special
/// case where every probability is 1.

#ifndef PDB_STORAGE_RELATION_H_
#define PDB_STORAGE_RELATION_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"
#include "util/status.h"

namespace pdb {

class ColumnarRelation;

/// A named set of distinct tuples, each carrying a marginal probability.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // The lazily built columnar sidecar sits behind a mutex, so the
  // compiler-generated special members are unavailable. The copies share
  // the (immutable) sidecar pointer — it is derived purely from the tuple
  // vector, which is copied along with it.
  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Appends a tuple with probability `p` in [0, 1]. Rejects duplicates
  /// (a TID lists each possible tuple at most once) and schema mismatches.
  Status AddTuple(Tuple tuple, double p = 1.0);

  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  double prob(size_t i) const { return probs_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const std::vector<double>& probs() const { return probs_; }

  /// Overwrites the probability of row `i`.
  void set_prob(size_t i, double p) { probs_[i] = p; }

  /// Row index of `tuple`, or NotFound.
  Result<size_t> Find(const Tuple& tuple) const;
  bool Contains(const Tuple& tuple) const { return Find(tuple).ok(); }

  /// Marginal probability of `tuple` (0 when absent).
  double ProbOf(const Tuple& tuple) const;

  /// Sorted distinct values of column `col`. Served from the columnar
  /// sidecar's dictionary when one has been built (no rescan).
  std::vector<Value> DistinctValues(size_t col) const;

  /// The dictionary-encoded columnar image of this relation, built on
  /// first request and cached until the next `AddTuple`. Thread-safe; the
  /// returned image stays valid after invalidation for as long as the
  /// caller holds the pointer.
  std::shared_ptr<const ColumnarRelation> columnar() const;

  /// The cached columnar image, or null when none has been built. Never
  /// triggers a build.
  std::shared_ptr<const ColumnarRelation> columnar_if_built() const;

  /// True iff every tuple has probability exactly 1.
  bool IsDeterministic() const;

  /// Multi-line human-readable dump (name, schema, rows with probabilities).
  std::string ToString() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
  std::vector<double> probs_;
  std::unordered_map<Tuple, size_t> index_;  // tuple -> row id
  /// Lazily built columnar image; null until first use, reset by AddTuple.
  mutable std::mutex columnar_mu_;
  mutable std::shared_ptr<const ColumnarRelation> columnar_;
};

/// Equality (hash) index on a subset of a relation's columns, for joins and
/// selections in the extensional plan executor.
class HashIndex {
 public:
  /// Builds an index of `relation` keyed on `key_cols`.
  HashIndex(const Relation& relation, std::vector<size_t> key_cols);

  /// Row ids whose key columns equal `key` (same order as key_cols).
  const std::vector<size_t>& Lookup(const Tuple& key) const;

  const std::vector<size_t>& key_cols() const { return key_cols_; }

 private:
  std::vector<size_t> key_cols_;
  std::unordered_map<Tuple, std::vector<size_t>> buckets_;
  std::vector<size_t> empty_;
};

}  // namespace pdb

#endif  // PDB_STORAGE_RELATION_H_
