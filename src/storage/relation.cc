#include "storage/relation.h"

#include <algorithm>
#include <set>

#include "util/string_util.h"

namespace pdb {

Status Relation::AddTuple(Tuple tuple, double p) {
  PDB_RETURN_NOT_OK(schema_.Validate(tuple));
  if (p < 0.0 || p > 1.0) {
    return Status::OutOfRange(
        StrFormat("probability %g outside [0, 1]", p));
  }
  if (index_.count(tuple) > 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate tuple %s in relation '%s'",
                  TupleToString(tuple).c_str(), name_.c_str()));
  }
  index_.emplace(tuple, tuples_.size());
  tuples_.push_back(std::move(tuple));
  probs_.push_back(p);
  return Status::OK();
}

Result<size_t> Relation::Find(const Tuple& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    return Status::NotFound(StrFormat("tuple %s not in relation '%s'",
                                      TupleToString(tuple).c_str(),
                                      name_.c_str()));
  }
  return it->second;
}

double Relation::ProbOf(const Tuple& tuple) const {
  auto found = Find(tuple);
  return found.ok() ? probs_[*found] : 0.0;
}

std::vector<Value> Relation::DistinctValues(size_t col) const {
  std::set<Value> seen;
  for (const Tuple& t : tuples_) seen.insert(t[col]);
  return std::vector<Value>(seen.begin(), seen.end());
}

bool Relation::IsDeterministic() const {
  return std::all_of(probs_.begin(), probs_.end(),
                     [](double p) { return p == 1.0; });
}

std::string Relation::ToString() const {
  std::string out = name_ + schema_.ToString() + " {\n";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    out += StrFormat("  %s : %g\n", TupleToString(tuples_[i]).c_str(),
                     probs_[i]);
  }
  out += "}";
  return out;
}

HashIndex::HashIndex(const Relation& relation, std::vector<size_t> key_cols)
    : key_cols_(std::move(key_cols)) {
  for (size_t row = 0; row < relation.size(); ++row) {
    Tuple key;
    key.reserve(key_cols_.size());
    for (size_t col : key_cols_) key.push_back(relation.tuple(row)[col]);
    buckets_[std::move(key)].push_back(row);
  }
}

const std::vector<size_t>& HashIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace pdb
