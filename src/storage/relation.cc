#include "storage/relation.h"

#include <algorithm>
#include <set>

#include "storage/columnar.h"
#include "util/string_util.h"

namespace pdb {

Relation::Relation(const Relation& other)
    : name_(other.name_),
      schema_(other.schema_),
      tuples_(other.tuples_),
      probs_(other.probs_),
      index_(other.index_) {
  std::lock_guard<std::mutex> lock(other.columnar_mu_);
  columnar_ = other.columnar_;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      tuples_(std::move(other.tuples_)),
      probs_(std::move(other.probs_)),
      index_(std::move(other.index_)),
      columnar_(std::move(other.columnar_)) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  schema_ = other.schema_;
  tuples_ = other.tuples_;
  probs_ = other.probs_;
  index_ = other.index_;
  std::shared_ptr<const ColumnarRelation> theirs;
  {
    std::lock_guard<std::mutex> lock(other.columnar_mu_);
    theirs = other.columnar_;
  }
  std::lock_guard<std::mutex> lock(columnar_mu_);
  columnar_ = std::move(theirs);
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  schema_ = std::move(other.schema_);
  tuples_ = std::move(other.tuples_);
  probs_ = std::move(other.probs_);
  index_ = std::move(other.index_);
  columnar_ = std::move(other.columnar_);
  return *this;
}

Status Relation::AddTuple(Tuple tuple, double p) {
  PDB_RETURN_NOT_OK(schema_.Validate(tuple));
  if (p < 0.0 || p > 1.0) {
    return Status::OutOfRange(
        StrFormat("probability %g outside [0, 1]", p));
  }
  if (index_.count(tuple) > 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate tuple %s in relation '%s'",
                  TupleToString(tuple).c_str(), name_.c_str()));
  }
  index_.emplace(tuple, tuples_.size());
  tuples_.push_back(std::move(tuple));
  probs_.push_back(p);
  {
    // The columnar image no longer reflects the tuple set; drop it. A
    // reader holding the old shared_ptr keeps a consistent (stale)
    // snapshot, same as the index-cache invalidation discipline.
    std::lock_guard<std::mutex> lock(columnar_mu_);
    columnar_.reset();
  }
  return Status::OK();
}

Result<size_t> Relation::Find(const Tuple& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    return Status::NotFound(StrFormat("tuple %s not in relation '%s'",
                                      TupleToString(tuple).c_str(),
                                      name_.c_str()));
  }
  return it->second;
}

double Relation::ProbOf(const Tuple& tuple) const {
  auto found = Find(tuple);
  return found.ok() ? probs_[*found] : 0.0;
}

std::vector<Value> Relation::DistinctValues(size_t col) const {
  // The columnar dictionary *is* the sorted distinct-value list; reuse it
  // instead of rescanning when the sidecar has already been built.
  if (auto cols = columnar_if_built()) return cols->dict(col);
  std::set<Value> seen;
  for (const Tuple& t : tuples_) seen.insert(t[col]);
  return std::vector<Value>(seen.begin(), seen.end());
}

std::shared_ptr<const ColumnarRelation> Relation::columnar() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  // Build under the lock, mirroring the index cache's build-under-shard-
  // lock idiom: concurrent first requests build the image exactly once.
  if (columnar_ == nullptr) columnar_ = ColumnarRelation::Build(*this);
  return columnar_;
}

std::shared_ptr<const ColumnarRelation> Relation::columnar_if_built() const {
  std::lock_guard<std::mutex> lock(columnar_mu_);
  return columnar_;
}

bool Relation::IsDeterministic() const {
  return std::all_of(probs_.begin(), probs_.end(),
                     [](double p) { return p == 1.0; });
}

std::string Relation::ToString() const {
  std::string out = name_ + schema_.ToString() + " {\n";
  for (size_t i = 0; i < tuples_.size(); ++i) {
    out += StrFormat("  %s : %g\n", TupleToString(tuples_[i]).c_str(),
                     probs_[i]);
  }
  out += "}";
  return out;
}

HashIndex::HashIndex(const Relation& relation, std::vector<size_t> key_cols)
    : key_cols_(std::move(key_cols)) {
  for (size_t row = 0; row < relation.size(); ++row) {
    Tuple key;
    key.reserve(key_cols_.size());
    for (size_t col : key_cols_) key.push_back(relation.tuple(row)[col]);
    buckets_[std::move(key)].push_back(row);
  }
}

const std::vector<size_t>& HashIndex::Lookup(const Tuple& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? empty_ : it->second;
}

}  // namespace pdb
