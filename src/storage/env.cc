#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace pdb {

namespace {

Status IoError(const std::string& context, int err) {
  return Status(StatusCode::kIoError,
                context + ": " + std::strerror(err));
}

/// POSIX append-only file: unbuffered write() so Append is visible to
/// readers immediately; Sync is fsync(2).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return IoError("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }  // write() is unbuffered

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    if (::fsync(fd_) != 0) return IoError("fsync " + path_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return IoError("close " + path_, errno);
    return Status::OK();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    return OpenForWrite(path, O_TRUNC);
  }

  Result<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path) override {
    return OpenForWrite(path, O_APPEND);
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return IoError("open " + path, errno);
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return IoError("read " + path, err);
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return IoError("stat " + path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::vector<std::string>> GetChildren(
      const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return IoError("opendir " + dir, errno);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return IoError("unlink " + path, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return IoError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return IoError("mkdir " + dir, errno);
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return IoError("truncate " + path, errno);
    }
    return Status::OK();
  }

 private:
  Result<std::unique_ptr<WritableFile>> OpenForWrite(const std::string& path,
                                                     int extra_flags) {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC | extra_flags,
                    0644);
    if (fd < 0) return IoError("open " + path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }
};

/// In-memory WritableFile appending into the shared FileState. The handle
/// keeps the state alive even if the file is concurrently removed (matching
/// POSIX unlink-while-open semantics).
class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<MemEnv::FileState> state)
      : state_(std::move(state)) {}

  Status Append(std::string_view data) override {
    if (!state_) return Status::FailedPrecondition("file closed");
    state_->contents.append(data.data(), data.size());
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override {
    state_.reset();
    return Status::OK();
  }

 private:
  std::shared_ptr<MemEnv::FileState> state_;
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // intentionally leaked singleton
  return env;
}

Result<std::unique_ptr<WritableFile>> MemEnv::NewWritableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto state = std::make_shared<FileState>();
  files_[path] = state;
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(std::move(state)));
}

Result<std::unique_ptr<WritableFile>> MemEnv::NewAppendableFile(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  std::shared_ptr<FileState> state;
  if (it == files_.end()) {
    state = std::make_shared<FileState>();
    files_[path] = state;
  } else {
    state = it->second;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<MemWritableFile>(std::move(state)));
}

Status MemEnv::ReadFileToString(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  *out = it->second->contents;
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Result<uint64_t> MemEnv::GetFileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  return static_cast<uint64_t>(it->second->contents.size());
}

Result<std::vector<std::string>> MemEnv::GetChildren(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [path, state] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos && !rest.empty()) {
      names.push_back(std::move(rest));
    }
  }
  return names;  // map order is already sorted
}

Status MemEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + from);
  }
  files_[to] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(dirs_.begin(), dirs_.end(), dir) == dirs_.end()) {
    dirs_.push_back(dir);
  }
  return Status::OK();
}

Status MemEnv::TruncateFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(StatusCode::kIoError, "no such file: " + path);
  }
  std::string& contents = it->second->contents;
  if (size < contents.size()) contents.resize(static_cast<size_t>(size));
  return Status::OK();
}

std::string MemEnv::FileContents(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? std::string() : it->second->contents;
}

void MemEnv::SetFileContents(const std::string& path, std::string contents) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    auto state = std::make_shared<FileState>();
    state->contents = std::move(contents);
    files_[path] = std::move(state);
  } else {
    it->second->contents = std::move(contents);
  }
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace pdb
