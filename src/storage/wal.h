/// \file wal.h
/// \brief CRC-framed, block-aligned log files (the LevelDB `log_writer`
/// record format).
///
/// A log file is a sequence of 32 KiB blocks; each block holds records
/// framed as
///
///     checksum (4B, masked CRC-32C of type+payload) | length (2B LE) |
///     type (1B) | payload
///
/// A logical record larger than the space left in a block is fragmented
/// into FIRST/MIDDLE.../LAST physical records; one that fits whole is FULL.
/// When fewer than 7 header bytes remain in a block the writer pads the
/// remainder with zeros and starts the next record block-aligned. Because
/// every fragment is checksummed and block-aligned, a reader can detect a
/// torn tail (a crash mid-write) at the granularity of a single physical
/// record and hand back exactly the prefix of intact logical records.
///
/// Reader policy — chosen for write-ahead logs rather than general log
/// shipping: stop at the FIRST corrupt or torn physical record. A WAL's
/// contract is "a prefix of the operations that were appended"; data after
/// a damaged region cannot be trusted to be a contiguous suffix, so the
/// durable layer truncates the file at `valid_prefix_size()` instead of
/// resynchronizing past the damage.

#ifndef PDB_STORAGE_WAL_H_
#define PDB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/env.h"
#include "util/status.h"

namespace pdb {
namespace wal {

/// Physical record framing constants.
constexpr size_t kBlockSize = 32768;
constexpr size_t kHeaderSize = 4 + 2 + 1;

enum class RecordType : uint8_t {
  kZero = 0,  ///< preallocated/padding; never written as a record
  kFull = 1,
  kFirst = 2,
  kMiddle = 3,
  kLast = 4,
};
constexpr uint8_t kMaxRecordType = 4;

}  // namespace wal

/// Appends CRC-framed records to a `WritableFile`. Not thread-safe.
class LogWriter {
 public:
  /// `dest` must be positioned at `initial_length` bytes (0 for a fresh
  /// file; the current size when reopening an existing log for append —
  /// the writer needs the block offset to frame correctly).
  explicit LogWriter(WritableFile* dest, uint64_t initial_length = 0);

  /// Appends one logical record. On error the log tail is undefined (a
  /// partial physical record may be present); callers should stop using
  /// the writer — recovery will truncate the torn tail.
  Status AddRecord(std::string_view payload);

  /// Bytes of log written so far (header + payload + padding).
  uint64_t offset() const { return offset_; }

 private:
  Status EmitPhysicalRecord(wal::RecordType type, const char* data,
                            size_t length);

  WritableFile* dest_;
  uint64_t offset_;       // current file offset
  size_t block_offset_;   // offset within the current block
};

/// Iterates the logical records of a log held in memory. Stops cleanly at
/// the first corruption (see file comment); never crashes on arbitrary
/// bytes.
class LogReader {
 public:
  explicit LogReader(std::string_view contents);

  /// Reads the next logical record into `*record`. Returns true on
  /// success; false at end of log or at the first corrupt/torn record
  /// (check `corruption_detected()` to distinguish).
  bool ReadRecord(std::string* record);

  /// True once a checksum mismatch, impossible length, torn fragment, or
  /// malformed fragment sequence has been seen.
  bool corruption_detected() const { return corruption_; }
  /// Description of the first corruption (empty when none).
  const std::string& corruption_message() const { return corruption_message_; }

  /// File offset just past the last complete logical record returned —
  /// where the durable layer truncates a torn tail. Fragments of a
  /// logical record that never completed do not extend this.
  uint64_t valid_prefix_size() const { return valid_prefix_; }

 private:
  /// Reads one physical record at cursor_; advances cursor_. Returns
  /// kEof (end, clean), kRecord (got one), or kCorrupt.
  enum class Physical { kRecord, kEof, kCorrupt };
  Physical ReadPhysicalRecord(wal::RecordType* type, std::string_view* payload);

  void SetCorruption(std::string message);

  std::string_view contents_;
  size_t cursor_ = 0;
  uint64_t valid_prefix_ = 0;
  bool corruption_ = false;
  std::string corruption_message_;
};

}  // namespace pdb

#endif  // PDB_STORAGE_WAL_H_
