#include "storage/crc32c.h"

#include <array>

namespace pdb::crc32c {
namespace {

/// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: the CRC contribution of byte b seen k positions before the
  // end of an 8-byte group (slice-by-8).
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = tables.t[k - 1][b];
      tables.t[k][b] = tables.t[0][crc & 0xff] ^ (crc >> 8);
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  // Process 8 bytes at a time via slice-by-8.
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][crc & 0xff] ^ kTables.t[6][(crc >> 8) & 0xff] ^
          kTables.t[5][(crc >> 16) & 0xff] ^ kTables.t[4][crc >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables.t[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
    ++p;
    --n;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace pdb::crc32c
