#include "storage/index_cache.h"

#include <functional>
#include <utility>

namespace pdb {

size_t IndexCache::KeyHash::operator()(const Key& key) const {
  size_t h = std::hash<const void*>()(key.relation);
  h = h * 1315423911u + static_cast<size_t>(key.flavor);
  for (size_t col : key.key_cols) {
    h = h * 1315423911u + std::hash<size_t>()(col) + 0x9e3779b97f4a7c15ull;
  }
  return h;
}

IndexCache::IndexCache(IndexCacheOptions options) {
  size_t n = options.num_shards == 0 ? 1 : options.num_shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

IndexCache::Shard& IndexCache::ShardFor(const Key& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

template <typename T, typename BuildFn>
std::shared_ptr<const T> IndexCache::GetOrBuildEntry(Key key, bool* built,
                                                     BuildFn&& build) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (built != nullptr) *built = false;
    return std::static_pointer_cast<const T>(it->second);
  }
  // Build inside the shard lock: concurrent requests for the same index
  // build it exactly once, and requests for other indexes only stall when
  // they collide on this shard.
  std::shared_ptr<const T> entry = build();
  shard.map.emplace(std::move(key), entry);
  builds_.fetch_add(1, std::memory_order_relaxed);
  if (built != nullptr) *built = true;
  return entry;
}

std::shared_ptr<const HashIndex> IndexCache::GetOrBuild(
    const Relation& relation, const std::vector<size_t>& key_cols,
    bool* built) {
  Key key{&relation, key_cols, Flavor::kHash};
  return GetOrBuildEntry<HashIndex>(std::move(key), built, [&] {
    return std::make_shared<const HashIndex>(relation, key_cols);
  });
}

std::shared_ptr<const ColumnarRelation> IndexCache::GetOrBuildColumnar(
    const Relation& relation, bool* built) {
  Key key{&relation, {}, Flavor::kColumnar};
  return GetOrBuildEntry<ColumnarRelation>(std::move(key), built, [&] {
    return relation.columnar();
  });
}

std::shared_ptr<const ColumnarIndex> IndexCache::GetOrBuildColumnarIndex(
    const Relation& relation, const std::vector<size_t>& key_cols,
    bool* built) {
  Key key{&relation, key_cols, Flavor::kColumnarIndex};
  return GetOrBuildEntry<ColumnarIndex>(std::move(key), built, [&] {
    return std::make_shared<const ColumnarIndex>(relation.columnar(),
                                                 key_cols);
  });
}

void IndexCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
}

IndexCacheStats IndexCache::stats() const {
  IndexCacheStats stats;
  stats.builds = builds_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    stats.entries += shard->map.size();
  }
  return stats;
}

}  // namespace pdb
