#include "storage/value.h"

#include <charconv>

#include "util/check.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace pdb {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int64_t Value::AsInt() const {
  PDB_CHECK(is_int());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  PDB_CHECK(is_double());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  PDB_CHECK(is_string());
  return std::get<std::string>(data_);
}

Result<Value> Value::Parse(std::string_view text, ValueType type) {
  text = StrTrim(text);
  switch (type) {
    case ValueType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(text.begin(), text.end(), v);
      if (ec != std::errc() || ptr != text.end()) {
        return Status::InvalidArgument(
            StrFormat("cannot parse '%.*s' as int",
                      static_cast<int>(text.size()), text.data()));
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      std::string buf(text);
      char* end = nullptr;
      double v = std::strtod(buf.c_str(), &end);
      if (end != buf.c_str() + buf.size() || buf.empty()) {
        return Status::InvalidArgument(
            StrFormat("cannot parse '%s' as double", buf.c_str()));
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Status::Internal("unreachable value type");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

size_t Value::hash() const {
  switch (type()) {
    case ValueType::kInt:
      return HashValues(0, std::get<int64_t>(data_));
    case ValueType::kDouble:
      return HashValues(1, std::get<double>(data_));
    case ValueType::kString:
      return HashValues(2, std::get<std::string>(data_));
  }
  return 0;
}

size_t HashTuple(const Tuple& tuple) {
  size_t seed = 0x811c9dc5;
  for (const Value& v : tuple) seed = HashCombine(seed, v.hash());
  return seed;
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pdb
