/// \file index_cache.h
/// \brief Session-lifetime cache of `HashIndex` instances.
///
/// The grounding engine (boolean/lineage.cc) probes one hash index per
/// join step with bound positions. Before this cache existed every query
/// rebuilt those indexes from scratch — O(rows) hashing per query per
/// atom — even when a session served thousands of identical joins against
/// an unchanged database. The cache is keyed by (relation identity, key
/// columns) and hands out `shared_ptr<const HashIndex>`, so a reader keeps
/// its index alive across a concurrent `Clear()` (generation invalidation)
/// without locks on the probe path of the index itself.
///
/// Concurrency follows the WmcCache idiom: the key space is partitioned
/// into mutex-striped shards, and a build happens inside the shard lock so
/// concurrent requests for the same index build it exactly once (the loser
/// of the race gets the winner's pointer). Builds for *different* indexes
/// only contend when they collide on a shard.
///
/// Lifecycle: the cache is owned by `Session`, invalidated with the same
/// generation discipline as the result and WMC caches (a database mutation
/// clears it), and relations are keyed by address — `Database` stores
/// relations in a node-based map, so a `Relation*` is stable until the
/// relation is destroyed, and a destroyed database's entries are
/// unreachable garbage that the next `Clear()` drops.

#ifndef PDB_STORAGE_INDEX_CACHE_H_
#define PDB_STORAGE_INDEX_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/columnar.h"
#include "storage/relation.h"

namespace pdb {

/// Aggregated counters of one `IndexCache`. Hash indexes, columnar images,
/// and columnar code indexes all count here — they share the shards and
/// the generation-invalidation lifecycle.
struct IndexCacheStats {
  uint64_t builds = 0;  ///< indexes constructed (cache misses)
  uint64_t hits = 0;    ///< requests served by an existing index
  size_t entries = 0;   ///< resident indexes across all shards
};

/// Tuning for an `IndexCache`.
struct IndexCacheOptions {
  /// Mutex stripe count; requests for different indexes contend only when
  /// they collide on a shard.
  size_t num_shards = 8;
};

/// Sharded, thread-safe cache of hash indexes keyed by
/// (relation address, key columns).
class IndexCache {
 public:
  explicit IndexCache(IndexCacheOptions options = {});

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  /// Returns the index of `relation` keyed on `key_cols`, building it under
  /// the shard lock on first request. When `built` is non-null it is set to
  /// whether this call constructed the index (for per-query accounting).
  /// The returned pointer stays valid after `Clear()` for as long as the
  /// caller holds it.
  std::shared_ptr<const HashIndex> GetOrBuild(const Relation& relation,
                                              const std::vector<size_t>&
                                                  key_cols,
                                              bool* built = nullptr);

  /// The dictionary-encoded columnar image of `relation`, cached next to
  /// the hash indexes (the build itself is delegated to — and also cached
  /// on — the relation, so a rebuilt cache after `Clear()` reattaches to
  /// the existing image instead of re-encoding).
  std::shared_ptr<const ColumnarRelation> GetOrBuildColumnar(
      const Relation& relation, bool* built = nullptr);

  /// The columnar code index of `relation` keyed on `key_cols` — the
  /// vectorized executor's analogue of `GetOrBuild`.
  std::shared_ptr<const ColumnarIndex> GetOrBuildColumnarIndex(
      const Relation& relation, const std::vector<size_t>& key_cols,
      bool* built = nullptr);

  /// Drops every cached index (readers holding shared_ptrs are unaffected).
  void Clear();

  IndexCacheStats stats() const;

 private:
  /// Entry flavours share the key space; `key_cols` is empty for the
  /// whole-relation columnar image.
  enum class Flavor : uint8_t { kHash, kColumnar, kColumnarIndex };

  struct Key {
    const Relation* relation;
    std::vector<size_t> key_cols;
    Flavor flavor = Flavor::kHash;
    bool operator==(const Key& other) const {
      return relation == other.relation && flavor == other.flavor &&
             key_cols == other.key_cols;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Shard {
    mutable std::mutex mu;
    // Type-erased so one shard map holds all three flavours; the typed
    // getters cast back according to Key::flavor.
    std::unordered_map<Key, std::shared_ptr<const void>, KeyHash> map;
  };

  Shard& ShardFor(const Key& key);

  /// Looks up `key`, building via `build()` on a miss; counts hit/build.
  template <typename T, typename BuildFn>
  std::shared_ptr<const T> GetOrBuildEntry(Key key, bool* built,
                                           BuildFn&& build);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> builds_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace pdb

#endif  // PDB_STORAGE_INDEX_CACHE_H_
