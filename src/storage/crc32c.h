/// \file crc32c.h
/// \brief CRC-32C (Castagnoli) checksums for WAL record framing.
///
/// The same polynomial (0x1EDC6F41) LevelDB, RocksDB, and ext4 use for
/// on-disk integrity. Software slice-by-8 implementation — fast enough that
/// framing overhead is dominated by the write itself — plus LevelDB's
/// masking trick: a file that embeds CRCs of its own contents (e.g. a log
/// record carrying another log) would otherwise produce runs of data whose
/// stored CRC equals the CRC function of the neighbouring bytes.

#ifndef PDB_STORAGE_CRC32C_H_
#define PDB_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pdb::crc32c {

/// CRC-32C of `data`, seeded with `init_crc` (pass 0, or a previous Value
/// to extend a running checksum).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

static constexpr uint32_t kMaskDelta = 0xa282ead8u;

/// Rotates and offsets `crc` so stored checksums never look like raw CRCs.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace pdb::crc32c

#endif  // PDB_STORAGE_CRC32C_H_
