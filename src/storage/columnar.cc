#include "storage/columnar.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "storage/relation.h"
#include "util/check.h"

namespace pdb {

std::shared_ptr<const ColumnarRelation> ColumnarRelation::Build(
    const Relation& rel) {
  auto image = std::make_shared<ColumnarRelation>();
  image->num_rows_ = rel.size();
  image->columns_.resize(rel.arity());
  for (size_t col = 0; col < rel.arity(); ++col) {
    Column& column = image->columns_[col];
    // An ordered map assigns each distinct value its rank in the Value
    // total order, so the dictionary comes out sorted and `code` equality
    // is value equality.
    std::map<Value, uint32_t> ranks;
    for (const Tuple& t : rel.tuples()) ranks.emplace(t[col], 0);
    PDB_CHECK(ranks.size() < kNoCode);
    column.dict.reserve(ranks.size());
    uint32_t next = 0;
    for (auto& [value, rank] : ranks) {
      rank = next++;
      column.dict.push_back(value);
    }
    column.codes.reserve(rel.size());
    for (const Tuple& t : rel.tuples()) {
      column.codes.push_back(ranks.find(t[col])->second);
    }
  }
  return image;
}

uint32_t ColumnarRelation::CodeOf(size_t col, const Value& value) const {
  const std::vector<Value>& dict = columns_[col].dict;
  auto it = std::lower_bound(dict.begin(), dict.end(), value);
  if (it == dict.end() || !(*it == value)) return kNoCode;
  return static_cast<uint32_t>(it - dict.begin());
}

std::vector<uint32_t> BuildCodeTranslation(const std::vector<Value>& src,
                                           const std::vector<Value>& dst) {
  std::vector<uint32_t> xlat(src.size(), ColumnarRelation::kNoCode);
  size_t i = 0;
  size_t j = 0;
  while (i < src.size() && j < dst.size()) {
    if (src[i] < dst[j]) {
      ++i;
    } else if (dst[j] < src[i]) {
      ++j;
    } else {
      xlat[i] = static_cast<uint32_t>(j);
      ++i;
      ++j;
    }
  }
  return xlat;
}

size_t DistinctComposite(const ColumnarRelation& cols,
                         const std::vector<size_t>& key_cols) {
  if (key_cols.empty()) return 0;
  // Mixed-radix multipliers, same construction as ColumnarIndex; the
  // composite code of a row is unique per distinct key combination.
  std::vector<uint64_t> radix(key_cols.size(), 1);
  for (size_t p = key_cols.size(); p-- > 1;) {
    uint64_t dict_size = cols.distinct(key_cols[p]);
    if (dict_size == 0) dict_size = 1;
    if (radix[p] > UINT64_MAX / dict_size) return 0;
    radix[p - 1] = radix[p] * dict_size;
  }
  uint64_t lead = cols.distinct(key_cols[0]);
  if (lead > 0 && radix[0] > UINT64_MAX / lead) return 0;
  std::unordered_set<uint64_t> seen;
  seen.reserve(cols.num_rows());
  for (size_t row = 0; row < cols.num_rows(); ++row) {
    uint64_t code = 0;
    for (size_t p = 0; p < key_cols.size(); ++p) {
      code += radix[p] * cols.codes(key_cols[p])[row];
    }
    seen.insert(code);
  }
  return seen.size();
}

ColumnarIndex::ColumnarIndex(std::shared_ptr<const ColumnarRelation> cols,
                             std::vector<size_t> key_cols)
    : cols_(std::move(cols)), key_cols_(std::move(key_cols)) {
  PDB_CHECK(!key_cols_.empty());
  // Mixed-radix multipliers: the last key part varies fastest. Composite
  // codes preserve the lexicographic order of the part codes, though only
  // equality is used here.
  radix_.assign(key_cols_.size(), 1);
  for (size_t p = key_cols_.size(); p-- > 1;) {
    uint64_t dict_size = cols_->distinct(key_cols_[p]);
    if (dict_size == 0) dict_size = 1;  // empty relation: any radix works
    if (radix_[p] > UINT64_MAX / dict_size) {
      overflow_ = true;
      return;
    }
    radix_[p - 1] = radix_[p] * dict_size;
  }
  // One more width check for the leading part (the composite must fit).
  uint64_t lead = cols_->distinct(key_cols_[0]);
  if (lead > 0 && radix_[0] > UINT64_MAX / lead) {
    overflow_ = true;
    return;
  }
  const size_t n = cols_->num_rows();
  if (key_cols_.size() == 1) {
    // CSR: two passes (count, then fill) keep each bucket's rows ascending.
    const std::vector<uint32_t>& codes = cols_->codes(key_cols_[0]);
    offsets_.assign(cols_->distinct(key_cols_[0]) + 1, 0);
    for (uint32_t code : codes) ++offsets_[code + 1];
    for (size_t c = 1; c < offsets_.size(); ++c) {
      offsets_[c] += offsets_[c - 1];
    }
    rows_.resize(n);
    std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (size_t row = 0; row < n; ++row) {
      rows_[cursor[codes[row]]++] = static_cast<uint32_t>(row);
    }
    return;
  }
  for (size_t row = 0; row < n; ++row) {
    uint64_t code = 0;
    for (size_t p = 0; p < key_cols_.size(); ++p) {
      code += radix_[p] * cols_->codes(key_cols_[p])[row];
    }
    buckets_[code].push_back(static_cast<uint32_t>(row));
  }
}

size_t ColumnarIndex::num_buckets() const {
  if (overflow_) return 0;
  // Single-column CSR buckets are never empty: every dictionary entry came
  // from at least one row, so the bucket count is the dictionary size.
  if (key_cols_.size() == 1) return offsets_.empty() ? 0 : offsets_.size() - 1;
  return buckets_.size();
}

void ColumnarIndex::Lookup(uint64_t code, const uint32_t** rows,
                           size_t* count) const {
  if (key_cols_.size() == 1) {
    *rows = rows_.data() + offsets_[code];
    *count = offsets_[code + 1] - offsets_[code];
    return;
  }
  auto it = buckets_.find(code);
  if (it == buckets_.end()) {
    *rows = nullptr;
    *count = 0;
    return;
  }
  *rows = it->second.data();
  *count = it->second.size();
}

}  // namespace pdb
