/// \file schema.h
/// \brief Relation schemas: named, typed attribute lists.

#ifndef PDB_STORAGE_SCHEMA_H_
#define PDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace pdb {

/// One attribute of a relation.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of attributes describing the tuples of a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Convenience: attributes "a0".."a{n-1}" all of the given type.
  static Schema Anonymous(size_t arity, ValueType type = ValueType::kInt);

  size_t arity() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// Checks that `tuple` matches this schema's arity and types.
  Status Validate(const Tuple& tuple) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

/// Parses a schema spec "name:type,name:type,..." with type one of
/// int|double|string — the format of pdbd's `--table SCHEMA` operand and
/// the `/ingest ?schema=` parameter.
Result<Schema> ParseSchemaSpec(const std::string& spec);

}  // namespace pdb

#endif  // PDB_STORAGE_SCHEMA_H_
