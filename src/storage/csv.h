/// \file csv.h
/// \brief Loading and saving probabilistic relations as CSV.
///
/// Format: one row per tuple; the data columns in schema order followed by a
/// final probability column. A header line is optional on load and always
/// written on save. Deterministic relations may omit the probability column
/// (every tuple then has probability 1).

#ifndef PDB_STORAGE_CSV_H_
#define PDB_STORAGE_CSV_H_

#include <string>
#include <utility>

#include "storage/relation.h"
#include "util/status.h"

namespace pdb {

/// Options controlling CSV parsing.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  /// When true the last column is the tuple probability; otherwise all
  /// probabilities are 1.
  bool has_probability_column = true;
};

/// Parses CSV `text` into a relation named `name` with the given schema
/// (data columns only; the probability column is implied by options).
Result<Relation> RelationFromCsv(const std::string& name, const Schema& schema,
                                 const std::string& text,
                                 const CsvOptions& options = {});

/// Parses ONE data row (no trailing newline) against `schema` — the
/// incremental unit for streaming bulk ingest, where rows arrive off the
/// wire one network chunk at a time and are grouped into `WriteBatch`es
/// instead of materializing a whole relation. Accepts `arity` fields
/// (probability 1) or, when `options.has_probability_column`, `arity + 1`
/// fields with the probability last.
Result<std::pair<Tuple, double>> ParseCsvRow(const Schema& schema,
                                             const std::string& line,
                                             const CsvOptions& options = {});

/// Reads a relation from the file at `path`.
Result<Relation> RelationFromCsvFile(const std::string& name,
                                     const Schema& schema,
                                     const std::string& path,
                                     const CsvOptions& options = {});

/// Serializes `relation` to CSV text (header + rows + probability column).
std::string RelationToCsv(const Relation& relation, char separator = ',');

/// Writes `relation` to the file at `path`.
Status RelationToCsvFile(const Relation& relation, const std::string& path,
                         char separator = ',');

}  // namespace pdb

#endif  // PDB_STORAGE_CSV_H_
