#include "storage/schema.h"

#include "util/string_util.h"

namespace pdb {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Schema Schema::Anonymous(size_t arity, ValueType type) {
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({StrFormat("a%zu", i), type});
  }
  return Schema(std::move(attrs));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no attribute named '%s'", name.c_str()));
}

Status Schema::Validate(const Tuple& tuple) const {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match schema arity %zu",
                  tuple.size(), attributes_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].type() != attributes_[i].type) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s' expects %s but tuple has %s",
          attributes_[i].name.c_str(), ValueTypeToString(attributes_[i].type),
          ValueTypeToString(tuple[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace pdb
