#include "storage/schema.h"

#include "util/string_util.h"

namespace pdb {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Schema Schema::Anonymous(size_t arity, ValueType type) {
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({StrFormat("a%zu", i), type});
  }
  return Schema(std::move(attrs));
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound(StrFormat("no attribute named '%s'", name.c_str()));
}

Status Schema::Validate(const Tuple& tuple) const {
  if (tuple.size() != attributes_.size()) {
    return Status::InvalidArgument(
        StrFormat("tuple arity %zu does not match schema arity %zu",
                  tuple.size(), attributes_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].type() != attributes_[i].type) {
      return Status::InvalidArgument(StrFormat(
          "attribute '%s' expects %s but tuple has %s",
          attributes_[i].name.c_str(), ValueTypeToString(attributes_[i].type),
          ValueTypeToString(tuple[i].type())));
    }
  }
  return Status::OK();
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Attribute> attributes;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string field = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = field.find(':');
    if (field.empty() || colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument(
          StrFormat("bad schema field '%s' (want name:type)", field.c_str()));
    }
    Attribute attr;
    attr.name = field.substr(0, colon);
    std::string type = field.substr(colon + 1);
    if (type == "int") {
      attr.type = ValueType::kInt;
    } else if (type == "double") {
      attr.type = ValueType::kDouble;
    } else if (type == "string") {
      attr.type = ValueType::kString;
    } else {
      return Status::InvalidArgument(StrFormat(
          "bad attribute type '%s' (want int|double|string)", type.c_str()));
    }
    attributes.push_back(std::move(attr));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("empty schema");
  }
  return Schema(std::move(attributes));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace pdb
