#include "storage/wal.h"

#include "storage/coding.h"
#include "storage/crc32c.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

using wal::kBlockSize;
using wal::kHeaderSize;
using wal::RecordType;

LogWriter::LogWriter(WritableFile* dest, uint64_t initial_length)
    : dest_(dest),
      offset_(initial_length),
      block_offset_(static_cast<size_t>(initial_length % kBlockSize)) {}

Status LogWriter::AddRecord(std::string_view payload) {
  const char* data = payload.data();
  size_t left = payload.size();
  bool first_fragment = true;
  // Emit at least one fragment even for an empty payload.
  do {
    size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Not enough room for a header: pad the block with zeros and start
      // the next fragment block-aligned.
      if (leftover > 0) {
        static const char kZeros[kHeaderSize] = {0};
        PDB_RETURN_NOT_OK(
            dest_->Append(std::string_view(kZeros, leftover)));
        offset_ += leftover;
      }
      block_offset_ = 0;
      leftover = kBlockSize;
    }
    size_t avail = leftover - kHeaderSize;
    size_t fragment = left < avail ? left : avail;
    bool last_fragment = fragment == left;
    RecordType type;
    if (first_fragment && last_fragment) {
      type = RecordType::kFull;
    } else if (first_fragment) {
      type = RecordType::kFirst;
    } else if (last_fragment) {
      type = RecordType::kLast;
    } else {
      type = RecordType::kMiddle;
    }
    PDB_RETURN_NOT_OK(EmitPhysicalRecord(type, data, fragment));
    data += fragment;
    left -= fragment;
    first_fragment = false;
  } while (left > 0);
  return Status::OK();
}

Status LogWriter::EmitPhysicalRecord(RecordType type, const char* data,
                                     size_t length) {
  PDB_CHECK(length <= 0xffff);
  PDB_CHECK(block_offset_ + kHeaderSize + length <= kBlockSize);

  char header[kHeaderSize];
  // CRC covers the type byte and the payload, so a fragment spliced from
  // another position (same bytes, different type) fails its check.
  uint8_t type_byte = static_cast<uint8_t>(type);
  uint32_t crc = crc32c::Extend(0, reinterpret_cast<const char*>(&type_byte),
                                1);
  crc = crc32c::Mask(crc32c::Extend(crc, data, length));
  header[0] = static_cast<char>(crc & 0xff);
  header[1] = static_cast<char>((crc >> 8) & 0xff);
  header[2] = static_cast<char>((crc >> 16) & 0xff);
  header[3] = static_cast<char>((crc >> 24) & 0xff);
  header[4] = static_cast<char>(length & 0xff);
  header[5] = static_cast<char>((length >> 8) & 0xff);
  header[6] = static_cast<char>(type_byte);

  PDB_RETURN_NOT_OK(dest_->Append(std::string_view(header, kHeaderSize)));
  PDB_RETURN_NOT_OK(dest_->Append(std::string_view(data, length)));
  offset_ += kHeaderSize + length;
  block_offset_ += kHeaderSize + length;
  return Status::OK();
}

LogReader::LogReader(std::string_view contents) : contents_(contents) {}

void LogReader::SetCorruption(std::string message) {
  if (!corruption_) {
    corruption_ = true;
    corruption_message_ = std::move(message);
  }
}

LogReader::Physical LogReader::ReadPhysicalRecord(RecordType* type,
                                                  std::string_view* payload) {
  for (;;) {
    size_t block_left = kBlockSize - cursor_ % kBlockSize;
    if (block_left < kHeaderSize) {
      // Block trailer: must be zero padding (or end of file).
      size_t n = std::min(block_left, contents_.size() - cursor_);
      for (size_t i = 0; i < n; ++i) {
        if (contents_[cursor_ + i] != 0) {
          SetCorruption(StrFormat("nonzero block trailer at offset %llu",
                                  static_cast<unsigned long long>(cursor_)));
          return Physical::kCorrupt;
        }
      }
      cursor_ += n;
      if (cursor_ >= contents_.size()) return Physical::kEof;
      continue;
    }
    if (cursor_ >= contents_.size()) return Physical::kEof;
    size_t file_left = contents_.size() - cursor_;
    if (file_left < kHeaderSize) {
      // Torn header at the tail: a crash mid-append. Clean stop.
      return Physical::kEof;
    }
    const char* header = contents_.data() + cursor_;
    uint32_t expected_crc = DecodeFixed32(header);
    size_t length = static_cast<uint8_t>(header[4]) |
                    (static_cast<size_t>(static_cast<uint8_t>(header[5])) << 8);
    uint8_t type_byte = static_cast<uint8_t>(header[6]);
    if (type_byte == 0 && length == 0 && expected_crc == 0) {
      // Zero padding inside a block (e.g. a file preallocated with zeros or
      // a tail truncated mid-block then zero-extended): treat the rest of
      // the block as trailer.
      size_t n = std::min(block_left, file_left);
      for (size_t i = 0; i < n; ++i) {
        if (contents_[cursor_ + i] != 0) {
          SetCorruption(StrFormat("garbage after zero header at offset %llu",
                                  static_cast<unsigned long long>(cursor_)));
          return Physical::kCorrupt;
        }
      }
      cursor_ += n;
      if (cursor_ >= contents_.size()) return Physical::kEof;
      continue;
    }
    if (type_byte > wal::kMaxRecordType) {
      SetCorruption(StrFormat("unknown record type %u at offset %llu",
                              static_cast<unsigned>(type_byte),
                              static_cast<unsigned long long>(cursor_)));
      return Physical::kCorrupt;
    }
    if (kHeaderSize + length > block_left) {
      SetCorruption(StrFormat("record length %zu overflows block at offset "
                              "%llu",
                              length,
                              static_cast<unsigned long long>(cursor_)));
      return Physical::kCorrupt;
    }
    if (kHeaderSize + length > file_left) {
      // Torn payload at the tail. Clean stop.
      return Physical::kEof;
    }
    const char* data = header + kHeaderSize;
    uint32_t crc = crc32c::Extend(
        0, reinterpret_cast<const char*>(&type_byte), 1);
    crc = crc32c::Mask(crc32c::Extend(crc, data, length));
    if (crc != expected_crc) {
      SetCorruption(StrFormat("checksum mismatch at offset %llu",
                              static_cast<unsigned long long>(cursor_)));
      return Physical::kCorrupt;
    }
    *type = static_cast<RecordType>(type_byte);
    *payload = std::string_view(data, length);
    cursor_ += kHeaderSize + length;
    return Physical::kRecord;
  }
}

bool LogReader::ReadRecord(std::string* record) {
  if (corruption_) return false;
  record->clear();
  bool in_fragmented_record = false;
  for (;;) {
    RecordType type;
    std::string_view payload;
    Physical result = ReadPhysicalRecord(&type, &payload);
    if (result == Physical::kEof) return false;
    if (result == Physical::kCorrupt) return false;
    switch (type) {
      case RecordType::kFull:
        if (in_fragmented_record) {
          SetCorruption("FULL record inside fragmented record");
          return false;
        }
        record->assign(payload.data(), payload.size());
        valid_prefix_ = cursor_;
        return true;
      case RecordType::kFirst:
        if (in_fragmented_record) {
          SetCorruption("FIRST record inside fragmented record");
          return false;
        }
        in_fragmented_record = true;
        record->assign(payload.data(), payload.size());
        break;
      case RecordType::kMiddle:
        if (!in_fragmented_record) {
          SetCorruption("MIDDLE record without FIRST");
          return false;
        }
        record->append(payload.data(), payload.size());
        break;
      case RecordType::kLast:
        if (!in_fragmented_record) {
          SetCorruption("LAST record without FIRST");
          return false;
        }
        record->append(payload.data(), payload.size());
        valid_prefix_ = cursor_;
        return true;
      case RecordType::kZero:
        SetCorruption("zero record type");
        return false;
    }
  }
}

}  // namespace pdb
