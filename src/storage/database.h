/// \file database.h
/// \brief The database catalog: a set of named probabilistic relations.
///
/// A `Database` is the concrete representation of a tuple-independent
/// probabilistic database (paper §2): listing each possible tuple's marginal
/// probability fully determines the distribution over possible worlds.

#ifndef PDB_STORAGE_DATABASE_H_
#define PDB_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/random.h"
#include "util/status.h"

namespace pdb {

/// Catalog of named relations forming one probabilistic database instance.
class Database {
 public:
  /// Registers `relation` under its name. Fails on duplicate names.
  Status AddRelation(Relation relation);

  /// Creates and registers an empty relation.
  Status CreateRelation(const std::string& name, Schema schema);

  bool HasRelation(const std::string& name) const;

  /// Immutable lookup; NotFound if absent.
  Result<const Relation*> Get(const std::string& name) const;

  /// Mutable lookup; NotFound if absent.
  Result<Relation*> GetMutable(const std::string& name);

  /// Names of all relations, sorted.
  std::vector<std::string> RelationNames() const;

  /// All distinct values appearing anywhere in the database, sorted.
  /// This is the active domain used when grounding quantifiers.
  std::vector<Value> ActiveDomain() const;

  /// Total number of stored tuples across relations.
  size_t TupleCount() const;

  /// Samples one possible world: each tuple kept independently with its
  /// probability (Eq. 3 of the paper). The result is a deterministic
  /// database (all probabilities 1).
  Database SampleWorld(Rng* rng) const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace pdb

#endif  // PDB_STORAGE_DATABASE_H_
