/// \file coding.h
/// \brief Little-endian binary encoders/decoders for the durable storage
/// layer (WAL records, snapshot files, the WMC component store).
///
/// The LevelDB coding idiom: fixed-width integers are stored little-endian
/// byte for byte; unsigned varints use 7 bits per byte with the high bit as
/// a continuation flag; strings are length-prefixed with a varint. Decoders
/// take a `std::string_view*` cursor and consume what they parse, returning
/// false (never aborting) on truncated or malformed input — every byte that
/// reaches them may come from a torn or corrupted file.

#ifndef PDB_STORAGE_CODING_H_
#define PDB_STORAGE_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pdb {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline uint32_t DecodeFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

inline bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  *v = DecodeFixed32(in->data());
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  *v = DecodeFixed64(in->data());
  in->remove_prefix(8);
  return true;
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline bool GetVarint64(std::string_view* in, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !in->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(in->front());
    in->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return true;
    }
  }
  return false;  // truncated or > 10 bytes
}

/// ZigZag encoding so small negative ints stay short varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string_view* s) {
  uint64_t len = 0;
  if (!GetVarint64(in, &len)) return false;
  if (in->size() < len) return false;
  *s = in->substr(0, static_cast<size_t>(len));
  in->remove_prefix(static_cast<size_t>(len));
  return true;
}

/// Doubles are stored as their IEEE-754 bit pattern, so a round trip is
/// bit-identical — probabilities and WMC values must survive recovery
/// exactly for cached results and differential oracles to match.
inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

inline bool GetDouble(std::string_view* in, double* v) {
  uint64_t bits = 0;
  if (!GetFixed64(in, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

}  // namespace pdb

#endif  // PDB_STORAGE_CODING_H_
