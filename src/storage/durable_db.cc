#include "storage/durable_db.h"

#include <algorithm>
#include <cinttypes>

#include "storage/coding.h"
#include "util/string_util.h"

namespace pdb {

namespace {

/// WAL operation codes (first byte after the sequence number).
constexpr uint8_t kOpAddRelation = 1;
constexpr uint8_t kOpInsert = 2;

/// Snapshot / component-store record magics (first 4 bytes of a record).
constexpr uint32_t kSnapshotHeaderMagic = 0x50444253;  // "SBDP" LE
constexpr uint32_t kSnapshotFooterMagic = 0x50444245;  // "EBDP" LE
constexpr uint32_t kWmcStoreMagic = 0x31434d57;        // "WMC1" LE
constexpr uint64_t kFormatVersion = 1;

/// Entries per component-store record (bounds record size well under the
/// 32 KiB WAL block).
constexpr size_t kWmcBatch = 512;

constexpr char kWmcStoreName[] = "wmc.store";
constexpr char kWmcStoreTmpName[] = "wmc.store.tmp";

std::string WalName(uint64_t first_seq) {
  return StrFormat("wal-%020" PRIu64 ".log", first_seq);
}

std::string SnapshotName(uint64_t seq) {
  return StrFormat("snap-%020" PRIu64, seq);
}

/// Parses "<prefix><20-digit seq><suffix>"; false on any other shape.
bool ParseSeqName(const std::string& name, const std::string& prefix,
                  const std::string& suffix, uint64_t* seq) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

void EncodeValue(std::string* dst, const Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      PutVarint64(dst, ZigZagEncode(v.AsInt()));
      break;
    case ValueType::kDouble:
      PutDouble(dst, v.AsDouble());
      break;
    case ValueType::kString:
      PutLengthPrefixed(dst, v.AsString());
      break;
  }
}

bool DecodeValue(std::string_view* in, Value* v) {
  if (in->empty()) return false;
  uint8_t tag = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  switch (tag) {
    case 0: {
      uint64_t zz = 0;
      if (!GetVarint64(in, &zz)) return false;
      *v = Value(ZigZagDecode(zz));
      return true;
    }
    case 1: {
      double d = 0;
      if (!GetDouble(in, &d)) return false;
      *v = Value(d);
      return true;
    }
    case 2: {
      std::string_view s;
      if (!GetLengthPrefixed(in, &s)) return false;
      *v = Value(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

void EncodeSchema(std::string* dst, const Schema& schema) {
  PutVarint64(dst, schema.arity());
  for (const Attribute& attr : schema.attributes()) {
    PutLengthPrefixed(dst, attr.name);
    dst->push_back(static_cast<char>(attr.type));
  }
}

bool DecodeSchema(std::string_view* in, Schema* schema) {
  uint64_t arity = 0;
  if (!GetVarint64(in, &arity)) return false;
  std::vector<Attribute> attributes;
  for (uint64_t i = 0; i < arity; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(in, &name)) return false;
    if (in->empty()) return false;
    uint8_t tag = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    if (tag > 2) return false;
    attributes.push_back(
        {std::string(name), static_cast<ValueType>(tag)});
  }
  *schema = Schema(std::move(attributes));
  return true;
}

/// Serializes name + schema + every (tuple, probability) row.
void EncodeRelation(std::string* dst, const Relation& rel) {
  PutLengthPrefixed(dst, rel.name());
  EncodeSchema(dst, rel.schema());
  PutVarint64(dst, rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    const Tuple& tuple = rel.tuple(i);
    for (const Value& v : tuple) EncodeValue(dst, v);
    PutDouble(dst, rel.prob(i));
  }
}

bool DecodeRelation(std::string_view* in, Relation* out) {
  std::string_view name;
  if (!GetLengthPrefixed(in, &name)) return false;
  Schema schema;
  if (!DecodeSchema(in, &schema)) return false;
  size_t arity = schema.arity();
  uint64_t rows = 0;
  if (!GetVarint64(in, &rows)) return false;
  Relation rel(std::string(name), std::move(schema));
  for (uint64_t r = 0; r < rows; ++r) {
    Tuple tuple;
    for (size_t c = 0; c < arity; ++c) {
      Value v;
      if (!DecodeValue(in, &v)) return false;
      tuple.push_back(std::move(v));
    }
    double p = 0;
    if (!GetDouble(in, &p)) return false;
    if (!rel.AddTuple(std::move(tuple), p).ok()) return false;
  }
  *out = std::move(rel);
  return true;
}

// Per-phase cap on wal_append / wal_sync spans kept in the IO trace: the
// first N syncs characterize the latency distribution for /debug/profile
// without letting a long-lived server grow the span vector unboundedly.
constexpr uint64_t kMaxIoSpansPerPhase = 256;

}  // namespace

Result<SyncMode> ParseSyncMode(const std::string& text) {
  if (text == "always") return SyncMode::kAlways;
  if (text == "none") return SyncMode::kNone;
  return Status::InvalidArgument("bad sync mode '" + text +
                                 "' (want always|none)");
}

DurableDatabase::DurableDatabase(std::string data_dir,
                                 const DurableOptions& options)
    : dir_(std::move(data_dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  wal_records_ = metrics_.GetCounter("pdb_wal_records_total");
  wal_bytes_ = metrics_.GetCounter("pdb_wal_bytes_total");
  wal_syncs_ = metrics_.GetCounter("pdb_wal_syncs_total");
  recovery_replayed_ =
      metrics_.GetCounter("pdb_recovery_replayed_records_total");
  recovery_truncations_ =
      metrics_.GetCounter("pdb_recovery_tail_truncations_total");
  checkpoints_ = metrics_.GetCounter("pdb_checkpoints_total");
  wmc_store_spills_ = metrics_.GetCounter("pdb_wmc_store_spills_total");
  wmc_store_loaded_ = metrics_.GetCounter("pdb_wmc_store_loaded_total");
  checkpoint_duration_us_ =
      metrics_.GetCounter("pdb_checkpoint_duration_us_total");
  // Named per convention for fsync-latency histograms; the log2 buckets
  // record MICROSECONDS (a seconds-resolution histogram would collapse
  // every fsync into bucket 0).
  wal_sync_seconds_ = metrics_.GetHistogram("pdb_wal_sync_seconds");
  wmc_store_entries_ = metrics_.GetGauge("pdb_wmc_store_entries");
  last_seq_gauge_ = metrics_.GetGauge("pdb_data_last_seq");
  relations_gauge_ = metrics_.GetGauge("pdb_data_relations");
}

DurableDatabase::~DurableDatabase() { Close(); }

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& data_dir, const DurableOptions& options) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty");
  }
  std::unique_ptr<DurableDatabase> db(
      new DurableDatabase(data_dir, options));
  PDB_RETURN_NOT_OK(db->Recover());
  return db;
}

Status DurableDatabase::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t recover_start = io_trace_.NowNs();
  PDB_RETURN_NOT_OK(env_->CreateDirIfMissing(dir_));
  std::vector<std::string> children;
  {
    auto listed = env_->GetChildren(dir_);
    if (!listed.ok()) return listed.status();
    children = std::move(*listed);
  }

  std::vector<uint64_t> snapshot_seqs;
  std::vector<uint64_t> wal_seqs;
  for (const std::string& name : children) {
    uint64_t seq = 0;
    if (ParseSeqName(name, "snap-", "", &seq)) snapshot_seqs.push_back(seq);
    if (ParseSeqName(name, "wal-", ".log", &seq)) wal_seqs.push_back(seq);
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());  // newest first
  std::sort(wal_seqs.begin(), wal_seqs.end());

  // Newest complete snapshot wins; an incomplete or corrupt one (e.g. a
  // crash mid-checkpoint beat the rename, or damaged it) falls back to the
  // previous, with the skipped file counted.
  for (uint64_t seq : snapshot_seqs) {
    auto loaded = LoadSnapshot(SnapshotName(seq));
    if (loaded.ok()) {
      recovery_.snapshot_seq = seq;
      last_seq_ = seq;
      break;
    }
    ++recovery_.snapshots_skipped;
  }

  // Replay WAL segments in sequence order. A segment named wal-<n> holds
  // records with seq >= n; records at or below the snapshot seq are
  // skipped, a gap or corruption stops replay (everything later is an
  // untrusted suffix).
  bool stop = false;
  for (size_t i = 0; i < wal_seqs.size() && !stop; ++i) {
    // Skip segments that a later segment makes entirely redundant (the
    // next one starts at or below the first sequence still needed); a
    // segment straddling the snapshot boundary is replayed and its
    // covered prefix skipped record by record.
    if (i + 1 < wal_seqs.size() && wal_seqs[i + 1] <= last_seq_ + 1) {
      continue;
    }
    PDB_RETURN_NOT_OK(ReplaySegment(WalName(wal_seqs[i]), &stop));
    ++recovery_.segments_replayed;
  }
  last_synced_seq_ = last_seq_;

  // Start a fresh segment for new appends; old segments stay until the
  // next checkpoint compacts them.
  PDB_RETURN_NOT_OK(RollWalLocked());

  recovery_replayed_->Add(recovery_.replayed_records);
  if (recovery_.tail_truncated) recovery_truncations_->Add(1);
  last_seq_gauge_->Set(static_cast<int64_t>(last_seq_));
  relations_gauge_->Set(
      static_cast<int64_t>(pdb_.database().RelationNames().size()));
  io_trace_.RecordSpan(
      TracePhase::kRecovery, recover_start,
      io_trace_.NowNs() - recover_start,
      {{"replayed_records", recovery_.replayed_records},
       {"segments_replayed", recovery_.segments_replayed}});
  return Status::OK();
}

Result<uint64_t> DurableDatabase::LoadSnapshot(const std::string& name) {
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(JoinPath(dir_, name), &contents));
  LogReader reader(contents);
  std::string record;

  if (!reader.ReadRecord(&record)) {
    return Status::Corruption("snapshot missing header: " + name);
  }
  std::string_view in(record);
  uint32_t magic = 0;
  uint64_t version = 0, seq = 0, relation_count = 0;
  if (!GetFixed32(&in, &magic) || magic != kSnapshotHeaderMagic ||
      !GetVarint64(&in, &version) || version != kFormatVersion ||
      !GetVarint64(&in, &seq) || !GetVarint64(&in, &relation_count)) {
    return Status::Corruption("bad snapshot header: " + name);
  }

  Database db;
  uint64_t relations_read = 0;
  bool complete = false;
  while (reader.ReadRecord(&record)) {
    std::string_view body(record);
    if (record.size() >= 4 &&
        DecodeFixed32(record.data()) == kSnapshotFooterMagic) {
      uint32_t footer_magic = 0;
      uint64_t footer_count = 0;
      if (GetFixed32(&body, &footer_magic) &&
          GetVarint64(&body, &footer_count) &&
          footer_count == relations_read &&
          relations_read == relation_count) {
        complete = true;
      }
      break;
    }
    Relation rel;
    if (!DecodeRelation(&body, &rel) || !body.empty()) {
      return Status::Corruption("bad snapshot relation record: " + name);
    }
    PDB_RETURN_NOT_OK(db.AddRelation(std::move(rel)));
    ++relations_read;
  }
  if (!complete) {
    return Status::Corruption("snapshot incomplete (no valid footer): " +
                              name);
  }
  pdb_.database() = std::move(db);
  pdb_.BumpGeneration();
  return seq;
}

Status DurableDatabase::ReplaySegment(const std::string& name, bool* stop) {
  const std::string path = JoinPath(dir_, name);
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
  LogReader reader(contents);
  std::string record;
  uint64_t applied_prefix = 0;  // file offset after the last applied record
  bool damaged = false;

  while (reader.ReadRecord(&record)) {
    std::string_view in(record);
    uint64_t seq = 0;
    if (!GetVarint64(&in, &seq) || in.empty()) {
      damaged = true;
      break;
    }
    if (seq <= last_seq_) {
      // Covered by the snapshot (segment straddles the boundary).
      applied_prefix = reader.valid_prefix_size();
      continue;
    }
    if (seq != last_seq_ + 1) {
      // Sequence gap: records were lost (e.g. an earlier truncated
      // segment). Nothing after this point can be trusted.
      damaged = true;
      break;
    }
    uint8_t op = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    bool applied = false;
    if (op == kOpAddRelation) {
      Relation rel;
      if (DecodeRelation(&in, &rel) && in.empty()) {
        applied = pdb_.AddRelation(std::move(rel)).ok();
      }
    } else if (op == kOpInsert) {
      std::string_view target;
      uint64_t arity = 0;
      if (GetLengthPrefixed(&in, &target) && GetVarint64(&in, &arity)) {
        Tuple tuple;
        bool decode_ok = true;
        for (uint64_t c = 0; c < arity && decode_ok; ++c) {
          Value v;
          decode_ok = DecodeValue(&in, &v);
          if (decode_ok) tuple.push_back(std::move(v));
        }
        double p = 0;
        if (decode_ok && GetDouble(&in, &p) && in.empty()) {
          auto rel = pdb_.database().GetMutable(std::string(target));
          if (rel.ok()) {
            applied = (*rel)->AddTuple(std::move(tuple), p).ok();
            if (applied) pdb_.BumpGeneration();
          }
        }
      }
    }
    if (!applied) {
      // A CRC-valid record that does not decode or apply: corrupted
      // beyond what framing can detect, or written by a future version.
      // Same policy as framing damage — cut here.
      damaged = true;
      break;
    }
    last_seq_ = seq;
    ++recovery_.replayed_records;
    applied_prefix = reader.valid_prefix_size();
  }
  if (reader.corruption_detected()) damaged = true;

  uint64_t file_size = contents.size();
  if (damaged || applied_prefix < file_size) {
    // Torn or corrupt tail: truncate to the last applied record so the
    // file re-reads cleanly, and stop — later segments are a suffix with
    // a hole in front of them.
    if (applied_prefix < file_size) {
      PDB_RETURN_NOT_OK(env_->TruncateFile(path, applied_prefix));
      recovery_.truncated_bytes += file_size - applied_prefix;
    }
    recovery_.tail_truncated =
        recovery_.tail_truncated || damaged || applied_prefix < file_size;
    *stop = damaged;
  }
  return Status::OK();
}

Status DurableDatabase::RollWalLocked() {
  if (wal_file_) {
    // Make the old segment's contents durable before abandoning the
    // handle; its records may not have been synced under kNone.
    Status status = wal_file_->Sync();
    if (status.ok()) status = wal_file_->Close();
    if (!status.ok()) return status;
  }
  wal_path_ = JoinPath(dir_, WalName(last_seq_ + 1));
  auto file = env_->NewWritableFile(wal_path_);
  if (!file.ok()) return file.status();
  wal_file_ = std::move(*file);
  wal_.emplace(wal_file_.get(), 0);
  return Status::OK();
}

void DurableDatabase::SetIoErrorLocked(const Status& status) {
  if (io_error_.ok()) io_error_ = status;
}

Status DurableDatabase::LogThenApplyLocked(
    std::string payload, const std::function<Status()>& apply) {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (!io_error_.ok()) {
    return Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
  }
  const uint64_t append_start = io_trace_.NowNs();
  Status status = wal_->AddRecord(payload);
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  if (wal_append_spans_.fetch_add(1, std::memory_order_relaxed) <
      kMaxIoSpansPerPhase) {
    io_trace_.RecordSpan(TracePhase::kWalAppend, append_start,
                         io_trace_.NowNs() - append_start,
                         {{"bytes", payload.size()}});
  }
  wal_records_->Add(1);
  wal_bytes_->Add(payload.size());
  if (options_.sync_mode == SyncMode::kAlways) {
    const uint64_t sync_start = io_trace_.NowNs();
    status = wal_file_->Sync();
    if (!status.ok()) {
      SetIoErrorLocked(status);
      return status;
    }
    const uint64_t sync_ns = io_trace_.NowNs() - sync_start;
    wal_sync_seconds_->Record(sync_ns / 1'000);  // microseconds
    if (wal_sync_spans_.fetch_add(1, std::memory_order_relaxed) <
        kMaxIoSpansPerPhase) {
      io_trace_.RecordSpan(TracePhase::kWalSync, sync_start, sync_ns);
    }
    wal_syncs_->Add(1);
  }
  // The write-ahead rule held: the record is on the log (and durable in
  // kAlways). Applying cannot fail for a validated op; if it somehow does,
  // the in-memory and logged states diverge — poison the handle.
  status = apply();
  if (!status.ok()) {
    SetIoErrorLocked(Status::Internal(
        "validated op failed to apply after logging: " + status.ToString()));
    return io_error_;
  }
  ++last_seq_;
  if (options_.sync_mode == SyncMode::kAlways) last_synced_seq_ = last_seq_;
  ++records_since_checkpoint_;
  last_seq_gauge_->Set(static_cast<int64_t>(last_seq_));
  relations_gauge_->Set(
      static_cast<int64_t>(pdb_.database().RelationNames().size()));
  if (options_.checkpoint_every_n > 0 &&
      records_since_checkpoint_ >= options_.checkpoint_every_n) {
    PDB_RETURN_NOT_OK(CheckpointLocked());
  }
  return Status::OK();
}

Status DurableDatabase::AddRelation(Relation relation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pdb_.database().HasRelation(relation.name())) {
    return Status::InvalidArgument("duplicate relation: " + relation.name());
  }
  std::string payload;
  PutVarint64(&payload, last_seq_ + 1);
  payload.push_back(static_cast<char>(kOpAddRelation));
  EncodeRelation(&payload, relation);
  return LogThenApplyLocked(std::move(payload), [&] {
    return pdb_.AddRelation(std::move(relation));
  });
}

Status DurableDatabase::CreateRelation(const std::string& name,
                                       Schema schema) {
  return AddRelation(Relation(name, std::move(schema)));
}

Status DurableDatabase::Insert(const std::string& relation, Tuple tuple,
                               double p) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate fully before logging: an op that cannot apply must never
  // reach the WAL, or replay would diverge from the acknowledged state.
  auto rel = pdb_.database().GetMutable(relation);
  if (!rel.ok()) return rel.status();
  PDB_RETURN_NOT_OK((*rel)->schema().Validate(tuple));
  if ((*rel)->Contains(tuple)) {
    return Status::InvalidArgument("duplicate tuple in " + relation);
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    return Status::OutOfRange("probability outside [0, 1]");
  }
  std::string payload;
  PutVarint64(&payload, last_seq_ + 1);
  payload.push_back(static_cast<char>(kOpInsert));
  PutLengthPrefixed(&payload, relation);
  PutVarint64(&payload, tuple.size());
  for (const Value& v : tuple) EncodeValue(&payload, v);
  PutDouble(&payload, p);
  Relation* target = *rel;
  return LogThenApplyLocked(std::move(payload), [&] {
    Status status = target->AddTuple(std::move(tuple), p);
    if (status.ok()) pdb_.BumpGeneration();
    return status;
  });
}

Status DurableDatabase::CheckpointLocked() {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (!io_error_.ok()) {
    return Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
  }
  const uint64_t seq = last_seq_;
  const uint64_t checkpoint_start = io_trace_.NowNs();
  const std::string final_name = SnapshotName(seq);
  const std::string tmp_path = JoinPath(dir_, final_name + ".tmp");

  auto fail = [&](const Status& status) {
    SetIoErrorLocked(status);
    return status;
  };

  // Write the whole catalog to a temp file, sync, then atomically rename:
  // a crash at any point leaves either the old state or the new snapshot,
  // never a half-written file under the final name.
  {
    auto file = env_->NewWritableFile(tmp_path);
    if (!file.ok()) return fail(file.status());
    LogWriter writer(file->get());

    const Database& db = pdb_.database();
    std::vector<std::string> names = db.RelationNames();
    std::string record;
    PutFixed32(&record, kSnapshotHeaderMagic);
    PutVarint64(&record, kFormatVersion);
    PutVarint64(&record, seq);
    PutVarint64(&record, names.size());
    Status status = writer.AddRecord(record);
    for (const std::string& name : names) {
      if (!status.ok()) break;
      record.clear();
      EncodeRelation(&record, *db.Get(name).value());
      status = writer.AddRecord(record);
    }
    if (status.ok()) {
      record.clear();
      PutFixed32(&record, kSnapshotFooterMagic);
      PutVarint64(&record, names.size());
      status = writer.AddRecord(record);
    }
    if (status.ok()) status = (*file)->Sync();
    if (status.ok()) status = (*file)->Close();
    if (!status.ok()) return fail(status);
  }
  Status renamed = env_->RenameFile(tmp_path, JoinPath(dir_, final_name));
  if (!renamed.ok()) return fail(renamed);

  // The snapshot now covers every logged op: roll a fresh WAL segment and
  // delete the files it made redundant.
  Status status = RollWalLocked();
  if (!status.ok()) return fail(status);
  records_since_checkpoint_ = 0;
  checkpoints_->Add(1);
  const uint64_t checkpoint_ns = io_trace_.NowNs() - checkpoint_start;
  checkpoint_duration_us_->Add(checkpoint_ns / 1'000);
  io_trace_.RecordSpan(TracePhase::kCheckpoint, checkpoint_start,
                       checkpoint_ns, {{"snapshot_seq", seq}});
  last_synced_seq_ = last_seq_;

  // Retention GC: keep the `retain_checkpoints` newest snapshots (the one
  // just written included) and every WAL segment still needed to recover
  // from the *oldest retained* snapshot; delete everything older. A WAL
  // segment starting at sequence s covers ops s..(next segment's start -
  // 1), so — mirroring recovery's replay-skip rule — it is redundant
  // exactly when the next segment starts at or before oldest_retained + 1.
  const size_t retain =
      options_.retain_checkpoints == 0 ? 1 : options_.retain_checkpoints;
  auto children = env_->GetChildren(dir_);
  if (children.ok()) {
    std::vector<uint64_t> snap_seqs;
    std::vector<uint64_t> wal_seqs;
    for (const std::string& name : *children) {
      uint64_t file_seq = 0;
      if (ParseSeqName(name, "snap-", "", &file_seq)) {
        snap_seqs.push_back(file_seq);
      } else if (ParseSeqName(name, "wal-", ".log", &file_seq)) {
        wal_seqs.push_back(file_seq);
      }
    }
    std::sort(snap_seqs.begin(), snap_seqs.end());
    std::sort(wal_seqs.begin(), wal_seqs.end());
    uint64_t oldest_retained = seq;
    if (snap_seqs.size() > retain) {
      oldest_retained = snap_seqs[snap_seqs.size() - retain];
    } else if (!snap_seqs.empty()) {
      oldest_retained = snap_seqs.front();
    }
    for (const std::string& name : *children) {
      uint64_t file_seq = 0;
      bool remove = false;
      if (ParseSeqName(name, "snap-", "", &file_seq)) {
        remove = file_seq < oldest_retained;
      } else if (ParseSeqName(name, "wal-", ".log", &file_seq)) {
        auto it = std::upper_bound(wal_seqs.begin(), wal_seqs.end(),
                                   file_seq);
        remove = it != wal_seqs.end() && *it <= oldest_retained + 1;
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        remove = true;  // stray temp from an interrupted checkpoint
      }
      if (remove) {
        Status removed = env_->RemoveFile(JoinPath(dir_, name));
        if (!removed.ok()) return fail(removed);
      }
    }
  }
  return Status::OK();
}

Status DurableDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status DurableDatabase::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (!io_error_.ok()) return io_error_;
  const uint64_t sync_start = io_trace_.NowNs();
  Status status = wal_file_->Sync();
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  const uint64_t sync_ns = io_trace_.NowNs() - sync_start;
  wal_sync_seconds_->Record(sync_ns / 1'000);  // microseconds
  if (wal_sync_spans_.fetch_add(1, std::memory_order_relaxed) <
      kMaxIoSpansPerPhase) {
    io_trace_.RecordSpan(TracePhase::kWalSync, sync_start, sync_ns);
  }
  wal_syncs_->Add(1);
  last_synced_seq_ = last_seq_;
  return Status::OK();
}

Status DurableDatabase::SpillWmcCache(const WmcCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_error_.ok()) {
    return Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
  }
  std::vector<std::pair<WmcCache::Key, double>> entries = cache.Export();

  const std::string tmp_path = JoinPath(dir_, kWmcStoreTmpName);
  auto file = env_->NewWritableFile(tmp_path);
  if (!file.ok()) {
    SetIoErrorLocked(file.status());
    return file.status();
  }
  LogWriter writer(file->get());
  std::string record;
  PutFixed32(&record, kWmcStoreMagic);
  PutVarint64(&record, kFormatVersion);
  Status status = writer.AddRecord(record);
  for (size_t i = 0; i < entries.size() && status.ok(); i += kWmcBatch) {
    size_t n = std::min(kWmcBatch, entries.size() - i);
    record.clear();
    PutVarint64(&record, n);
    for (size_t j = i; j < i + n; ++j) {
      PutFixed64(&record, entries[j].first.sig.hi);
      PutFixed64(&record, entries[j].first.sig.lo);
      PutFixed64(&record, entries[j].first.weight_fp);
      PutDouble(&record, entries[j].second);
    }
    status = writer.AddRecord(record);
  }
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (status.ok()) {
    status = env_->RenameFile(tmp_path, JoinPath(dir_, kWmcStoreName));
  }
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  wmc_store_spills_->Add(1);
  wmc_store_entries_->Set(static_cast<int64_t>(entries.size()));
  return Status::OK();
}

Result<uint64_t> DurableDatabase::LoadWmcCache(WmcCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = JoinPath(dir_, kWmcStoreName);
  if (!env_->FileExists(path)) return uint64_t{0};
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
  LogReader reader(contents);
  std::string record;
  if (!reader.ReadRecord(&record)) return uint64_t{0};  // empty/torn header
  std::string_view in(record);
  uint32_t magic = 0;
  uint64_t version = 0;
  if (!GetFixed32(&in, &magic) || magic != kWmcStoreMagic ||
      !GetVarint64(&in, &version) || version != kFormatVersion) {
    return Status::Corruption("bad component store header: " + path);
  }
  uint64_t loaded = 0;
  // A torn or corrupt tail just ends the load early: the store is a pure
  // cache, so a valid prefix is as good as the whole file.
  while (reader.ReadRecord(&record)) {
    std::string_view body(record);
    uint64_t n = 0;
    if (!GetVarint64(&body, &n)) break;
    bool ok = true;
    for (uint64_t i = 0; i < n && ok; ++i) {
      WmcCache::Key key;
      double value = 0;
      ok = GetFixed64(&body, &key.sig.hi) && GetFixed64(&body, &key.sig.lo) &&
           GetFixed64(&body, &key.weight_fp) && GetDouble(&body, &value);
      if (ok) {
        cache->Insert(key, value);
        ++loaded;
      }
    }
    if (!ok) break;
  }
  wmc_store_loaded_->Add(loaded);
  wmc_store_entries_->Set(static_cast<int64_t>(loaded));
  return loaded;
}

Status DurableDatabase::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  if (!wal_file_) return Status::OK();
  Status status = wal_file_->Sync();
  if (status.ok()) {
    last_synced_seq_ = last_seq_;
    status = wal_file_->Close();
  }
  wal_.reset();
  wal_file_.reset();
  return status;
}

uint64_t DurableDatabase::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t DurableDatabase::last_synced_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_synced_seq_;
}

}  // namespace pdb
