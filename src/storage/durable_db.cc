#include "storage/durable_db.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>

#include "storage/coding.h"
#include "util/string_util.h"

namespace pdb {

namespace {

/// Snapshot / component-store record magics (first 4 bytes of a record).
constexpr uint32_t kSnapshotHeaderMagic = 0x50444253;  // "SBDP" LE
constexpr uint32_t kSnapshotFooterMagic = 0x50444245;  // "EBDP" LE
constexpr uint32_t kWmcStoreMagic = 0x31434d57;        // "WMC1" LE
constexpr uint64_t kFormatVersion = 1;

/// Entries per component-store record (bounds record size well under the
/// 32 KiB WAL block).
constexpr size_t kWmcBatch = 512;

constexpr char kWmcStoreName[] = "wmc.store";
constexpr char kWmcStoreTmpName[] = "wmc.store.tmp";

std::string WalName(uint64_t first_seq) {
  return StrFormat("wal-%020" PRIu64 ".log", first_seq);
}

std::string SnapshotName(uint64_t seq) {
  return StrFormat("snap-%020" PRIu64, seq);
}

/// Parses "<prefix><20-digit seq><suffix>"; false on any other shape.
bool ParseSeqName(const std::string& name, const std::string& prefix,
                  const std::string& suffix, uint64_t* seq) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.rfind(prefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

void EncodeValue(std::string* dst, const Value& v) {
  dst->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      PutVarint64(dst, ZigZagEncode(v.AsInt()));
      break;
    case ValueType::kDouble:
      PutDouble(dst, v.AsDouble());
      break;
    case ValueType::kString:
      PutLengthPrefixed(dst, v.AsString());
      break;
  }
}

bool DecodeValue(std::string_view* in, Value* v) {
  if (in->empty()) return false;
  uint8_t tag = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  switch (tag) {
    case 0: {
      uint64_t zz = 0;
      if (!GetVarint64(in, &zz)) return false;
      *v = Value(ZigZagDecode(zz));
      return true;
    }
    case 1: {
      double d = 0;
      if (!GetDouble(in, &d)) return false;
      *v = Value(d);
      return true;
    }
    case 2: {
      std::string_view s;
      if (!GetLengthPrefixed(in, &s)) return false;
      *v = Value(std::string(s));
      return true;
    }
    default:
      return false;
  }
}

void EncodeSchema(std::string* dst, const Schema& schema) {
  PutVarint64(dst, schema.arity());
  for (const Attribute& attr : schema.attributes()) {
    PutLengthPrefixed(dst, attr.name);
    dst->push_back(static_cast<char>(attr.type));
  }
}

bool DecodeSchema(std::string_view* in, Schema* schema) {
  uint64_t arity = 0;
  if (!GetVarint64(in, &arity)) return false;
  std::vector<Attribute> attributes;
  for (uint64_t i = 0; i < arity; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(in, &name)) return false;
    if (in->empty()) return false;
    uint8_t tag = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    if (tag > 2) return false;
    attributes.push_back(
        {std::string(name), static_cast<ValueType>(tag)});
  }
  *schema = Schema(std::move(attributes));
  return true;
}

/// Serializes name + schema + every (tuple, probability) row.
void EncodeRelation(std::string* dst, const Relation& rel) {
  PutLengthPrefixed(dst, rel.name());
  EncodeSchema(dst, rel.schema());
  PutVarint64(dst, rel.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    const Tuple& tuple = rel.tuple(i);
    for (const Value& v : tuple) EncodeValue(dst, v);
    PutDouble(dst, rel.prob(i));
  }
}

bool DecodeRelation(std::string_view* in, Relation* out) {
  std::string_view name;
  if (!GetLengthPrefixed(in, &name)) return false;
  Schema schema;
  if (!DecodeSchema(in, &schema)) return false;
  size_t arity = schema.arity();
  uint64_t rows = 0;
  if (!GetVarint64(in, &rows)) return false;
  Relation rel(std::string(name), std::move(schema));
  for (uint64_t r = 0; r < rows; ++r) {
    Tuple tuple;
    for (size_t c = 0; c < arity; ++c) {
      Value v;
      if (!DecodeValue(in, &v)) return false;
      tuple.push_back(std::move(v));
    }
    double p = 0;
    if (!GetDouble(in, &p)) return false;
    if (!rel.AddTuple(std::move(tuple), p).ok()) return false;
  }
  *out = std::move(rel);
  return true;
}

// Per-phase cap on wal_append / wal_sync spans kept in the IO trace: the
// first N syncs characterize the latency distribution for /debug/profile
// without letting a long-lived server grow the span vector unboundedly.
constexpr uint64_t kMaxIoSpansPerPhase = 256;

}  // namespace

Result<SyncMode> ParseSyncMode(const std::string& text) {
  if (text == "always") return SyncMode::kAlways;
  if (text == "none") return SyncMode::kNone;
  return Status::InvalidArgument("bad sync mode '" + text +
                                 "' (want always|none)");
}

void DurableDatabase::EncodeOp(std::string* dst, const WriteBatch::Op& op) {
  dst->push_back(static_cast<char>(op.code));
  if (op.code == kWalOpAddRelation) {
    EncodeRelation(dst, op.relation);
  } else {
    PutLengthPrefixed(dst, op.target);
    PutVarint64(dst, op.tuple.size());
    for (const Value& v : op.tuple) EncodeValue(dst, v);
    PutDouble(dst, op.p);
  }
}

bool DurableDatabase::DecodeOpBody(std::string_view* in, WriteBatch::Op* op) {
  if (op->code == kWalOpAddRelation) {
    return DecodeRelation(in, &op->relation);
  }
  if (op->code == kWalOpInsert) {
    std::string_view target;
    uint64_t arity = 0;
    if (!GetLengthPrefixed(in, &target) || !GetVarint64(in, &arity)) {
      return false;
    }
    op->target = std::string(target);
    for (uint64_t c = 0; c < arity; ++c) {
      Value v;
      if (!DecodeValue(in, &v)) return false;
      op->tuple.push_back(std::move(v));
    }
    return GetDouble(in, &op->p);
  }
  return false;
}

bool DurableDatabase::DecodeOp(std::string_view* in, WriteBatch::Op* op) {
  if (in->empty()) return false;
  op->code = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  if (op->code == kWalOpWriteBatch) return false;  // batches do not nest
  return DecodeOpBody(in, op);
}

DurableDatabase::DurableDatabase(std::string data_dir,
                                 const DurableOptions& options)
    : dir_(std::move(data_dir)),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  wal_records_ = metrics_.GetCounter("pdb_wal_records_total");
  wal_bytes_ = metrics_.GetCounter("pdb_wal_bytes_total");
  wal_syncs_ = metrics_.GetCounter("pdb_wal_syncs_total");
  wal_batch_records_ = metrics_.GetCounter("pdb_wal_batch_records_total");
  wal_batch_mutations_ =
      metrics_.GetCounter("pdb_wal_batch_mutations_total");
  group_commits_ = metrics_.GetCounter("pdb_wal_group_commits_total");
  recovery_replayed_ =
      metrics_.GetCounter("pdb_recovery_replayed_records_total");
  recovery_truncations_ =
      metrics_.GetCounter("pdb_recovery_tail_truncations_total");
  checkpoints_ = metrics_.GetCounter("pdb_checkpoints_total");
  wmc_store_spills_ = metrics_.GetCounter("pdb_wmc_store_spills_total");
  wmc_store_loaded_ = metrics_.GetCounter("pdb_wmc_store_loaded_total");
  checkpoint_duration_us_ =
      metrics_.GetCounter("pdb_checkpoint_duration_us_total");
  // Named per convention for fsync-latency histograms; the log2 buckets
  // record MICROSECONDS (a seconds-resolution histogram would collapse
  // every fsync into bucket 0).
  wal_sync_seconds_ = metrics_.GetHistogram("pdb_wal_sync_seconds");
  // Mutations per commit group: how well fsyncs amortize under load.
  group_size_ = metrics_.GetHistogram("pdb_wal_group_size");
  wmc_store_entries_ = metrics_.GetGauge("pdb_wmc_store_entries");
  last_seq_gauge_ = metrics_.GetGauge("pdb_data_last_seq");
  relations_gauge_ = metrics_.GetGauge("pdb_data_relations");
}

DurableDatabase::~DurableDatabase() { Close(); }

Result<std::unique_ptr<DurableDatabase>> DurableDatabase::Open(
    const std::string& data_dir, const DurableOptions& options) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("data_dir must not be empty");
  }
  std::unique_ptr<DurableDatabase> db(
      new DurableDatabase(data_dir, options));
  PDB_RETURN_NOT_OK(db->Recover());
  if (options.background_checkpoints) {
    db->checkpoint_thread_ =
        std::thread(&DurableDatabase::CheckpointThreadMain, db.get());
  }
  return db;
}

Status DurableDatabase::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t recover_start = io_trace_.NowNs();
  PDB_RETURN_NOT_OK(env_->CreateDirIfMissing(dir_));
  std::vector<std::string> children;
  {
    auto listed = env_->GetChildren(dir_);
    if (!listed.ok()) return listed.status();
    children = std::move(*listed);
  }

  std::vector<uint64_t> snapshot_seqs;
  std::vector<uint64_t> wal_seqs;
  for (const std::string& name : children) {
    uint64_t seq = 0;
    if (ParseSeqName(name, "snap-", "", &seq)) snapshot_seqs.push_back(seq);
    if (ParseSeqName(name, "wal-", ".log", &seq)) wal_seqs.push_back(seq);
  }
  std::sort(snapshot_seqs.rbegin(), snapshot_seqs.rend());  // newest first
  std::sort(wal_seqs.begin(), wal_seqs.end());

  // Newest complete snapshot wins; an incomplete or corrupt one (e.g. a
  // crash mid-checkpoint beat the rename, or damaged it) falls back to the
  // previous, with the skipped file counted.
  for (uint64_t seq : snapshot_seqs) {
    auto loaded = LoadSnapshot(SnapshotName(seq));
    if (loaded.ok()) {
      recovery_.snapshot_seq = seq;
      last_seq_ = seq;
      break;
    }
    ++recovery_.snapshots_skipped;
  }

  // Replay WAL segments in sequence order. A segment named wal-<n> holds
  // records with seq >= n; records at or below the snapshot seq are
  // skipped, a gap or corruption stops replay (everything later is an
  // untrusted suffix).
  bool stop = false;
  for (size_t i = 0; i < wal_seqs.size() && !stop; ++i) {
    // Skip segments that a later segment makes entirely redundant (the
    // next one starts at or below the first sequence still needed); a
    // segment straddling the snapshot boundary is replayed and its
    // covered prefix skipped record by record.
    if (i + 1 < wal_seqs.size() && wal_seqs[i + 1] <= last_seq_ + 1) {
      continue;
    }
    PDB_RETURN_NOT_OK(ReplaySegment(WalName(wal_seqs[i]), &stop));
    ++recovery_.segments_replayed;
  }
  last_synced_seq_ = last_seq_;

  // Start a fresh segment for new appends; old segments stay until the
  // next checkpoint compacts them.
  PDB_RETURN_NOT_OK(RollWalLocked());

  recovery_replayed_->Add(recovery_.replayed_records);
  if (recovery_.tail_truncated) recovery_truncations_->Add(1);
  last_seq_gauge_->Set(static_cast<int64_t>(last_seq_));
  relations_gauge_->Set(
      static_cast<int64_t>(pdb_.database().RelationNames().size()));
  io_trace_.RecordSpan(
      TracePhase::kRecovery, recover_start,
      io_trace_.NowNs() - recover_start,
      {{"replayed_records", recovery_.replayed_records},
       {"segments_replayed", recovery_.segments_replayed}});
  return Status::OK();
}

Result<uint64_t> DurableDatabase::LoadSnapshot(const std::string& name) {
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(JoinPath(dir_, name), &contents));
  LogReader reader(contents);
  std::string record;

  if (!reader.ReadRecord(&record)) {
    return Status::Corruption("snapshot missing header: " + name);
  }
  std::string_view in(record);
  uint32_t magic = 0;
  uint64_t version = 0, seq = 0, relation_count = 0;
  if (!GetFixed32(&in, &magic) || magic != kSnapshotHeaderMagic ||
      !GetVarint64(&in, &version) || version != kFormatVersion ||
      !GetVarint64(&in, &seq) || !GetVarint64(&in, &relation_count)) {
    return Status::Corruption("bad snapshot header: " + name);
  }

  Database db;
  uint64_t relations_read = 0;
  bool complete = false;
  while (reader.ReadRecord(&record)) {
    std::string_view body(record);
    if (record.size() >= 4 &&
        DecodeFixed32(record.data()) == kSnapshotFooterMagic) {
      uint32_t footer_magic = 0;
      uint64_t footer_count = 0;
      if (GetFixed32(&body, &footer_magic) &&
          GetVarint64(&body, &footer_count) &&
          footer_count == relations_read &&
          relations_read == relation_count) {
        complete = true;
      }
      break;
    }
    Relation rel;
    if (!DecodeRelation(&body, &rel) || !body.empty()) {
      return Status::Corruption("bad snapshot relation record: " + name);
    }
    PDB_RETURN_NOT_OK(db.AddRelation(std::move(rel)));
    ++relations_read;
  }
  if (!complete) {
    return Status::Corruption("snapshot incomplete (no valid footer): " +
                              name);
  }
  pdb_.database() = std::move(db);
  pdb_.BumpGeneration();
  return seq;
}

Status DurableDatabase::ReplaySegment(const std::string& name, bool* stop) {
  const std::string path = JoinPath(dir_, name);
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
  LogReader reader(contents);
  std::string record;
  uint64_t applied_prefix = 0;  // file offset after the last applied record
  bool damaged = false;

  while (reader.ReadRecord(&record)) {
    std::string_view in(record);
    uint64_t seq = 0;
    if (!GetVarint64(&in, &seq) || in.empty()) {
      damaged = true;
      break;
    }
    uint8_t code = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);

    // Decode the record into its mutations: one for a legacy single-op
    // record, N for a WriteBatch record. A batch decodes (and below,
    // validates and applies) as a unit — recovery can never surface a
    // prefix of a batch.
    std::vector<WriteBatch::Op> ops;
    bool decode_ok = true;
    if (code == kWalOpWriteBatch) {
      uint64_t count = 0;
      decode_ok = GetVarint64(&in, &count) && count > 0;
      for (uint64_t i = 0; i < count && decode_ok; ++i) {
        WriteBatch::Op op;
        decode_ok = DecodeOp(&in, &op);
        if (decode_ok) ops.push_back(std::move(op));
      }
      decode_ok = decode_ok && in.empty();
    } else {
      WriteBatch::Op op;
      op.code = code;
      decode_ok = DecodeOpBody(&in, &op) && in.empty();
      if (decode_ok) ops.push_back(std::move(op));
    }
    if (!decode_ok) {
      damaged = true;
      break;
    }

    const uint64_t end_seq = seq + ops.size() - 1;
    if (end_seq <= last_seq_) {
      // Covered by the snapshot (segment straddles the boundary).
      // Snapshots are fenced at group boundaries, so a batch is either
      // fully covered or not at all; a straddling batch would fail the
      // gap check below.
      applied_prefix = reader.valid_prefix_size();
      continue;
    }
    if (seq != last_seq_ + 1) {
      // Sequence gap: records were lost (e.g. an earlier truncated
      // segment). Nothing after this point can be trusted.
      damaged = true;
      break;
    }

    // Validate the whole record against the recovered state first (the
    // same checks the commit path ran), then apply. A CRC-valid record
    // that does not validate is corrupted beyond what framing can detect,
    // or written by a future version — same policy as framing damage: cut
    // here, applying none of it.
    PendingState pending;
    bool valid = true;
    for (const WriteBatch::Op& op : ops) {
      if (!ValidateOpLocked(op, &pending).ok()) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      damaged = true;
      break;
    }
    bool applied = true;
    for (WriteBatch::Op& op : ops) {
      if (!ApplyOpLocked(std::move(op)).ok()) {
        applied = false;  // unreachable post-validation; defensive
        break;
      }
    }
    if (!applied) {
      damaged = true;
      break;
    }
    recovery_.replayed_records += ops.size();
    last_seq_ = end_seq;
    applied_prefix = reader.valid_prefix_size();
  }
  if (reader.corruption_detected()) damaged = true;

  uint64_t file_size = contents.size();
  if (damaged || applied_prefix < file_size) {
    // Torn or corrupt tail: truncate to the last applied record so the
    // file re-reads cleanly, and stop — later segments are a suffix with
    // a hole in front of them.
    if (applied_prefix < file_size) {
      PDB_RETURN_NOT_OK(env_->TruncateFile(path, applied_prefix));
      recovery_.truncated_bytes += file_size - applied_prefix;
    }
    recovery_.tail_truncated =
        recovery_.tail_truncated || damaged || applied_prefix < file_size;
    *stop = damaged;
  }
  return Status::OK();
}

Status DurableDatabase::RollWalLocked() {
  if (wal_file_) {
    // Make the old segment's contents durable before abandoning the
    // handle; its records may not have been synced under kNone.
    Status status = wal_file_->Sync();
    if (status.ok()) status = wal_file_->Close();
    if (!status.ok()) return status;
  }
  wal_path_ = JoinPath(dir_, WalName(last_seq_ + 1));
  auto file = env_->NewWritableFile(wal_path_);
  if (!file.ok()) return file.status();
  wal_file_ = std::move(*file);
  wal_.emplace(wal_file_.get(), 0);
  return Status::OK();
}

void DurableDatabase::SetIoErrorLocked(const Status& status) {
  if (io_error_.ok()) io_error_ = status;
}

void DurableDatabase::SetIoError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  SetIoErrorLocked(status);
}

Status DurableDatabase::ValidateOpLocked(const WriteBatch::Op& op,
                                         PendingState* pending) {
  switch (op.code) {
    case kWalOpAddRelation: {
      const std::string& name = op.relation.name();
      if (pdb_.database().HasRelation(name) ||
          pending->new_relations.count(name) != 0) {
        return Status::InvalidArgument("duplicate relation: " + name);
      }
      pending->new_relations.emplace(name, op.relation.schema());
      auto& rows = pending->new_tuples[name];
      for (const Tuple& t : op.relation.tuples()) rows.insert(t);
      return Status::OK();
    }
    case kWalOpInsert: {
      const Schema* schema = nullptr;
      const Relation* live = nullptr;
      auto rel = pdb_.database().Get(op.target);
      if (rel.ok()) {
        live = *rel;
        schema = &live->schema();
      } else {
        auto created = pending->new_relations.find(op.target);
        if (created == pending->new_relations.end()) return rel.status();
        schema = &created->second;
      }
      PDB_RETURN_NOT_OK(schema->Validate(op.tuple));
      auto rows = pending->new_tuples.find(op.target);
      if ((live != nullptr && live->Contains(op.tuple)) ||
          (rows != pending->new_tuples.end() &&
           rows->second.count(op.tuple) != 0)) {
        return Status::InvalidArgument("duplicate tuple in " + op.target);
      }
      if (!(op.p >= 0.0 && op.p <= 1.0)) {
        return Status::OutOfRange("probability outside [0, 1]");
      }
      pending->new_tuples[op.target].insert(op.tuple);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown WAL op code");
  }
}

Status DurableDatabase::ApplyOpLocked(WriteBatch::Op op) {
  if (op.code == kWalOpAddRelation) {
    return pdb_.AddRelation(std::move(op.relation));
  }
  auto rel = pdb_.database().GetMutable(op.target);
  if (!rel.ok()) return rel.status();
  Status status = (*rel)->AddTuple(std::move(op.tuple), op.p);
  if (status.ok()) pdb_.BumpGeneration();
  return status;
}

void DurableDatabase::CommitGroupLocked(const std::vector<Writer*>& group,
                                        bool* want_checkpoint) {
  *want_checkpoint = false;
  if (closed_) {
    Status status = Status::FailedPrecondition("database is closed");
    for (Writer* w : group) w->status = status;
    return;
  }
  if (!io_error_.ok()) {
    Status status = Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
    for (Writer* w : group) w->status = status;
    return;
  }

  // Validate every batch against the catalog plus the accepted effects of
  // the batches ahead of it in the group. A batch with any invalid op is
  // rejected whole — it consumes no sequence numbers, contributes nothing
  // to the log, and later batches are validated as if it never existed.
  // The write-ahead rule holds per batch: an op that cannot apply is never
  // written to the log.
  PendingState pending;
  std::vector<Writer*> accepted;
  for (Writer* w : group) {
    PendingState trial = pending;
    Status status;
    for (const WriteBatch::Op& op : w->batch->ops_) {
      status = ValidateOpLocked(op, &trial);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      pending = std::move(trial);
      accepted.push_back(w);
    } else {
      w->status = status;
    }
  }
  if (accepted.empty()) return;

  // Log: one record per batch (the legacy single-op format when a batch
  // holds exactly one mutation, so old binaries can replay it), then ONE
  // sync for the whole group.
  const uint64_t append_start = io_trace_.NowNs();
  uint64_t next_seq = last_seq_ + 1;
  uint64_t total_mutations = 0;
  uint64_t appended_bytes = 0;
  uint64_t appended_records = 0;
  uint64_t batch_records = 0;
  uint64_t batch_mutations = 0;
  size_t appended_writers = 0;
  Status status;
  for (Writer* w : accepted) {
    const auto& ops = w->batch->ops_;
    std::string payload;
    PutVarint64(&payload, next_seq);
    if (ops.size() == 1) {
      EncodeOp(&payload, ops[0]);
    } else {
      payload.push_back(static_cast<char>(kWalOpWriteBatch));
      PutVarint64(&payload, ops.size());
      for (const WriteBatch::Op& op : ops) EncodeOp(&payload, op);
    }
    status = wal_->AddRecord(payload);
    if (!status.ok()) break;
    ++appended_writers;
    if (ops.size() > 1) {
      ++batch_records;
      batch_mutations += ops.size();
    }
    appended_bytes += payload.size();
    ++appended_records;
    next_seq += ops.size();
    total_mutations += ops.size();
  }
  if (!status.ok()) {
    SetIoErrorLocked(status);
    // Writers at or past the failure point fail truthfully: their record
    // is absent or torn, and recovery truncates a torn tail. But records
    // appended BEFORE the failing one are complete CRC-valid records that
    // recovery WILL replay — those writers must be carried through the
    // group's sync and apply and answered as committed, or a write whose
    // "error" the client retries would silently reappear after restart.
    for (size_t i = appended_writers; i < accepted.size(); ++i) {
      accepted[i]->status = status;
    }
    if (appended_writers == 0) return;
    accepted.resize(appended_writers);
  }
  if (wal_append_spans_.fetch_add(1, std::memory_order_relaxed) <
      kMaxIoSpansPerPhase) {
    io_trace_.RecordSpan(TracePhase::kWalAppend, append_start,
                         io_trace_.NowNs() - append_start,
                         {{"bytes", appended_bytes}});
  }
  wal_records_->Add(appended_records);
  wal_bytes_->Add(appended_bytes);
  wal_batch_records_->Add(batch_records);
  wal_batch_mutations_->Add(batch_mutations);
  group_commits_->Add(1);
  group_size_->Record(total_mutations);

  if (options_.sync_mode == SyncMode::kAlways) {
    const uint64_t sync_start = io_trace_.NowNs();
    status = wal_file_->Sync();
    if (!status.ok()) {
      SetIoErrorLocked(status);
      for (Writer* w : accepted) w->status = status;
      return;
    }
    const uint64_t sync_ns = io_trace_.NowNs() - sync_start;
    wal_sync_seconds_->Record(sync_ns / 1'000);  // microseconds
    if (wal_sync_spans_.fetch_add(1, std::memory_order_relaxed) <
        kMaxIoSpansPerPhase) {
      io_trace_.RecordSpan(TracePhase::kWalSync, sync_start, sync_ns);
    }
    wal_syncs_->Add(1);
  }

  // The write-ahead rule held: every accepted batch is on the log (and
  // durable in kAlways). Applying cannot fail for a validated op; if it
  // somehow does, the in-memory and logged states diverge — poison the
  // handle and fail the rest of the group. The apply step is the one
  // place the shared ProbDatabase mutates while queries may be scanning
  // it, so it runs under the exclusive side of read_mutex(); the WAL
  // append and sync above deliberately do not.
  bool poisoned = false;
  {
    std::unique_lock<std::shared_mutex> apply_lock(apply_mu_);
    for (Writer* w : accepted) {
      if (poisoned) {
        w->status = io_error_;
        continue;
      }
      for (const WriteBatch::Op& op : w->batch->ops_) {
        Status applied = ApplyOpLocked(op);
        if (!applied.ok()) {
          SetIoErrorLocked(Status::Internal(
              "validated op failed to apply after logging: " +
              applied.ToString()));
          w->status = io_error_;
          poisoned = true;
          break;
        }
      }
      if (!poisoned) {
        last_seq_ += w->batch->ops_.size();
        records_since_checkpoint_ += w->batch->ops_.size();
      }
    }
  }
  if (options_.sync_mode == SyncMode::kAlways) last_synced_seq_ = last_seq_;
  last_seq_gauge_->Set(static_cast<int64_t>(last_seq_));
  relations_gauge_->Set(
      static_cast<int64_t>(pdb_.database().RelationNames().size()));
  // io_error_ set above (a mid-group append failure whose prefix still
  // committed) suppresses the trigger: the checkpoint would fail on the
  // read-only handle and, inline, overwrite the prefix's success.
  if (!poisoned && io_error_.ok() && options_.checkpoint_every_n > 0 &&
      records_since_checkpoint_ >= options_.checkpoint_every_n) {
    *want_checkpoint = true;
  }
}

Status DurableDatabase::CommitBatch(WriteBatch* batch) {
  if (batch->ops_.empty()) return Status::OK();
  Writer writer(batch);
  inflight_writers_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> queue_lock(writers_mu_);
  writers_.push_back(&writer);
  writers_cv_.wait(queue_lock,
                   [&] { return writer.done || writers_.front() == &writer; });
  if (writer.done) {
    inflight_writers_.fetch_sub(1, std::memory_order_relaxed);
    return writer.status;
  }

  // Group-commit window (PostgreSQL commit_delay shape): other writers are
  // mid-commit but not yet queued — sleep out the window so they join this
  // group and share its single sync. The wait is unconditional once
  // entered (an early exit on "everyone is queued" misfires: the in-flight
  // count transiently dips while a committed writer hands back, shrinking
  // groups); it releases the queue lock so stragglers can enqueue behind
  // the leader. A lone writer skips the window entirely.
  if (options_.group_commit_window_us > 0 &&
      options_.sync_mode == SyncMode::kAlways &&
      writers_.size() < inflight_writers_.load(std::memory_order_relaxed)) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(options_.group_commit_window_us);
    while (writers_cv_.wait_until(queue_lock, deadline) !=
           std::cv_status::timeout) {
    }
  }

  // Leader (RocksDB JoinBatchGroup shape): adopt every writer currently
  // queued — self included — as one commit group, then log/sync/apply it
  // under mu_ without holding the queue lock, so new arrivals enqueue
  // behind and form the next group.
  std::vector<Writer*> group(writers_.begin(), writers_.end());
  queue_lock.unlock();

  bool want_checkpoint = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CommitGroupLocked(group, &want_checkpoint);
  }
  if (want_checkpoint) {
    if (options_.background_checkpoints) {
      RequestBackgroundCheckpoint();
    } else {
      // Inline (deterministic) mode: the triggering group pays for the
      // checkpoint, and a failure is reported to every writer whose
      // commit otherwise succeeded — matching the old synchronous path.
      Status status = DoCheckpoint(/*only_if_dirty=*/true);
      if (!status.ok()) {
        for (Writer* w : group) {
          if (w->status.ok()) w->status = status;
        }
      }
    }
  }

  queue_lock.lock();
  writers_.erase(writers_.begin(), writers_.begin() + group.size());
  for (Writer* w : group) w->done = true;
  Status result = writer.status;
  queue_lock.unlock();
  writers_cv_.notify_all();
  inflight_writers_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Status DurableDatabase::AddRelation(Relation relation) {
  WriteBatch batch;
  batch.AddRelation(std::move(relation));
  return CommitBatch(&batch);
}

Status DurableDatabase::CreateRelation(const std::string& name,
                                       Schema schema) {
  return AddRelation(Relation(name, std::move(schema)));
}

Status DurableDatabase::Insert(const std::string& relation, Tuple tuple,
                               double p) {
  WriteBatch batch;
  batch.Insert(relation, std::move(tuple), p);
  return CommitBatch(&batch);
}

Status DurableDatabase::ApplyBatch(WriteBatch* batch) {
  return CommitBatch(batch);
}

Status DurableDatabase::InsertMany(
    const std::string& relation,
    std::vector<std::pair<Tuple, double>> rows) {
  WriteBatch batch;
  for (auto& [tuple, p] : rows) {
    batch.Insert(relation, std::move(tuple), p);
  }
  return CommitBatch(&batch);
}

Status DurableDatabase::PrepareCheckpointLocked(CheckpointFence* fence) {
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (!io_error_.ok()) {
    return Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
  }
  fence->seq = last_seq_;

  // Serialize the catalog to records in memory — the only work that has
  // to happen under the commit mutex. The file I/O happens off-lock in
  // WriteCheckpointFence while writers keep committing.
  const Database& db = pdb_.database();
  std::vector<std::string> names = db.RelationNames();
  std::string record;
  PutFixed32(&record, kSnapshotHeaderMagic);
  PutVarint64(&record, kFormatVersion);
  PutVarint64(&record, fence->seq);
  PutVarint64(&record, names.size());
  fence->records.push_back(std::move(record));
  for (const std::string& name : names) {
    record.clear();
    EncodeRelation(&record, *db.Get(name).value());
    fence->records.push_back(std::move(record));
  }
  record.clear();
  PutFixed32(&record, kSnapshotFooterMagic);
  PutVarint64(&record, names.size());
  fence->records.push_back(std::move(record));

  // Roll a fresh segment: writers resume on it immediately, and the sync
  // inside the roll makes everything up to the fence durable — so the
  // fence advances last_synced_seq_ even under kNone. Crash-safe at every
  // point: until the snapshot file is renamed into place below, the old
  // snapshot plus the full segment chain still recovers this exact state.
  Status status = RollWalLocked();
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  records_since_checkpoint_ = 0;
  last_synced_seq_ = last_seq_;
  return Status::OK();
}

Status DurableDatabase::WriteCheckpointFence(CheckpointFence fence) {
  const uint64_t seq = fence.seq;
  const uint64_t checkpoint_start = io_trace_.NowNs();
  const std::string final_name = SnapshotName(seq);
  const std::string tmp_path = JoinPath(dir_, final_name + ".tmp");

  auto fail = [&](const Status& status) {
    SetIoError(status);
    return status;
  };

  // Write the fenced catalog to a temp file, sync, then atomically
  // rename: a crash at any point leaves either the old state or the new
  // snapshot, never a half-written file under the final name.
  {
    auto file = env_->NewWritableFile(tmp_path);
    if (!file.ok()) return fail(file.status());
    LogWriter writer(file->get());
    Status status;
    for (const std::string& record : fence.records) {
      status = writer.AddRecord(record);
      if (!status.ok()) break;
    }
    if (status.ok()) status = (*file)->Sync();
    if (status.ok()) status = (*file)->Close();
    if (!status.ok()) return fail(status);
  }
  Status renamed = env_->RenameFile(tmp_path, JoinPath(dir_, final_name));
  if (!renamed.ok()) return fail(renamed);

  checkpoints_->Add(1);
  const uint64_t checkpoint_ns = io_trace_.NowNs() - checkpoint_start;
  checkpoint_duration_us_->Add(checkpoint_ns / 1'000);
  io_trace_.RecordSpan(TracePhase::kCheckpoint, checkpoint_start,
                       checkpoint_ns, {{"snapshot_seq", seq}});

  // Retention GC: keep the `retain_checkpoints` newest snapshots (the one
  // just written included) and every WAL segment still needed to recover
  // from the *oldest retained* snapshot; delete everything older. A WAL
  // segment starting at sequence s covers ops s..(next segment's start -
  // 1), so — mirroring recovery's replay-skip rule — it is redundant
  // exactly when the next segment starts at or before oldest_retained + 1.
  const size_t retain =
      options_.retain_checkpoints == 0 ? 1 : options_.retain_checkpoints;
  auto children = env_->GetChildren(dir_);
  if (children.ok()) {
    std::vector<uint64_t> snap_seqs;
    std::vector<uint64_t> wal_seqs;
    for (const std::string& name : *children) {
      uint64_t file_seq = 0;
      if (ParseSeqName(name, "snap-", "", &file_seq)) {
        snap_seqs.push_back(file_seq);
      } else if (ParseSeqName(name, "wal-", ".log", &file_seq)) {
        wal_seqs.push_back(file_seq);
      }
    }
    std::sort(snap_seqs.begin(), snap_seqs.end());
    std::sort(wal_seqs.begin(), wal_seqs.end());
    uint64_t oldest_retained = seq;
    if (snap_seqs.size() > retain) {
      oldest_retained = snap_seqs[snap_seqs.size() - retain];
    } else if (!snap_seqs.empty()) {
      oldest_retained = snap_seqs.front();
    }
    for (const std::string& name : *children) {
      uint64_t file_seq = 0;
      bool remove = false;
      if (ParseSeqName(name, "snap-", "", &file_seq)) {
        remove = file_seq < oldest_retained;
      } else if (ParseSeqName(name, "wal-", ".log", &file_seq)) {
        auto it = std::upper_bound(wal_seqs.begin(), wal_seqs.end(),
                                   file_seq);
        remove = it != wal_seqs.end() && *it <= oldest_retained + 1;
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        remove = true;  // stray temp from an interrupted checkpoint
      }
      if (remove) {
        Status removed = env_->RemoveFile(JoinPath(dir_, name));
        if (!removed.ok()) return fail(removed);
      }
    }
  }
  return Status::OK();
}

Status DurableDatabase::DoCheckpoint(bool only_if_dirty) {
  // checkpoint_mu_ orders concurrent checkpoints (explicit, auto,
  // background) so fences hit the disk in fence order. It is never taken
  // while holding mu_, so writers are only ever blocked for the fence.
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  CheckpointFence fence;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (only_if_dirty && records_since_checkpoint_ == 0) {
      return Status::OK();
    }
    PDB_RETURN_NOT_OK(PrepareCheckpointLocked(&fence));
  }
  return WriteCheckpointFence(std::move(fence));
}

Status DurableDatabase::Checkpoint() {
  return DoCheckpoint(/*only_if_dirty=*/false);
}

void DurableDatabase::RequestBackgroundCheckpoint() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_checkpoint_requested_ = true;
  }
  bg_cv_.notify_all();
}

void DurableDatabase::CheckpointThreadMain() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  for (;;) {
    bg_cv_.wait(lock,
                [&] { return bg_checkpoint_requested_ || bg_stop_; });
    if (bg_stop_) return;
    bg_checkpoint_requested_ = false;
    lock.unlock();
    // Failures latch io_error_ inside; nothing more to do with the status
    // here (the next writer observes the read-only condition).
    Status status = DoCheckpoint(/*only_if_dirty=*/true);
    (void)status;
    lock.lock();
  }
}

Status DurableDatabase::SyncWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::FailedPrecondition("database is closed");
  if (!io_error_.ok()) return io_error_;
  const uint64_t sync_start = io_trace_.NowNs();
  Status status = wal_file_->Sync();
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  const uint64_t sync_ns = io_trace_.NowNs() - sync_start;
  wal_sync_seconds_->Record(sync_ns / 1'000);  // microseconds
  if (wal_sync_spans_.fetch_add(1, std::memory_order_relaxed) <
      kMaxIoSpansPerPhase) {
    io_trace_.RecordSpan(TracePhase::kWalSync, sync_start, sync_ns);
  }
  wal_syncs_->Add(1);
  last_synced_seq_ = last_seq_;
  return Status::OK();
}

Status DurableDatabase::SpillWmcCache(const WmcCache& cache) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!io_error_.ok()) {
    return Status::FailedPrecondition(
        "database is read-only after an I/O error: " + io_error_.ToString());
  }
  std::vector<std::pair<WmcCache::Key, double>> entries = cache.Export();

  const std::string tmp_path = JoinPath(dir_, kWmcStoreTmpName);
  auto file = env_->NewWritableFile(tmp_path);
  if (!file.ok()) {
    SetIoErrorLocked(file.status());
    return file.status();
  }
  LogWriter writer(file->get());
  std::string record;
  PutFixed32(&record, kWmcStoreMagic);
  PutVarint64(&record, kFormatVersion);
  Status status = writer.AddRecord(record);
  for (size_t i = 0; i < entries.size() && status.ok(); i += kWmcBatch) {
    size_t n = std::min(kWmcBatch, entries.size() - i);
    record.clear();
    PutVarint64(&record, n);
    for (size_t j = i; j < i + n; ++j) {
      PutFixed64(&record, entries[j].first.sig.hi);
      PutFixed64(&record, entries[j].first.sig.lo);
      PutFixed64(&record, entries[j].first.weight_fp);
      PutDouble(&record, entries[j].second);
    }
    status = writer.AddRecord(record);
  }
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (status.ok()) {
    status = env_->RenameFile(tmp_path, JoinPath(dir_, kWmcStoreName));
  }
  if (!status.ok()) {
    SetIoErrorLocked(status);
    return status;
  }
  wmc_store_spills_->Add(1);
  wmc_store_entries_->Set(static_cast<int64_t>(entries.size()));
  return Status::OK();
}

Result<uint64_t> DurableDatabase::LoadWmcCache(WmcCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = JoinPath(dir_, kWmcStoreName);
  if (!env_->FileExists(path)) return uint64_t{0};
  std::string contents;
  PDB_RETURN_NOT_OK(env_->ReadFileToString(path, &contents));
  LogReader reader(contents);
  std::string record;
  if (!reader.ReadRecord(&record)) return uint64_t{0};  // empty/torn header
  std::string_view in(record);
  uint32_t magic = 0;
  uint64_t version = 0;
  if (!GetFixed32(&in, &magic) || magic != kWmcStoreMagic ||
      !GetVarint64(&in, &version) || version != kFormatVersion) {
    return Status::Corruption("bad component store header: " + path);
  }
  uint64_t loaded = 0;
  // A torn or corrupt tail just ends the load early: the store is a pure
  // cache, so a valid prefix is as good as the whole file.
  while (reader.ReadRecord(&record)) {
    std::string_view body(record);
    uint64_t n = 0;
    if (!GetVarint64(&body, &n)) break;
    bool ok = true;
    for (uint64_t i = 0; i < n && ok; ++i) {
      WmcCache::Key key;
      double value = 0;
      ok = GetFixed64(&body, &key.sig.hi) && GetFixed64(&body, &key.sig.lo) &&
           GetFixed64(&body, &key.weight_fp) && GetDouble(&body, &value);
      if (ok) {
        cache->Insert(key, value);
        ++loaded;
      }
    }
    if (!ok) break;
  }
  wmc_store_loaded_->Add(loaded);
  wmc_store_entries_->Set(static_cast<int64_t>(loaded));
  return loaded;
}

Status DurableDatabase::Close() {
  // Stop the background checkpoint thread first; it takes mu_ itself, so
  // the join must happen before this thread holds it.
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return Status::OK();
  closed_ = true;
  if (!wal_file_) return Status::OK();
  Status status = wal_file_->Sync();
  if (status.ok()) {
    last_synced_seq_ = last_seq_;
    status = wal_file_->Close();
  }
  wal_.reset();
  wal_file_.reset();
  return status;
}

uint64_t DurableDatabase::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

uint64_t DurableDatabase::last_synced_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_synced_seq_;
}

}  // namespace pdb
