/// \file trace.h
/// \brief Per-query phase tracing: RAII spans over the parse → safety/lift →
/// lineage → compile → DPLL / Monte Carlo pipeline.
///
/// The paper's central story (Suciu, PODS 2020) is that the *same* query can
/// be polynomial via lifted inference or exponential via grounded WMC; a
/// `QueryTrace` makes the regime visible per query: each pipeline phase
/// records a steady-clock span plus its counters (decisions, samples,
/// separator groundings, ...), and the finished trace rides on the
/// `QueryAnswer` and in the session's ring buffer of recent traces for
/// postmortems.
///
/// Tracing is opt-in (`QueryOptions::trace`) and adds work only when a trace
/// is attached to the `ExecContext`: `TraceSpan` against a null trace is
/// inert (two pointer stores), so the untraced hot path stays at its
/// always-on-counter cost. A trace may receive spans from several threads
/// concurrently (per-tuple fan-out, parallel components); recording takes a
/// short internal mutex, acceptable because tracing is opt-in.

#ifndef PDB_OBS_TRACE_H_
#define PDB_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pdb {

/// Pipeline phases a span can cover.
enum class TracePhase {
  kParse,        ///< query text -> FO sentence / SQL AST
  kSafetyCheck,  ///< a lifted attempt that failed Unsupported (= unsafe)
  kLifted,       ///< successful lifted (extensional) inference
  kLineage,      ///< grounding the sentence into a Boolean lineage
  kCompile,      ///< SQL -> CQ compilation against the catalog
  kDpll,         ///< exact grounded WMC (DPLL search)
  kMonteCarlo,   ///< sampling fallback (naive MC or Karp-Luby)
  kCacheProbe,   ///< session result-cache lookup
  kWalAppend,    ///< write-ahead-log record append (durable storage)
  kWalSync,      ///< WAL fsync
  kCheckpoint,   ///< snapshot write + WAL roll + retention GC
  kRecovery,     ///< recovery replay during DurableDatabase::Open
  kAdmissionWait,  ///< queueing for an admission slot (server)
  kHttpParse,    ///< reading + parsing the HTTP request off the socket
  kHttpRespond,  ///< rendering + writing the HTTP response
};
inline constexpr size_t kNumTracePhases = 15;

const char* TracePhaseName(TracePhase phase);

/// Inverse of TracePhaseName. Returns false when `name` is not a phase.
bool TracePhaseFromName(std::string_view name, TracePhase* phase);

/// The recorded trace of one query execution. Create before the first
/// phase, `Finish()` when the query completes; spans in between come from
/// `TraceSpan`. All methods are thread-safe.
class QueryTrace {
 public:
  using Clock = std::chrono::steady_clock;

  struct SpanCounter {
    std::string name;
    uint64_t value = 0;
  };

  /// One completed phase span. Times are nanoseconds relative to the
  /// trace's creation.
  struct Span {
    TracePhase phase = TracePhase::kParse;
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
    std::vector<SpanCounter> counters;
  };

  QueryTrace() : epoch_(Clock::now()) {}
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Latches the end-to-end duration. Idempotent (first call wins).
  void Finish();

  /// End-to-end nanoseconds: creation to `Finish()`, or to now while the
  /// query is still running.
  uint64_t total_ns() const;

  /// Completed spans, ordered by start time.
  std::vector<Span> spans() const;

  /// Total nanoseconds spent in `phase` (sum over its spans).
  uint64_t PhaseNs(TracePhase phase) const;

  /// Nanoseconds since the trace's creation on its steady clock. Pair with
  /// `RecordSpan` to note a start before the span's phase is known (e.g.
  /// the server marks request arrival, then records the parse span only
  /// once the request line has actually been read).
  uint64_t NowNs() const { return SinceEpochNs(); }

  /// Records an already-elapsed span retroactively: `[start_ns,
  /// start_ns + duration_ns)` on the trace's own clock (see `NowNs`).
  /// For phases whose extent is only known after the fact; live phases
  /// should prefer the RAII `TraceSpan`.
  void RecordSpan(TracePhase phase, uint64_t start_ns, uint64_t duration_ns,
                  std::vector<SpanCounter> counters = {});

  /// Sum over spans not strictly contained in any other span — the
  /// per-phase breakdown of the end-to-end latency (nested spans, e.g. the
  /// per-tuple phases inside a fan-out, are excluded so nothing is counted
  /// twice).
  uint64_t TopLevelNs() const;

  /// Human-readable rendering: one line per span, indented by nesting
  /// depth, with counters. E.g.
  ///   dpll          12.381ms  (decisions=40960, cache_hits=512)
  std::string ToString() const;

 private:
  friend class TraceSpan;

  void AddSpan(Span span);
  uint64_t SinceEpochNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             epoch_)
            .count());
  }

  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;     // guarded by mu_
  uint64_t total_ns_ = 0;       // guarded by mu_
  bool finished_ = false;       // guarded by mu_
};

/// The plain data of a trace, decoupled from the live clock: what survives
/// a round trip through JSON. `FromTrace` snapshots a (finished or still
/// running) QueryTrace.
struct TraceData {
  uint64_t total_ns = 0;
  /// Spans ordered by start time (the order `QueryTrace::spans()` yields).
  std::vector<QueryTrace::Span> spans;

  static TraceData FromTrace(const QueryTrace& trace);

  /// {"total_ns":N,"spans":[{"phase":"dpll","start_ns":N,"duration_ns":N,
  /// "counters":[{"name":"decisions","value":N}]},...]}
  std::string ToJson() const;
};

/// JSON rendering of a trace (shorthand for FromTrace(...).ToJson()),
/// reused by the server's /debug/traces endpoint.
std::string TraceToJson(const QueryTrace& trace);

/// Parses `ToJson` output back into a TraceData. Strict: unknown phases,
/// missing fields, or malformed JSON are InvalidArgument.
Result<TraceData> TraceFromJson(const std::string& json);

/// RAII span: notes the start on construction, records the completed span
/// into the trace on destruction (or an explicit `End()`). A null trace
/// makes every operation a no-op, so call sites need no branches.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, TracePhase phase) : trace_(trace) {
    if (trace_ == nullptr) return;
    span_.phase = phase;
    span_.start_ns = trace_->SinceEpochNs();
  }
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Reclassifies the span before it ends (e.g. a lifted attempt that
  /// failed Unsupported becomes the safety check).
  void SetPhase(TracePhase phase) {
    if (trace_) span_.phase = phase;
  }

  /// Attaches a named counter to the span.
  void AddCounter(std::string name, uint64_t value) {
    if (trace_) span_.counters.push_back({std::move(name), value});
  }

  /// Records the span now; later calls (and the destructor) do nothing.
  void End() {
    if (trace_ == nullptr) return;
    span_.duration_ns = trace_->SinceEpochNs() - span_.start_ns;
    trace_->AddSpan(std::move(span_));
    trace_ = nullptr;
  }

 private:
  QueryTrace* trace_;
  QueryTrace::Span span_;
};

}  // namespace pdb

#endif  // PDB_OBS_TRACE_H_
