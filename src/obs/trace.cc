#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace pdb {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kParse:
      return "parse";
    case TracePhase::kSafetyCheck:
      return "safety_check";
    case TracePhase::kLifted:
      return "lifted";
    case TracePhase::kLineage:
      return "lineage";
    case TracePhase::kCompile:
      return "compile";
    case TracePhase::kDpll:
      return "dpll";
    case TracePhase::kMonteCarlo:
      return "monte_carlo";
    case TracePhase::kCacheProbe:
      return "cache_probe";
    case TracePhase::kWalAppend:
      return "wal_append";
    case TracePhase::kWalSync:
      return "wal_sync";
    case TracePhase::kCheckpoint:
      return "checkpoint";
    case TracePhase::kRecovery:
      return "recovery";
    case TracePhase::kAdmissionWait:
      return "admission_wait";
    case TracePhase::kHttpParse:
      return "http_parse";
    case TracePhase::kHttpRespond:
      return "http_respond";
  }
  return "?";
}

bool TracePhaseFromName(std::string_view name, TracePhase* phase) {
  for (size_t i = 0; i < kNumTracePhases; ++i) {
    TracePhase candidate = static_cast<TracePhase>(i);
    if (name == TracePhaseName(candidate)) {
      *phase = candidate;
      return true;
    }
  }
  return false;
}

void QueryTrace::Finish() {
  uint64_t now = SinceEpochNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  total_ns_ = now;
}

uint64_t QueryTrace::total_ns() const {
  uint64_t now = SinceEpochNs();
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ ? total_ns_ : now;
}

void QueryTrace::AddSpan(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void QueryTrace::RecordSpan(TracePhase phase, uint64_t start_ns,
                            uint64_t duration_ns,
                            std::vector<SpanCounter> counters) {
  Span span;
  span.phase = phase;
  span.start_ns = start_ns;
  span.duration_ns = duration_ns;
  span.counters = std::move(counters);
  AddSpan(std::move(span));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    // Longer span first on equal starts, so a parent precedes the children
    // it immediately encloses.
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                    : a.duration_ns > b.duration_ns;
  });
  return out;
}

uint64_t QueryTrace::PhaseNs(TracePhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Span& span : spans_) {
    if (span.phase == phase) total += span.duration_ns;
  }
  return total;
}

namespace {

/// True when `inner` lies strictly inside `outer` (a recorded sub-phase —
/// e.g. an inner per-tuple query's DPLL span inside the fan-out window).
bool Contains(const QueryTrace::Span& outer, const QueryTrace::Span& inner) {
  if (&outer == &inner) return false;
  uint64_t outer_end = outer.start_ns + outer.duration_ns;
  uint64_t inner_end = inner.start_ns + inner.duration_ns;
  if (inner.start_ns < outer.start_ns || inner_end > outer_end) return false;
  // Identical intervals (zero-width or exact ties) count as not nested.
  return !(inner.start_ns == outer.start_ns && inner_end == outer_end);
}

}  // namespace

uint64_t QueryTrace::TopLevelNs() const {
  std::vector<Span> sorted = spans();
  uint64_t total = 0;
  for (const Span& span : sorted) {
    bool nested = false;
    for (const Span& other : sorted) {
      if (Contains(other, span)) {
        nested = true;
        break;
      }
    }
    if (!nested) total += span.duration_ns;
  }
  return total;
}

std::string QueryTrace::ToString() const {
  std::vector<Span> sorted = spans();
  std::string out = StrFormat("query trace: %.3fms total\n",
                              static_cast<double>(total_ns()) / 1e6);
  for (size_t i = 0; i < sorted.size(); ++i) {
    size_t depth = 0;
    for (const Span& other : sorted) {
      if (Contains(other, sorted[i])) ++depth;
    }
    std::string indent(2 * (depth + 1), ' ');
    out += StrFormat("%s%-13s %9.3fms", indent.c_str(),
                     TracePhaseName(sorted[i].phase),
                     static_cast<double>(sorted[i].duration_ns) / 1e6);
    if (!sorted[i].counters.empty()) {
      out += "  (";
      for (size_t c = 0; c < sorted[i].counters.size(); ++c) {
        out += StrFormat("%s%s=%llu", c == 0 ? "" : ", ",
                         sorted[i].counters[c].name.c_str(),
                         static_cast<unsigned long long>(
                             sorted[i].counters[c].value));
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

TraceData TraceData::FromTrace(const QueryTrace& trace) {
  TraceData data;
  data.total_ns = trace.total_ns();
  data.spans = trace.spans();
  return data;
}

std::string TraceData::ToJson() const {
  // Counter names come from engine call sites and are ASCII identifiers, so
  // escaping only needs the JSON specials.
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += StrFormat("\\u%04x", c);
      } else {
        out.push_back(c);
      }
    }
    return out;
  };
  std::string out = StrFormat("{\"total_ns\":%llu,\"spans\":[",
                              static_cast<unsigned long long>(total_ns));
  for (size_t i = 0; i < spans.size(); ++i) {
    const QueryTrace::Span& span = spans[i];
    out += StrFormat(
        "%s{\"phase\":\"%s\",\"start_ns\":%llu,\"duration_ns\":%llu,"
        "\"counters\":[",
        i == 0 ? "" : ",", TracePhaseName(span.phase),
        static_cast<unsigned long long>(span.start_ns),
        static_cast<unsigned long long>(span.duration_ns));
    for (size_t c = 0; c < span.counters.size(); ++c) {
      out += StrFormat(
          "%s{\"name\":\"%s\",\"value\":%llu}", c == 0 ? "" : ",",
          escape(span.counters[c].name).c_str(),
          static_cast<unsigned long long>(span.counters[c].value));
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TraceToJson(const QueryTrace& trace) {
  return TraceData::FromTrace(trace).ToJson();
}

namespace {

/// Minimal recursive-descent reader for exactly the object shape ToJson
/// emits (string/uint64 scalars, arrays of objects). Not a general JSON
/// parser: numbers are unsigned integers, strings support the escapes
/// ToJson can produce.
class TraceJsonReader {
 public:
  explicit TraceJsonReader(const std::string& text) : text_(text) {}

  Result<TraceData> Read() {
    TraceData data;
    PDB_RETURN_NOT_OK(Expect('{'));
    PDB_RETURN_NOT_OK(Key("total_ns"));
    PDB_RETURN_NOT_OK(ReadUint(&data.total_ns));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("spans"));
    PDB_RETURN_NOT_OK(Expect('['));
    if (!TryConsume(']')) {
      do {
        QueryTrace::Span span;
        PDB_RETURN_NOT_OK(ReadSpan(&span));
        data.spans.push_back(std::move(span));
      } while (TryConsume(','));
      PDB_RETURN_NOT_OK(Expect(']'));
    }
    PDB_RETURN_NOT_OK(Expect('}'));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing bytes after trace JSON");
    }
    return data;
  }

 private:
  Status ReadSpan(QueryTrace::Span* span) {
    PDB_RETURN_NOT_OK(Expect('{'));
    PDB_RETURN_NOT_OK(Key("phase"));
    std::string phase;
    PDB_RETURN_NOT_OK(ReadString(&phase));
    if (!TracePhaseFromName(phase, &span->phase)) {
      return Status::InvalidArgument("unknown trace phase '" + phase + "'");
    }
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("start_ns"));
    PDB_RETURN_NOT_OK(ReadUint(&span->start_ns));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("duration_ns"));
    PDB_RETURN_NOT_OK(ReadUint(&span->duration_ns));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("counters"));
    PDB_RETURN_NOT_OK(Expect('['));
    if (!TryConsume(']')) {
      do {
        QueryTrace::SpanCounter counter;
        PDB_RETURN_NOT_OK(Expect('{'));
        PDB_RETURN_NOT_OK(Key("name"));
        PDB_RETURN_NOT_OK(ReadString(&counter.name));
        PDB_RETURN_NOT_OK(Expect(','));
        PDB_RETURN_NOT_OK(Key("value"));
        PDB_RETURN_NOT_OK(ReadUint(&counter.value));
        PDB_RETURN_NOT_OK(Expect('}'));
        span->counters.push_back(std::move(counter));
      } while (TryConsume(','));
      PDB_RETURN_NOT_OK(Expect(']'));
    }
    return Expect('}');
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrFormat("trace JSON: expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  bool TryConsume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Consumes `"name":`.
  Status Key(const char* name) {
    std::string got;
    PDB_RETURN_NOT_OK(ReadString(&got));
    if (got != name) {
      return Status::InvalidArgument(
          StrFormat("trace JSON: expected key \"%s\", got \"%s\"", name,
                    got.c_str()));
    }
    return Expect(':');
  }

  Status ReadString(std::string* out) {
    PDB_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      if (esc == '"' || esc == '\\') {
        out->push_back(esc);
      } else if (esc == 'u') {
        if (pos_ + 4 > text_.size()) {
          return Status::InvalidArgument("trace JSON: truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          unsigned digit;
          if (h >= '0' && h <= '9') {
            digit = static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<unsigned>(h - 'a') + 10;
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<unsigned>(h - 'A') + 10;
          } else {
            return Status::InvalidArgument("trace JSON: bad \\u escape");
          }
          code = code * 16 + digit;
        }
        // ToJson only emits \u for control bytes.
        out->push_back(static_cast<char>(code));
      } else {
        return Status::InvalidArgument("trace JSON: unsupported escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("trace JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ReadUint(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("trace JSON: expected integer at offset %zu", start));
    }
    *out = std::strtoull(text_.substr(start, pos_ - start).c_str(), nullptr,
                         10);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TraceData> TraceFromJson(const std::string& json) {
  return TraceJsonReader(json).Read();
}

}  // namespace pdb
