#include "obs/trace.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdb {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kParse:
      return "parse";
    case TracePhase::kSafetyCheck:
      return "safety_check";
    case TracePhase::kLifted:
      return "lifted";
    case TracePhase::kLineage:
      return "lineage";
    case TracePhase::kCompile:
      return "compile";
    case TracePhase::kDpll:
      return "dpll";
    case TracePhase::kMonteCarlo:
      return "monte_carlo";
    case TracePhase::kCacheProbe:
      return "cache_probe";
  }
  return "?";
}

void QueryTrace::Finish() {
  uint64_t now = SinceEpochNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_) return;
  finished_ = true;
  total_ns_ = now;
}

uint64_t QueryTrace::total_ns() const {
  uint64_t now = SinceEpochNs();
  std::lock_guard<std::mutex> lock(mu_);
  return finished_ ? total_ns_ : now;
}

void QueryTrace::AddSpan(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::vector<Span> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = spans_;
  }
  std::stable_sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    // Longer span first on equal starts, so a parent precedes the children
    // it immediately encloses.
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                    : a.duration_ns > b.duration_ns;
  });
  return out;
}

uint64_t QueryTrace::PhaseNs(TracePhase phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const Span& span : spans_) {
    if (span.phase == phase) total += span.duration_ns;
  }
  return total;
}

namespace {

/// True when `inner` lies strictly inside `outer` (a recorded sub-phase —
/// e.g. an inner per-tuple query's DPLL span inside the fan-out window).
bool Contains(const QueryTrace::Span& outer, const QueryTrace::Span& inner) {
  if (&outer == &inner) return false;
  uint64_t outer_end = outer.start_ns + outer.duration_ns;
  uint64_t inner_end = inner.start_ns + inner.duration_ns;
  if (inner.start_ns < outer.start_ns || inner_end > outer_end) return false;
  // Identical intervals (zero-width or exact ties) count as not nested.
  return !(inner.start_ns == outer.start_ns && inner_end == outer_end);
}

}  // namespace

uint64_t QueryTrace::TopLevelNs() const {
  std::vector<Span> sorted = spans();
  uint64_t total = 0;
  for (const Span& span : sorted) {
    bool nested = false;
    for (const Span& other : sorted) {
      if (Contains(other, span)) {
        nested = true;
        break;
      }
    }
    if (!nested) total += span.duration_ns;
  }
  return total;
}

std::string QueryTrace::ToString() const {
  std::vector<Span> sorted = spans();
  std::string out = StrFormat("query trace: %.3fms total\n",
                              static_cast<double>(total_ns()) / 1e6);
  for (size_t i = 0; i < sorted.size(); ++i) {
    size_t depth = 0;
    for (const Span& other : sorted) {
      if (Contains(other, sorted[i])) ++depth;
    }
    std::string indent(2 * (depth + 1), ' ');
    out += StrFormat("%s%-13s %9.3fms", indent.c_str(),
                     TracePhaseName(sorted[i].phase),
                     static_cast<double>(sorted[i].duration_ns) / 1e6);
    if (!sorted[i].counters.empty()) {
      out += "  (";
      for (size_t c = 0; c < sorted[i].counters.size(); ++c) {
        out += StrFormat("%s%s=%llu", c == 0 ? "" : ", ",
                         sorted[i].counters[c].name.c_str(),
                         static_cast<unsigned long long>(
                             sorted[i].counters[c].value));
      }
      out += ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace pdb
