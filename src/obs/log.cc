#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstdlib>

#include "obs/trace.h"
#include "util/string_util.h"

namespace pdb {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

uint64_t WallClockUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

LogField LogField::Str(std::string name, std::string_view value) {
  return {std::move(name), "\"" + JsonEscape(value) + "\""};
}

LogField LogField::Uint(std::string name, uint64_t value) {
  return {std::move(name),
          StrFormat("%llu", static_cast<unsigned long long>(value))};
}

LogField LogField::Double(std::string name, double value) {
  return {std::move(name), StrFormat("%.17g", value)};
}

LogField LogField::Raw(std::string name, std::string json) {
  return {std::move(name), std::move(json)};
}

EventLog::EventLog(EventLogOptions options)
    : options_(std::move(options)),
      tokens_(static_cast<double>(options_.max_events_per_sec)) {
  last_refill_us_ = NowUs();
  if (!options_.file_path.empty()) {
    file_ = std::fopen(options_.file_path.c_str(), "a");
    if (file_ == nullptr) {
      file_error_ =
          Status::IoError("cannot open log file: " + options_.file_path);
    }
  }
}

EventLog::~EventLog() {
  if (file_ != nullptr) std::fclose(file_);
}

uint64_t EventLog::NowUs() const {
  return options_.clock_us ? options_.clock_us() : WallClockUs();
}

void EventLog::Log(LogLevel level, std::string_view event,
                   std::vector<LogField> fields) {
  if (level < options_.min_level) return;
  const uint64_t now_us = NowUs();

  std::string line =
      StrFormat("{\"ts_us\":%llu,\"level\":\"%s\",\"event\":\"%s\"",
                static_cast<unsigned long long>(now_us), LogLevelName(level),
                JsonEscape(event).c_str());
  for (const LogField& field : fields) {
    line += StrFormat(",\"%s\":%s", JsonEscape(field.name).c_str(),
                      field.value.c_str());
  }
  line += "}";

  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_events_per_sec > 0) {
    // Token bucket: refill at max_events_per_sec with one second of burst.
    const double rate = static_cast<double>(options_.max_events_per_sec);
    if (now_us > last_refill_us_) {
      tokens_ += rate * static_cast<double>(now_us - last_refill_us_) / 1e6;
      if (tokens_ > rate) tokens_ = rate;
      last_refill_us_ = now_us;
    }
    if (tokens_ < 1.0) {
      ++dropped_;
      return;
    }
    tokens_ -= 1.0;
  }
  ++emitted_;
  ring_.push_back(line);
  while (ring_.size() > options_.ring_size) ring_.pop_front();
  if (file_ != nullptr) {
    line += "\n";
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }
}

std::vector<std::string> EventLog::recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::string SlowQueryEntryToJson(const SlowQueryEntry& entry) {
  return StrFormat(
      "{\"ts_us\":%llu,\"latency_us\":%llu,\"client\":\"%s\","
      "\"method\":\"%s\",\"statement\":\"%s\",\"trace\":%s,\"explain\":%s}",
      static_cast<unsigned long long>(entry.ts_us),
      static_cast<unsigned long long>(entry.latency_us),
      JsonEscape(entry.client).c_str(), JsonEscape(entry.method).c_str(),
      JsonEscape(entry.statement).c_str(),
      entry.trace_json.empty() ? "null" : entry.trace_json.c_str(),
      entry.explain_json.empty() ? "null" : entry.explain_json.c_str());
}

namespace {

/// Strict reader for exactly the shape SlowQueryEntryToJson emits, in the
/// same style as the trace reader: fixed key order, uint64 numbers, the
/// escapes our writer can produce. The embedded "trace"/"explain" values
/// are captured as balanced-brace raw substrings (strings and escapes
/// respected) so they survive a round trip byte-identically.
class SlowQueryJsonReader {
 public:
  explicit SlowQueryJsonReader(const std::string& text) : text_(text) {}

  Result<SlowQueryEntry> Read() {
    SlowQueryEntry entry;
    PDB_RETURN_NOT_OK(Expect('{'));
    PDB_RETURN_NOT_OK(Key("ts_us"));
    PDB_RETURN_NOT_OK(ReadUint(&entry.ts_us));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("latency_us"));
    PDB_RETURN_NOT_OK(ReadUint(&entry.latency_us));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("client"));
    PDB_RETURN_NOT_OK(ReadString(&entry.client));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("method"));
    PDB_RETURN_NOT_OK(ReadString(&entry.method));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("statement"));
    PDB_RETURN_NOT_OK(ReadString(&entry.statement));
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("trace"));
    PDB_RETURN_NOT_OK(ReadObjectOrNull(&entry.trace_json));
    if (!entry.trace_json.empty()) {
      // The trace payload must itself be a valid trace document.
      auto parsed = TraceFromJson(entry.trace_json);
      if (!parsed.ok()) return parsed.status();
    }
    PDB_RETURN_NOT_OK(Expect(','));
    PDB_RETURN_NOT_OK(Key("explain"));
    PDB_RETURN_NOT_OK(ReadObjectOrNull(&entry.explain_json));
    PDB_RETURN_NOT_OK(Expect('}'));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing bytes after slowlog JSON");
    }
    return entry;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          StrFormat("slowlog JSON: expected '%c' at offset %zu", c, pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Status Key(const char* name) {
    std::string got;
    PDB_RETURN_NOT_OK(ReadString(&got));
    if (got != name) {
      return Status::InvalidArgument(
          StrFormat("slowlog JSON: expected key \"%s\", got \"%s\"", name,
                    got.c_str()));
    }
    return Expect(':');
  }

  Status ReadString(std::string* out) {
    PDB_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      if (esc == '"' || esc == '\\') {
        out->push_back(esc);
      } else if (esc == 'u') {
        if (pos_ + 4 > text_.size()) {
          return Status::InvalidArgument("slowlog JSON: truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = text_[pos_++];
          unsigned digit;
          if (h >= '0' && h <= '9') {
            digit = static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<unsigned>(h - 'a') + 10;
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<unsigned>(h - 'A') + 10;
          } else {
            return Status::InvalidArgument("slowlog JSON: bad \\u escape");
          }
          code = code * 16 + digit;
        }
        out->push_back(static_cast<char>(code));
      } else {
        return Status::InvalidArgument("slowlog JSON: unsupported escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("slowlog JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return Status::OK();
  }

  Status ReadUint(uint64_t* out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrFormat("slowlog JSON: expected integer at offset %zu", start));
    }
    *out = std::strtoull(text_.substr(start, pos_ - start).c_str(), nullptr,
                         10);
    return Status::OK();
  }

  /// Captures a balanced `{...}` object verbatim into `*out`, or consumes
  /// the literal `null` leaving `*out` empty.
  Status ReadObjectOrNull(std::string* out) {
    SkipSpace();
    out->clear();
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Status::OK();
    }
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      return Status::InvalidArgument(StrFormat(
          "slowlog JSON: expected object or null at offset %zu", pos_));
    }
    size_t start = pos_;
    size_t depth = 0;
    bool in_string = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (in_string) {
        if (c == '\\') {
          if (pos_ >= text_.size()) break;
          ++pos_;  // the escaped byte, whatever it is
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          *out = text_.substr(start, pos_ - start);
          return Status::OK();
        }
      }
    }
    return Status::InvalidArgument("slowlog JSON: unterminated object");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<SlowQueryEntry> SlowQueryEntryFromJson(const std::string& json) {
  return SlowQueryJsonReader(json).Read();
}

bool SlowQueryLog::MaybeRecord(SlowQueryEntry entry) {
  if (entry.latency_us < options_.threshold_us) return false;
  if (options_.sink != nullptr) {
    std::vector<LogField> fields;
    fields.push_back(LogField::Uint("latency_us", entry.latency_us));
    fields.push_back(LogField::Str("client", entry.client));
    fields.push_back(LogField::Str("method", entry.method));
    fields.push_back(LogField::Str("statement", entry.statement));
    if (!entry.trace_json.empty()) {
      fields.push_back(LogField::Raw("trace", entry.trace_json));
    }
    if (!entry.explain_json.empty()) {
      fields.push_back(LogField::Raw("explain", entry.explain_json));
    }
    options_.sink->Log(LogLevel::kWarn, "slow_query", std::move(fields));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  ring_.push_front(std::move(entry));
  while (ring_.size() > options_.ring_size) ring_.pop_back();
  return true;
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

uint64_t SlowQueryLog::total_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace pdb
