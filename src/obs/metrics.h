/// \file metrics.h
/// \brief Engine-wide metrics: named counters, gauges, and log₂ histograms
/// with Prometheus/JSON exposition.
///
/// The registry follows the RocksDB Statistics idiom: metric objects are
/// created (or found) once by name under a mutex, after which the returned
/// pointer is stable for the registry's lifetime and every update is a
/// single relaxed atomic operation — no locks, no allocation, no branches
/// on the hot path. A `Session` owns one registry, pre-resolves every
/// engine ticker at construction, and exposes `Snapshot()` /
/// `RenderPrometheus()` / `RenderJson()` for scrapers; user code can mint
/// additional metrics through the same registry.
///
/// Histograms use fixed log₂ bucket boundaries (bucket i holds values whose
/// bit width is i, i.e. [2^(i-1), 2^i)), so recording is a `bit_width` plus
/// two relaxed adds and the exposition format is identical for every
/// histogram — latency distributions stay comparable across metrics and
/// across runs without per-metric boundary configuration.

#ifndef PDB_OBS_METRICS_H_
#define PDB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pdb {

/// Monotonic event count. `Set` exists for overlay counters mirrored from
/// an external source of truth (e.g. the shared WMC cache's own insert
/// counter), RocksDB `setTickerCount`-style.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (cache entries, resident bytes, in-flight queries).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Distribution over non-negative integers with fixed log₂ boundaries.
/// Thread-safe; `Record` is three relaxed atomic ops.
class Histogram {
 public:
  /// Bucket i counts values v with std::bit_width(v) == i: bucket 0 is
  /// exactly {0}, bucket i (i >= 1) is [2^(i-1), 2^i).
  static constexpr size_t kNumBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  double Mean() const;
  /// Upper bound of the bucket containing quantile `q` in [0, 1] (0 when
  /// empty). Log₂ buckets bound the relative error by 2x.
  double Quantile(double q) const;
};

/// Point-in-time copy of every metric in a registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Prometheus text exposition format (one # TYPE line per metric;
  /// histograms as cumulative `le` buckets plus `_sum`/`_count`). Names
  /// are sanitized to the Prometheus grammar.
  std::string RenderPrometheus() const;
  /// The same data as one JSON object.
  std::string RenderJson() const;

  /// Folds `other` into this snapshot: counters and gauges add, histograms
  /// merge bucket-wise. Metrics present on only one side are kept. This is
  /// how the server aggregates its per-client session registries (plus its
  /// own listener registry) into one scrape — summing `pdb_sessions_active`
  /// (each live session exports 1) counts the pooled sessions.
  void MergeFrom(const MetricsSnapshot& other);
};

/// Name-keyed registry of counters/gauges/histograms. `Get*` is
/// get-or-create and returns a pointer that stays valid for the registry's
/// lifetime; resolve once, update lock-free forever after. A name may hold
/// only one metric kind (getting it as another kind aborts).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string RenderPrometheus() const { return Snapshot().RenderPrometheus(); }
  std::string RenderJson() const { return Snapshot().RenderJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pdb

#endif  // PDB_OBS_METRICS_H_
