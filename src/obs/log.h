/// \file log.h
/// \brief Structured JSON-lines event logging plus the slow-query log.
///
/// `EventLog` emits one JSON object per line — machine-parseable the way
/// `/metrics` is scrapeable — with a level gate and a token-bucket rate
/// limiter so a hot error path cannot flood the disk. The clock is
/// injectable, so tests (and the rate limiter's own tests) are
/// deterministic. Lines go to a bounded in-memory ring (for `/debug`
/// surfaces and tests) and optionally to an append-only file
/// (`pdbd --log-file`).
///
/// `SlowQueryLog` is the operator-facing consumer: statements whose
/// end-to-end latency crosses a threshold (`pdbd --slow-query-ms`) are
/// captured as `SlowQueryEntry` records — statement text, latency, client,
/// routing method, and the full trace + EXPLAIN payloads as embedded JSON —
/// into a bounded ring served by `GET /debug/slowlog`, and mirrored to an
/// `EventLog` sink when one is attached. `SlowQueryEntryFromJson` is the
/// strict inverse of `SlowQueryEntryToJson` (same contract as
/// `TraceFromJson`: malformed or truncated input is InvalidArgument, never
/// a crash — it is fuzzed alongside the trace reader).

#ifndef PDB_OBS_LOG_H_
#define PDB_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pdb {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

/// One key/value pair of a structured log line. `value` is a pre-rendered
/// JSON token; build it through the typed constructors so strings are
/// escaped exactly once.
struct LogField {
  std::string name;
  std::string value;

  static LogField Str(std::string name, std::string_view value);
  static LogField Uint(std::string name, uint64_t value);
  static LogField Double(std::string name, double value);
  /// `json` must already be a valid JSON value (object, array, number...).
  static LogField Raw(std::string name, std::string json);
};

struct EventLogOptions {
  LogLevel min_level = LogLevel::kInfo;
  /// Token-bucket rate limit in events/second (bucket capacity = one
  /// second's worth); 0 disables limiting. Suppressed lines are counted in
  /// `dropped()` rather than blocking the caller.
  uint64_t max_events_per_sec = 1000;
  /// Microsecond clock; null uses the system wall clock. Injectable so the
  /// rate limiter and timestamps are deterministic under test.
  std::function<uint64_t()> clock_us;
  /// Append JSON lines to this file as well (empty = ring only). Open
  /// failure is recorded in `file_error()`, not fatal.
  std::string file_path;
  /// Lines retained in the in-memory ring.
  size_t ring_size = 256;
};

/// Leveled, rate-limited JSON-lines logger. Thread-safe.
class EventLog {
 public:
  explicit EventLog(EventLogOptions options = {});
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Emits `{"ts_us":N,"level":"info","event":"...",...fields}` if `level`
  /// passes the gate and the rate limiter has a token.
  void Log(LogLevel level, std::string_view event,
           std::vector<LogField> fields = {});

  /// Most recent lines, oldest first.
  std::vector<std::string> recent() const;

  /// Lines suppressed by the rate limiter so far.
  uint64_t dropped() const;
  /// Lines emitted (ring + file) so far.
  uint64_t emitted() const;
  /// OK unless the file sink failed to open.
  const Status& file_error() const { return file_error_; }

 private:
  uint64_t NowUs() const;

  const EventLogOptions options_;
  std::FILE* file_ = nullptr;
  Status file_error_;

  mutable std::mutex mu_;
  std::deque<std::string> ring_;    // guarded by mu_
  double tokens_;                   // guarded by mu_
  uint64_t last_refill_us_ = 0;     // guarded by mu_
  uint64_t dropped_ = 0;            // guarded by mu_
  uint64_t emitted_ = 0;            // guarded by mu_
};

/// One captured slow statement: identity, latency, routing method, and the
/// full trace + EXPLAIN payloads as embedded JSON objects (empty = absent).
struct SlowQueryEntry {
  uint64_t ts_us = 0;       ///< wall-clock micros at completion
  uint64_t latency_us = 0;  ///< end-to-end statement latency
  std::string client;       ///< X-Client-Id ("" for library callers)
  std::string method;       ///< answer method, e.g. "lifted", "dpll"
  std::string statement;    ///< the SQL / UCQ text as received
  std::string trace_json;   ///< TraceData::ToJson payload, or empty
  std::string explain_json;  ///< ExplainResult::ToJson payload, or empty
};

/// {"ts_us":N,"latency_us":N,"client":"...","method":"...",
///  "statement":"...","trace":{...}|null,"explain":{...}|null}
std::string SlowQueryEntryToJson(const SlowQueryEntry& entry);

/// Strict inverse of `SlowQueryEntryToJson`; the embedded trace object (if
/// present) must itself satisfy `TraceFromJson`. Malformed or truncated
/// input is InvalidArgument.
Result<SlowQueryEntry> SlowQueryEntryFromJson(const std::string& json);

/// Bounded ring of slow statements. Thread-safe; shared by every session
/// of a server so `/debug/slowlog` is one list.
class SlowQueryLog {
 public:
  struct Options {
    /// Capture threshold; statements at or above it are recorded.
    uint64_t threshold_us = 0;
    size_t ring_size = 64;
    /// Mirror captured entries to this log (kWarn, event "slow_query").
    EventLog* sink = nullptr;
  };

  explicit SlowQueryLog(Options options) : options_(options) {}

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Records `entry` if `entry.latency_us >= threshold_us`. Returns whether
  /// it was captured.
  bool MaybeRecord(SlowQueryEntry entry);

  /// Captured entries, newest first.
  std::vector<SlowQueryEntry> entries() const;

  uint64_t threshold_us() const { return options_.threshold_us; }
  /// Entries ever captured (including those the ring has since evicted).
  uint64_t total_captured() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::deque<SlowQueryEntry> ring_;  // guarded by mu_, newest at front
  uint64_t total_ = 0;               // guarded by mu_
};

}  // namespace pdb

#endif  // PDB_OBS_LOG_H_
