#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; anything
/// else (dots, dashes, unicode) becomes '_'.
std::string SanitizePrometheusName(const std::string& name) {
  std::string out = name.empty() ? "_" : name;
  for (char& c : out) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

/// Upper bound (inclusive) of histogram bucket i: the largest value whose
/// bit width is i, i.e. 2^i - 1. Returned as double (bucket 64 overflows
/// uint64).
double BucketUpperBound(size_t i) {
  return std::ldexp(1.0, static_cast<int>(i)) - 1.0;
}

/// JSON string escaping for metric names (conservative: names are ASCII).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  size_t idx = static_cast<size_t>(std::bit_width(value));
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(buckets.size() - 1);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  PDB_CHECK(gauges_.find(name) == gauges_.end() &&
            histograms_.find(name) == histograms_.end());
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  PDB_CHECK(counters_.find(name) == counters_.end() &&
            histograms_.find(name) == histograms_.end());
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  PDB_CHECK(counters_.find(name) == counters_.end() &&
            gauges_.find(name) == gauges_.end());
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      h.buckets[i] = hist->bucket(i);
    }
    h.count = hist->count();
    h.sum = hist->sum();
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    HistogramSnapshot& mine = histograms[name];
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      mine.buckets[i] += hist.buckets[i];
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
  }
}

std::string MetricsSnapshot::RenderPrometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    std::string n = SanitizePrometheusName(name);
    out += StrFormat("# TYPE %s counter\n", n.c_str());
    out += StrFormat("%s %llu\n", n.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    std::string n = SanitizePrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n", n.c_str());
    out += StrFormat("%s %lld\n", n.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, hist] : histograms) {
    std::string n = SanitizePrometheusName(name);
    out += StrFormat("# TYPE %s histogram\n", n.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      cumulative += hist.buckets[i];
      // Empty interior buckets are skipped to keep the exposition compact;
      // the final +Inf bucket always appears, as the format requires.
      if (hist.buckets[i] == 0 && i + 1 < hist.buckets.size()) continue;
      out += StrFormat("%s_bucket{le=\"%.17g\"} %llu\n", n.c_str(),
                       BucketUpperBound(i),
                       static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", n.c_str(),
                     static_cast<unsigned long long>(hist.count));
    out += StrFormat("%s_sum %llu\n", n.c_str(),
                     static_cast<unsigned long long>(hist.sum));
    out += StrFormat("%s_count %llu\n", n.c_str(),
                     static_cast<unsigned long long>(hist.count));
  }
  return out;
}

std::string MetricsSnapshot::RenderJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\"%s\":%llu", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\"%s\":%lld", first ? "" : ",",
                     JsonEscape(name).c_str(), static_cast<long long>(value));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += StrFormat(
        "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"mean\":%.6g,"
        "\"p50\":%.6g,\"p99\":%.6g,\"buckets\":[",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(hist.count),
        static_cast<unsigned long long>(hist.sum), hist.Mean(),
        hist.Quantile(0.5), hist.Quantile(0.99));
    first = false;
    // Sparse [bit_width, count] pairs: most of the 65 buckets are empty.
    bool first_bucket = true;
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      out += StrFormat("%s[%zu,%llu]", first_bucket ? "" : ",", i,
                       static_cast<unsigned long long>(hist.buckets[i]));
      first_bucket = false;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace pdb
