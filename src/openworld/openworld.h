/// \file openworld.h
/// \brief Open-world probabilistic databases (paper §9, Ceylan et al.
/// KR'16).
///
/// A closed-world TID fixes p = 0 for every tuple it does not list. An
/// OpenPDB instead allows each unlisted tuple an unknown probability in
/// [0, λ]. For a *monotone* query the probability is then an interval:
///
///   lower  = P over the closed-world database (all unknowns at 0),
///   upper  = P over the λ-completion (every possible unlisted tuple
///            added at probability λ),
///
/// both computed with the ordinary engines — monotonicity makes the two
/// extreme completions the exact endpoints.

#ifndef PDB_OPENWORLD_OPENWORLD_H_
#define PDB_OPENWORLD_OPENWORLD_H_

#include "logic/cq.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// An open-world probabilistic database: a TID plus the default probability
/// bound λ for unlisted tuples.
class OpenWorldDatabase {
 public:
  /// `lambda` in [0, 1]; 0 recovers the closed-world semantics.
  OpenWorldDatabase(Database db, double lambda)
      : db_(std::move(db)), lambda_(lambda) {}

  const Database& closed_world() const { return db_; }
  double lambda() const { return lambda_; }

  /// The λ-completion: every tuple over the active domain that is not
  /// listed is added with probability λ. `max_tuples` guards the
  /// domain^arity materialization.
  Result<Database> LambdaCompletion(size_t max_tuples = 1000000) const;

  /// Probability interval of a monotone UCQ. Both endpoints are exact
  /// (lifted when safe, grounded otherwise, within `max_dpll_decisions`).
  struct Interval {
    double lower = 0.0;
    double upper = 1.0;
  };
  Result<Interval> QueryInterval(const Ucq& ucq,
                                 uint64_t max_dpll_decisions = 1u << 22,
                                 size_t max_tuples = 1000000) const;

 private:
  Database db_;
  double lambda_;
};

}  // namespace pdb

#endif  // PDB_OPENWORLD_OPENWORLD_H_
