#include "openworld/openworld.h"

#include "boolean/lineage.h"
#include "lifted/lifted.h"
#include "util/string_util.h"
#include "wmc/dpll.h"

namespace pdb {

Result<Database> OpenWorldDatabase::LambdaCompletion(
    size_t max_tuples) const {
  if (lambda_ < 0.0 || lambda_ > 1.0) {
    return Status::OutOfRange(StrFormat("lambda %g outside [0,1]", lambda_));
  }
  std::vector<Value> domain = db_.ActiveDomain();
  Database completed;
  for (const std::string& name : db_.RelationNames()) {
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(name));
    Relation extended(rel->name(), rel->schema());
    for (size_t i = 0; i < rel->size(); ++i) {
      PDB_RETURN_NOT_OK(extended.AddTuple(rel->tuple(i), rel->prob(i)));
    }
    // Every unlisted tuple over the (type-compatible) active domain gets λ.
    const size_t arity = rel->arity();
    std::vector<std::vector<Value>> columns(arity);
    for (size_t j = 0; j < arity; ++j) {
      for (const Value& v : domain) {
        if (v.type() == rel->schema().attribute(j).type) {
          columns[j].push_back(v);
        }
      }
    }
    size_t total = 1;
    bool empty = false;
    for (const auto& col : columns) {
      if (col.empty()) empty = true;
      if (!empty && col.size() > max_tuples / std::max<size_t>(total, 1)) {
        return Status::ResourceExhausted(
            StrFormat("lambda-completion of '%s' exceeds %zu tuples",
                      name.c_str(), max_tuples));
      }
      total *= col.empty() ? 0 : col.size();
    }
    if (!empty && lambda_ > 0.0) {
      for (size_t combo = 0; combo < total; ++combo) {
        Tuple tuple;
        tuple.reserve(arity);
        size_t rest = combo;
        for (size_t j = 0; j < arity; ++j) {
          tuple.push_back(columns[j][rest % columns[j].size()]);
          rest /= columns[j].size();
        }
        if (rel->Contains(tuple)) continue;
        PDB_RETURN_NOT_OK(extended.AddTuple(std::move(tuple), lambda_));
      }
    }
    PDB_RETURN_NOT_OK(completed.AddRelation(std::move(extended)));
  }
  return completed;
}

namespace {

Result<double> ExactUcqProbability(const Ucq& ucq, const Database& db,
                                   uint64_t max_dpll_decisions) {
  auto lifted = LiftedProbability(ucq, db);
  if (lifted.ok()) return *lifted;
  if (lifted.status().code() != StatusCode::kUnsupported) {
    return lifted.status();
  }
  FormulaManager mgr;
  PDB_ASSIGN_OR_RETURN(Lineage lineage, BuildUcqLineage(ucq, db, &mgr));
  DpllOptions options;
  options.max_decisions = max_dpll_decisions;
  DpllCounter counter(&mgr, WeightsFromProbabilities(lineage.probs), options);
  return counter.Compute(lineage.root);
}

}  // namespace

Result<OpenWorldDatabase::Interval> OpenWorldDatabase::QueryInterval(
    const Ucq& ucq, uint64_t max_dpll_decisions, size_t max_tuples) const {
  Interval interval;
  PDB_ASSIGN_OR_RETURN(
      interval.lower, ExactUcqProbability(ucq, db_, max_dpll_decisions));
  PDB_ASSIGN_OR_RETURN(Database completed, LambdaCompletion(max_tuples));
  PDB_ASSIGN_OR_RETURN(
      interval.upper, ExactUcqProbability(ucq, completed, max_dpll_decisions));
  return interval;
}

}  // namespace pdb
