#include "sql/explain.h"

#include <algorithm>

#include "util/string_util.h"

namespace pdb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string DurationText(uint64_t ns) {
  if (ns >= 1'000'000) return StrFormat("%.3fms", ns / 1e6);
  if (ns >= 1'000) return StrFormat("%.3fus", ns / 1e3);
  return StrFormat("%lluns", static_cast<unsigned long long>(ns));
}

std::string EstimateText(double est) {
  if (est < 0) return "-";
  return StrFormat("%.2f", est);
}

std::string PlanJson(const JoinPlanProfile& plan) {
  std::string out = "{\"steps\":[";
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const JoinStepProfile& step = plan.steps[i];
    if (i > 0) out += ",";
    out += StrFormat(
        "{\"atom_index\":%zu,\"predicate\":\"%s\",\"relation_rows\":%llu,"
        "\"estimated_rows\":%.17g,\"actual_rows\":%llu}",
        step.atom_index, JsonEscape(step.predicate).c_str(),
        static_cast<unsigned long long>(step.relation_rows),
        step.estimated_rows,
        static_cast<unsigned long long>(step.actual_rows));
  }
  out += StrFormat(
      "],\"use_columnar\":%s,\"columnar_engaged\":%s,"
      "\"fallback_reason\":\"%s\",\"matches\":%llu,\"executed\":%s}",
      plan.use_columnar ? "true" : "false",
      plan.columnar_engaged ? "true" : "false",
      JsonEscape(plan.fallback_reason).c_str(),
      static_cast<unsigned long long>(plan.matches),
      plan.executed ? "true" : "false");
  return out;
}

std::string ReportJson(const ExecReport& report) {
  return StrFormat(
      "{\"lineage_matches\":%llu,\"lineage_nodes\":%llu,"
      "\"dpll_decisions\":%llu,\"dpll_cache_hits\":%llu,"
      "\"dpll_component_splits\":%llu,\"samples_drawn\":%llu,"
      "\"index_builds\":%llu,\"index_cache_hits\":%llu,"
      "\"wmc_shared_hits\":%llu,\"wmc_shared_misses\":%llu,"
      "\"tasks_run\":%llu,\"num_threads\":%d,"
      "\"deadline_exceeded\":%s,\"cancelled\":%s}",
      static_cast<unsigned long long>(report.lineage_matches),
      static_cast<unsigned long long>(report.lineage_nodes),
      static_cast<unsigned long long>(report.dpll_decisions),
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.dpll_component_splits),
      static_cast<unsigned long long>(report.samples_drawn),
      static_cast<unsigned long long>(report.index_builds),
      static_cast<unsigned long long>(report.index_cache_hits),
      static_cast<unsigned long long>(report.wmc_shared_hits),
      static_cast<unsigned long long>(report.wmc_shared_misses),
      static_cast<unsigned long long>(report.tasks_run), report.num_threads,
      report.deadline_exceeded ? "true" : "false",
      report.cancelled ? "true" : "false");
}

}  // namespace

std::string ExplainResult::ToText() const {
  std::string out = StrFormat("EXPLAIN%s %s\n", analyze ? " ANALYZE" : "",
                              statement.c_str());
  out += StrFormat("routing: %s%s (safety check: %s)\n", method.c_str(),
                   method_predicted ? " (predicted)" : "", safety.c_str());
  for (size_t p = 0; p < plans.size(); ++p) {
    const JoinPlanProfile& plan = plans[p];
    std::string path;
    if (plan.columnar_engaged) {
      path = "columnar (vectorized)";
    } else if (plan.use_columnar) {
      path = StrFormat("row (columnar fallback: %s)",
                       plan.fallback_reason.c_str());
    } else {
      path = plan.fallback_reason.empty()
                 ? "row"
                 : StrFormat("row (%s)", plan.fallback_reason.c_str());
    }
    out += StrFormat("plan %zu: %s, %zu step%s%s\n", p + 1, path.c_str(),
                     plan.steps.size(), plan.steps.size() == 1 ? "" : "s",
                     plan.executed
                         ? StrFormat(", %llu matches",
                                     static_cast<unsigned long long>(
                                         plan.matches))
                               .c_str()
                         : " (not executed)");
    out += "  step  atom  predicate             rows     est.rows    actual\n";
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const JoinStepProfile& step = plan.steps[i];
      out += StrFormat("  %4zu  %4zu  %-16s %9llu  %11s  %8s\n", i + 1,
                       step.atom_index, step.predicate.c_str(),
                       static_cast<unsigned long long>(step.relation_rows),
                       EstimateText(step.estimated_rows).c_str(),
                       plan.executed
                           ? StrFormat("%llu", static_cast<unsigned long long>(
                                                   step.actual_rows))
                                 .c_str()
                           : "-");
    }
  }
  if (executed) {
    if (boolean) {
      out += StrFormat("probability: %.17g (%s", probability,
                       exact ? "exact" : "approximate");
      if (!exact && std_error > 0) {
        out += StrFormat(", std error %.3g", std_error);
      }
      out += ")\n";
    } else {
      out += StrFormat("answers: %llu tuple%s\n",
                       static_cast<unsigned long long>(answer_tuples),
                       answer_tuples == 1 ? "" : "s");
    }
    if (!explanation.empty()) {
      out += StrFormat("explanation: %s\n", explanation.c_str());
    }
    out += StrFormat("counters: %s\n", report.ToString().c_str());
    out += StrFormat("trace: total %s\n", DurationText(trace.total_ns).c_str());
    for (const QueryTrace::Span& span : trace.spans) {
      std::string counters;
      for (size_t i = 0; i < span.counters.size(); ++i) {
        counters += StrFormat("%s%s=%llu", i == 0 ? "  (" : ", ",
                              span.counters[i].name.c_str(),
                              static_cast<unsigned long long>(
                                  span.counters[i].value));
      }
      if (!counters.empty()) counters += ")";
      out += StrFormat("  %-14s %10s%s\n", TracePhaseName(span.phase),
                       DurationText(span.duration_ns).c_str(),
                       counters.c_str());
    }
  }
  return out;
}

std::string ExplainResult::ToJson() const {
  std::string out = StrFormat(
      "{\"statement\":\"%s\",\"analyze\":%s,\"boolean\":%s,"
      "\"method\":\"%s\",\"method_predicted\":%s,\"safe\":%s,"
      "\"safety\":\"%s\",\"plans\":[",
      JsonEscape(statement).c_str(), analyze ? "true" : "false",
      boolean ? "true" : "false", JsonEscape(method).c_str(),
      method_predicted ? "true" : "false", safe ? "true" : "false",
      JsonEscape(safety).c_str());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) out += ",";
    out += PlanJson(plans[i]);
  }
  out += StrFormat("],\"executed\":%s", executed ? "true" : "false");
  if (executed) {
    out += StrFormat(
        ",\"probability\":%.17g,\"exact\":%s,\"std_error\":%.17g,"
        "\"answer_tuples\":%llu,\"explanation\":\"%s\",\"report\":%s,"
        "\"trace\":%s",
        probability, exact ? "true" : "false", std_error,
        static_cast<unsigned long long>(answer_tuples),
        JsonEscape(explanation).c_str(), ReportJson(report).c_str(),
        trace.ToJson().c_str());
  }
  out += "}";
  return out;
}

}  // namespace pdb
