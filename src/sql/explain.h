/// \file explain.h
/// \brief EXPLAIN [ANALYZE]: the query-introspection surface.
///
/// The paper's dichotomy means the *same* SELECT can be answered by a
/// polynomial lifted plan or an exponential grounded search; `EXPLAIN`
/// shows which, before paying for it, and `EXPLAIN ANALYZE` executes the
/// statement and lays the optimizer's selectivity *estimates* beside the
/// *actual* per-step match counts the join executor observed — so a
/// cardinality misestimate (a correlated dataset breaking the independence
/// assumption behind the cost-based atom order) is reported per atom
/// instead of hidden inside a slow query.
///
/// An `ExplainResult` carries:
///  - the routing decision: the safety-check verdict and the inference
///    method (predicted for plain EXPLAIN, actual for ANALYZE);
///  - the compiled join plan(s): cost-based atom order, per-step estimated
///    vs actual rows, columnar-vs-row engagement and the fallback reason;
///  - for ANALYZE: the answer, the `ExecReport` counters (cache and index
///    attribution), and the full per-phase `TraceData`.
///
/// `ToText()` renders the human table; `ToJson()` the machine form served
/// by pdbd and embedded in slow-query log entries (obs/log.h).

#ifndef PDB_SQL_EXPLAIN_H_
#define PDB_SQL_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/context.h"
#include "exec/join_profile.h"
#include "obs/trace.h"

namespace pdb {

/// The rendered outcome of EXPLAIN [ANALYZE] <statement>. Produced by
/// `Session::ExplainSql` (core/session.h).
struct ExplainResult {
  /// The statement being explained (EXPLAIN prefix stripped).
  std::string statement;
  bool analyze = false;
  /// SELECT PROB() (Boolean) vs a column select (answer tuples).
  bool boolean = true;

  /// Inference route: "lifted", "grounded-exact", "monte-carlo",
  /// "plan-bounds". For plain EXPLAIN this is the *prediction* implied by
  /// the safety check; ANALYZE reports the method that actually answered.
  std::string method;
  bool method_predicted = true;
  /// Safety-check verdict: the query is safe (a lifted extensional plan
  /// exists, polynomial data complexity) or not, with the reason.
  bool safe = false;
  std::string safety;

  /// Compiled join plan(s): plan-only (EXPLAIN) or executed (ANALYZE, from
  /// the `JoinProfile` the executor filled). One entry per grounded CQ.
  std::vector<JoinPlanProfile> plans;

  /// ANALYZE only: the statement actually ran.
  bool executed = false;
  double probability = 0.0;  ///< Boolean statements
  bool exact = false;
  double std_error = 0.0;
  uint64_t answer_tuples = 0;  ///< column selects: distinct answers
  std::string explanation;     ///< the engine's answer explanation
  /// ANALYZE only: execution counters (lineage matches, DPLL decisions,
  /// index/WMC/result-cache hit attribution, samples).
  ExecReport report;
  /// ANALYZE only: the per-phase trace of the execution.
  TraceData trace;

  /// Human-readable rendering: routing, the per-atom estimate-vs-actual
  /// table, and (for ANALYZE) answer + counters + phase timings.
  std::string ToText() const;
  /// Machine form: one JSON object (no trailing newline).
  std::string ToJson() const;
};

}  // namespace pdb

#endif  // PDB_SQL_EXPLAIN_H_
