/// \file sql.h
/// \brief A SQL frontend for conjunctive queries.
///
/// The paper's §6 argument is that probabilistic inference can ride along
/// inside a standard SQL engine. This module gives pdb the matching
/// surface: a conjunctive SELECT block compiles to a ConjunctiveQuery plus
/// head variables, and the engine's strategy selection does the rest.
///
/// Grammar (keywords case-insensitive):
///
///   query      := SELECT select_list FROM from_list [WHERE condition_list]
///                 [WITH STDERR number]
///   select_list:= PROB()                      -- Boolean: the probability
///               | column (',' column)*        -- answer tuples + marginals
///   column     := [alias '.'] attribute
///   from_list  := table [AS] alias? (',' table [AS] alias?)*
///   condition  := operand '=' operand ( AND condition )*
///   operand    := column | integer | 'string'
///
/// `WITH STDERR s` asks the engine for an approximate answer whose
/// standard error is at most `s` (when it falls back to sampling): it maps
/// to `QueryOptions::monte_carlo_target_stderr`, so the adaptive
/// Karp–Luby estimator stops as soon as the target is met. Exact answers
/// ignore it.
///
/// Example:
///   SELECT PROB() FROM R, S WHERE R.x = S.x
///   SELECT c.city FROM Customer c, Orders o WHERE c.id = o.id
///   SELECT PROB() FROM R, S, T WHERE R.x = S.x AND S.y = T.y
///     WITH STDERR 0.002

#ifndef PDB_SQL_SQL_H_
#define PDB_SQL_SQL_H_

#include <string>
#include <vector>

#include "logic/cq.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// Parsed-but-unresolved SQL (no catalog access yet).
struct SqlColumnRef {
  std::string alias;  // empty when unqualified
  std::string column;
};

struct SqlTableRef {
  std::string table;
  std::string alias;  // defaults to the table name
};

struct SqlCondition {
  enum class OperandKind { kColumn, kLiteral };
  OperandKind lhs_kind = OperandKind::kColumn;
  SqlColumnRef lhs_column;
  Value lhs_literal;
  OperandKind rhs_kind = OperandKind::kColumn;
  SqlColumnRef rhs_column;
  Value rhs_literal;
};

struct SqlSelect {
  bool boolean = false;  // SELECT PROB()
  std::vector<SqlColumnRef> columns;
  std::vector<SqlTableRef> from;
  std::vector<SqlCondition> where;
  /// WITH STDERR clause; 0 when absent.
  double target_stderr = 0.0;
};

/// Parses the SELECT block (no schema checks yet).
Result<SqlSelect> ParseSql(const std::string& text);

/// Detects a leading `EXPLAIN [ANALYZE]` prefix (case-insensitive, token
/// boundaries respected). Returns true when the prefix is present, setting
/// `*analyze` and storing the remaining statement in `*rest`; returns
/// false (outputs untouched) otherwise. The parser proper never sees the
/// prefix: EXPLAIN is a wrapper around a statement, not part of one.
bool StripExplainPrefix(const std::string& text, bool* analyze,
                        std::string* rest);

/// A compiled query: the Boolean CQ plus the head variables corresponding
/// to the select list (empty for SELECT PROB()).
struct CompiledSql {
  ConjunctiveQuery cq;
  std::vector<std::string> head_vars;
  bool boolean = false;
  /// WITH STDERR clause; 0 when absent. The session-level QuerySql*
  /// entry points map it to `QueryOptions::monte_carlo_target_stderr`.
  double target_stderr = 0.0;
};

/// Resolves a parsed SELECT against the catalog: every FROM entry becomes
/// an atom with one variable per column, equalities unify variables or
/// pin constants, and select columns become head variables.
Result<CompiledSql> CompileSql(const SqlSelect& select, const Database& db);

/// Convenience: parse + compile.
Result<CompiledSql> CompileSql(const std::string& text, const Database& db);

}  // namespace pdb

#endif  // PDB_SQL_SQL_H_
