#include "sql/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <numeric>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class SqlTok {
  kIdent,
  kInteger,
  kFloat,  // only valid in WITH STDERR; WHERE literals stay integers
  kString,
  kComma,
  kDot,
  kEquals,
  kLParen,
  kRParen,
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kAs,
  kWith,
  kProb,
  kEnd,
};

struct SqlToken {
  SqlTok kind;
  std::string text;
  size_t pos = 0;
};

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

Result<std::vector<SqlToken>> Tokenize(const std::string& text) {
  std::vector<SqlToken> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_')) {
        ++j;
      }
      std::string word = text.substr(i, j - i);
      std::string upper = ToUpper(word);
      SqlTok kind = SqlTok::kIdent;
      if (upper == "SELECT") kind = SqlTok::kSelect;
      else if (upper == "FROM") kind = SqlTok::kFrom;
      else if (upper == "WHERE") kind = SqlTok::kWhere;
      else if (upper == "AND") kind = SqlTok::kAnd;
      else if (upper == "AS") kind = SqlTok::kAs;
      else if (upper == "WITH") kind = SqlTok::kWith;
      else if (upper == "PROB") kind = SqlTok::kProb;
      out.push_back({kind, std::move(word), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i + 1;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      bool is_float = false;
      // Fraction: '.' followed by a digit (a bare '.' stays the kDot of a
      // qualified column reference).
      if (j + 1 < text.size() && text[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
        is_float = true;
        j += 2;
        while (j < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
        }
      }
      // Exponent: e/E, optional sign, digits.
      if (j < text.size() && (text[j] == 'e' || text[j] == 'E')) {
        size_t k = j + 1;
        if (k < text.size() && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < text.size() &&
            std::isdigit(static_cast<unsigned char>(text[k]))) {
          is_float = true;
          j = k + 1;
          while (j < text.size() &&
                 std::isdigit(static_cast<unsigned char>(text[j]))) {
            ++j;
          }
        }
      }
      out.push_back({is_float ? SqlTok::kFloat : SqlTok::kInteger,
                     text.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < text.size() && text[j] != '\'') ++j;
      if (j >= text.size()) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      out.push_back({SqlTok::kString, text.substr(i + 1, j - i - 1), start});
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        out.push_back({SqlTok::kComma, ",", start});
        break;
      case '.':
        out.push_back({SqlTok::kDot, ".", start});
        break;
      case '=':
        out.push_back({SqlTok::kEquals, "=", start});
        break;
      case '(':
        out.push_back({SqlTok::kLParen, "(", start});
        break;
      case ')':
        out.push_back({SqlTok::kRParen, ")", start});
        break;
      case ';':
        break;  // trailing semicolon is tolerated
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
    ++i;
  }
  out.push_back({SqlTok::kEnd, "", text.size()});
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class SqlParser {
 public:
  explicit SqlParser(std::vector<SqlToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<SqlSelect> Parse() {
    SqlSelect select;
    PDB_RETURN_NOT_OK(Expect(SqlTok::kSelect, "SELECT"));
    if (Peek().kind == SqlTok::kProb) {
      Advance();
      PDB_RETURN_NOT_OK(Expect(SqlTok::kLParen, "'('"));
      PDB_RETURN_NOT_OK(Expect(SqlTok::kRParen, "')'"));
      select.boolean = true;
    } else {
      for (;;) {
        PDB_ASSIGN_OR_RETURN(SqlColumnRef col, ParseColumn());
        select.columns.push_back(std::move(col));
        if (Peek().kind != SqlTok::kComma) break;
        Advance();
      }
    }
    PDB_RETURN_NOT_OK(Expect(SqlTok::kFrom, "FROM"));
    for (;;) {
      if (Peek().kind != SqlTok::kIdent) {
        return Status::InvalidArgument(
            StrFormat("expected table name at offset %zu", Peek().pos));
      }
      SqlTableRef ref;
      ref.table = Advance().text;
      ref.alias = ref.table;
      if (Peek().kind == SqlTok::kAs) Advance();
      if (Peek().kind == SqlTok::kIdent) ref.alias = Advance().text;
      select.from.push_back(std::move(ref));
      if (Peek().kind != SqlTok::kComma) break;
      Advance();
    }
    if (Peek().kind == SqlTok::kWhere) {
      Advance();
      for (;;) {
        PDB_ASSIGN_OR_RETURN(SqlCondition cond, ParseCondition());
        select.where.push_back(std::move(cond));
        if (Peek().kind != SqlTok::kAnd) break;
        Advance();
      }
    }
    if (Peek().kind == SqlTok::kWith) {
      Advance();
      if (Peek().kind != SqlTok::kIdent ||
          ToUpper(Peek().text) != "STDERR") {
        return Status::InvalidArgument(
            StrFormat("expected STDERR after WITH at offset %zu",
                      Peek().pos));
      }
      Advance();
      if (Peek().kind != SqlTok::kFloat && Peek().kind != SqlTok::kInteger) {
        return Status::InvalidArgument(
            StrFormat("expected a number after WITH STDERR at offset %zu",
                      Peek().pos));
      }
      select.target_stderr = std::strtod(Advance().text.c_str(), nullptr);
      if (!(select.target_stderr > 0.0)) {
        return Status::InvalidArgument("WITH STDERR must be positive");
      }
    }
    PDB_RETURN_NOT_OK(Expect(SqlTok::kEnd, "end of query"));
    return select;
  }

 private:
  const SqlToken& Peek() const { return tokens_[pos_]; }
  const SqlToken& Advance() { return tokens_[pos_++]; }

  Status Expect(SqlTok kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(
          StrFormat("expected %s at offset %zu, found '%s'", what, Peek().pos,
                    Peek().text.c_str()));
    }
    Advance();
    return Status::OK();
  }

  Result<SqlColumnRef> ParseColumn() {
    if (Peek().kind != SqlTok::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected column at offset %zu", Peek().pos));
    }
    SqlColumnRef ref;
    std::string first = Advance().text;
    if (Peek().kind == SqlTok::kDot) {
      Advance();
      if (Peek().kind != SqlTok::kIdent) {
        return Status::InvalidArgument(
            StrFormat("expected column name after '.' at offset %zu",
                      Peek().pos));
      }
      ref.alias = std::move(first);
      ref.column = Advance().text;
    } else {
      ref.column = std::move(first);
    }
    return ref;
  }

  Result<SqlCondition> ParseCondition() {
    SqlCondition cond;
    PDB_RETURN_NOT_OK(ParseOperand(&cond.lhs_kind, &cond.lhs_column,
                                   &cond.lhs_literal));
    PDB_RETURN_NOT_OK(Expect(SqlTok::kEquals, "'='"));
    PDB_RETURN_NOT_OK(ParseOperand(&cond.rhs_kind, &cond.rhs_column,
                                   &cond.rhs_literal));
    return cond;
  }

  Status ParseOperand(SqlCondition::OperandKind* kind, SqlColumnRef* column,
                      Value* literal) {
    switch (Peek().kind) {
      case SqlTok::kIdent: {
        *kind = SqlCondition::OperandKind::kColumn;
        PDB_ASSIGN_OR_RETURN(*column, ParseColumn());
        return Status::OK();
      }
      case SqlTok::kInteger:
        *kind = SqlCondition::OperandKind::kLiteral;
        *literal = Value(static_cast<int64_t>(std::stoll(Advance().text)));
        return Status::OK();
      case SqlTok::kString:
        *kind = SqlCondition::OperandKind::kLiteral;
        *literal = Value(Advance().text);
        return Status::OK();
      case SqlTok::kFloat:
        return Status::InvalidArgument(
            StrFormat("floating-point literal at offset %zu; WHERE "
                      "literals are integers or strings (floats are only "
                      "valid in WITH STDERR)",
                      Peek().pos));
      default:
        return Status::InvalidArgument(
            StrFormat("expected column or literal at offset %zu",
                      Peek().pos));
    }
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
};

// Union-find over variable slots for equality conditions.
class SlotUnionFind {
 public:
  explicit SlotUnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<SqlSelect> ParseSql(const std::string& text) {
  PDB_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, Tokenize(text));
  SqlParser parser(std::move(tokens));
  return parser.Parse();
}

bool StripExplainPrefix(const std::string& text, bool* analyze,
                        std::string* rest) {
  // Match one identifier word at `i`, case-insensitively.
  auto match_word = [&text](size_t i, const char* word, size_t* end) {
    size_t j = i;
    const char* w = word;
    while (*w != '\0') {
      if (j >= text.size() ||
          std::toupper(static_cast<unsigned char>(text[j])) != *w) {
        return false;
      }
      ++j;
      ++w;
    }
    // Word boundary: the next character must not extend the identifier.
    if (j < text.size() && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                            text[j] == '_')) {
      return false;
    }
    *end = j;
    return true;
  };
  size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  size_t after = 0;
  if (!match_word(i, "EXPLAIN", &after)) return false;
  i = after;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  bool saw_analyze = match_word(i, "ANALYZE", &after);
  if (saw_analyze) i = after;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  *analyze = saw_analyze;
  *rest = text.substr(i);
  return true;
}

Result<CompiledSql> CompileSql(const SqlSelect& select, const Database& db) {
  // Slot layout: one variable slot per (FROM entry, column).
  struct TableInfo {
    const Relation* relation;
    size_t slot_begin;
  };
  std::map<std::string, size_t> by_alias;  // alias -> FROM index
  std::vector<TableInfo> tables;
  size_t num_slots = 0;
  for (size_t i = 0; i < select.from.size(); ++i) {
    const SqlTableRef& ref = select.from[i];
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db.Get(ref.table));
    if (!by_alias.emplace(ref.alias, i).second) {
      return Status::InvalidArgument(
          StrFormat("duplicate table alias '%s'", ref.alias.c_str()));
    }
    tables.push_back({rel, num_slots});
    num_slots += rel->arity();
  }
  if (tables.empty()) {
    return Status::InvalidArgument("FROM list is empty");
  }

  // Resolves a column reference to its slot.
  auto resolve = [&](const SqlColumnRef& ref) -> Result<size_t> {
    if (!ref.alias.empty()) {
      auto it = by_alias.find(ref.alias);
      if (it == by_alias.end()) {
        return Status::NotFound(
            StrFormat("unknown table alias '%s'", ref.alias.c_str()));
      }
      const TableInfo& info = tables[it->second];
      PDB_ASSIGN_OR_RETURN(size_t col,
                           info.relation->schema().IndexOf(ref.column));
      return info.slot_begin + col;
    }
    // Unqualified: must be unambiguous across the FROM list.
    size_t found_slot = 0;
    int matches = 0;
    for (const TableInfo& info : tables) {
      auto col = info.relation->schema().IndexOf(ref.column);
      if (col.ok()) {
        found_slot = info.slot_begin + *col;
        ++matches;
      }
    }
    if (matches == 0) {
      return Status::NotFound(
          StrFormat("unknown column '%s'", ref.column.c_str()));
    }
    if (matches > 1) {
      return Status::InvalidArgument(
          StrFormat("ambiguous column '%s' (qualify it with an alias)",
                    ref.column.c_str()));
    }
    return found_slot;
  };

  // Equalities: unify slots, or pin a constant to a slot class.
  SlotUnionFind uf(num_slots);
  std::map<size_t, Value> pinned;  // representative slot -> constant
  auto pin = [&](size_t slot, const Value& value) -> Status {
    size_t root = uf.Find(slot);
    auto [it, inserted] = pinned.emplace(root, value);
    if (!inserted && !(it->second == value)) {
      return Status::InvalidArgument(
          "contradictory constant constraints (always-false query)");
    }
    return Status::OK();
  };
  for (const SqlCondition& cond : select.where) {
    const bool lhs_col = cond.lhs_kind == SqlCondition::OperandKind::kColumn;
    const bool rhs_col = cond.rhs_kind == SqlCondition::OperandKind::kColumn;
    if (lhs_col && rhs_col) {
      PDB_ASSIGN_OR_RETURN(size_t a, resolve(cond.lhs_column));
      PDB_ASSIGN_OR_RETURN(size_t b, resolve(cond.rhs_column));
      // Merge, carrying any pinned constants across.
      size_t ra = uf.Find(a);
      size_t rb = uf.Find(b);
      if (ra == rb) continue;
      auto ita = pinned.find(ra);
      auto itb = pinned.find(rb);
      if (ita != pinned.end() && itb != pinned.end() &&
          !(ita->second == itb->second)) {
        return Status::InvalidArgument(
            "contradictory constant constraints (always-false query)");
      }
      Value keep;
      bool has = false;
      if (ita != pinned.end()) {
        keep = ita->second;
        has = true;
        pinned.erase(ita);
      }
      if (itb != pinned.end()) {
        keep = itb->second;
        has = true;
        pinned.erase(itb);
      }
      uf.Union(ra, rb);
      if (has) PDB_RETURN_NOT_OK(pin(uf.Find(ra), keep));
    } else if (lhs_col || rhs_col) {
      const SqlColumnRef& col = lhs_col ? cond.lhs_column : cond.rhs_column;
      const Value& lit = lhs_col ? cond.rhs_literal : cond.lhs_literal;
      PDB_ASSIGN_OR_RETURN(size_t slot, resolve(col));
      PDB_RETURN_NOT_OK(pin(slot, lit));
    } else {
      // literal = literal: either trivially true or always false.
      if (!(cond.lhs_literal == cond.rhs_literal)) {
        return Status::InvalidArgument(
            "contradictory constant constraints (always-false query)");
      }
    }
  }

  // Build the CQ: each slot class is a variable "v<root>" unless pinned.
  auto term_for = [&](size_t slot) -> Term {
    size_t root = uf.Find(slot);
    auto it = pinned.find(root);
    if (it != pinned.end()) return Term::Const(it->second);
    return Term::Var(StrFormat("v%zu", root));
  };
  CompiledSql out;
  out.boolean = select.boolean;
  out.target_stderr = select.target_stderr;
  for (size_t i = 0; i < tables.size(); ++i) {
    std::vector<Term> args;
    args.reserve(tables[i].relation->arity());
    for (size_t j = 0; j < tables[i].relation->arity(); ++j) {
      args.push_back(term_for(tables[i].slot_begin + j));
    }
    out.cq.AddAtom(Atom(select.from[i].table, std::move(args)));
  }
  for (const SqlColumnRef& ref : select.columns) {
    PDB_ASSIGN_OR_RETURN(size_t slot, resolve(ref));
    Term t = term_for(slot);
    if (t.is_constant()) {
      return Status::Unsupported(
          StrFormat("select column '%s' is pinned to a constant; selecting "
                    "constants is not supported",
                    ref.column.c_str()));
    }
    out.head_vars.push_back(t.var());
  }
  // Deduplicate head variables (SELECT a.x, b.y with a.x = b.y).
  std::vector<std::string> dedup;
  for (const std::string& v : out.head_vars) {
    if (std::find(dedup.begin(), dedup.end(), v) == dedup.end()) {
      dedup.push_back(v);
    }
  }
  out.head_vars = std::move(dedup);
  return out;
}

Result<CompiledSql> CompileSql(const std::string& text, const Database& db) {
  PDB_ASSIGN_OR_RETURN(SqlSelect select, ParseSql(text));
  return CompileSql(select, db);
}

}  // namespace pdb
