/// \file parser.h
/// \brief Text syntax for first-order sentences and UCQs.
///
/// FO syntax (case-sensitive keywords):
///
///   sentence    := quantified
///   quantified  := ('forall'|'exists') var+ '.'? quantified | iff
///   iff         := implication ('<=>' implication)*
///   implication := disjunction ('=>' implication)?
///   disjunction := conjunction (('|'|'or') conjunction)*
///   conjunction := unary (('&'|'and') unary)*
///   unary       := ('!'|'not') unary | '(' sentence ')' | atom
///                | 'true' | 'false'
///   atom        := IDENT '(' term (',' term)* ')'
///   term        := IDENT          -- a variable
///                | INTEGER        -- an integer constant
///                | '\'' chars '\'' -- a string constant
///
/// Example: forall x forall y (S(x,y) => R(x))
///
/// Disambiguation: after the first quantified variable, an identifier
/// followed by '(' starts the body. Multi-variable lists before a
/// parenthesized body therefore need the dot: "forall x y . (...)".
///
/// Datalog-style UCQ shorthand (all variables implicitly existential):
///
///   ucq      := conj (';' conj)*
///   conj     := atom (',' atom)*
///
/// Example: R(x), S(x,y) ; T(u), S(u,v)

#ifndef PDB_LOGIC_PARSER_H_
#define PDB_LOGIC_PARSER_H_

#include <string>

#include "logic/fo.h"
#include "util/status.h"

namespace pdb {

/// Parses an FO sentence (or formula with free variables) from `text`.
Result<FoPtr> ParseFo(const std::string& text);

/// Parses the datalog-style UCQ shorthand; returns the equivalent FO
/// sentence (existential closure of a disjunction of conjunctions).
Result<FoPtr> ParseUcqShorthand(const std::string& text);

}  // namespace pdb

#endif  // PDB_LOGIC_PARSER_H_
