/// \file containment.h
/// \brief CQ homomorphisms, containment, equivalence, minimization, and
/// canonical forms.
///
/// The lifted inference engine's inclusion–exclusion rule (paper §5) sums
/// coefficients over logically equivalent conjunctions of CQs; cancellation
/// of #P-hard terms is only possible if equivalent terms are recognized.
/// Equivalence of Boolean CQs is decided through homomorphisms (Chandra &
/// Merlin), and canonical strings give equivalence classes a hashable key.

#ifndef PDB_LOGIC_CONTAINMENT_H_
#define PDB_LOGIC_CONTAINMENT_H_

#include <optional>
#include <string>

#include "logic/cq.h"

namespace pdb {

/// True iff a homomorphism `from` -> `to` exists: a mapping of variables to
/// terms (constants map to themselves) sending every atom of `from` to an
/// atom of `to`.
bool HasHomomorphism(const ConjunctiveQuery& from, const ConjunctiveQuery& to);

/// Logical implication of Boolean CQs: q1 implies q2 iff there is a
/// homomorphism from q2 to q1.
bool CqImplies(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// Logical equivalence: homomorphisms both ways.
bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

/// The core of `cq`: a minimal equivalent subquery, computed by repeatedly
/// dropping atoms while an endomorphism onto the remainder exists.
ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq);

/// A canonical string for the equivalence class of `cq`: the query is
/// minimized, then variables are renamed by the lexicographically best
/// bijection (exhaustive for <= kExactCanonLimit variables, signature-based
/// heuristic beyond — the heuristic is sound but may give distinct strings
/// to some equivalent queries, which can only cost the caller an
/// optimization, never correctness).
std::string CanonicalCqString(const ConjunctiveQuery& cq);

/// Number of variables up to which canonicalization is exhaustive.
inline constexpr size_t kExactCanonLimit = 7;

}  // namespace pdb

#endif  // PDB_LOGIC_CONTAINMENT_H_
