#include "logic/parser.h"

#include <cctype>
#include <vector>

#include "util/string_util.h"

namespace pdb {

namespace {

enum class TokKind {
  kIdent,
  kInteger,
  kString,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kAnd,      // '&' or 'and'
  kOr,       // '|' or 'or'
  kNot,      // '!' or 'not'
  kImplies,  // '=>'
  kIff,      // '<=>'
  kForall,
  kExists,
  kTrue,
  kFalse,
  kDot,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        std::string word = text_.substr(i, j - i);
        TokKind kind = TokKind::kIdent;
        if (word == "forall") kind = TokKind::kForall;
        else if (word == "exists") kind = TokKind::kExists;
        else if (word == "and") kind = TokKind::kAnd;
        else if (word == "or") kind = TokKind::kOr;
        else if (word == "not") kind = TokKind::kNot;
        else if (word == "true") kind = TokKind::kTrue;
        else if (word == "false") kind = TokKind::kFalse;
        out.push_back({kind, std::move(word), start});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        size_t j = i + 1;
        while (j < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[j]))) {
          ++j;
        }
        out.push_back({TokKind::kInteger, text_.substr(i, j - i), start});
        i = j;
        continue;
      }
      if (c == '\'') {
        size_t j = i + 1;
        while (j < text_.size() && text_[j] != '\'') ++j;
        if (j >= text_.size()) {
          return Status::InvalidArgument(
              StrFormat("unterminated string literal at offset %zu", start));
        }
        out.push_back({TokKind::kString, text_.substr(i + 1, j - i - 1), start});
        i = j + 1;
        continue;
      }
      switch (c) {
        case '(':
          out.push_back({TokKind::kLParen, "(", start});
          ++i;
          break;
        case ')':
          out.push_back({TokKind::kRParen, ")", start});
          ++i;
          break;
        case ',':
          out.push_back({TokKind::kComma, ",", start});
          ++i;
          break;
        case ';':
          out.push_back({TokKind::kSemicolon, ";", start});
          ++i;
          break;
        case '.':
          out.push_back({TokKind::kDot, ".", start});
          ++i;
          break;
        case '&':
          out.push_back({TokKind::kAnd, "&", start});
          ++i;
          break;
        case '|':
          out.push_back({TokKind::kOr, "|", start});
          ++i;
          break;
        case '!':
          out.push_back({TokKind::kNot, "!", start});
          ++i;
          break;
        case '=':
          if (i + 1 < text_.size() && text_[i + 1] == '>') {
            out.push_back({TokKind::kImplies, "=>", start});
            i += 2;
            break;
          }
          return Status::InvalidArgument(
              StrFormat("unexpected '=' at offset %zu", start));
        case '<':
          if (i + 2 < text_.size() && text_[i + 1] == '=' &&
              text_[i + 2] == '>') {
            out.push_back({TokKind::kIff, "<=>", start});
            i += 3;
            break;
          }
          return Status::InvalidArgument(
              StrFormat("unexpected '<' at offset %zu", start));
        default:
          return Status::InvalidArgument(
              StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FoPtr> ParseSentence() {
    PDB_ASSIGN_OR_RETURN(FoPtr f, ParseQuantified());
    PDB_RETURN_NOT_OK(Expect(TokKind::kEnd, "end of input"));
    return f;
  }

  Result<FoPtr> ParseUcq() {
    std::vector<FoPtr> disjuncts;
    for (;;) {
      std::vector<FoPtr> atoms;
      for (;;) {
        PDB_ASSIGN_OR_RETURN(FoPtr atom, ParseAtom());
        atoms.push_back(std::move(atom));
        if (Peek().kind != TokKind::kComma) break;
        Advance();
      }
      disjuncts.push_back(Fo::And(std::move(atoms)));
      if (Peek().kind != TokKind::kSemicolon) break;
      Advance();
    }
    PDB_RETURN_NOT_OK(Expect(TokKind::kEnd, "end of input"));
    FoPtr body = Fo::Or(std::move(disjuncts));
    std::set<std::string> vars = body->FreeVariables();
    return Fo::Exists(std::vector<std::string>(vars.begin(), vars.end()),
                      body);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Expect(TokKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument(
          StrFormat("expected %s at offset %zu, found '%s'", what,
                    Peek().pos, Peek().text.c_str()));
    }
    Advance();
    return Status::OK();
  }

  Result<FoPtr> ParseQuantified() {
    if (Peek().kind == TokKind::kForall || Peek().kind == TokKind::kExists) {
      bool is_forall = Advance().kind == TokKind::kForall;
      std::vector<std::string> vars;
      // The first identifier is always a quantified variable; afterwards an
      // identifier followed by '(' starts the body (an atom). A list of
      // variables before a parenthesized body therefore needs the optional
      // dot: "forall x y . (S(x,y) => R(x))".
      while (Peek().kind == TokKind::kIdent &&
             (vars.empty() || tokens_[pos_ + 1].kind != TokKind::kLParen)) {
        vars.push_back(Advance().text);
      }
      if (vars.empty()) {
        return Status::InvalidArgument(
            StrFormat("quantifier without variables at offset %zu",
                      Peek().pos));
      }
      if (Peek().kind == TokKind::kDot) Advance();
      PDB_ASSIGN_OR_RETURN(FoPtr body, ParseQuantified());
      return is_forall ? Fo::Forall(vars, std::move(body))
                       : Fo::Exists(vars, std::move(body));
    }
    return ParseIff();
  }

  Result<FoPtr> ParseIff() {
    PDB_ASSIGN_OR_RETURN(FoPtr lhs, ParseImplication());
    while (Peek().kind == TokKind::kIff) {
      Advance();
      PDB_ASSIGN_OR_RETURN(FoPtr rhs, ParseImplication());
      lhs = Fo::Iff(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FoPtr> ParseImplication() {
    PDB_ASSIGN_OR_RETURN(FoPtr lhs, ParseDisjunction());
    if (Peek().kind == TokKind::kImplies) {
      Advance();
      PDB_ASSIGN_OR_RETURN(FoPtr rhs, ParseImplication());
      return Fo::Implies(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FoPtr> ParseDisjunction() {
    std::vector<FoPtr> parts;
    PDB_ASSIGN_OR_RETURN(FoPtr first, ParseConjunction());
    parts.push_back(std::move(first));
    while (Peek().kind == TokKind::kOr) {
      Advance();
      PDB_ASSIGN_OR_RETURN(FoPtr next, ParseConjunction());
      parts.push_back(std::move(next));
    }
    return parts.size() == 1 ? parts[0] : Fo::Or(std::move(parts));
  }

  Result<FoPtr> ParseConjunction() {
    std::vector<FoPtr> parts;
    PDB_ASSIGN_OR_RETURN(FoPtr first, ParseUnary());
    parts.push_back(std::move(first));
    while (Peek().kind == TokKind::kAnd) {
      Advance();
      PDB_ASSIGN_OR_RETURN(FoPtr next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return parts.size() == 1 ? parts[0] : Fo::And(std::move(parts));
  }

  Result<FoPtr> ParseUnary() {
    switch (Peek().kind) {
      case TokKind::kForall:
      case TokKind::kExists:
        // Quantifiers bind tighter than binary connectives here, so
        // "A & exists y B" parses as A & (exists y B).
        return ParseQuantified();
      case TokKind::kNot: {
        Advance();
        PDB_ASSIGN_OR_RETURN(FoPtr inner, ParseUnary());
        return Fo::Not(std::move(inner));
      }
      case TokKind::kLParen: {
        Advance();
        PDB_ASSIGN_OR_RETURN(FoPtr inner, ParseQuantified());
        PDB_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
        return inner;
      }
      case TokKind::kTrue:
        Advance();
        return Fo::True();
      case TokKind::kFalse:
        Advance();
        return Fo::False();
      case TokKind::kIdent:
        return ParseAtom();
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected token '%s' at offset %zu",
                      Peek().text.c_str(), Peek().pos));
    }
  }

  Result<FoPtr> ParseAtom() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected predicate name at offset %zu", Peek().pos));
    }
    std::string pred = Advance().text;
    PDB_RETURN_NOT_OK(Expect(TokKind::kLParen, "'('"));
    std::vector<Term> args;
    if (Peek().kind != TokKind::kRParen) {
      for (;;) {
        PDB_ASSIGN_OR_RETURN(Term t, ParseTerm());
        args.push_back(std::move(t));
        if (Peek().kind != TokKind::kComma) break;
        Advance();
      }
    }
    PDB_RETURN_NOT_OK(Expect(TokKind::kRParen, "')'"));
    return Fo::MakeAtom(Atom(std::move(pred), std::move(args)));
  }

  Result<Term> ParseTerm() {
    switch (Peek().kind) {
      case TokKind::kIdent:
        return Term::Var(Advance().text);
      case TokKind::kInteger: {
        int64_t v = std::stoll(Advance().text);
        return Term::Const(Value(v));
      }
      case TokKind::kString:
        return Term::Const(Value(Advance().text));
      default:
        return Status::InvalidArgument(
            StrFormat("expected term at offset %zu, found '%s'", Peek().pos,
                      Peek().text.c_str()));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<FoPtr> ParseFo(const std::string& text) {
  Lexer lexer(text);
  PDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSentence();
}

Result<FoPtr> ParseUcqShorthand(const std::string& text) {
  Lexer lexer(text);
  PDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseUcq();
}

}  // namespace pdb
