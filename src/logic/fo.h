/// \file fo.h
/// \brief First-order logic: terms, atoms, and sentence ASTs.
///
/// Queries in pdb are Boolean first-order sentences over the database
/// vocabulary (paper §2). The AST is immutable and shared via
/// `std::shared_ptr`; transformation helpers (substitution, NNF, dual, ...)
/// return new trees.
///
/// Syntax conventions (see parser.h): identifiers in term position are
/// variables; constants are integer literals or single-quoted strings.

#ifndef PDB_LOGIC_FO_H_
#define PDB_LOGIC_FO_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/value.h"
#include "util/status.h"

namespace pdb {

/// A term: either a variable (by name) or a constant value.
class Term {
 public:
  /// Creates a variable term.
  static Term Var(std::string name);
  /// Creates a constant term.
  static Term Const(Value value);

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  /// Variable name; only valid for variables.
  const std::string& var() const;
  /// Constant value; only valid for constants.
  const Value& constant() const;

  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const;

  std::string ToString() const;

 private:
  bool is_variable_ = true;
  std::string var_name_;
  Value value_;
};

/// A relational atom: predicate symbol applied to terms, e.g. S(x, 'b1').
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  Atom() = default;
  Atom(std::string pred, std::vector<Term> arguments)
      : predicate(std::move(pred)), args(std::move(arguments)) {}

  size_t arity() const { return args.size(); }

  /// Sorted set of distinct variable names occurring in the atom.
  std::set<std::string> Variables() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator<(const Atom& other) const;

  std::string ToString() const;
};

class Fo;
/// Shared, immutable FO subtree.
using FoPtr = std::shared_ptr<const Fo>;

/// Node kinds of the FO AST. Implication is desugared by the parser.
enum class FoKind {
  kTrue,
  kFalse,
  kAtom,
  kNot,
  kAnd,     ///< n-ary conjunction
  kOr,      ///< n-ary disjunction
  kExists,  ///< one quantified variable per node
  kForall,
};

/// An immutable first-order formula node.
class Fo {
 public:
  static FoPtr True();
  static FoPtr False();
  static FoPtr MakeAtom(Atom atom);
  /// Negation; collapses double negation and constants.
  static FoPtr Not(FoPtr f);
  /// n-ary conjunction; flattens nested ANDs and folds constants.
  static FoPtr And(std::vector<FoPtr> children);
  static FoPtr And(FoPtr a, FoPtr b) { return And(std::vector<FoPtr>{a, b}); }
  /// n-ary disjunction; flattens nested ORs and folds constants.
  static FoPtr Or(std::vector<FoPtr> children);
  static FoPtr Or(FoPtr a, FoPtr b) { return Or(std::vector<FoPtr>{a, b}); }
  /// a => b, desugared to !a | b.
  static FoPtr Implies(FoPtr a, FoPtr b);
  /// a <=> b, desugared to (a & b) | (!a & !b).
  static FoPtr Iff(FoPtr a, FoPtr b);
  static FoPtr Exists(std::string var, FoPtr body);
  /// Binds several variables at once, innermost-last.
  static FoPtr Exists(const std::vector<std::string>& vars, FoPtr body);
  static FoPtr Forall(std::string var, FoPtr body);
  static FoPtr Forall(const std::vector<std::string>& vars, FoPtr body);

  FoKind kind() const { return kind_; }
  /// The atom; only valid when kind() == kAtom.
  const Atom& atom() const { return atom_; }
  /// Children; for kNot a single child, for kAnd/kOr all conjuncts/disjuncts,
  /// for quantifiers the body.
  const std::vector<FoPtr>& children() const { return children_; }
  /// Quantified variable; only valid for kExists/kForall.
  const std::string& quantified_var() const { return var_; }

  /// Free variables of the formula.
  std::set<std::string> FreeVariables() const;
  /// All predicate symbols used.
  std::set<std::string> Predicates() const;

  std::string ToString() const;

 private:
  friend struct FoBuilder;  // internal factory (fo.cc)
  Fo() = default;

  FoKind kind_ = FoKind::kTrue;
  Atom atom_;
  std::vector<FoPtr> children_;
  std::string var_;
};

/// Substitutes constant `value` for every free occurrence of variable `var`.
FoPtr Substitute(const FoPtr& f, const std::string& var, const Value& value);

/// Renames free variable `from` to variable `to` (capture is the caller's
/// responsibility; used with fresh names only).
FoPtr RenameVariable(const FoPtr& f, const std::string& from,
                     const std::string& to);

/// Negation normal form: pushes negations down to atoms.
FoPtr ToNnf(const FoPtr& f);

/// The dual sentence (paper §2): swap AND/OR and FORALL/EXISTS. Requires the
/// formula to be negation-free (apply after checking with IsNegationFree).
Result<FoPtr> DualQuery(const FoPtr& f);

/// True iff no kNot node occurs anywhere.
bool IsNegationFree(const FoPtr& f);

/// Structural equality of formulas (no semantic reasoning).
bool StructurallyEqual(const FoPtr& a, const FoPtr& b);

/// Evaluates a sentence on a deterministic world: a tuple is "in" the world
/// iff it is present in `world` (probabilities are ignored). Quantifiers
/// range over `domain`. The formula must be a sentence (no free variables).
class Database;  // storage/database.h
bool EvaluateOnWorld(const FoPtr& f, const Database& world,
                     const std::vector<Value>& domain);

}  // namespace pdb

#endif  // PDB_LOGIC_FO_H_
