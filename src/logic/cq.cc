#include "logic/cq.h"

#include <map>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

std::set<std::string> ConjunctiveQuery::Variables() const {
  std::set<std::string> vars;
  for (const Atom& a : atoms_) {
    auto sub = a.Variables();
    vars.insert(sub.begin(), sub.end());
  }
  return vars;
}

std::set<std::string> ConjunctiveQuery::Predicates() const {
  std::set<std::string> preds;
  for (const Atom& a : atoms_) preds.insert(a.predicate);
  return preds;
}

bool ConjunctiveQuery::IsSelfJoinFree() const {
  std::set<std::string> seen;
  for (const Atom& a : atoms_) {
    if (!seen.insert(a.predicate).second) return false;
  }
  return true;
}

ConjunctiveQuery ConjunctiveQuery::RenameVariables(
    const std::string& suffix) const {
  ConjunctiveQuery out;
  for (const Atom& a : atoms_) {
    Atom renamed = a;
    for (Term& t : renamed.args) {
      if (t.is_variable()) t = Term::Var(t.var() + suffix);
    }
    out.AddAtom(std::move(renamed));
  }
  return out;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const std::string& var,
                                              const Value& value) const {
  ConjunctiveQuery out;
  for (const Atom& a : atoms_) {
    Atom subst = a;
    for (Term& t : subst.args) {
      if (t.is_variable() && t.var() == var) t = Term::Const(value);
    }
    out.AddAtom(std::move(subst));
  }
  return out;
}

FoPtr ConjunctiveQuery::ToFo() const {
  if (atoms_.empty()) return Fo::True();
  std::vector<FoPtr> parts;
  parts.reserve(atoms_.size());
  for (const Atom& a : atoms_) parts.push_back(Fo::MakeAtom(a));
  FoPtr body = Fo::And(std::move(parts));
  std::set<std::string> vars = Variables();
  return Fo::Exists(std::vector<std::string>(vars.begin(), vars.end()), body);
}

std::string ConjunctiveQuery::ToString() const {
  if (atoms_.empty()) return "true";
  std::vector<std::string> parts;
  parts.reserve(atoms_.size());
  for (const Atom& a : atoms_) parts.push_back(a.ToString());
  return StrJoin(parts, ", ");
}

std::set<std::string> Ucq::Predicates() const {
  std::set<std::string> preds;
  for (const ConjunctiveQuery& cq : disjuncts_) {
    auto sub = cq.Predicates();
    preds.insert(sub.begin(), sub.end());
  }
  return preds;
}

FoPtr Ucq::ToFo() const {
  if (disjuncts_.empty()) return Fo::False();
  std::vector<FoPtr> parts;
  parts.reserve(disjuncts_.size());
  for (const ConjunctiveQuery& cq : disjuncts_) parts.push_back(cq.ToFo());
  return Fo::Or(std::move(parts));
}

std::string Ucq::ToString() const {
  if (disjuncts_.empty()) return "false";
  std::vector<std::string> parts;
  parts.reserve(disjuncts_.size());
  for (const ConjunctiveQuery& cq : disjuncts_) parts.push_back(cq.ToString());
  return StrJoin(parts, " ; ");
}

namespace {

// Renames bound variables to fresh names; `renaming` maps in-scope source
// names to their fresh replacements.
FoPtr StandardizeApartImpl(const FoPtr& f,
                           std::map<std::string, std::string> renaming,
                           int* counter) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      return f;
    case FoKind::kAtom: {
      Atom atom = f->atom();
      for (Term& t : atom.args) {
        if (t.is_variable()) {
          auto it = renaming.find(t.var());
          if (it != renaming.end()) t = Term::Var(it->second);
        }
      }
      return Fo::MakeAtom(std::move(atom));
    }
    case FoKind::kNot:
      return Fo::Not(StandardizeApartImpl(f->children()[0], renaming, counter));
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> kids;
      kids.reserve(f->children().size());
      for (const FoPtr& c : f->children()) {
        kids.push_back(StandardizeApartImpl(c, renaming, counter));
      }
      return f->kind() == FoKind::kAnd ? Fo::And(std::move(kids))
                                       : Fo::Or(std::move(kids));
    }
    case FoKind::kExists:
    case FoKind::kForall: {
      std::string fresh = StrFormat("v%d", (*counter)++);
      renaming[f->quantified_var()] = fresh;
      FoPtr body = StandardizeApartImpl(f->children()[0], renaming, counter);
      return f->kind() == FoKind::kExists ? Fo::Exists(fresh, std::move(body))
                                          : Fo::Forall(fresh, std::move(body));
    }
  }
  return f;
}

}  // namespace

FoPtr StandardizeApart(const FoPtr& f) {
  int counter = 0;
  return StandardizeApartImpl(f, {}, &counter);
}

namespace {

// Builds the DNF of the quantifier-stripped body: each result entry is an
// atom list representing one disjunct. `f` must be negation- and
// forall-free.
Result<std::vector<std::vector<Atom>>> ToDnf(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kTrue:
      return std::vector<std::vector<Atom>>{{}};
    case FoKind::kFalse:
      return std::vector<std::vector<Atom>>{};
    case FoKind::kAtom:
      return std::vector<std::vector<Atom>>{{f->atom()}};
    case FoKind::kExists:
      return ToDnf(f->children()[0]);
    case FoKind::kOr: {
      std::vector<std::vector<Atom>> out;
      for (const FoPtr& c : f->children()) {
        PDB_ASSIGN_OR_RETURN(auto sub, ToDnf(c));
        for (auto& d : sub) out.push_back(std::move(d));
      }
      return out;
    }
    case FoKind::kAnd: {
      std::vector<std::vector<Atom>> acc{{}};
      for (const FoPtr& c : f->children()) {
        PDB_ASSIGN_OR_RETURN(auto sub, ToDnf(c));
        std::vector<std::vector<Atom>> next;
        next.reserve(acc.size() * sub.size());
        for (const auto& left : acc) {
          for (const auto& right : sub) {
            std::vector<Atom> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case FoKind::kNot:
      return Status::InvalidArgument(
          "FoToUcq requires a negation-free sentence (got '!')");
    case FoKind::kForall:
      return Status::InvalidArgument(
          "FoToUcq requires an existential sentence (got 'forall')");
  }
  return Status::Internal("unreachable FO kind");
}

}  // namespace

Result<Ucq> FoToUcq(const FoPtr& sentence) {
  if (!sentence->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "FoToUcq requires a sentence without free variables");
  }
  FoPtr nnf = ToNnf(sentence);
  FoPtr apart = StandardizeApart(nnf);
  PDB_ASSIGN_OR_RETURN(auto dnf, ToDnf(apart));
  Ucq out;
  for (auto& atoms : dnf) {
    out.AddDisjunct(ConjunctiveQuery(std::move(atoms)));
  }
  return out;
}

}  // namespace pdb
