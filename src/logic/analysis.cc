#include "logic/analysis.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Union-find over 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// at(v): indices of atoms containing variable v.
std::map<std::string, std::set<size_t>> AtomsOfVariables(
    const ConjunctiveQuery& cq) {
  std::map<std::string, std::set<size_t>> at;
  for (size_t i = 0; i < cq.atoms().size(); ++i) {
    for (const std::string& v : cq.atoms()[i].Variables()) {
      at[v].insert(i);
    }
  }
  return at;
}

}  // namespace

bool IsHierarchical(const ConjunctiveQuery& cq) {
  auto at = AtomsOfVariables(cq);
  for (auto it1 = at.begin(); it1 != at.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != at.end(); ++it2) {
      const std::set<size_t>& a = it1->second;
      const std::set<size_t>& b = it2->second;
      bool a_in_b = std::includes(b.begin(), b.end(), a.begin(), a.end());
      bool b_in_a = std::includes(a.begin(), a.end(), b.begin(), b.end());
      if (a_in_b || b_in_a) continue;
      bool disjoint = std::none_of(a.begin(), a.end(), [&](size_t i) {
        return b.count(i) > 0;
      });
      if (!disjoint) return false;
    }
  }
  return true;
}

std::set<std::string> RootVariables(const ConjunctiveQuery& cq) {
  std::set<std::string> roots;
  bool first = true;
  for (const Atom& atom : cq.atoms()) {
    std::set<std::string> vars = atom.Variables();
    if (vars.empty()) continue;  // ground atoms do not constrain roots
    if (first) {
      roots = std::move(vars);
      first = false;
    } else {
      std::set<std::string> inter;
      std::set_intersection(roots.begin(), roots.end(), vars.begin(),
                            vars.end(), std::inserter(inter, inter.begin()));
      roots = std::move(inter);
    }
    if (roots.empty()) break;
  }
  return first ? std::set<std::string>{} : roots;
}

std::vector<ConjunctiveQuery> VariableConnectedComponents(
    const ConjunctiveQuery& cq) {
  const auto& atoms = cq.atoms();
  UnionFind uf(atoms.size());
  std::map<std::string, size_t> first_atom_of_var;
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (const std::string& v : atoms[i].Variables()) {
      auto [it, inserted] = first_atom_of_var.emplace(v, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::map<size_t, std::vector<Atom>> groups;
  std::vector<size_t> order;  // first-seen order of group representatives
  for (size_t i = 0; i < atoms.size(); ++i) {
    size_t root = uf.Find(i);
    if (groups.find(root) == groups.end()) order.push_back(root);
    groups[root].push_back(atoms[i]);
  }
  std::vector<ConjunctiveQuery> out;
  out.reserve(order.size());
  for (size_t root : order) {
    out.push_back(ConjunctiveQuery(std::move(groups[root])));
  }
  return out;
}

std::vector<std::vector<size_t>> GroupBySharedSymbols(
    const std::vector<std::set<std::string>>& symbol_sets) {
  UnionFind uf(symbol_sets.size());
  std::map<std::string, size_t> first_of_symbol;
  for (size_t i = 0; i < symbol_sets.size(); ++i) {
    for (const std::string& s : symbol_sets[i]) {
      auto [it, inserted] = first_of_symbol.emplace(s, i);
      if (!inserted) uf.Union(i, it->second);
    }
  }
  std::map<size_t, std::vector<size_t>> groups;
  std::vector<size_t> order;
  for (size_t i = 0; i < symbol_sets.size(); ++i) {
    size_t root = uf.Find(i);
    if (groups.find(root) == groups.end()) order.push_back(root);
    groups[root].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(order.size());
  for (size_t root : order) out.push_back(std::move(groups[root]));
  return out;
}

namespace {

// Checks one root-variable choice (roots[i] for disjunct i): every R-atom in
// every disjunct must carry its disjunct's root at one common position j_R.
bool SeparatorChoiceWorks(const Ucq& ucq,
                          const std::vector<std::string>& roots) {
  // For every relation symbol, collect the candidate positions and prune.
  std::map<std::string, std::set<size_t>> candidate_positions;
  for (size_t d = 0; d < ucq.size(); ++d) {
    for (const Atom& atom : ucq.disjuncts()[d].atoms()) {
      std::set<size_t> positions;
      for (size_t j = 0; j < atom.args.size(); ++j) {
        const Term& t = atom.args[j];
        if (t.is_variable() && t.var() == roots[d]) positions.insert(j);
      }
      if (positions.empty()) return false;  // root missing from an atom
      auto [it, inserted] =
          candidate_positions.emplace(atom.predicate, positions);
      if (!inserted) {
        std::set<size_t> inter;
        std::set_intersection(it->second.begin(), it->second.end(),
                              positions.begin(), positions.end(),
                              std::inserter(inter, inter.begin()));
        if (inter.empty()) return false;
        it->second = std::move(inter);
      }
    }
  }
  return true;
}

}  // namespace

std::optional<std::vector<std::string>> FindSeparator(const Ucq& ucq) {
  if (ucq.empty()) return std::nullopt;
  // Candidate roots per disjunct.
  std::vector<std::vector<std::string>> candidates;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    std::set<std::string> roots = RootVariables(cq);
    // Every atom (including ground ones) must contain the root, so a
    // disjunct with a ground atom cannot have a separator.
    for (const Atom& atom : cq.atoms()) {
      if (atom.Variables().empty()) return std::nullopt;
    }
    if (roots.empty()) return std::nullopt;
    candidates.emplace_back(roots.begin(), roots.end());
  }
  // Enumerate combinations (capped; real queries have tiny root sets).
  size_t total = 1;
  for (const auto& c : candidates) {
    total *= c.size();
    if (total > 10000) return std::nullopt;
  }
  for (size_t combo = 0; combo < total; ++combo) {
    std::vector<std::string> roots;
    size_t rest = combo;
    for (size_t d = 0; d < candidates.size(); ++d) {
      roots.push_back(candidates[d][rest % candidates[d].size()]);
      rest /= candidates[d].size();
    }
    if (SeparatorChoiceWorks(ucq, roots)) return roots;
  }
  return std::nullopt;
}

namespace {

void CollectPolarities(const FoPtr& f, bool negated,
                       std::map<std::string, Polarity>* out) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      return;
    case FoKind::kAtom: {
      Polarity& p = (*out)[f->atom().predicate];
      (negated ? p.negative : p.positive) = true;
      return;
    }
    case FoKind::kNot:
      CollectPolarities(f->children()[0], !negated, out);
      return;
    default:
      for (const FoPtr& c : f->children()) {
        CollectPolarities(c, negated, out);
      }
  }
}

}  // namespace

std::map<std::string, Polarity> PredicatePolarities(const FoPtr& f) {
  std::map<std::string, Polarity> out;
  CollectPolarities(f, /*negated=*/false, &out);
  return out;
}

bool IsUnate(const FoPtr& f) {
  for (const auto& [pred, pol] : PredicatePolarities(f)) {
    if (pol.positive && pol.negative) return false;
  }
  return true;
}

namespace {

bool ContainsKind(const FoPtr& f, FoKind kind) {
  if (f->kind() == kind) return true;
  for (const FoPtr& c : f->children()) {
    if (ContainsKind(c, kind)) return true;
  }
  return false;
}

}  // namespace

bool IsExistentialSentence(const FoPtr& f) {
  return !ContainsKind(ToNnf(f), FoKind::kForall);
}

bool IsUniversalSentence(const FoPtr& f) {
  return !ContainsKind(ToNnf(f), FoKind::kExists);
}

std::string ComplementSymbol(const std::string& name) { return name + "__c"; }

Result<Relation> ComplementRelation(const Relation& rel,
                                    const std::vector<Value>& domain,
                                    size_t max_tuples) {
  const size_t arity = rel.arity();
  // Per-position candidate values: domain values whose type matches the
  // attribute type (other combinations could never join with stored data).
  std::vector<std::vector<Value>> columns(arity);
  for (size_t j = 0; j < arity; ++j) {
    for (const Value& v : domain) {
      if (v.type() == rel.schema().attribute(j).type) columns[j].push_back(v);
    }
  }
  size_t total = 1;
  for (const auto& col : columns) {
    if (col.empty()) total = 0;
    if (total > 0 && col.size() > max_tuples / total) {
      return Status::ResourceExhausted(
          StrFormat("complement of '%s' over the active domain exceeds %zu "
                    "tuples",
                    rel.name().c_str(), max_tuples));
    }
    total *= col.size();
  }
  Relation out(ComplementSymbol(rel.name()), rel.schema());
  for (size_t count = 0; count < total; ++count) {
    Tuple tuple;
    tuple.reserve(arity);
    size_t rest = count;
    for (size_t j = 0; j < arity; ++j) {
      tuple.push_back(columns[j][rest % columns[j].size()]);
      rest /= columns[j].size();
    }
    double p = 1.0 - rel.ProbOf(tuple);
    PDB_RETURN_NOT_OK(out.AddTuple(std::move(tuple), p));
  }
  return out;
}

namespace {

// Replaces each negative literal !R(t...) with the positive complement atom
// R__c(t...). `f` must be in NNF.
FoPtr ReplaceNegativeLiterals(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
    case FoKind::kAtom:
      return f;
    case FoKind::kNot: {
      const FoPtr& inner = f->children()[0];
      PDB_CHECK(inner->kind() == FoKind::kAtom);  // NNF guarantees literal
      Atom atom = inner->atom();
      atom.predicate = ComplementSymbol(atom.predicate);
      return Fo::MakeAtom(std::move(atom));
    }
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> kids;
      kids.reserve(f->children().size());
      for (const FoPtr& c : f->children()) {
        kids.push_back(ReplaceNegativeLiterals(c));
      }
      return f->kind() == FoKind::kAnd ? Fo::And(std::move(kids))
                                       : Fo::Or(std::move(kids));
    }
    case FoKind::kExists:
      return Fo::Exists(f->quantified_var(),
                        ReplaceNegativeLiterals(f->children()[0]));
    case FoKind::kForall:
      return Fo::Forall(f->quantified_var(),
                        ReplaceNegativeLiterals(f->children()[0]));
  }
  return f;
}

}  // namespace

Result<UnateRewrite> RewriteUnateForUcq(const FoPtr& sentence,
                                        const Database& db,
                                        size_t max_complement_tuples) {
  if (!sentence->FreeVariables().empty()) {
    return Status::InvalidArgument("expected a sentence, found free variables");
  }
  FoPtr nnf = ToNnf(sentence);
  if (!IsUnate(nnf)) {
    return Status::Unsupported(
        "sentence is not unate: some predicate occurs both positively and "
        "negatively");
  }
  UnateRewrite rewrite;
  bool has_forall = ContainsKind(nnf, FoKind::kForall);
  bool has_exists = ContainsKind(nnf, FoKind::kExists);
  if (has_forall && has_exists) {
    return Status::Unsupported(
        "sentence mixes forall and exists; only pure prefixes are supported "
        "(Theorem 4.1 scope)");
  }
  if (has_forall) {
    nnf = ToNnf(Fo::Not(nnf));
    rewrite.complemented = true;
  }
  FoPtr positive = ReplaceNegativeLiterals(nnf);
  PDB_ASSIGN_OR_RETURN(rewrite.ucq, FoToUcq(positive));

  // Extend the database with complement relations for every complemented
  // symbol that the UCQ actually uses.
  rewrite.database = db;
  std::vector<Value> domain = db.ActiveDomain();
  for (const std::string& pred : rewrite.ucq.Predicates()) {
    if (rewrite.database.HasRelation(pred)) continue;
    // pred must be a complement symbol R__c of an existing relation R.
    const std::string suffix = "__c";
    if (pred.size() <= suffix.size() ||
        pred.compare(pred.size() - suffix.size(), suffix.size(), suffix) != 0) {
      return Status::NotFound(
          StrFormat("query references unknown relation '%s'", pred.c_str()));
    }
    std::string base = pred.substr(0, pred.size() - suffix.size());
    PDB_ASSIGN_OR_RETURN(const Relation* rel, rewrite.database.Get(base));
    PDB_ASSIGN_OR_RETURN(
        Relation complement,
        ComplementRelation(*rel, domain, max_complement_tuples));
    PDB_RETURN_NOT_OK(rewrite.database.AddRelation(std::move(complement)));
  }
  return rewrite;
}

}  // namespace pdb
