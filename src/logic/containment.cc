#include "logic/containment.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Backtracking homomorphism search: maps each atom of `from` (in order) to
// some atom of `to` with a consistent variable assignment.
bool ExtendHomomorphism(const std::vector<Atom>& from,
                        const std::vector<Atom>& to, size_t atom_idx,
                        std::map<std::string, Term>* assignment) {
  if (atom_idx == from.size()) return true;
  const Atom& atom = from[atom_idx];
  for (const Atom& target : to) {
    if (target.predicate != atom.predicate ||
        target.args.size() != atom.args.size()) {
      continue;
    }
    // Try mapping atom -> target.
    std::vector<std::pair<std::string, Term>> added;
    bool ok = true;
    for (size_t j = 0; j < atom.args.size() && ok; ++j) {
      const Term& s = atom.args[j];
      const Term& t = target.args[j];
      if (s.is_constant()) {
        ok = (t == s);
      } else {
        auto it = assignment->find(s.var());
        if (it == assignment->end()) {
          assignment->emplace(s.var(), t);
          added.emplace_back(s.var(), t);
        } else {
          ok = (it->second == t);
        }
      }
    }
    if (ok && ExtendHomomorphism(from, to, atom_idx + 1, assignment)) {
      return true;
    }
    for (const auto& [var, term] : added) assignment->erase(var);
  }
  return false;
}

}  // namespace

bool HasHomomorphism(const ConjunctiveQuery& from,
                     const ConjunctiveQuery& to) {
  std::map<std::string, Term> assignment;
  return ExtendHomomorphism(from.atoms(), to.atoms(), 0, &assignment);
}

bool CqImplies(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return HasHomomorphism(q2, q1);
}

bool CqEquivalent(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  return CqImplies(q1, q2) && CqImplies(q2, q1);
}

ConjunctiveQuery MinimizeCq(const ConjunctiveQuery& cq) {
  // First deduplicate syntactically identical atoms.
  std::vector<Atom> atoms;
  for (const Atom& a : cq.atoms()) {
    if (std::find(atoms.begin(), atoms.end(), a) == atoms.end()) {
      atoms.push_back(a);
    }
  }
  // Greedily drop atoms while the original maps homomorphically into the
  // remainder (which then is equivalent: remainder implies original trivially
  // in the other direction since dropping atoms weakens a CQ... the
  // direction needed is original => remainder, which holds syntactically,
  // and remainder => original, which is the homomorphism we test).
  bool changed = true;
  while (changed && atoms.size() > 1) {
    changed = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      std::vector<Atom> without = atoms;
      without.erase(without.begin() + static_cast<ptrdiff_t>(i));
      ConjunctiveQuery candidate(without);
      if (HasHomomorphism(ConjunctiveQuery(atoms), candidate)) {
        atoms = std::move(without);
        changed = true;
        break;
      }
    }
  }
  return ConjunctiveQuery(std::move(atoms));
}

namespace {

// Renders atoms under a given variable renaming, sorted, as the
// canonicalization candidate string.
std::string RenderWithRenaming(
    const std::vector<Atom>& atoms,
    const std::map<std::string, std::string>& renaming) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const Atom& a : atoms) {
    std::string s = a.predicate + "(";
    for (size_t j = 0; j < a.args.size(); ++j) {
      if (j > 0) s += ",";
      const Term& t = a.args[j];
      if (t.is_variable()) {
        s += renaming.at(t.var());
      } else if (t.constant().is_string()) {
        s += "'" + t.constant().AsString() + "'";
      } else {
        s += t.constant().ToString();
      }
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  std::sort(parts.begin(), parts.end());
  return StrJoin(parts, ",");
}

// Signature-based fallback renaming for queries with many variables: order
// variables by an occurrence signature, breaking ties by name.
std::map<std::string, std::string> HeuristicRenaming(
    const std::vector<Atom>& atoms) {
  std::map<std::string, std::string> signature;
  for (const Atom& a : atoms) {
    for (size_t j = 0; j < a.args.size(); ++j) {
      if (a.args[j].is_variable()) {
        signature[a.args[j].var()] +=
            StrFormat("|%s/%zu", a.predicate.c_str(), j);
      }
    }
  }
  std::vector<std::pair<std::string, std::string>> ordered(signature.begin(),
                                                           signature.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) {
              return std::tie(x.second, x.first) < std::tie(y.second, y.first);
            });
  std::map<std::string, std::string> renaming;
  for (size_t i = 0; i < ordered.size(); ++i) {
    renaming[ordered[i].first] = StrFormat("x%zu", i);
  }
  return renaming;
}

}  // namespace

std::string CanonicalCqString(const ConjunctiveQuery& cq) {
  ConjunctiveQuery minimized = MinimizeCq(cq);
  std::set<std::string> var_set = minimized.Variables();
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  if (vars.size() > kExactCanonLimit) {
    return RenderWithRenaming(minimized.atoms(),
                              HeuristicRenaming(minimized.atoms()));
  }
  // Exhaustive: best string over all bijections vars -> x0..x{k-1}.
  std::vector<std::string> targets;
  targets.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) targets.push_back(StrFormat("x%zu", i));
  std::string best;
  std::vector<size_t> perm(vars.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  do {
    std::map<std::string, std::string> renaming;
    for (size_t i = 0; i < vars.size(); ++i) {
      renaming[vars[i]] = targets[perm[i]];
    }
    std::string candidate = RenderWithRenaming(minimized.atoms(), renaming);
    if (best.empty() || candidate < best) best = std::move(candidate);
  } while (std::next_permutation(perm.begin(), perm.end()));
  if (best.empty()) best = RenderWithRenaming(minimized.atoms(), {});
  return best;
}

}  // namespace pdb
