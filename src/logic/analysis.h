/// \file analysis.h
/// \brief Static analysis of queries: hierarchy, separators, components,
/// polarity, and the unate-to-UCQ rewriting from paper §4.

#ifndef PDB_LOGIC_ANALYSIS_H_
#define PDB_LOGIC_ANALYSIS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "logic/cq.h"
#include "logic/fo.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// True iff `cq` is hierarchical (Definition 4.2): for any two variables
/// x, y, at(x) and at(y) are nested or disjoint, where at(v) is the set of
/// atoms (by index) containing v.
bool IsHierarchical(const ConjunctiveQuery& cq);

/// Variables occurring in every atom of `cq` ("root variables").
/// Atoms without variables are ignored; returns empty when cq has no atoms
/// with variables.
std::set<std::string> RootVariables(const ConjunctiveQuery& cq);

/// Splits `cq` into variable-connected components: two atoms are connected
/// when they share a variable. Ground atoms (no variables) form singleton
/// components. Component order is deterministic.
std::vector<ConjunctiveQuery> VariableConnectedComponents(
    const ConjunctiveQuery& cq);

/// Partitions items 0..n-1 given their symbol sets: two items are grouped
/// when their symbol sets intersect (transitively). Returns groups of item
/// indices, deterministically ordered.
std::vector<std::vector<size_t>> GroupBySharedSymbols(
    const std::vector<std::set<std::string>>& symbol_sets);

/// A separator for a UCQ: one root variable per disjunct such that, for
/// every relation symbol R, all R-atoms across all disjuncts carry their
/// disjunct's chosen variable at the same argument position (paper §5).
/// Grounding a separator to the same constant in every disjunct yields
/// independent events across constants.
std::optional<std::vector<std::string>> FindSeparator(const Ucq& ucq);

/// Polarity bookkeeping for unateness: whether each predicate occurs
/// positively and/or under negation (computed on the NNF).
struct Polarity {
  bool positive = false;
  bool negative = false;
};
std::map<std::string, Polarity> PredicatePolarities(const FoPtr& f);

/// True iff every predicate occurs with a single polarity (paper §4).
bool IsUnate(const FoPtr& f);

/// True iff the NNF contains no universal quantifier.
bool IsExistentialSentence(const FoPtr& f);
/// True iff the NNF contains no existential quantifier.
bool IsUniversalSentence(const FoPtr& f);

/// Result of rewriting a unate sentence for UCQ-based evaluation.
struct UnateRewrite {
  /// The UCQ to evaluate on `database`.
  Ucq ucq;
  /// Database extended with complement relations for negated symbols.
  Database database;
  /// True when the original sentence was universal: the caller must report
  /// 1 - P(ucq).
  bool complemented = false;
};

/// Rewrites a unate FO sentence with a purely existential or purely
/// universal quantifier structure into a UCQ over a (possibly extended)
/// database, per the transformation described below Theorem 4.1:
///  * negated symbols are replaced by fresh complement symbols `R__c`
///    materialized over the active domain with probabilities 1 - t.P;
///  * universal sentences are evaluated through their negation, so the
///    returned flag asks the caller to complement the final probability.
/// `max_complement_tuples` guards the domain^arity materialization.
Result<UnateRewrite> RewriteUnateForUcq(const FoPtr& sentence,
                                        const Database& db,
                                        size_t max_complement_tuples = 1000000);

/// Name used for the complement symbol of relation `name`.
std::string ComplementSymbol(const std::string& name);

/// Materializes the complement of `rel` over `domain`^arity: every tuple t
/// gets probability 1 - p_rel(t) (so tuples absent from rel get 1).
Result<Relation> ComplementRelation(const Relation& rel,
                                    const std::vector<Value>& domain,
                                    size_t max_tuples);

}  // namespace pdb

#endif  // PDB_LOGIC_ANALYSIS_H_
