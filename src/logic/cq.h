/// \file cq.h
/// \brief Conjunctive queries (CQ) and unions of conjunctive queries (UCQ).
///
/// A Boolean conjunctive query is the existential closure of a set of atoms
/// (Eq. 6 in the paper); a UCQ is a disjunction of CQs. These are the query
/// classes for which the dichotomy theorem (paper §4) and the lifted
/// inference rules (paper §5) are implemented.

#ifndef PDB_LOGIC_CQ_H_
#define PDB_LOGIC_CQ_H_

#include <set>
#include <string>
#include <vector>

#include "logic/fo.h"
#include "util/status.h"

namespace pdb {

/// A Boolean conjunctive query: all variables existentially quantified.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  explicit ConjunctiveQuery(std::vector<Atom> atoms)
      : atoms_(std::move(atoms)) {}

  const std::vector<Atom>& atoms() const { return atoms_; }
  size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }

  void AddAtom(Atom atom) { atoms_.push_back(std::move(atom)); }

  /// Sorted set of distinct variables.
  std::set<std::string> Variables() const;
  /// Sorted set of predicate symbols.
  std::set<std::string> Predicates() const;

  /// True iff no predicate symbol occurs in two atoms.
  bool IsSelfJoinFree() const;

  /// Renames every variable v to v + suffix (used to standardize CQs apart
  /// before merging conjunctions).
  ConjunctiveQuery RenameVariables(const std::string& suffix) const;

  /// Substitutes `value` for variable `var` in all atoms.
  ConjunctiveQuery Substitute(const std::string& var,
                              const Value& value) const;

  /// The equivalent FO sentence (existential closure of the conjunction).
  FoPtr ToFo() const;

  std::string ToString() const;

  bool operator==(const ConjunctiveQuery& other) const {
    return atoms_ == other.atoms_;
  }

 private:
  std::vector<Atom> atoms_;
};

/// A union (disjunction) of Boolean conjunctive queries.
class Ucq {
 public:
  Ucq() = default;
  explicit Ucq(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  size_t size() const { return disjuncts_.size(); }
  bool empty() const { return disjuncts_.empty(); }

  void AddDisjunct(ConjunctiveQuery cq) {
    disjuncts_.push_back(std::move(cq));
  }

  std::set<std::string> Predicates() const;

  /// The equivalent FO sentence.
  FoPtr ToFo() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Converts a monotone existential FO sentence to an equivalent UCQ.
/// Requirements (checked): after NNF the formula contains no negation and no
/// universal quantifier, and it has no free variables. Bound variables are
/// standardized apart, then the body is put in disjunctive normal form.
Result<Ucq> FoToUcq(const FoPtr& sentence);

/// Renames bound variables so that every quantifier binds a distinct fresh
/// name ("v0", "v1", ...). Exposed for tests and reused by FoToUcq.
FoPtr StandardizeApart(const FoPtr& f);

}  // namespace pdb

#endif  // PDB_LOGIC_CQ_H_
