#include "logic/fo.h"

#include <algorithm>
#include <functional>

#include "storage/database.h"
#include "util/check.h"

namespace pdb {

// ---------------------------------------------------------------------------
// Term
// ---------------------------------------------------------------------------

Term Term::Var(std::string name) {
  Term t;
  t.is_variable_ = true;
  t.var_name_ = std::move(name);
  return t;
}

Term Term::Const(Value value) {
  Term t;
  t.is_variable_ = false;
  t.value_ = std::move(value);
  return t;
}

const std::string& Term::var() const {
  PDB_CHECK(is_variable_);
  return var_name_;
}

const Value& Term::constant() const {
  PDB_CHECK(!is_variable_);
  return value_;
}

bool Term::operator==(const Term& other) const {
  if (is_variable_ != other.is_variable_) return false;
  return is_variable_ ? var_name_ == other.var_name_ : value_ == other.value_;
}

bool Term::operator<(const Term& other) const {
  if (is_variable_ != other.is_variable_) return is_variable_;
  return is_variable_ ? var_name_ < other.var_name_ : value_ < other.value_;
}

std::string Term::ToString() const {
  if (is_variable_) return var_name_;
  if (value_.is_string()) return "'" + value_.AsString() + "'";
  return value_.ToString();
}

// ---------------------------------------------------------------------------
// Atom
// ---------------------------------------------------------------------------

std::set<std::string> Atom::Variables() const {
  std::set<std::string> vars;
  for (const Term& t : args) {
    if (t.is_variable()) vars.insert(t.var());
  }
  return vars;
}

bool Atom::operator<(const Atom& other) const {
  if (predicate != other.predicate) return predicate < other.predicate;
  return args < other.args;
}

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// Fo construction with local simplification
// ---------------------------------------------------------------------------

// Internal factory with access to Fo's private members (friend of Fo).
struct FoBuilder {
  static FoPtr Build(FoKind kind, Atom atom, std::vector<FoPtr> children,
                     std::string var) {
    auto node = std::shared_ptr<Fo>(new Fo());
    node->kind_ = kind;
    node->atom_ = std::move(atom);
    node->children_ = std::move(children);
    node->var_ = std::move(var);
    return node;
  }
};

FoPtr Fo::True() {
  static const FoPtr kTrueNode =
      FoBuilder::Build(FoKind::kTrue, Atom(), {}, "");
  return kTrueNode;
}

FoPtr Fo::False() {
  static const FoPtr kFalseNode =
      FoBuilder::Build(FoKind::kFalse, Atom(), {}, "");
  return kFalseNode;
}

FoPtr Fo::MakeAtom(Atom atom) {
  return FoBuilder::Build(FoKind::kAtom, std::move(atom), {}, "");
}

FoPtr Fo::Not(FoPtr f) {
  PDB_CHECK(f != nullptr);
  switch (f->kind()) {
    case FoKind::kTrue:
      return False();
    case FoKind::kFalse:
      return True();
    case FoKind::kNot:
      return f->children()[0];
    default:
      return FoBuilder::Build(FoKind::kNot, Atom(), {std::move(f)}, "");
  }
}

FoPtr Fo::And(std::vector<FoPtr> children) {
  std::vector<FoPtr> flat;
  for (FoPtr& c : children) {
    PDB_CHECK(c != nullptr);
    if (c->kind() == FoKind::kTrue) continue;
    if (c->kind() == FoKind::kFalse) return False();
    if (c->kind() == FoKind::kAnd) {
      for (const FoPtr& g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  return FoBuilder::Build(FoKind::kAnd, Atom(), std::move(flat), "");
}

FoPtr Fo::Or(std::vector<FoPtr> children) {
  std::vector<FoPtr> flat;
  for (FoPtr& c : children) {
    PDB_CHECK(c != nullptr);
    if (c->kind() == FoKind::kFalse) continue;
    if (c->kind() == FoKind::kTrue) return True();
    if (c->kind() == FoKind::kOr) {
      for (const FoPtr& g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  return FoBuilder::Build(FoKind::kOr, Atom(), std::move(flat), "");
}

FoPtr Fo::Implies(FoPtr a, FoPtr b) { return Or(Not(std::move(a)), std::move(b)); }

FoPtr Fo::Iff(FoPtr a, FoPtr b) {
  return Or(And(a, b), And(Not(a), Not(b)));
}

FoPtr Fo::Exists(std::string var, FoPtr body) {
  PDB_CHECK(body != nullptr);
  if (body->kind() == FoKind::kTrue || body->kind() == FoKind::kFalse) {
    return body;  // quantifying a constant over a nonempty domain
  }
  return FoBuilder::Build(FoKind::kExists, Atom(), {std::move(body)},
                          std::move(var));
}

FoPtr Fo::Exists(const std::vector<std::string>& vars, FoPtr body) {
  for (size_t i = vars.size(); i-- > 0;) body = Exists(vars[i], std::move(body));
  return body;
}

FoPtr Fo::Forall(std::string var, FoPtr body) {
  PDB_CHECK(body != nullptr);
  if (body->kind() == FoKind::kTrue || body->kind() == FoKind::kFalse) {
    return body;
  }
  return FoBuilder::Build(FoKind::kForall, Atom(), {std::move(body)},
                          std::move(var));
}

FoPtr Fo::Forall(const std::vector<std::string>& vars, FoPtr body) {
  for (size_t i = vars.size(); i-- > 0;) body = Forall(vars[i], std::move(body));
  return body;
}

// ---------------------------------------------------------------------------
// Queries on the AST
// ---------------------------------------------------------------------------

std::set<std::string> Fo::FreeVariables() const {
  std::set<std::string> out;
  switch (kind_) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      break;
    case FoKind::kAtom:
      out = atom_.Variables();
      break;
    case FoKind::kNot:
    case FoKind::kAnd:
    case FoKind::kOr:
      for (const FoPtr& c : children_) {
        auto sub = c->FreeVariables();
        out.insert(sub.begin(), sub.end());
      }
      break;
    case FoKind::kExists:
    case FoKind::kForall:
      out = children_[0]->FreeVariables();
      out.erase(var_);
      break;
  }
  return out;
}

std::set<std::string> Fo::Predicates() const {
  std::set<std::string> out;
  if (kind_ == FoKind::kAtom) {
    out.insert(atom_.predicate);
    return out;
  }
  for (const FoPtr& c : children_) {
    auto sub = c->Predicates();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::string Fo::ToString() const {
  switch (kind_) {
    case FoKind::kTrue:
      return "true";
    case FoKind::kFalse:
      return "false";
    case FoKind::kAtom:
      return atom_.ToString();
    case FoKind::kNot:
      return "!" + children_[0]->ToString();
    case FoKind::kAnd:
    case FoKind::kOr: {
      const char* sep = kind_ == FoKind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      return out + ")";
    }
    case FoKind::kExists:
      return "exists " + var_ + " " + children_[0]->ToString();
    case FoKind::kForall:
      return "forall " + var_ + " " + children_[0]->ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Transformations
// ---------------------------------------------------------------------------

namespace {

FoPtr MapAtomTerms(const FoPtr& f,
                   const std::function<Term(const Term&)>& map_term,
                   const std::string& shadow_var) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      return f;
    case FoKind::kAtom: {
      Atom atom = f->atom();
      for (Term& t : atom.args) t = map_term(t);
      return Fo::MakeAtom(std::move(atom));
    }
    case FoKind::kNot:
      return Fo::Not(MapAtomTerms(f->children()[0], map_term, shadow_var));
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> kids;
      kids.reserve(f->children().size());
      for (const FoPtr& c : f->children()) {
        kids.push_back(MapAtomTerms(c, map_term, shadow_var));
      }
      return f->kind() == FoKind::kAnd ? Fo::And(std::move(kids))
                                       : Fo::Or(std::move(kids));
    }
    case FoKind::kExists:
    case FoKind::kForall: {
      if (f->quantified_var() == shadow_var) return f;  // shadowed
      FoPtr body = MapAtomTerms(f->children()[0], map_term, shadow_var);
      return f->kind() == FoKind::kExists
                 ? Fo::Exists(f->quantified_var(), std::move(body))
                 : Fo::Forall(f->quantified_var(), std::move(body));
    }
  }
  return f;
}

}  // namespace

FoPtr Substitute(const FoPtr& f, const std::string& var, const Value& value) {
  return MapAtomTerms(
      f,
      [&](const Term& t) {
        if (t.is_variable() && t.var() == var) return Term::Const(value);
        return t;
      },
      var);
}

FoPtr RenameVariable(const FoPtr& f, const std::string& from,
                     const std::string& to) {
  return MapAtomTerms(
      f,
      [&](const Term& t) {
        if (t.is_variable() && t.var() == from) return Term::Var(to);
        return t;
      },
      from);
}

FoPtr ToNnf(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
    case FoKind::kAtom:
      return f;
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : f->children()) kids.push_back(ToNnf(c));
      return f->kind() == FoKind::kAnd ? Fo::And(std::move(kids))
                                       : Fo::Or(std::move(kids));
    }
    case FoKind::kExists:
      return Fo::Exists(f->quantified_var(), ToNnf(f->children()[0]));
    case FoKind::kForall:
      return Fo::Forall(f->quantified_var(), ToNnf(f->children()[0]));
    case FoKind::kNot: {
      const FoPtr& g = f->children()[0];
      switch (g->kind()) {
        case FoKind::kTrue:
          return Fo::False();
        case FoKind::kFalse:
          return Fo::True();
        case FoKind::kAtom:
          return f;  // literal, already NNF
        case FoKind::kNot:
          return ToNnf(g->children()[0]);
        case FoKind::kAnd:
        case FoKind::kOr: {
          std::vector<FoPtr> kids;
          for (const FoPtr& c : g->children()) kids.push_back(ToNnf(Fo::Not(c)));
          return g->kind() == FoKind::kAnd ? Fo::Or(std::move(kids))
                                           : Fo::And(std::move(kids));
        }
        case FoKind::kExists:
          return Fo::Forall(g->quantified_var(),
                            ToNnf(Fo::Not(g->children()[0])));
        case FoKind::kForall:
          return Fo::Exists(g->quantified_var(),
                            ToNnf(Fo::Not(g->children()[0])));
      }
      break;
    }
  }
  return f;
}

Result<FoPtr> DualQuery(const FoPtr& f) {
  switch (f->kind()) {
    case FoKind::kTrue:
      return Fo::False();
    case FoKind::kFalse:
      return Fo::True();
    case FoKind::kAtom:
      return f;
    case FoKind::kNot:
      return Status::InvalidArgument(
          "dual query is defined for negation-free sentences");
    case FoKind::kAnd:
    case FoKind::kOr: {
      std::vector<FoPtr> kids;
      for (const FoPtr& c : f->children()) {
        PDB_ASSIGN_OR_RETURN(FoPtr d, DualQuery(c));
        kids.push_back(std::move(d));
      }
      return f->kind() == FoKind::kAnd ? Fo::Or(std::move(kids))
                                       : Fo::And(std::move(kids));
    }
    case FoKind::kExists: {
      PDB_ASSIGN_OR_RETURN(FoPtr d, DualQuery(f->children()[0]));
      return Fo::Forall(f->quantified_var(), std::move(d));
    }
    case FoKind::kForall: {
      PDB_ASSIGN_OR_RETURN(FoPtr d, DualQuery(f->children()[0]));
      return Fo::Exists(f->quantified_var(), std::move(d));
    }
  }
  return Status::Internal("unreachable FO kind");
}

bool IsNegationFree(const FoPtr& f) {
  if (f->kind() == FoKind::kNot) return false;
  for (const FoPtr& c : f->children()) {
    if (!IsNegationFree(c)) return false;
  }
  return true;
}

bool StructurallyEqual(const FoPtr& a, const FoPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case FoKind::kTrue:
    case FoKind::kFalse:
      return true;
    case FoKind::kAtom:
      return a->atom() == b->atom();
    case FoKind::kExists:
    case FoKind::kForall:
      if (a->quantified_var() != b->quantified_var()) return false;
      break;
    default:
      break;
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

bool EvaluateOnWorld(const FoPtr& f, const Database& world,
                     const std::vector<Value>& domain) {
  switch (f->kind()) {
    case FoKind::kTrue:
      return true;
    case FoKind::kFalse:
      return false;
    case FoKind::kAtom: {
      const Atom& atom = f->atom();
      Tuple tuple;
      tuple.reserve(atom.args.size());
      for (const Term& t : atom.args) {
        PDB_CHECK(t.is_constant());  // sentence fully grounded at this point
        tuple.push_back(t.constant());
      }
      auto rel = world.Get(atom.predicate);
      return rel.ok() && (*rel)->Contains(tuple);
    }
    case FoKind::kNot:
      return !EvaluateOnWorld(f->children()[0], world, domain);
    case FoKind::kAnd:
      for (const FoPtr& c : f->children()) {
        if (!EvaluateOnWorld(c, world, domain)) return false;
      }
      return true;
    case FoKind::kOr:
      for (const FoPtr& c : f->children()) {
        if (EvaluateOnWorld(c, world, domain)) return true;
      }
      return false;
    case FoKind::kExists:
      for (const Value& v : domain) {
        if (EvaluateOnWorld(Substitute(f->children()[0], f->quantified_var(), v),
                            world, domain)) {
          return true;
        }
      }
      return false;
    case FoKind::kForall:
      for (const Value& v : domain) {
        if (!EvaluateOnWorld(
                Substitute(f->children()[0], f->quantified_var(), v), world,
                domain)) {
          return false;
        }
      }
      return true;
  }
  return false;
}

}  // namespace pdb
