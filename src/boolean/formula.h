/// \file formula.h
/// \brief Hash-consed Boolean formula DAGs.
///
/// Lineages of queries (paper §7 and appendix) are Boolean formulas over one
/// variable per database tuple. The manager hash-conses nodes — structural
/// equality is pointer equality — which gives the DPLL counter's formula
/// cache (paper §7, "caching") and keeps lineages deduplicated.
///
/// Construction applies cheap local simplifications: constant folding,
/// flattening of nested AND/OR, deduplication and sorting of children,
/// double-negation elimination, and complementary-literal annihilation.

#ifndef PDB_BOOLEAN_FORMULA_H_
#define PDB_BOOLEAN_FORMULA_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pdb {

/// Index of a formula node within its manager.
using NodeId = uint32_t;
/// Index of a Boolean variable.
using VarId = uint32_t;

/// 128-bit canonical structural signature of a subformula. Two nodes — in
/// the same manager or in different ones — receive the same signature iff
/// they are structurally equal as *unordered* formulas over the same VarIds:
/// AND/OR child signatures are sorted before combining, so the signature is
/// independent of the manager-local NodeId order in which children happen to
/// be stored. This is what makes signatures stable across the per-query
/// managers and the `ExportTo` clones used by parallel component solving,
/// and hence usable as cross-manager cache keys (wmc/wmc_cache.h).
struct FormulaSignature {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const FormulaSignature& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator<(const FormulaSignature& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

enum class FormulaKind : uint8_t {
  kFalse,
  kTrue,
  kVar,
  kNot,
  kAnd,
  kOr,
};

/// Owns and hash-conses Boolean formula nodes.
class FormulaManager {
 public:
  FormulaManager();

  NodeId False() const { return 0; }
  NodeId True() const { return 1; }
  /// The node for variable `var`.
  NodeId Var(VarId var);
  /// Negation (simplifying).
  NodeId Not(NodeId f);
  /// n-ary conjunction (simplifying).
  NodeId And(std::vector<NodeId> children);
  NodeId And(NodeId a, NodeId b) { return And(std::vector<NodeId>{a, b}); }
  /// n-ary disjunction (simplifying).
  NodeId Or(std::vector<NodeId> children);
  NodeId Or(NodeId a, NodeId b) { return Or(std::vector<NodeId>{a, b}); }

  FormulaKind kind(NodeId f) const { return nodes_[f].kind; }
  /// Variable of a kVar node.
  VarId var(NodeId f) const { return nodes_[f].var; }
  /// Children of a kNot/kAnd/kOr node.
  std::span<const NodeId> children(NodeId f) const;

  bool is_const(NodeId f) const { return f <= 1; }
  bool is_literal(NodeId f) const {
    return kind(f) == FormulaKind::kVar ||
           (kind(f) == FormulaKind::kNot &&
            kind(children(f)[0]) == FormulaKind::kVar);
  }

  /// Sorted distinct variables of the subformula rooted at `f` (cached).
  const std::vector<VarId>& VarsOf(NodeId f);

  /// Canonical structural signature of the subformula rooted at `f`
  /// (memoized per node). See FormulaSignature for the stability guarantee.
  FormulaSignature SignatureOf(NodeId f);

  /// Truth value under `assignment` (indexed by VarId; variables beyond the
  /// vector are false).
  bool Evaluate(NodeId f, const std::vector<bool>& assignment) const;

  /// f with variable `var` fixed to `value`, simplified. Memoized across
  /// calls; see ClearCofactorCache().
  NodeId Cofactor(NodeId f, VarId var, bool value);

  /// Number of distinct nodes created so far (including terminals).
  size_t NumNodes() const { return nodes_.size(); }

  /// Number of DAG nodes reachable from `f`.
  size_t CountReachable(NodeId f) const;

  /// Clones the subDAG rooted at `root` into `dst` (which must be freshly
  /// constructed) and returns the corresponding root in `dst`. The clone is
  /// a raw structural copy — no re-simplification — performed in ascending
  /// NodeId order, so the old→new id mapping is strictly monotone.
  /// Variable ids are preserved. Consequently every id-order-sensitive
  /// operation (sorted ∧/∨ child lists, DPLL component grouping, variable
  /// choice) behaves identically in the clone, which is what makes parallel
  /// DPLL component solving bit-identical to the sequential search. Reads
  /// `this` const-only: concurrent ExportTo calls from one source manager
  /// into distinct destinations are safe.
  NodeId ExportTo(NodeId root, FormulaManager* dst) const;

  /// Re-interns the subDAGs rooted at `roots` from `src` into `this`
  /// (which, unlike `ExportTo`'s destination, may already hold nodes) and
  /// returns the corresponding roots here, in order. Nodes are replayed in
  /// ascending `src` id order through the public simplifying constructors,
  /// so the result is exactly what building the same formulas directly in
  /// `this` would have produced — structurally deduplicated against
  /// everything already interned, with identical node ids. This is the
  /// merge half of parallel lineage construction: workers ground disjoint
  /// match chunks into private managers (sharing global VarIds), then the
  /// owner absorbs the chunks in deterministic chunk order, making the
  /// merged lineage bit-identical to a sequential build. Reads `src`
  /// const-only.
  std::vector<NodeId> AbsorbFrom(const FormulaManager& src,
                                 const std::vector<NodeId>& roots);

  /// Releases the cofactor memo table (the unique tables stay).
  void ClearCofactorCache() { cofactor_cache_.clear(); }

  std::string ToString(NodeId f) const;

 private:
  struct Node {
    FormulaKind kind;
    VarId var = 0;
    uint32_t child_begin = 0;
    uint32_t child_count = 0;
  };

  struct NodeKey {
    FormulaKind kind;
    VarId var;
    std::vector<NodeId> children;
    bool operator==(const NodeKey& other) const {
      return kind == other.kind && var == other.var &&
             children == other.children;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& key) const;
  };

  NodeId Intern(FormulaKind kind, VarId var, std::vector<NodeId> children);

  std::vector<Node> nodes_;
  std::vector<NodeId> child_arena_;
  std::unordered_map<NodeKey, NodeId, NodeKeyHash> unique_;
  std::unordered_map<NodeId, std::vector<VarId>> vars_cache_;
  std::unordered_map<NodeId, FormulaSignature> signature_cache_;
  struct CofKey {
    NodeId f;
    VarId var;
    bool value;
    bool operator==(const CofKey& o) const {
      return f == o.f && var == o.var && value == o.value;
    }
  };
  struct CofKeyHash {
    size_t operator()(const CofKey& k) const;
  };
  std::unordered_map<CofKey, NodeId, CofKeyHash> cofactor_cache_;
};

}  // namespace pdb

#endif  // PDB_BOOLEAN_FORMULA_H_
