#include "boolean/formula.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/hash.h"

namespace pdb {

size_t FormulaManager::NodeKeyHash::operator()(const NodeKey& key) const {
  size_t seed = HashValues(static_cast<int>(key.kind), key.var);
  for (NodeId c : key.children) seed = HashCombine(seed, c);
  return seed;
}

size_t FormulaManager::CofKeyHash::operator()(const CofKey& k) const {
  return HashValues(k.f, k.var, k.value);
}

FormulaManager::FormulaManager() {
  nodes_.push_back({FormulaKind::kFalse, 0, 0, 0});
  nodes_.push_back({FormulaKind::kTrue, 0, 0, 0});
}

std::span<const NodeId> FormulaManager::children(NodeId f) const {
  const Node& n = nodes_[f];
  return {child_arena_.data() + n.child_begin, n.child_count};
}

NodeId FormulaManager::Intern(FormulaKind kind, VarId var,
                              std::vector<NodeId> children) {
  NodeKey key{kind, var, children};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  Node node;
  node.kind = kind;
  node.var = var;
  node.child_begin = static_cast<uint32_t>(child_arena_.size());
  node.child_count = static_cast<uint32_t>(children.size());
  child_arena_.insert(child_arena_.end(), children.begin(), children.end());
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  unique_.emplace(std::move(key), id);
  return id;
}

NodeId FormulaManager::Var(VarId var) {
  return Intern(FormulaKind::kVar, var, {});
}

NodeId FormulaManager::Not(NodeId f) {
  switch (kind(f)) {
    case FormulaKind::kFalse:
      return True();
    case FormulaKind::kTrue:
      return False();
    case FormulaKind::kNot:
      return children(f)[0];
    default:
      return Intern(FormulaKind::kNot, 0, {f});
  }
}

NodeId FormulaManager::And(std::vector<NodeId> in) {
  std::vector<NodeId> flat;
  for (NodeId c : in) {
    if (kind(c) == FormulaKind::kTrue) continue;
    if (kind(c) == FormulaKind::kFalse) return False();
    if (kind(c) == FormulaKind::kAnd) {
      auto kids = children(c);
      flat.insert(flat.end(), kids.begin(), kids.end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x & !x -> false.
  std::unordered_set<NodeId> set(flat.begin(), flat.end());
  for (NodeId c : flat) {
    if (kind(c) == FormulaKind::kNot && set.count(children(c)[0])) {
      return False();
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  return Intern(FormulaKind::kAnd, 0, std::move(flat));
}

NodeId FormulaManager::Or(std::vector<NodeId> in) {
  std::vector<NodeId> flat;
  for (NodeId c : in) {
    if (kind(c) == FormulaKind::kFalse) continue;
    if (kind(c) == FormulaKind::kTrue) return True();
    if (kind(c) == FormulaKind::kOr) {
      auto kids = children(c);
      flat.insert(flat.end(), kids.begin(), kids.end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  std::unordered_set<NodeId> set(flat.begin(), flat.end());
  for (NodeId c : flat) {
    if (kind(c) == FormulaKind::kNot && set.count(children(c)[0])) {
      return True();
    }
  }
  if (flat.empty()) return False();
  if (flat.size() == 1) return flat[0];
  return Intern(FormulaKind::kOr, 0, std::move(flat));
}

const std::vector<VarId>& FormulaManager::VarsOf(NodeId f) {
  auto it = vars_cache_.find(f);
  if (it != vars_cache_.end()) return it->second;
  std::vector<VarId> vars;
  switch (kind(f)) {
    case FormulaKind::kFalse:
    case FormulaKind::kTrue:
      break;
    case FormulaKind::kVar:
      vars.push_back(var(f));
      break;
    default: {
      for (NodeId c : children(f)) {
        const std::vector<VarId>& sub = VarsOf(c);
        std::vector<VarId> merged;
        merged.reserve(vars.size() + sub.size());
        std::set_union(vars.begin(), vars.end(), sub.begin(), sub.end(),
                       std::back_inserter(merged));
        vars = std::move(merged);
      }
    }
  }
  return vars_cache_.emplace(f, std::move(vars)).first->second;
}

namespace {

/// splitmix64 finalizer: the avalanche core all signature mixing runs on.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Distinct per-kind tags so e.g. Not(x) and And({x}) can never alias (the
// manager's simplifier avoids most of these shapes anyway, but the
// signature must not rely on that).
constexpr uint64_t kSigFalseHi = 0x8fb3c5a1d2e4f607ULL;
constexpr uint64_t kSigFalseLo = 0x1c9e7b5a3f8d2460ULL;
constexpr uint64_t kSigTrueHi = 0x4a6d8e0f2b4c6d8eULL;
constexpr uint64_t kSigTrueLo = 0xd5f7192b3d5f7193ULL;
constexpr uint64_t kSigVarHi = 0x9d3f5b7192b3d5f7ULL;
constexpr uint64_t kSigVarLo = 0x28e0f2b4c6d8e0f2ULL;
constexpr uint64_t kSigNotHi = 0x6b8d0f2143658799ULL;
constexpr uint64_t kSigNotLo = 0xfedcba9876543210ULL;
constexpr uint64_t kSigAndHi = 0x0123456789abcdefULL;
constexpr uint64_t kSigAndLo = 0xb7e151628aed2a6bULL;
constexpr uint64_t kSigOrHi = 0x243f6a8885a308d3ULL;
constexpr uint64_t kSigOrLo = 0x13198a2e03707344ULL;

}  // namespace

FormulaSignature FormulaManager::SignatureOf(NodeId f) {
  switch (kind(f)) {
    case FormulaKind::kFalse:
      return {kSigFalseHi, kSigFalseLo};
    case FormulaKind::kTrue:
      return {kSigTrueHi, kSigTrueLo};
    case FormulaKind::kVar:
      // Two independent streams over the VarId: the hi/lo halves stay
      // uncorrelated, giving genuine 128-bit collision resistance.
      return {Mix64(kSigVarHi ^ (var(f) * 0xff51afd7ed558ccdULL)),
              Mix64(kSigVarLo + var(f))};
    default:
      break;
  }
  auto it = signature_cache_.find(f);
  if (it != signature_cache_.end()) return it->second;
  FormulaSignature sig;
  if (kind(f) == FormulaKind::kNot) {
    FormulaSignature child = SignatureOf(children(f)[0]);
    sig = {Mix64(kSigNotHi ^ child.hi), Mix64(kSigNotLo + child.lo)};
  } else {
    // AND/OR: child signatures are combined in *signature* order, not
    // stored order — stored order is sorted by manager-local NodeId, which
    // differs between managers that interned the same formulas in a
    // different sequence. Sorting by signature makes the combine canonical
    // (ties are exact duplicates, for which order is immaterial).
    auto cs = children(f);
    std::vector<FormulaSignature> kids;
    kids.reserve(cs.size());
    for (NodeId c : cs) kids.push_back(SignatureOf(c));
    std::sort(kids.begin(), kids.end());
    bool is_and = kind(f) == FormulaKind::kAnd;
    sig.hi = is_and ? kSigAndHi : kSigOrHi;
    sig.lo = is_and ? kSigAndLo : kSigOrLo;
    for (const FormulaSignature& k : kids) {
      sig.hi = Mix64(sig.hi ^ (k.hi + 0x9e3779b97f4a7c15ULL));
      sig.lo = Mix64(sig.lo + (k.lo ^ 0xc2b2ae3d27d4eb4fULL));
    }
    sig.hi = Mix64(sig.hi + cs.size());
    sig.lo = Mix64(sig.lo ^ (cs.size() * 0x9e3779b97f4a7c15ULL));
  }
  signature_cache_.emplace(f, sig);
  return sig;
}

bool FormulaManager::Evaluate(NodeId f,
                              const std::vector<bool>& assignment) const {
  switch (kind(f)) {
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kVar:
      return var(f) < assignment.size() && assignment[var(f)];
    case FormulaKind::kNot:
      return !Evaluate(children(f)[0], assignment);
    case FormulaKind::kAnd:
      for (NodeId c : children(f)) {
        if (!Evaluate(c, assignment)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (NodeId c : children(f)) {
        if (Evaluate(c, assignment)) return true;
      }
      return false;
  }
  return false;
}

NodeId FormulaManager::Cofactor(NodeId f, VarId v, bool value) {
  switch (kind(f)) {
    case FormulaKind::kFalse:
    case FormulaKind::kTrue:
      return f;
    case FormulaKind::kVar:
      if (var(f) == v) return value ? True() : False();
      return f;
    default:
      break;
  }
  // Prune using the var set: if v does not occur, f is unchanged.
  const std::vector<VarId>& vars = VarsOf(f);
  if (!std::binary_search(vars.begin(), vars.end(), v)) return f;
  CofKey key{f, v, value};
  auto it = cofactor_cache_.find(key);
  if (it != cofactor_cache_.end()) return it->second;
  NodeId result;
  switch (kind(f)) {
    case FormulaKind::kNot:
      result = Not(Cofactor(children(f)[0], v, value));
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      // Copy the child list: recursive cofactors create nodes, which can
      // reallocate the child arena and invalidate the children() span.
      auto cs = children(f);
      std::vector<NodeId> original(cs.begin(), cs.end());
      std::vector<NodeId> kids;
      kids.reserve(original.size());
      for (NodeId c : original) kids.push_back(Cofactor(c, v, value));
      result = kind(f) == FormulaKind::kAnd ? And(std::move(kids))
                                            : Or(std::move(kids));
      break;
    }
    default:
      result = f;
      break;
  }
  cofactor_cache_.emplace(key, result);
  return result;
}

NodeId FormulaManager::ExportTo(NodeId root, FormulaManager* dst) const {
  // The destination must be pristine (terminals only): interning into a
  // populated manager could dedup against pre-existing nodes and break the
  // monotone id mapping the bit-identity guarantee rests on.
  PDB_ASSERT(dst->NumNodes() == 2);
  if (is_const(root)) return root;
  // Collect the reachable set, then clone in ascending id order. Children
  // are always interned before their parents, so ascending NodeId is a
  // topological order and the mapping is monotone.
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    if (is_const(cur) || !seen.insert(cur).second) continue;
    for (NodeId c : children(cur)) stack.push_back(c);
  }
  std::vector<NodeId> order(seen.begin(), seen.end());
  std::sort(order.begin(), order.end());
  std::unordered_map<NodeId, NodeId> map;
  map.reserve(order.size());
  map.emplace(False(), dst->False());
  map.emplace(True(), dst->True());
  for (NodeId old : order) {
    const Node& node = nodes_[old];
    std::vector<NodeId> kids;
    kids.reserve(node.child_count);
    for (NodeId c : children(old)) kids.push_back(map.at(c));
    map.emplace(old, dst->Intern(node.kind, node.var, std::move(kids)));
  }
  return map.at(root);
}

std::vector<NodeId> FormulaManager::AbsorbFrom(
    const FormulaManager& src, const std::vector<NodeId>& roots) {
  // Reachable set across all roots, replayed in ascending src id order:
  // children precede parents (Intern appends), so every child is mapped
  // before its parent is rebuilt. Unlike ExportTo this goes through the
  // public simplifying constructors — the old→new mapping need not be
  // monotone because dedup against pre-existing nodes is the point.
  // Src ids are dense, so the reachable set and the old→new mapping are
  // flat arrays, not hash containers: absorb is the serial merge step of
  // parallel lineage construction, and its per-node cost is the bottleneck
  // there.
  const size_t n = src.nodes_.size();
  std::vector<uint8_t> reachable(n, 0);
  std::vector<NodeId> stack;
  for (NodeId r : roots) {
    if (!src.is_const(r)) stack.push_back(r);
  }
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    if (src.is_const(cur) || reachable[cur]) continue;
    reachable[cur] = 1;
    for (NodeId c : src.children(cur)) stack.push_back(c);
  }
  std::vector<NodeId> map(n, 0);
  map[src.False()] = False();
  map[src.True()] = True();
  std::vector<NodeId> kids;
  for (size_t old = 2; old < n; ++old) {
    if (!reachable[old]) continue;
    const Node& node = src.nodes_[old];
    NodeId mapped = False();
    switch (node.kind) {
      case FormulaKind::kFalse:
        mapped = False();
        break;
      case FormulaKind::kTrue:
        mapped = True();
        break;
      case FormulaKind::kVar:
        mapped = Var(node.var);
        break;
      case FormulaKind::kNot:
        mapped = Not(map[src.children(old)[0]]);
        break;
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        kids.clear();
        kids.reserve(node.child_count);
        for (NodeId c : src.children(old)) kids.push_back(map[c]);
        mapped = node.kind == FormulaKind::kAnd ? And(kids) : Or(kids);
        break;
      }
    }
    map[static_cast<NodeId>(old)] = mapped;
  }
  std::vector<NodeId> out;
  out.reserve(roots.size());
  for (NodeId r : roots) {
    out.push_back(src.is_const(r) ? r : map[r]);
  }
  return out;
}

size_t FormulaManager::CountReachable(NodeId f) const {
  std::unordered_set<NodeId> seen;
  std::vector<NodeId> stack{f};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    for (NodeId c : children(cur)) stack.push_back(c);
  }
  return seen.size();
}

std::string FormulaManager::ToString(NodeId f) const {
  switch (kind(f)) {
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kVar:
      return "x" + std::to_string(var(f));
    case FormulaKind::kNot:
      return "!" + ToString(children(f)[0]);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* sep = kind(f) == FormulaKind::kAnd ? " & " : " | ";
      std::string out = "(";
      auto cs = children(f);
      for (size_t i = 0; i < cs.size(); ++i) {
        if (i > 0) out += sep;
        out += ToString(cs[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace pdb
