#include "boolean/lineage.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "exec/context.h"
#include "exec/join_profile.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "storage/columnar.h"
#include "storage/index_cache.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Assigns one Boolean variable per (relation, row), lazily. Used by the FO
// grounder, which addresses tuples by value rather than by row id.
class VarTable {
 public:
  VarId VarFor(const std::string& relation, size_t row, double prob) {
    auto key = std::make_pair(relation, row);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    VarId id = static_cast<VarId>(vars_.size());
    ids_.emplace(std::move(key), id);
    vars_.push_back({relation, row});
    probs_.push_back(prob);
    return id;
  }

  std::vector<LineageVar> TakeVars() { return std::move(vars_); }
  std::vector<double> TakeProbs() { return std::move(probs_); }

 private:
  std::map<std::pair<std::string, size_t>, VarId> ids_;
  std::vector<LineageVar> vars_;
  std::vector<double> probs_;
};

// The UCQ grounder's variable table: per-relation dense row -> VarId
// arrays instead of an ordered map of (name, row) pairs, so the per-match
// hot path is one vector index instead of a string-keyed tree walk.
// Assignment order (and hence VarId numbering) is identical to VarTable's
// first-use order as long as rows are visited in the same sequence.
class DenseVarTable {
 public:
  VarId VarFor(const Relation* rel, size_t row) {
    std::vector<int64_t>& ids = tables_[rel];
    if (ids.empty()) ids.assign(rel->size(), -1);
    int64_t& id = ids[row];
    if (id < 0) {
      id = static_cast<int64_t>(vars_.size());
      vars_.push_back({rel->name(), row});
      probs_.push_back(rel->prob(row));
    }
    return static_cast<VarId>(id);
  }

  /// Lookup of an already-assigned id (safe to call concurrently with other
  /// readers; the row must have been assigned by a prior VarFor).
  VarId IdOf(const Relation* rel, size_t row) const {
    return static_cast<VarId>(tables_.at(rel)[row]);
  }

  size_t size() const { return vars_.size(); }
  std::vector<LineageVar> TakeVars() { return std::move(vars_); }
  std::vector<double> TakeProbs() { return std::move(probs_); }

 private:
  std::unordered_map<const Relation*, std::vector<int64_t>> tables_;
  std::vector<LineageVar> vars_;
  std::vector<double> probs_;
};

// Recursive grounding of an FO formula with an environment binding
// variables to values.
class FoGrounder {
 public:
  FoGrounder(const Database& db, const std::vector<Value>& domain,
             FormulaManager* mgr, VarTable* vars)
      : db_(db), domain_(domain), mgr_(mgr), vars_(vars) {}

  Result<NodeId> Ground(const FoPtr& f,
                        std::map<std::string, Value>* env) {
    switch (f->kind()) {
      case FoKind::kTrue:
        return mgr_->True();
      case FoKind::kFalse:
        return mgr_->False();
      case FoKind::kAtom:
        return GroundAtom(f->atom(), *env);
      case FoKind::kNot: {
        PDB_ASSIGN_OR_RETURN(NodeId c, Ground(f->children()[0], env));
        return mgr_->Not(c);
      }
      case FoKind::kAnd:
      case FoKind::kOr: {
        std::vector<NodeId> kids;
        kids.reserve(f->children().size());
        for (const FoPtr& c : f->children()) {
          PDB_ASSIGN_OR_RETURN(NodeId g, Ground(c, env));
          kids.push_back(g);
        }
        return f->kind() == FoKind::kAnd ? mgr_->And(std::move(kids))
                                         : mgr_->Or(std::move(kids));
      }
      case FoKind::kExists:
      case FoKind::kForall: {
        std::vector<NodeId> kids;
        kids.reserve(domain_.size());
        const std::string& var = f->quantified_var();
        // Shadowing: remember any outer binding and restore it.
        auto outer = env->find(var);
        std::optional<Value> saved;
        if (outer != env->end()) saved = outer->second;
        for (const Value& v : domain_) {
          (*env)[var] = v;
          PDB_ASSIGN_OR_RETURN(NodeId g, Ground(f->children()[0], env));
          kids.push_back(g);
        }
        if (saved.has_value()) {
          (*env)[var] = *saved;
        } else {
          env->erase(var);
        }
        return f->kind() == FoKind::kExists ? mgr_->Or(std::move(kids))
                                            : mgr_->And(std::move(kids));
      }
    }
    return Status::Internal("unreachable FO kind");
  }

 private:
  Result<NodeId> GroundAtom(const Atom& atom,
                            const std::map<std::string, Value>& env) {
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(atom.predicate));
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          StrFormat("atom %s has arity %zu but relation has arity %zu",
                    atom.ToString().c_str(), atom.arity(), rel->arity()));
    }
    Tuple tuple;
    tuple.reserve(atom.arity());
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        auto it = env.find(t.var());
        if (it == env.end()) {
          return Status::InvalidArgument(
              StrFormat("unbound variable '%s' in atom %s", t.var().c_str(),
                        atom.ToString().c_str()));
        }
        tuple.push_back(it->second);
      }
    }
    auto row = rel->Find(tuple);
    if (!row.ok()) return mgr_->False();  // missing tuple: probability 0
    double p = rel->prob(*row);
    if (p == 1.0) return mgr_->True();
    if (p == 0.0) return mgr_->False();
    return mgr_->Var(vars_->VarFor(atom.predicate, *row, p));
  }

  const Database& db_;
  const std::vector<Value>& domain_;
  FormulaManager* mgr_;
  VarTable* vars_;
};

// The naive backtracking CQ matcher: joins atoms in syntactic order,
// re-derives bound positions per visit, binds variables through a
// name-keyed map. Kept verbatim (minus the old per-visit identity-vector
// allocation for unbound atoms) as the reference the compiled engine is
// differentially tested against: it emits matches in lexicographic order
// of the per-atom row vector, because hash-index buckets list rows in
// ascending order and full scans do too.
class ReferenceCqMatcher {
 public:
  ReferenceCqMatcher(const ConjunctiveQuery& cq, const Database& db)
      : cq_(cq), db_(db) {}

  Status Run(const std::function<void(const CqMatch&)>& callback) {
    const auto& atoms = cq_.atoms();
    relations_.resize(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) {
      PDB_ASSIGN_OR_RETURN(relations_[i], db_.Get(atoms[i].predicate));
      if (relations_[i]->arity() != atoms[i].arity()) {
        return Status::InvalidArgument(
            StrFormat("atom %s arity mismatch with relation (%zu vs %zu)",
                      atoms[i].ToString().c_str(), atoms[i].arity(),
                      relations_[i]->arity()));
      }
    }
    match_.atom_rows.resize(atoms.size());
    Recurse(0, callback);
    return Status::OK();
  }

 private:
  void Recurse(size_t atom_idx,
               const std::function<void(const CqMatch&)>& callback) {
    if (atom_idx == cq_.atoms().size()) {
      callback(match_);
      return;
    }
    const Atom& atom = cq_.atoms()[atom_idx];
    const Relation& rel = *relations_[atom_idx];
    // Determine bound positions and their required values; also detect
    // repeated variables within the atom.
    std::vector<size_t> bound_pos;
    Tuple bound_vals;
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& t = atom.args[j];
      if (t.is_constant()) {
        bound_pos.push_back(j);
        bound_vals.push_back(t.constant());
      } else {
        auto it = env_.find(t.var());
        if (it != env_.end()) {
          bound_pos.push_back(j);
          bound_vals.push_back(it->second);
        }
      }
    }
    auto process_row = [&](size_t row) {
      const Tuple& tuple = rel.tuple(row);
      // Bind the free variables of this atom; verify repeated variables.
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t j = 0; j < atom.args.size() && ok; ++j) {
        const Term& t = atom.args[j];
        if (t.is_constant()) continue;
        auto it = env_.find(t.var());
        if (it == env_.end()) {
          env_.emplace(t.var(), tuple[j]);
          newly_bound.push_back(t.var());
        } else {
          ok = (it->second == tuple[j]);
        }
      }
      if (ok) {
        match_.atom_rows[atom_idx] = {atom.predicate, row};
        Recurse(atom_idx + 1, callback);
      }
      for (const std::string& v : newly_bound) env_.erase(v);
    };
    if (!bound_pos.empty()) {
      const HashIndex& index = IndexFor(atom_idx, rel, bound_pos);
      for (size_t row : index.Lookup(bound_vals)) process_row(row);
    } else {
      // Iterate rows directly instead of materialising an identity vector.
      for (size_t row = 0; row < rel.size(); ++row) process_row(row);
    }
  }

  const HashIndex& IndexFor(size_t atom_idx, const Relation& rel,
                            const std::vector<size_t>& bound_pos) {
    auto key = std::make_pair(atom_idx, bound_pos);
    auto it = indexes_.find(key);
    if (it == indexes_.end()) {
      it = indexes_.emplace(key, HashIndex(rel, bound_pos)).first;
    }
    return it->second;
  }

  const ConjunctiveQuery& cq_;
  const Database& db_;
  std::vector<const Relation*> relations_;
  std::map<std::string, Value> env_;
  CqMatch match_;
  std::map<std::pair<size_t, std::vector<size_t>>, HashIndex> indexes_;
};

// ---------------------------------------------------------------------------
// Compiled join programs
// ---------------------------------------------------------------------------

// One column of a join step's index key: either a constant from the query
// or a slot bound by an earlier step.
struct JoinKeyPart {
  uint32_t col = 0;
  int32_t slot = -1;  // >= 0: runtime slot; < 0: use `constant`
  Value constant;
};

// One atom of the compiled program, in execution order. All column
// classification (key / first-binding / repeated-variable check) happens
// once at compile time; the runtime touches dense slot arrays only.
struct JoinStep {
  const Relation* rel = nullptr;
  uint32_t atom_index = 0;  // position in cq.atoms()
  std::vector<size_t> key_cols;
  std::vector<JoinKeyPart> key_parts;  // aligned with key_cols
  /// (column, slot): first occurrence of a variable — bind the slot.
  std::vector<std::pair<uint32_t, uint32_t>> binds;
  /// (column, first column): variable repeated within this atom — verify
  /// equality between the two columns of the candidate tuple itself (the
  /// slot is only bound later in the same visit, so it cannot be used).
  std::vector<std::pair<uint32_t, uint32_t>> checks;
};

// Where a slot's value comes from: the execution step and column that
// first bound it. The columnar executor uses this to pick the dictionary
// whose code space the slot carries.
struct SlotSource {
  uint32_t step = 0;
  uint32_t col = 0;
};

// A CQ lowered to a slot-based join program.
struct CompiledJoin {
  std::vector<JoinStep> steps;           // in execution order
  std::vector<const Relation*> by_atom;  // indexed by original atom index
  std::vector<SlotSource> slot_sources;  // indexed by slot id
  size_t num_slots = 0;
  size_t num_atoms = 0;
  /// Chosen executor path (see ColumnarMode); the executor may still fall
  /// back to rows if a composite key space overflows 64 bits.
  bool use_columnar = false;
  /// Per execution-order step: the cost model's estimated rows per
  /// upstream partial match at ordering time (-1 when no statistics were
  /// consulted). Feeds EXPLAIN's estimate-vs-actual comparison.
  std::vector<double> step_estimates;
};

// Greedy cost-based ordering: at each step pick the atom with the
// smallest estimated result cardinality — relation size divided by the
// distinct-value count of the bound columns (constants plus variables
// bound by already-ordered atoms). With two or more bound columns the
// divisor is the *composite* distinct count (DistinctComposite over the
// columnar image — the same statistic ColumnarIndex's buckets expose), so
// correlated key pairs are not overestimated the way the classic
// independence product would; a composite that overflows 64 bits falls
// back to the per-column product. Distinct counts come from the columnar
// dictionaries (`stats`, aligned with `atoms`). Ties break towards more
// bound positions (a tighter probe), then the smaller relation, then
// syntactic position — all deterministic. When `stats` is empty (callers
// that skipped the dictionaries) the estimate degrades to the old
// bound-count greedy.
std::vector<size_t> OrderAtoms(
    const std::vector<Atom>& atoms, const std::vector<const Relation*>& rels,
    const std::vector<std::shared_ptr<const ColumnarRelation>>& stats,
    AtomOrderPolicy policy, std::vector<double>* estimates) {
  std::vector<size_t> order(atoms.size());
  estimates->assign(atoms.size(), -1.0);
  if (policy == AtomOrderPolicy::kSyntactic) {
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    return order;
  }
  const bool have_stats = stats.size() == atoms.size();
  std::vector<bool> chosen(atoms.size(), false);
  std::map<std::string, bool> bound_vars;
  // Composite distinct counts are O(rows) scans; memoize per (atom, bound
  // column set) since the same set recurs across ordering steps.
  std::vector<std::map<std::vector<size_t>, size_t>> composite_memo(
      atoms.size());
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = atoms.size();
    double best_est = 0.0;
    size_t best_bound = 0;
    size_t best_size = 0;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (chosen[i]) continue;
      size_t bound = 0;
      std::vector<size_t> bound_cols;
      for (size_t j = 0; j < atoms[i].args.size(); ++j) {
        const Term& t = atoms[i].args[j];
        if (!t.is_constant() && !bound_vars.count(t.var())) continue;
        ++bound;
        bound_cols.push_back(j);
      }
      double est = static_cast<double>(rels[i]->size());
      if (have_stats && !bound_cols.empty()) {
        size_t composite = 0;
        if (bound_cols.size() >= 2) {
          auto [it, inserted] = composite_memo[i].try_emplace(bound_cols, 0);
          if (inserted) it->second = DistinctComposite(*stats[i], bound_cols);
          composite = it->second;
        }
        if (composite > 0) {
          est /= static_cast<double>(composite);
        } else {
          // Single bound column, or composite overflow: independence.
          for (size_t j : bound_cols) {
            size_t distinct = stats[i]->distinct(j);
            est = distinct > 0 ? est / static_cast<double>(distinct) : 0.0;
          }
        }
      }
      bool better;
      if (best == atoms.size()) {
        better = true;
      } else if (have_stats && est != best_est) {
        better = est < best_est;
      } else if (bound != best_bound) {
        better = bound > best_bound;
      } else {
        better = rels[i]->size() < best_size;
      }
      if (better) {
        best = i;
        best_est = est;
        best_bound = bound;
        best_size = rels[i]->size();
      }
    }
    chosen[best] = true;
    order[step] = best;
    if (have_stats) (*estimates)[step] = best_est;
    for (const Term& t : atoms[best].args) {
      if (t.is_variable()) bound_vars[t.var()] = true;
    }
  }
  return order;
}

Result<CompiledJoin> CompileJoin(const ConjunctiveQuery& cq,
                                 const Database& db,
                                 const GroundingOptions& options) {
  const std::vector<Atom>& atoms = cq.atoms();
  CompiledJoin plan;
  plan.num_atoms = atoms.size();
  plan.by_atom.resize(atoms.size());
  size_t max_rows = 0;
  for (size_t i = 0; i < atoms.size(); ++i) {
    PDB_ASSIGN_OR_RETURN(plan.by_atom[i], db.Get(atoms[i].predicate));
    if (plan.by_atom[i]->arity() != atoms[i].arity()) {
      return Status::InvalidArgument(
          StrFormat("atom %s arity mismatch with relation (%zu vs %zu)",
                    atoms[i].ToString().c_str(), atoms[i].arity(),
                    plan.by_atom[i]->arity()));
    }
    max_rows = std::max(max_rows, plan.by_atom[i]->size());
  }
  plan.use_columnar =
      options.columnar == ColumnarMode::kAlways ||
      (options.columnar == ColumnarMode::kAuto &&
       max_rows >= options.columnar_min_rows);
  // Selectivity statistics for the cost model: the per-relation columnar
  // dictionaries, cached on the relations themselves, so the O(n log n)
  // encode is paid once per relation — not per query.
  std::vector<std::shared_ptr<const ColumnarRelation>> stats;
  if (options.order == AtomOrderPolicy::kCostBased) {
    stats.reserve(atoms.size());
    for (const Relation* rel : plan.by_atom) stats.push_back(rel->columnar());
  }
  std::vector<size_t> order = OrderAtoms(atoms, plan.by_atom, stats,
                                         options.order, &plan.step_estimates);
  std::unordered_map<std::string, uint32_t> slot_of_var;
  plan.steps.reserve(atoms.size());
  for (size_t s = 0; s < order.size(); ++s) {
    const size_t i = order[s];
    const Atom& atom = atoms[i];
    JoinStep step;
    step.rel = plan.by_atom[i];
    step.atom_index = static_cast<uint32_t>(i);
    // First column of each variable within this atom, for repeat checks.
    std::unordered_map<std::string, uint32_t> first_col;
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& t = atom.args[j];
      if (t.is_constant()) {
        step.key_cols.push_back(j);
        JoinKeyPart part;
        part.col = static_cast<uint32_t>(j);
        part.constant = t.constant();
        step.key_parts.push_back(std::move(part));
        continue;
      }
      auto in_atom = first_col.find(t.var());
      if (in_atom != first_col.end()) {
        // Repeated variable within this atom: compare the two columns of
        // the candidate tuple directly.
        step.checks.emplace_back(static_cast<uint32_t>(j),
                                 in_atom->second);
        continue;
      }
      first_col.emplace(t.var(), static_cast<uint32_t>(j));
      auto it = slot_of_var.find(t.var());
      if (it == slot_of_var.end()) {
        uint32_t slot = static_cast<uint32_t>(plan.num_slots++);
        slot_of_var.emplace(t.var(), slot);
        step.binds.emplace_back(static_cast<uint32_t>(j), slot);
        plan.slot_sources.push_back(
            {static_cast<uint32_t>(s), static_cast<uint32_t>(j)});
      } else {
        // Bound by an earlier step: part of the index key.
        step.key_cols.push_back(j);
        JoinKeyPart part;
        part.col = static_cast<uint32_t>(j);
        part.slot = static_cast<int32_t>(it->second);
        step.key_parts.push_back(std::move(part));
      }
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

// Runs a compiled join program and materialises the match set in the
// canonical order: lexicographically ascending per-atom row vectors
// (indexed by *original* atom position), which is exactly the order the
// reference matcher streams. Canonicalisation makes downstream VarId
// numbering — and therefore formula structure and DPLL probabilities —
// invariant under join order, executor path, thread count, and cache
// state.
//
// Two execution paths share the control flow. The row path walks stored
// `Tuple` objects and probes `HashIndex` buckets. The vectorized columnar
// path (plan.use_columnar) runs entirely over dictionary codes: slots
// carry `uint32_t` codes, key probes translate codes between column
// dictionaries through precomputed xlat arrays and hit a `ColumnarIndex`
// (CSR for single-column keys — no hashing at all), and repeated-variable
// checks are evaluated once per relation as a batch filter over the code
// arrays instead of per visit. Both paths emit candidate rows in
// ascending row order, so they enumerate the identical match stream.
class JoinExecutor {
 public:
  JoinExecutor(const CompiledJoin& plan, const GroundingOptions& options)
      : plan_(plan),
        exec_(options.exec),
        k_(plan.num_atoms) {}

  // Resolves one hash index per keyed step, through the session cache when
  // the context carries one (misses build under the shard lock; hits are
  // free), otherwise locally for this execution only.
  void PrepareIndexes() {
    IndexCache* cache = exec_ != nullptr ? exec_->index_cache() : nullptr;
    indexes_.resize(plan_.steps.size());
    uint64_t builds = 0;
    uint64_t hits = 0;
    for (size_t s = 0; s < plan_.steps.size(); ++s) {
      const JoinStep& step = plan_.steps[s];
      if (step.key_cols.empty()) continue;
      if (cache != nullptr) {
        bool built = false;
        indexes_[s] = cache->GetOrBuild(*step.rel, step.key_cols, &built);
        built ? ++builds : ++hits;
      } else {
        indexes_[s] =
            std::make_shared<const HashIndex>(*step.rel, step.key_cols);
        ++builds;
      }
    }
    if (exec_ != nullptr) {
      if (builds > 0) exec_->AddIndexBuilds(builds);
      if (hits > 0) exec_->AddIndexCacheHits(hits);
    }
  }

  void Run(const GroundingOptions& options) {
    if (k_ == 0) {
      // An empty conjunction is `true`: exactly one empty match.
      empty_cq_ = true;
      if (exec_ != nullptr) exec_->AddLineageMatches(1);
      RecordProfile(options);
      return;
    }
    step_rows_.assign(plan_.steps.size(), 0);
    // PrepareColumnar declines when a composite key space overflows 64
    // bits; the row path handles those (astronomically wide) keys.
    columnar_ = plan_.use_columnar && PrepareColumnar();
    if (impossible_) {
      // A query constant is absent from its column's dictionary: no row
      // of that step can ever match, so the whole CQ has zero matches.
      if (exec_ != nullptr) exec_->AddLineageMatches(0);
      RecordProfile(options);
      return;
    }
    if (!columnar_) PrepareIndexes();
    // Candidate rows of the first step: an index bucket when the step has
    // a (necessarily all-constant) key, the whole relation otherwise —
    // pre-filtered by the batch check mask on the columnar path.
    const JoinStep& first = plan_.steps[0];
    const std::vector<size_t>* bucket = nullptr;  // row path
    const uint32_t* cbase = nullptr;              // columnar path
    size_t candidates = first.rel->size();
    Tuple const_key;
    if (columnar_) {
      const ColumnarStep& cs = csteps_[0];
      if (!first.key_cols.empty()) {
        uint64_t code = 0;
        for (const ColumnarPart& part : cs.parts) {
          code += part.radix * part.const_code;
        }
        size_t count = 0;
        cs.index->Lookup(code, &cbase, &count);
        candidates = count;
      } else if (cs.use_filtered) {
        cbase = cs.filtered.data();
        candidates = cs.filtered.size();
      }
    } else if (!first.key_cols.empty()) {
      for (const JoinKeyPart& part : first.key_parts) {
        const_key.push_back(part.constant);
      }
      bucket = &indexes_[0]->Lookup(const_key);
      candidates = bucket->size();
    }
    size_t chunks = 1;
    // A one-worker pool cannot overlap anything with the caller, so the
    // fan-out would be pure chunking overhead.
    if (exec_ != nullptr && exec_->pool() != nullptr &&
        exec_->pool()->num_threads() >= 2 &&
        candidates >= options.parallel_min_rows) {
      size_t width = exec_->pool()->num_threads() + 1;  // caller joins in
      chunks = std::min(candidates, 4 * width);
    }
    if (chunks <= 1) {
      WorkerState ws = MakeWorkerState();
      ws.out = &buf_;
      if (columnar_) {
        RunRangeColumnar(ws, cbase, 0, candidates);
      } else {
        RunRange(ws, bucket, 0, candidates);
      }
      step_rows_ = std::move(ws.step_rows);
    } else {
      // Each chunk grounds a contiguous range of first-step candidates
      // into a private buffer; buffers concatenate in chunk order and the
      // per-step match counts sum.
      struct ChunkRun {
        std::vector<uint32_t> out;
        std::vector<uint64_t> step_rows;
      };
      std::vector<ChunkRun> parts =
          ParallelMap<ChunkRun>(exec_, chunks, [&](size_t c) {
            size_t begin = candidates * c / chunks;
            size_t end = candidates * (c + 1) / chunks;
            ChunkRun r;
            WorkerState ws = MakeWorkerState();
            ws.out = &r.out;
            if (columnar_) {
              RunRangeColumnar(ws, cbase, begin, end);
            } else {
              RunRange(ws, bucket, begin, end);
            }
            r.step_rows = std::move(ws.step_rows);
            return r;
          });
      size_t total = 0;
      for (const auto& part : parts) total += part.out.size();
      buf_.reserve(total);
      for (auto& part : parts) {
        buf_.insert(buf_.end(), part.out.begin(), part.out.end());
        for (size_t s = 0; s < part.step_rows.size(); ++s) {
          step_rows_[s] += part.step_rows[s];
        }
      }
    }
    Canonicalize();
    if (exec_ != nullptr) exec_->AddLineageMatches(num_matches());
    RecordProfile(options);
  }

  size_t num_matches() const {
    return empty_cq_ ? 1 : (k_ == 0 ? 0 : buf_.size() / k_);
  }

  /// Rows of canonical match `m`, indexed by original atom position.
  const uint32_t* MatchAt(size_t m) const {
    size_t physical = perm_.empty() ? m : perm_[m];
    return buf_.data() + physical * k_;
  }

  /// Visits matches in canonical order on the calling thread.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (empty_cq_) {
      fn(static_cast<const uint32_t*>(nullptr));
      return;
    }
    const size_t n = num_matches();
    for (size_t m = 0; m < n; ++m) fn(MatchAt(m));
  }

 private:
  struct WorkerState {
    std::vector<const Value*> slots;   // row path: pointers into tuples
    std::vector<uint32_t> cslots;      // columnar path: dictionary codes
    std::vector<Tuple> keys;     // per step, pre-sized key buffers
    std::vector<uint32_t> rows;  // per original atom index
    /// Per execution-order step: rows entered (partial matches that
    /// survived the step). Feeds EXPLAIN ANALYZE's actual cardinalities.
    std::vector<uint64_t> step_rows;
    std::vector<uint32_t>* out = nullptr;
  };

  // One key part on the columnar path: a pre-coded constant, or a slot
  // whose source-dictionary codes translate into this key column's
  // dictionary through `xlat`.
  struct ColumnarPart {
    int32_t slot = -1;        // < 0: use const_code
    uint32_t const_code = 0;  // code of the constant in the key column
    uint64_t radix = 1;       // mixed-radix multiplier of this part
    std::vector<uint32_t> xlat;
  };

  // One bind on the columnar path: write the column's code array entry
  // into the slot.
  struct ColumnarBind {
    const uint32_t* codes = nullptr;
    uint32_t slot = 0;
  };

  // Per-step columnar execution state.
  struct ColumnarStep {
    std::shared_ptr<const ColumnarRelation> cols;
    std::shared_ptr<const ColumnarIndex> index;  // keyed steps only
    std::vector<ColumnarPart> parts;             // aligned with key_parts
    std::vector<ColumnarBind> binds;
    // Repeated-variable checks, evaluated once per execution as a batch
    // filter over the code arrays: keyed steps keep a row mask consulted
    // on each bucket visit; keyless steps shrink to the passing row list
    // outright (so per-visit scans skip failing rows entirely).
    std::vector<uint8_t> pass;       // keyed steps with checks
    std::vector<uint32_t> filtered;  // keyless steps with checks
    bool use_filtered = false;
  };

  WorkerState MakeWorkerState() const {
    WorkerState ws;
    if (columnar_) {
      ws.cslots.resize(plan_.num_slots, 0);
    } else {
      ws.slots.resize(plan_.num_slots, nullptr);
      ws.keys.resize(plan_.steps.size());
      for (size_t s = 0; s < plan_.steps.size(); ++s) {
        ws.keys[s].resize(plan_.steps[s].key_cols.size());
      }
    }
    ws.rows.resize(k_);
    ws.step_rows.assign(plan_.steps.size(), 0);
    return ws;
  }

  // Resolves the columnar image, code index, translation tables, and batch
  // check filters of every step. Returns false to fall back to the row
  // path (composite key code would overflow 64 bits). Sets `impossible_`
  // when a query constant is absent from its column's dictionary.
  bool PrepareColumnar() {
    IndexCache* cache = exec_ != nullptr ? exec_->index_cache() : nullptr;
    uint64_t builds = 0;
    uint64_t hits = 0;
    csteps_.assign(plan_.steps.size(), ColumnarStep{});
    // Pass 1: columnar images — key-part translation tables of later
    // steps need the source step's dictionaries.
    for (size_t s = 0; s < plan_.steps.size(); ++s) {
      const JoinStep& step = plan_.steps[s];
      if (cache != nullptr) {
        bool built = false;
        csteps_[s].cols = cache->GetOrBuildColumnar(*step.rel, &built);
        built ? ++builds : ++hits;
      } else {
        csteps_[s].cols = step.rel->columnar();
      }
    }
    bool ok = true;
    for (size_t s = 0; s < plan_.steps.size() && ok; ++s) {
      const JoinStep& step = plan_.steps[s];
      ColumnarStep& cs = csteps_[s];
      const ColumnarRelation& cols = *cs.cols;
      if (!step.key_cols.empty()) {
        if (cache != nullptr) {
          bool built = false;
          cs.index =
              cache->GetOrBuildColumnarIndex(*step.rel, step.key_cols,
                                             &built);
          built ? ++builds : ++hits;
        } else {
          cs.index =
              std::make_shared<const ColumnarIndex>(cs.cols, step.key_cols);
        }
        if (cs.index->composite_overflow()) {
          ok = false;
          break;
        }
        cs.parts.resize(step.key_parts.size());
        for (size_t p = 0; p < step.key_parts.size(); ++p) {
          const JoinKeyPart& part = step.key_parts[p];
          ColumnarPart& cp = cs.parts[p];
          cp.radix = cs.index->radix(p);
          cp.slot = part.slot;
          if (part.slot < 0) {
            cp.const_code = cols.CodeOf(step.key_cols[p], part.constant);
            if (cp.const_code == ColumnarRelation::kNoCode) {
              impossible_ = true;
            }
          } else {
            const SlotSource& src = plan_.slot_sources[part.slot];
            cp.xlat = BuildCodeTranslation(
                csteps_[src.step].cols->dict(src.col),
                cols.dict(step.key_cols[p]));
          }
        }
      }
      cs.binds.reserve(step.binds.size());
      for (const auto& [col, slot] : step.binds) {
        cs.binds.push_back({cols.codes(col).data(), slot});
      }
      if (!step.checks.empty()) {
        const size_t n = cols.num_rows();
        std::vector<uint8_t> pass(n, 1);
        for (const auto& [col, first] : step.checks) {
          std::vector<uint32_t> xlat =
              BuildCodeTranslation(cols.dict(first), cols.dict(col));
          const uint32_t* f = cols.codes(first).data();
          const uint32_t* c = cols.codes(col).data();
          // kNoCode never equals a valid code, so "first's value absent
          // from col's dictionary" fails the row without a branch.
          for (size_t row = 0; row < n; ++row) {
            if (xlat[f[row]] != c[row]) pass[row] = 0;
          }
        }
        if (step.key_cols.empty()) {
          for (size_t row = 0; row < n; ++row) {
            if (pass[row]) cs.filtered.push_back(static_cast<uint32_t>(row));
          }
          cs.use_filtered = true;
        } else {
          cs.pass = std::move(pass);
        }
      }
    }
    if (exec_ != nullptr) {
      if (builds > 0) exec_->AddIndexBuilds(builds);
      if (hits > 0) exec_->AddIndexCacheHits(hits);
    }
    return ok;
  }

  // Equality checks for repeated variables, then slot binding. Slots are
  // pointers into stored tuples, so a bind is one pointer store and there
  // is nothing to undo on backtrack (re-entry overwrites).
  bool EnterRow(const JoinStep& step, size_t row, WorkerState& ws) const {
    const Tuple& tuple = step.rel->tuple(row);
    for (const auto& [col, first] : step.checks) {
      if (!(tuple[col] == tuple[first])) return false;
    }
    for (const auto& [col, slot] : step.binds) {
      ws.slots[slot] = &tuple[col];
    }
    ws.rows[step.atom_index] = static_cast<uint32_t>(row);
    return true;
  }

  void RunRange(WorkerState& ws, const std::vector<size_t>* bucket,
                size_t begin, size_t end) const {
    const JoinStep& first = plan_.steps[0];
    for (size_t i = begin; i < end; ++i) {
      size_t row = bucket != nullptr ? (*bucket)[i] : i;
      if (EnterRow(first, row, ws)) {
        ++ws.step_rows[0];
        RunFrom(1, ws);
      }
    }
  }

  void RunFrom(size_t s, WorkerState& ws) const {
    if (s == plan_.steps.size()) {
      ws.out->insert(ws.out->end(), ws.rows.begin(), ws.rows.end());
      return;
    }
    const JoinStep& step = plan_.steps[s];
    if (step.key_cols.empty()) {
      const size_t n = step.rel->size();
      for (size_t row = 0; row < n; ++row) {
        if (EnterRow(step, row, ws)) {
          ++ws.step_rows[s];
          RunFrom(s + 1, ws);
        }
      }
      return;
    }
    Tuple& key = ws.keys[s];
    for (size_t p = 0; p < step.key_parts.size(); ++p) {
      const JoinKeyPart& part = step.key_parts[p];
      key[p] = part.slot < 0 ? part.constant : *ws.slots[part.slot];
    }
    for (size_t row : indexes_[s]->Lookup(key)) {
      if (EnterRow(step, row, ws)) {
        ++ws.step_rows[s];
        RunFrom(s + 1, ws);
      }
    }
  }

  // --- Vectorized path: the loops below touch only uint32 code arrays. ---

  // Batch-filter mask (keyed steps), then binds. Keyless steps with checks
  // never reach the mask test: their candidate list is pre-filtered.
  bool EnterRowColumnar(const ColumnarStep& cs, const JoinStep& step,
                        size_t row, WorkerState& ws) const {
    if (!cs.pass.empty() && cs.pass[row] == 0) return false;
    for (const ColumnarBind& bind : cs.binds) {
      ws.cslots[bind.slot] = bind.codes[row];
    }
    ws.rows[step.atom_index] = static_cast<uint32_t>(row);
    return true;
  }

  // First-step candidates: `base[i]` rows when base is non-null (an index
  // bucket or a pre-filtered row list), row `i` itself otherwise.
  void RunRangeColumnar(WorkerState& ws, const uint32_t* base, size_t begin,
                        size_t end) const {
    const JoinStep& first = plan_.steps[0];
    const ColumnarStep& cs = csteps_[0];
    if (plan_.steps.size() == 1) {
      uint32_t* slot_row = &ws.rows[first.atom_index];
      for (size_t i = begin; i < end; ++i) {
        uint32_t row = base != nullptr ? base[i] : static_cast<uint32_t>(i);
        if (!cs.pass.empty() && cs.pass[row] == 0) continue;
        *slot_row = row;
        ++ws.step_rows[0];
        ws.out->insert(ws.out->end(), ws.rows.begin(), ws.rows.end());
      }
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      uint32_t row = base != nullptr ? base[i] : static_cast<uint32_t>(i);
      if (EnterRowColumnar(cs, first, row, ws)) {
        ++ws.step_rows[0];
        RunFromColumnar(1, ws);
      }
    }
  }

  void RunFromColumnar(size_t s, WorkerState& ws) const {
    const JoinStep& step = plan_.steps[s];
    const ColumnarStep& cs = csteps_[s];
    // Candidate rows of this step, as a dense uint32 span: an index bucket
    // (CSR slice or hash bucket) when keyed, the pre-filtered row list or
    // the whole relation otherwise. null base = identity rows [0, count).
    const uint32_t* base = nullptr;
    size_t count = 0;
    if (!step.key_cols.empty()) {
      uint64_t code = 0;
      for (const ColumnarPart& part : cs.parts) {
        uint32_t c = part.slot < 0 ? part.const_code
                                   : part.xlat[ws.cslots[part.slot]];
        // The slot's value is absent from this key column's dictionary:
        // no row of this relation can match the current binding.
        if (c == ColumnarRelation::kNoCode) return;
        code += part.radix * c;
      }
      cs.index->Lookup(code, &base, &count);
    } else if (cs.use_filtered) {
      base = cs.filtered.data();
      count = cs.filtered.size();
    } else {
      count = cs.cols->num_rows();
    }
    if (s + 1 == plan_.steps.size()) {
      // Final step: its binds feed no later probe, so a match is pure
      // row-id bookkeeping — a tight loop with no tuple materialisation.
      uint32_t* slot_row = &ws.rows[step.atom_index];
      for (size_t i = 0; i < count; ++i) {
        uint32_t row = base != nullptr ? base[i] : static_cast<uint32_t>(i);
        if (!cs.pass.empty() && cs.pass[row] == 0) continue;
        *slot_row = row;
        ++ws.step_rows[s];
        ws.out->insert(ws.out->end(), ws.rows.begin(), ws.rows.end());
      }
      return;
    }
    for (size_t i = 0; i < count; ++i) {
      uint32_t row = base != nullptr ? base[i] : static_cast<uint32_t>(i);
      if (EnterRowColumnar(cs, step, row, ws)) {
        ++ws.step_rows[s];
        RunFromColumnar(s + 1, ws);
      }
    }
  }

  // Sorts the match set into canonical (lexicographic) order when the
  // enumeration order deviated from it. With the syntactic join order the
  // stream is already canonical — chunk ranges ascend on the first atom's
  // row and each chunk streams in order — so the common case is a linear
  // is_sorted scan and no permutation.
  void Canonicalize() {
    const size_t n = k_ == 0 ? 0 : buf_.size() / k_;
    if (n <= 1) return;
    auto less = [&](size_t a, size_t b) {
      const uint32_t* pa = buf_.data() + a * k_;
      const uint32_t* pb = buf_.data() + b * k_;
      for (size_t i = 0; i < k_; ++i) {
        if (pa[i] != pb[i]) return pa[i] < pb[i];
      }
      return false;
    };
    bool sorted = true;
    for (size_t m = 1; m < n && sorted; ++m) {
      if (less(m, m - 1)) sorted = false;
    }
    if (sorted) return;
    perm_.resize(n);
    for (size_t m = 0; m < n; ++m) perm_[m] = m;
    std::sort(perm_.begin(), perm_.end(), less);
  }

  // Reports the executed plan — estimates next to actuals, executor-path
  // attribution — into the context's JoinProfile when one is attached.
  void RecordProfile(const GroundingOptions& options) const {
    if (exec_ == nullptr || exec_->join_profile() == nullptr) return;
    JoinPlanProfile profile;
    profile.executed = true;
    profile.use_columnar = plan_.use_columnar;
    profile.columnar_engaged = columnar_;
    profile.matches = num_matches();
    if (impossible_) {
      profile.fallback_reason =
          "query constant absent from dictionary: zero matches";
    } else if (!columnar_ && k_ > 0) {
      if (plan_.use_columnar) {
        profile.fallback_reason =
            "composite key space overflows 64 bits; row path";
      } else if (options.columnar == ColumnarMode::kNever) {
        profile.fallback_reason = "columnar disabled";
      } else {
        profile.fallback_reason =
            "largest relation below columnar_min_rows threshold";
      }
    }
    profile.steps.reserve(plan_.steps.size());
    for (size_t s = 0; s < plan_.steps.size(); ++s) {
      JoinStepProfile sp;
      sp.atom_index = plan_.steps[s].atom_index;
      sp.predicate = plan_.steps[s].rel->name();
      sp.relation_rows = plan_.steps[s].rel->size();
      sp.estimated_rows =
          s < plan_.step_estimates.size() ? plan_.step_estimates[s] : -1.0;
      sp.actual_rows = s < step_rows_.size() ? step_rows_[s] : 0;
      profile.steps.push_back(std::move(sp));
    }
    exec_->join_profile()->AddPlan(std::move(profile));
  }

  const CompiledJoin& plan_;
  ExecContext* exec_;
  const size_t k_;
  bool empty_cq_ = false;
  bool columnar_ = false;    // vectorized path engaged for this run
  bool impossible_ = false;  // a constant missed its dictionary: 0 matches
  std::vector<std::shared_ptr<const HashIndex>> indexes_;
  std::vector<ColumnarStep> csteps_;
  std::vector<uint64_t> step_rows_;  // per-step entered rows, summed
  std::vector<uint32_t> buf_;  // k_ row ids per match, enumeration order
  std::vector<size_t> perm_;   // canonical -> physical; empty = identity
};

}  // namespace

Result<Lineage> BuildLineage(const FoPtr& sentence, const Database& db,
                             FormulaManager* mgr,
                             const std::vector<Value>* domain) {
  if (!sentence->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "lineage requires a sentence without free variables");
  }
  std::vector<Value> active;
  if (domain == nullptr) {
    active = db.ActiveDomain();
    domain = &active;
  }
  VarTable vars;
  FoGrounder grounder(db, *domain, mgr, &vars);
  std::map<std::string, Value> env;
  PDB_ASSIGN_OR_RETURN(NodeId root, grounder.Ground(sentence, &env));
  Lineage lineage;
  lineage.root = root;
  lineage.vars = vars.TakeVars();
  lineage.probs = vars.TakeProbs();
  return lineage;
}

Status EnumerateCqMatchesReference(
    const ConjunctiveQuery& cq, const Database& db,
    const std::function<void(const CqMatch&)>& callback) {
  ReferenceCqMatcher matcher(cq, db);
  return matcher.Run(callback);
}

Status EnumerateCqMatches(const ConjunctiveQuery& cq, const Database& db,
                          const std::function<void(const CqMatch&)>& callback,
                          const GroundingOptions& options) {
  PDB_ASSIGN_OR_RETURN(CompiledJoin plan,
                       CompileJoin(cq, db, options));
  JoinExecutor ex(plan, options);
  ex.Run(options);
  CqMatch match;
  match.atom_rows.resize(plan.num_atoms);
  for (size_t i = 0; i < plan.num_atoms; ++i) {
    match.atom_rows[i].relation = cq.atoms()[i].predicate;
  }
  ex.ForEach([&](const uint32_t* rows) {
    for (size_t i = 0; i < plan.num_atoms; ++i) {
      match.atom_rows[i].row = rows[i];
    }
    callback(match);
  });
  return Status::OK();
}

Result<JoinPlanProfile> PlanCqJoin(const ConjunctiveQuery& cq,
                                   const Database& db,
                                   const GroundingOptions& options) {
  PDB_ASSIGN_OR_RETURN(CompiledJoin plan, CompileJoin(cq, db, options));
  JoinPlanProfile profile;
  profile.executed = false;
  profile.use_columnar = plan.use_columnar;
  if (!plan.use_columnar && plan.num_atoms > 0) {
    profile.fallback_reason =
        options.columnar == ColumnarMode::kNever
            ? "columnar disabled"
            : "largest relation below columnar_min_rows threshold";
  }
  profile.steps.reserve(plan.steps.size());
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    JoinStepProfile sp;
    sp.atom_index = plan.steps[s].atom_index;
    sp.predicate = plan.steps[s].rel->name();
    sp.relation_rows = plan.steps[s].rel->size();
    sp.estimated_rows =
        s < plan.step_estimates.size() ? plan.step_estimates[s] : -1.0;
    profile.steps.push_back(std::move(sp));
  }
  return profile;
}

Result<Lineage> BuildUcqLineage(const Ucq& ucq, const Database& db,
                                FormulaManager* mgr,
                                const GroundingOptions& options) {
  ExecContext* exec = options.exec;
  const size_t nodes_before = mgr->NumNodes();
  DenseVarTable vars;
  std::vector<NodeId> disjunct_nodes;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    PDB_ASSIGN_OR_RETURN(CompiledJoin plan,
                         CompileJoin(cq, db, options));
    JoinExecutor ex(plan, options);
    ex.Run(options);
    const size_t k = plan.num_atoms;
    const size_t num_matches = ex.num_matches();
    std::vector<NodeId> term_nodes;
    term_nodes.reserve(num_matches);
    const bool parallel_build =
        exec != nullptr && exec->pool() != nullptr &&
        exec->pool()->num_threads() >= 2 && k > 0 &&
        num_matches >= options.parallel_min_matches;
    if (!parallel_build) {
      std::vector<NodeId> lits;
      ex.ForEach([&](const uint32_t* rows) {
        lits.clear();
        for (size_t i = 0; i < k; ++i) {
          const Relation* rel = plan.by_atom[i];
          double p = rel->prob(rows[i]);
          if (p == 1.0) continue;  // certain tuple contributes no literal
          lits.push_back(mgr->Var(vars.VarFor(rel, rows[i])));
        }
        term_nodes.push_back(mgr->And(lits));
      });
    } else {
      // Two-phase parallel construction. Phase 1 (sequential, cheap):
      // assign VarIds in canonical first-use order, so every worker shares
      // one global numbering. Phase 2: workers build their chunk's term
      // nodes in private managers; the owner absorbs the chunks in order.
      // AbsorbFrom replays nodes through the simplifying constructors, so
      // the merged manager state — ids included — is exactly what the
      // sequential loop above would have produced.
      ex.ForEach([&](const uint32_t* rows) {
        for (size_t i = 0; i < k; ++i) {
          const Relation* rel = plan.by_atom[i];
          if (rel->prob(rows[i]) == 1.0) continue;
          vars.VarFor(rel, rows[i]);
        }
      });
      struct ChunkBuild {
        std::unique_ptr<FormulaManager> mgr;
        std::vector<NodeId> roots;  // one per match of the chunk
      };
      const size_t width = exec->pool()->num_threads() + 1;
      const size_t chunks = std::min(num_matches, 2 * width);
      std::vector<ChunkBuild> built =
          ParallelMap<ChunkBuild>(exec, chunks, [&](size_t c) {
            ChunkBuild out;
            out.mgr = std::make_unique<FormulaManager>();
            size_t begin = num_matches * c / chunks;
            size_t end = num_matches * (c + 1) / chunks;
            out.roots.reserve(end - begin);
            std::vector<NodeId> lits;
            for (size_t m = begin; m < end; ++m) {
              const uint32_t* rows = ex.MatchAt(m);
              lits.clear();
              for (size_t i = 0; i < k; ++i) {
                const Relation* rel = plan.by_atom[i];
                if (rel->prob(rows[i]) == 1.0) continue;
                lits.push_back(out.mgr->Var(vars.IdOf(rel, rows[i])));
              }
              out.roots.push_back(out.mgr->And(lits));
            }
            return out;
          });
      for (const ChunkBuild& chunk : built) {
        std::vector<NodeId> mapped = mgr->AbsorbFrom(*chunk.mgr,
                                                     chunk.roots);
        term_nodes.insert(term_nodes.end(), mapped.begin(), mapped.end());
      }
    }
    disjunct_nodes.push_back(mgr->Or(std::move(term_nodes)));
  }
  Lineage lineage;
  lineage.root = mgr->Or(std::move(disjunct_nodes));
  lineage.vars = vars.TakeVars();
  lineage.probs = vars.TakeProbs();
  if (exec != nullptr) {
    exec->AddLineageNodes(mgr->NumNodes() - nodes_before);
  }
  return lineage;
}

Result<DnfLineage> BuildUcqDnf(const Ucq& ucq, const Database& db,
                               const GroundingOptions& options) {
  DenseVarTable vars;
  DnfLineage out;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    PDB_ASSIGN_OR_RETURN(CompiledJoin plan,
                         CompileJoin(cq, db, options));
    JoinExecutor ex(plan, options);
    ex.Run(options);
    const size_t k = plan.num_atoms;
    ex.ForEach([&](const uint32_t* rows) {
      std::vector<VarId> term;
      term.reserve(k);
      for (size_t i = 0; i < k; ++i) {
        term.push_back(vars.VarFor(plan.by_atom[i], rows[i]));
      }
      std::sort(term.begin(), term.end());
      term.erase(std::unique(term.begin(), term.end()), term.end());
      out.terms.push_back(std::move(term));
    });
  }
  out.vars = vars.TakeVars();
  out.probs = vars.TakeProbs();
  if (options.exec != nullptr) {
    options.exec->AddLineageNodes(out.terms.size() + out.vars.size());
  }
  return out;
}

}  // namespace pdb
