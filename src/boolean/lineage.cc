#include "boolean/lineage.h"

#include <algorithm>
#include <optional>

#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Assigns one Boolean variable per (relation, row), lazily.
class VarTable {
 public:
  VarId VarFor(const std::string& relation, size_t row, double prob) {
    auto key = std::make_pair(relation, row);
    auto it = ids_.find(key);
    if (it != ids_.end()) return it->second;
    VarId id = static_cast<VarId>(vars_.size());
    ids_.emplace(std::move(key), id);
    vars_.push_back({relation, row});
    probs_.push_back(prob);
    return id;
  }

  std::vector<LineageVar> TakeVars() { return std::move(vars_); }
  std::vector<double> TakeProbs() { return std::move(probs_); }

 private:
  std::map<std::pair<std::string, size_t>, VarId> ids_;
  std::vector<LineageVar> vars_;
  std::vector<double> probs_;
};

// Recursive grounding of an FO formula with an environment binding
// variables to values.
class FoGrounder {
 public:
  FoGrounder(const Database& db, const std::vector<Value>& domain,
             FormulaManager* mgr, VarTable* vars)
      : db_(db), domain_(domain), mgr_(mgr), vars_(vars) {}

  Result<NodeId> Ground(const FoPtr& f,
                        std::map<std::string, Value>* env) {
    switch (f->kind()) {
      case FoKind::kTrue:
        return mgr_->True();
      case FoKind::kFalse:
        return mgr_->False();
      case FoKind::kAtom:
        return GroundAtom(f->atom(), *env);
      case FoKind::kNot: {
        PDB_ASSIGN_OR_RETURN(NodeId c, Ground(f->children()[0], env));
        return mgr_->Not(c);
      }
      case FoKind::kAnd:
      case FoKind::kOr: {
        std::vector<NodeId> kids;
        kids.reserve(f->children().size());
        for (const FoPtr& c : f->children()) {
          PDB_ASSIGN_OR_RETURN(NodeId g, Ground(c, env));
          kids.push_back(g);
        }
        return f->kind() == FoKind::kAnd ? mgr_->And(std::move(kids))
                                         : mgr_->Or(std::move(kids));
      }
      case FoKind::kExists:
      case FoKind::kForall: {
        std::vector<NodeId> kids;
        kids.reserve(domain_.size());
        const std::string& var = f->quantified_var();
        // Shadowing: remember any outer binding and restore it.
        auto outer = env->find(var);
        std::optional<Value> saved;
        if (outer != env->end()) saved = outer->second;
        for (const Value& v : domain_) {
          (*env)[var] = v;
          PDB_ASSIGN_OR_RETURN(NodeId g, Ground(f->children()[0], env));
          kids.push_back(g);
        }
        if (saved.has_value()) {
          (*env)[var] = *saved;
        } else {
          env->erase(var);
        }
        return f->kind() == FoKind::kExists ? mgr_->Or(std::move(kids))
                                            : mgr_->And(std::move(kids));
      }
    }
    return Status::Internal("unreachable FO kind");
  }

 private:
  Result<NodeId> GroundAtom(const Atom& atom,
                            const std::map<std::string, Value>& env) {
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(atom.predicate));
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          StrFormat("atom %s has arity %zu but relation has arity %zu",
                    atom.ToString().c_str(), atom.arity(), rel->arity()));
    }
    Tuple tuple;
    tuple.reserve(atom.arity());
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        tuple.push_back(t.constant());
      } else {
        auto it = env.find(t.var());
        if (it == env.end()) {
          return Status::InvalidArgument(
              StrFormat("unbound variable '%s' in atom %s", t.var().c_str(),
                        atom.ToString().c_str()));
        }
        tuple.push_back(it->second);
      }
    }
    auto row = rel->Find(tuple);
    if (!row.ok()) return mgr_->False();  // missing tuple: probability 0
    double p = rel->prob(*row);
    if (p == 1.0) return mgr_->True();
    if (p == 0.0) return mgr_->False();
    return mgr_->Var(vars_->VarFor(atom.predicate, *row, p));
  }

  const Database& db_;
  const std::vector<Value>& domain_;
  FormulaManager* mgr_;
  VarTable* vars_;
};

// Backtracking CQ match enumeration with per-(relation, bound positions)
// hash indexes.
class CqMatcher {
 public:
  CqMatcher(const ConjunctiveQuery& cq, const Database& db)
      : cq_(cq), db_(db) {}

  Status Run(const std::function<void(const CqMatch&)>& callback) {
    const auto& atoms = cq_.atoms();
    relations_.resize(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) {
      PDB_ASSIGN_OR_RETURN(relations_[i], db_.Get(atoms[i].predicate));
      if (relations_[i]->arity() != atoms[i].arity()) {
        return Status::InvalidArgument(
            StrFormat("atom %s arity mismatch with relation (%zu vs %zu)",
                      atoms[i].ToString().c_str(), atoms[i].arity(),
                      relations_[i]->arity()));
      }
    }
    match_.atom_rows.resize(atoms.size());
    Recurse(0, callback);
    return Status::OK();
  }

 private:
  void Recurse(size_t atom_idx,
               const std::function<void(const CqMatch&)>& callback) {
    if (atom_idx == cq_.atoms().size()) {
      callback(match_);
      return;
    }
    const Atom& atom = cq_.atoms()[atom_idx];
    const Relation& rel = *relations_[atom_idx];
    // Determine bound positions and their required values; also detect
    // repeated variables within the atom.
    std::vector<size_t> bound_pos;
    Tuple bound_vals;
    std::map<std::string, size_t> var_first_pos;
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const Term& t = atom.args[j];
      if (t.is_constant()) {
        bound_pos.push_back(j);
        bound_vals.push_back(t.constant());
      } else {
        auto it = env_.find(t.var());
        if (it != env_.end()) {
          bound_pos.push_back(j);
          bound_vals.push_back(it->second);
        }
      }
    }
    const std::vector<size_t>* rows;
    std::vector<size_t> all_rows;
    if (!bound_pos.empty()) {
      const HashIndex& index = IndexFor(atom_idx, rel, bound_pos);
      rows = &index.Lookup(bound_vals);
    } else {
      all_rows.resize(rel.size());
      for (size_t r = 0; r < rel.size(); ++r) all_rows[r] = r;
      rows = &all_rows;
    }
    for (size_t row : *rows) {
      const Tuple& tuple = rel.tuple(row);
      // Bind the free variables of this atom; verify repeated variables.
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t j = 0; j < atom.args.size() && ok; ++j) {
        const Term& t = atom.args[j];
        if (t.is_constant()) continue;
        auto it = env_.find(t.var());
        if (it == env_.end()) {
          env_.emplace(t.var(), tuple[j]);
          newly_bound.push_back(t.var());
        } else {
          ok = (it->second == tuple[j]);
        }
      }
      if (ok) {
        match_.atom_rows[atom_idx] = {atom.predicate, row};
        Recurse(atom_idx + 1, callback);
      }
      for (const std::string& v : newly_bound) env_.erase(v);
    }
  }

  const HashIndex& IndexFor(size_t atom_idx, const Relation& rel,
                            const std::vector<size_t>& bound_pos) {
    auto key = std::make_pair(atom_idx, bound_pos);
    auto it = indexes_.find(key);
    if (it == indexes_.end()) {
      it = indexes_.emplace(key, HashIndex(rel, bound_pos)).first;
    }
    return it->second;
  }

  const ConjunctiveQuery& cq_;
  const Database& db_;
  std::vector<const Relation*> relations_;
  std::map<std::string, Value> env_;
  CqMatch match_;
  std::map<std::pair<size_t, std::vector<size_t>>, HashIndex> indexes_;
};

}  // namespace

Result<Lineage> BuildLineage(const FoPtr& sentence, const Database& db,
                             FormulaManager* mgr,
                             const std::vector<Value>* domain) {
  if (!sentence->FreeVariables().empty()) {
    return Status::InvalidArgument(
        "lineage requires a sentence without free variables");
  }
  std::vector<Value> active;
  if (domain == nullptr) {
    active = db.ActiveDomain();
    domain = &active;
  }
  VarTable vars;
  FoGrounder grounder(db, *domain, mgr, &vars);
  std::map<std::string, Value> env;
  PDB_ASSIGN_OR_RETURN(NodeId root, grounder.Ground(sentence, &env));
  Lineage lineage;
  lineage.root = root;
  lineage.vars = vars.TakeVars();
  lineage.probs = vars.TakeProbs();
  return lineage;
}

Status EnumerateCqMatches(const ConjunctiveQuery& cq, const Database& db,
                          const std::function<void(const CqMatch&)>& callback) {
  CqMatcher matcher(cq, db);
  return matcher.Run(callback);
}

Result<Lineage> BuildUcqLineage(const Ucq& ucq, const Database& db,
                                FormulaManager* mgr) {
  VarTable vars;
  std::vector<NodeId> disjunct_nodes;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    std::vector<NodeId> term_nodes;
    Status st = EnumerateCqMatches(cq, db, [&](const CqMatch& match) {
      std::vector<NodeId> lits;
      lits.reserve(match.atom_rows.size());
      for (const LineageVar& lv : match.atom_rows) {
        const Relation* rel = db.Get(lv.relation).value();
        double p = rel->prob(lv.row);
        if (p == 1.0) continue;  // certain tuple contributes no literal
        lits.push_back(mgr->Var(vars.VarFor(lv.relation, lv.row, p)));
      }
      term_nodes.push_back(mgr->And(std::move(lits)));
    });
    PDB_RETURN_NOT_OK(st);
    disjunct_nodes.push_back(mgr->Or(std::move(term_nodes)));
  }
  Lineage lineage;
  lineage.root = mgr->Or(std::move(disjunct_nodes));
  lineage.vars = vars.TakeVars();
  lineage.probs = vars.TakeProbs();
  return lineage;
}

Result<DnfLineage> BuildUcqDnf(const Ucq& ucq, const Database& db) {
  VarTable vars;
  DnfLineage out;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    Status st = EnumerateCqMatches(cq, db, [&](const CqMatch& match) {
      std::vector<VarId> term;
      term.reserve(match.atom_rows.size());
      for (const LineageVar& lv : match.atom_rows) {
        const Relation* rel = db.Get(lv.relation).value();
        term.push_back(vars.VarFor(lv.relation, lv.row, rel->prob(lv.row)));
      }
      std::sort(term.begin(), term.end());
      term.erase(std::unique(term.begin(), term.end()), term.end());
      out.terms.push_back(std::move(term));
    });
    PDB_RETURN_NOT_OK(st);
  }
  out.vars = vars.TakeVars();
  out.probs = vars.TakeProbs();
  return out;
}

}  // namespace pdb
