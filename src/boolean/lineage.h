/// \file lineage.h
/// \brief Lineage construction: grounding a query over a TID into a Boolean
/// formula (paper §7 and appendix "Lineage of an FO sentence").
///
/// Each stored tuple becomes one Boolean variable; the lineage F_{Q,DOM} is
/// true under an assignment iff the corresponding possible world satisfies
/// Q. Tuples outside the database have probability 0 and ground to the
/// constant `false`.

#ifndef PDB_BOOLEAN_LINEAGE_H_
#define PDB_BOOLEAN_LINEAGE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "boolean/formula.h"
#include "logic/cq.h"
#include "logic/fo.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// Origin of a lineage variable: a row of a relation.
struct LineageVar {
  std::string relation;
  size_t row = 0;
};

/// A grounded query: formula root plus the tuple <-> variable mapping.
struct Lineage {
  NodeId root = 0;
  /// Metadata per VarId (index = VarId).
  std::vector<LineageVar> vars;
  /// Marginal probability per VarId.
  std::vector<double> probs;
};

/// Grounds an FO sentence over `db`, quantifying over `domain` (defaults to
/// the active domain). Inductive construction from the paper's appendix.
Result<Lineage> BuildLineage(const FoPtr& sentence, const Database& db,
                             FormulaManager* mgr,
                             const std::vector<Value>* domain = nullptr);

/// Grounds a UCQ by join-style enumeration of satisfying assignments —
/// equivalent to BuildLineage on the UCQ's FO form but polynomial in the
/// data rather than in domain^#vars. The result is a DNF.
Result<Lineage> BuildUcqLineage(const Ucq& ucq, const Database& db,
                                FormulaManager* mgr);

/// One match of a CQ against the database: for each atom (by index), the
/// matched row in its relation.
struct CqMatch {
  /// Parallel to cq.atoms(): (relation name, row id).
  std::vector<LineageVar> atom_rows;
};

/// Enumerates all satisfying assignments ("matches") of a Boolean CQ against
/// `db`, invoking `callback` for each. Uses hash indexes on already-bound
/// positions. Returns an error if an atom references a missing relation or
/// has an arity mismatch.
Status EnumerateCqMatches(const ConjunctiveQuery& cq, const Database& db,
                          const std::function<void(const CqMatch&)>& callback);

/// The DNF lineage as explicit term lists (one clause of VarIds per CQ
/// match), sharing variable ids with `lineage_vars` bookkeeping. Useful for
/// Karp-Luby sampling and for the dissociation lower bound, which needs the
/// per-tuple occurrence counts k (paper §6).
struct DnfLineage {
  std::vector<std::vector<VarId>> terms;
  std::vector<LineageVar> vars;
  std::vector<double> probs;
};
Result<DnfLineage> BuildUcqDnf(const Ucq& ucq, const Database& db);

}  // namespace pdb

#endif  // PDB_BOOLEAN_LINEAGE_H_
