/// \file lineage.h
/// \brief Lineage construction: grounding a query over a TID into a Boolean
/// formula (paper §7 and appendix "Lineage of an FO sentence").
///
/// Each stored tuple becomes one Boolean variable; the lineage F_{Q,DOM} is
/// true under an assignment iff the corresponding possible world satisfies
/// Q. Tuples outside the database have probability 0 and ground to the
/// constant `false`.
///
/// UCQ grounding runs on a compiled join engine: each CQ is lowered once
/// into a slot-based join program (variables mapped to dense integer
/// slots, per-atom key/bind/check column lists precomputed), atoms are
/// reordered by selectivity estimates from per-column distinct-value
/// counts so chain, star, and cyclic joins never enumerate cross
/// products, hash indexes come from a session cache when one is
/// available, and the first join step fans out across the
/// `ExecContext`'s thread pool. Large relations execute on a vectorized
/// columnar path (storage/columnar.h): bind slots carry dense dictionary
/// codes, key probes and repeated-variable checks run as tight loops
/// over `uint32_t` arrays, and rows only materialise as tuples once a
/// full match is emitted. Matches are canonicalised to the lexicographic
/// order of their per-atom row vectors — which is exactly the order the
/// naive syntactic backtracking search emits — so every downstream
/// consumer (variable numbering, formula structure, DPLL probabilities)
/// is bit-identical regardless of join order, executor path, thread
/// count, or cache state.

#ifndef PDB_BOOLEAN_LINEAGE_H_
#define PDB_BOOLEAN_LINEAGE_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "boolean/formula.h"
#include "exec/join_profile.h"
#include "logic/cq.h"
#include "logic/fo.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

class ExecContext;
class IndexCache;

/// Origin of a lineage variable: a row of a relation.
struct LineageVar {
  std::string relation;
  size_t row = 0;
};

/// A grounded query: formula root plus the tuple <-> variable mapping.
struct Lineage {
  NodeId root = 0;
  /// Metadata per VarId (index = VarId).
  std::vector<LineageVar> vars;
  /// Marginal probability per VarId.
  std::vector<double> probs;
};

/// Join-order policy of the compiled CQ grounding engine.
enum class AtomOrderPolicy {
  /// Greedy cost-based ordering: at each step pick the atom with the
  /// smallest estimated result cardinality — relation size divided by the
  /// distinct-value count of every bound column (constants + variables
  /// bound by earlier steps), the classic independence estimate. Distinct
  /// counts come from the columnar dictionaries cached on each relation.
  /// Ties break towards more bound positions, then the smaller relation,
  /// then syntactic position. Keeps chain, star, and cyclic joins from
  /// enumerating cross products.
  kCostBased,
  /// Join atoms exactly in the order they appear in the query (the
  /// historical behaviour; useful as an adversarial baseline).
  kSyntactic,
};

/// Executor-path policy of the CQ grounding engine.
enum class ColumnarMode {
  /// Vectorized columnar execution when the query's largest relation has
  /// at least `columnar_min_rows` rows, row-at-a-time otherwise (tiny
  /// joins don't amortise dictionary encoding).
  kAuto,
  /// Always take the columnar path (testing / benchmarking).
  kAlways,
  /// Always take the row path (the historical executor).
  kNever,
};

/// Knobs for the CQ grounding engine. The defaults reproduce the exact
/// match set and order of the naive reference matcher; every knob is a
/// pure performance control.
struct GroundingOptions {
  /// Execution context carrying the worker pool, the session index cache,
  /// and the lineage/index counters. Null = sequential, no cache, no
  /// counters.
  ExecContext* exec = nullptr;
  /// Join-order policy (see AtomOrderPolicy).
  AtomOrderPolicy order = AtomOrderPolicy::kCostBased;
  /// Executor-path policy (see ColumnarMode).
  ColumnarMode columnar = ColumnarMode::kAuto;
  /// Row-count threshold for ColumnarMode::kAuto: the columnar path
  /// engages once the query's largest relation reaches this many rows.
  size_t columnar_min_rows = 64;
  /// Fan the first join step out across the pool once it has at least this
  /// many candidate rows (only with `exec` and a pool).
  size_t parallel_min_rows = 256;
  /// Build formula terms in parallel (private managers merged through
  /// `FormulaManager::AbsorbFrom` in deterministic chunk order) once a
  /// disjunct has at least this many matches.
  size_t parallel_min_matches = 2048;
};

/// Grounds an FO sentence over `db`, quantifying over `domain` (defaults to
/// the active domain). Inductive construction from the paper's appendix.
Result<Lineage> BuildLineage(const FoPtr& sentence, const Database& db,
                             FormulaManager* mgr,
                             const std::vector<Value>* domain = nullptr);

/// Grounds a UCQ by join-style enumeration of satisfying assignments —
/// equivalent to BuildLineage on the UCQ's FO form but polynomial in the
/// data rather than in domain^#vars. The result is a DNF.
Result<Lineage> BuildUcqLineage(const Ucq& ucq, const Database& db,
                                FormulaManager* mgr,
                                const GroundingOptions& options = {});

/// One match of a CQ against the database: for each atom (by index), the
/// matched row in its relation.
struct CqMatch {
  /// Parallel to cq.atoms(): (relation name, row id).
  std::vector<LineageVar> atom_rows;
};

/// Enumerates all satisfying assignments ("matches") of a Boolean CQ against
/// `db`, invoking `callback` for each, in the lexicographic order of the
/// per-atom row vector (ascending row of atom 0, then atom 1, ...). Returns
/// an error if an atom references a missing relation or has an arity
/// mismatch. The callback runs on the calling thread even when the join
/// itself fans out over `options.exec`'s pool.
Status EnumerateCqMatches(const ConjunctiveQuery& cq, const Database& db,
                          const std::function<void(const CqMatch&)>& callback,
                          const GroundingOptions& options = {});

/// Compiles `cq`'s join program without executing it: the cost-based atom
/// order, per-step selectivity estimates, and the chosen executor path,
/// as a `JoinPlanProfile` with zero `actual_rows` and `executed` false.
/// The plan-only half of EXPLAIN; EXPLAIN ANALYZE instead executes and
/// collects the profile through `ExecContext::join_profile`.
Result<JoinPlanProfile> PlanCqJoin(const ConjunctiveQuery& cq,
                                   const Database& db,
                                   const GroundingOptions& options = {});

/// The naive syntactic-order backtracking matcher the compiled engine
/// replaced, kept as the reference implementation for differential tests
/// (the compiled engine must reproduce its match order exactly).
Status EnumerateCqMatchesReference(
    const ConjunctiveQuery& cq, const Database& db,
    const std::function<void(const CqMatch&)>& callback);

/// The DNF lineage as explicit term lists (one clause of VarIds per CQ
/// match), sharing variable ids with `lineage_vars` bookkeeping. Useful for
/// Karp-Luby sampling and for the dissociation lower bound, which needs the
/// per-tuple occurrence counts k (paper §6).
struct DnfLineage {
  std::vector<std::vector<VarId>> terms;
  std::vector<LineageVar> vars;
  std::vector<double> probs;
};
Result<DnfLineage> BuildUcqDnf(const Ucq& ucq, const Database& db,
                               const GroundingOptions& options = {});

}  // namespace pdb

#endif  // PDB_BOOLEAN_LINEAGE_H_
