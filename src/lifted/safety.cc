#include "lifted/safety.h"

#include <map>

#include "logic/analysis.h"
#include "util/string_util.h"

namespace pdb {

const char* QueryComplexityToString(QueryComplexity c) {
  switch (c) {
    case QueryComplexity::kPolynomialTime:
      return "PTIME";
    case QueryComplexity::kSharpPHard:
      return "#P-hard";
  }
  return "?";
}

Result<QueryComplexity> ClassifySelfJoinFreeCq(const ConjunctiveQuery& cq) {
  if (!cq.IsSelfJoinFree()) {
    return Status::InvalidArgument(
        "query has self-joins; Theorem 4.3 does not apply");
  }
  return IsHierarchical(cq) ? QueryComplexity::kPolynomialTime
                            : QueryComplexity::kSharpPHard;
}

Result<Database> CanonicalDatabase(const Ucq& ucq, size_t domain_size) {
  // Collect predicate arities, checking consistency.
  std::map<std::string, size_t> arity;
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    for (const Atom& atom : cq.atoms()) {
      auto [it, inserted] = arity.emplace(atom.predicate, atom.arity());
      if (!inserted && it->second != atom.arity()) {
        return Status::InvalidArgument(
            StrFormat("predicate '%s' used with arities %zu and %zu",
                      atom.predicate.c_str(), it->second, atom.arity()));
      }
      // Constants in the query must be integers to fit the canonical
      // all-integer schema; remap is unnecessary because classifier inputs
      // are constant-free in practice.
      for (const Term& t : atom.args) {
        if (t.is_constant() && !t.constant().is_int()) {
          return Status::Unsupported(
              "canonical database supports integer constants only");
        }
      }
    }
  }
  // Domain: 1..domain_size plus any constants appearing in the query (so
  // ground atoms stay satisfiable and the classification reflects rule
  // structure, not accidental emptiness).
  std::set<int64_t> domain;
  for (size_t i = 1; i <= domain_size; ++i) {
    domain.insert(static_cast<int64_t>(i));
  }
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    for (const Atom& atom : cq.atoms()) {
      for (const Term& t : atom.args) {
        if (t.is_constant()) domain.insert(t.constant().AsInt());
      }
    }
  }
  std::vector<int64_t> values(domain.begin(), domain.end());
  Database db;
  // GCC 12 issues a spurious -Wmaybe-uninitialized for the dead
  // string-alternative of Value's variant when the int path below is
  // inlined; the constructor always initializes exactly one alternative.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  for (const auto& [pred, k] : arity) {
    Relation rel(pred, Schema::Anonymous(k, ValueType::kInt));
    size_t total = 1;
    for (size_t i = 0; i < k; ++i) total *= values.size();
    for (size_t combo = 0; combo < total; ++combo) {
      Tuple tuple;
      size_t rest = combo;
      for (size_t i = 0; i < k; ++i) {
        tuple.push_back(Value(values[rest % values.size()]));
        rest /= values.size();
      }
      PDB_RETURN_NOT_OK(rel.AddTuple(std::move(tuple), 0.5));
    }
    PDB_RETURN_NOT_OK(db.AddRelation(std::move(rel)));
  }
#pragma GCC diagnostic pop
  return db;
}

bool IsSafeUcq(const Ucq& ucq, LiftedOptions options) {
  auto db = CanonicalDatabase(ucq);
  if (!db.ok()) return false;
  options.trace = nullptr;
  LiftedEngine engine(*db, options);
  return engine.Compute(ucq).ok();
}

QueryComplexity ClassifyUcq(const Ucq& ucq, LiftedOptions options) {
  return IsSafeUcq(ucq, options) ? QueryComplexity::kPolynomialTime
                                 : QueryComplexity::kSharpPHard;
}

}  // namespace pdb
