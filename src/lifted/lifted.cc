#include "lifted/lifted.h"

#include <algorithm>

#include "logic/containment.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pdb {

namespace {

// Canonical cache key of a union of CQs: sorted canonical CQ strings.
std::string UnionKey(const std::vector<ConjunctiveQuery>& disjuncts) {
  std::vector<std::string> keys;
  keys.reserve(disjuncts.size());
  for (const ConjunctiveQuery& cq : disjuncts) {
    keys.push_back(CanonicalCqString(cq));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return StrJoin(keys, ";");
}

// Independence signature of a CQ: a relation name for atoms with variables,
// relation+tuple for ground atoms. Distinct ground tuples of one relation
// are independent events, so they must not glue subqueries together.
std::set<std::string> IndependenceSymbols(const ConjunctiveQuery& cq) {
  std::set<std::string> out;
  for (const Atom& atom : cq.atoms()) {
    if (atom.Variables().empty()) {
      std::string key = atom.predicate;
      for (const Term& t : atom.args) {
        key += "\x01";
        key += t.constant().ToString();
      }
      out.insert(std::move(key));
    } else {
      out.insert(atom.predicate);
    }
  }
  return out;
}

// Coarsens ground-tuple signatures back to the bare relation wherever some
// item uses the relation with variables (the variable atom can overlap any
// tuple).
void UnifyGroundSignatures(std::vector<std::set<std::string>>* sets) {
  std::set<std::string> plain;
  for (const auto& set : *sets) {
    for (const std::string& s : set) {
      if (s.find('\x01') == std::string::npos) plain.insert(s);
    }
  }
  for (auto& set : *sets) {
    std::set<std::string> rewritten;
    for (const std::string& s : set) {
      size_t cut = s.find('\x01');
      if (cut != std::string::npos && plain.count(s.substr(0, cut)) > 0) {
        rewritten.insert(s.substr(0, cut));
      } else {
        rewritten.insert(s);
      }
    }
    set = std::move(rewritten);
  }
}

// Merges a conjunction of Boolean CQs into one CQ by renaming variables
// apart (a conjunction of existentially closed sentences equals the
// existential closure of the disjoint-variable conjunction).
ConjunctiveQuery MergeConjunction(
    const std::vector<const ConjunctiveQuery*>& parts) {
  ConjunctiveQuery merged;
  for (size_t i = 0; i < parts.size(); ++i) {
    ConjunctiveQuery renamed =
        parts[i]->RenameVariables(StrFormat("_m%zu", i));
    for (const Atom& atom : renamed.atoms()) merged.AddAtom(atom);
  }
  return merged;
}

}  // namespace

void LiftedEngine::Trace(size_t depth, const std::string& message) {
  if (options_.trace == nullptr) return;
  options_.trace->push_back(std::string(2 * depth, ' ') + message);
}

Result<double> LiftedEngine::Compute(const Ucq& ucq) {
  return ComputeUnion(ucq.disjuncts(), 0);
}

Result<ConjunctiveQuery> LiftedEngine::PreprocessCq(
    const ConjunctiveQuery& cq, bool* satisfiable) const {
  *satisfiable = true;
  std::vector<Atom> atoms;
  for (const Atom& atom : cq.atoms()) {
    if (std::find(atoms.begin(), atoms.end(), atom) != atoms.end()) {
      continue;  // duplicate atom
    }
    PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(atom.predicate));
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          StrFormat("atom %s arity mismatch with relation '%s'",
                    atom.ToString().c_str(), atom.predicate.c_str()));
    }
    if (rel->empty()) {
      *satisfiable = false;
      return ConjunctiveQuery();
    }
    bool ground = atom.Variables().empty();
    if (ground) {
      Tuple tuple;
      for (const Term& t : atom.args) tuple.push_back(t.constant());
      double p = rel->ProbOf(tuple);
      if (p == 0.0) {
        *satisfiable = false;
        return ConjunctiveQuery();
      }
      if (p == 1.0) continue;  // certainly true: drop the atom
    }
    atoms.push_back(atom);
  }
  return ConjunctiveQuery(std::move(atoms));
}

Result<double> LiftedEngine::ComputeUnion(CqVec raw_disjuncts, size_t depth) {
  if (depth > options_.max_depth) {
    return Status::ResourceExhausted("lifted inference recursion too deep");
  }
  // --- Data-level simplification of each disjunct. ---
  CqVec disjuncts;
  for (const ConjunctiveQuery& cq : raw_disjuncts) {
    bool satisfiable = true;
    PDB_ASSIGN_OR_RETURN(ConjunctiveQuery simplified,
                         PreprocessCq(cq, &satisfiable));
    if (!satisfiable) continue;
    if (simplified.empty()) {
      Trace(depth, "disjunct is certainly true => P = 1");
      return 1.0;
    }
    // Work on the core: the cache key canonicalizes up to minimization, so
    // the computed query must be minimized too (otherwise the recursion on
    // the equivalent core re-enters the same key and looks like a cycle).
    disjuncts.push_back(MinimizeCq(simplified));
  }
  if (disjuncts.empty()) {
    Trace(depth, "no satisfiable disjunct => P = 0");
    return 0.0;
  }

  // --- Logic-level minimization (absorption). ---
  std::vector<bool> dropped(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    for (size_t j = 0; j < disjuncts.size() && !dropped[i]; ++j) {
      if (i == j || dropped[j]) continue;
      if (CqImplies(disjuncts[i], disjuncts[j])) {
        // disjuncts[i] => disjuncts[j], so disjuncts[i] is absorbed; for
        // equivalent pairs keep the earlier one.
        if (!CqImplies(disjuncts[j], disjuncts[i]) || j < i) {
          dropped[i] = true;
        }
      }
    }
  }
  CqVec kept;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!dropped[i]) kept.push_back(std::move(disjuncts[i]));
  }
  disjuncts = std::move(kept);

  // --- Cache / cycle detection. ---
  const std::string key = UnionKey(disjuncts);
  if (auto it = cache_.find(key); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  if (!in_progress_.insert(key).second) {
    return Status::Unsupported(
        StrFormat("lifted inference rules do not apply (cyclic "
                  "decomposition at: %s)",
                  key.c_str()));
  }
  struct Cleanup {
    LiftedEngine* engine;
    const std::string& key;
    ~Cleanup() { engine->in_progress_.erase(key); }
  } cleanup{this, key};

  Result<double> result = [&]() -> Result<double> {
    // --- Independent union: symbol-disjoint groups of disjuncts. ---
    std::vector<std::set<std::string>> symbol_sets;
    symbol_sets.reserve(disjuncts.size());
    for (const ConjunctiveQuery& cq : disjuncts) {
      symbol_sets.push_back(IndependenceSymbols(cq));
    }
    UnifyGroundSignatures(&symbol_sets);
    std::vector<std::vector<size_t>> groups =
        GroupBySharedSymbols(symbol_sets);
    if (groups.size() > 1) {
      ++stats_.independent_unions;
      Trace(depth, StrFormat("independent-union over %zu groups",
                             groups.size()));
      double product = 1.0;
      for (const auto& group : groups) {
        CqVec sub;
        for (size_t i : group) sub.push_back(disjuncts[i]);
        PDB_ASSIGN_OR_RETURN(double p, ComputeUnion(std::move(sub), depth + 1));
        product *= 1.0 - p;
      }
      return 1.0 - product;
    }

    if (disjuncts.size() == 1) {
      const ConjunctiveQuery& cq = disjuncts[0];
      std::vector<ConjunctiveQuery> components =
          VariableConnectedComponents(cq);
      if (components.size() > 1) {
        // Conjunction of variable-disjoint components; group by symbols.
        std::vector<std::set<std::string>> component_symbols;
        for (const auto& c : components) {
          component_symbols.push_back(IndependenceSymbols(c));
        }
        UnifyGroundSignatures(&component_symbols);
        std::vector<std::vector<size_t>> cgroups =
            GroupBySharedSymbols(component_symbols);
        if (cgroups.size() > 1) {
          ++stats_.independent_products;
          Trace(depth, StrFormat("independent-product over %zu groups",
                                 cgroups.size()));
          double product = 1.0;
          for (const auto& group : cgroups) {
            CqVec conjuncts;
            for (size_t i : group) conjuncts.push_back(components[i]);
            PDB_ASSIGN_OR_RETURN(
                double p, ComputeConjunction(std::move(conjuncts), depth + 1));
            product *= p;
          }
          return product;
        }
        return ComputeConjunction(std::move(components), depth + 1);
      }
      // Single connected CQ.
      if (cq.Variables().empty()) {
        // Ground conjunction of distinct uncertain atoms: independent.
        ++stats_.base_evaluations;
        double product = 1.0;
        for (const Atom& atom : cq.atoms()) {
          Tuple tuple;
          for (const Term& t : atom.args) tuple.push_back(t.constant());
          PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(atom.predicate));
          product *= rel->ProbOf(tuple);
        }
        Trace(depth, StrFormat("ground base case => %g", product));
        return product;
      }
    }

    // --- Separator grounding (also covers the single-CQ case). ---
    Ucq as_ucq(disjuncts);
    if (auto roots = FindSeparator(as_ucq); roots.has_value()) {
      ++stats_.separator_groundings;
      return GroundSeparator(disjuncts, *roots, depth);
    }

    // --- Inclusion-exclusion over the disjuncts. ---
    if (disjuncts.size() > 1 && options_.use_inclusion_exclusion) {
      ++stats_.inclusion_exclusions;
      const size_t m = disjuncts.size();
      stats_.ie_max_width = std::max<uint64_t>(stats_.ie_max_width, m);
      if (m > 20 || ((size_t{1} << m) - 1) > options_.max_ie_subsets) {
        return Status::ResourceExhausted(
            "inclusion-exclusion expansion too large");
      }
      Trace(depth, StrFormat("inclusion-exclusion over %zu disjuncts", m));
      // Coefficient per canonical merged conjunction.
      std::map<std::string, std::pair<int64_t, ConjunctiveQuery>> terms;
      for (size_t mask = 1; mask < (size_t{1} << m); ++mask) {
        std::vector<const ConjunctiveQuery*> subset;
        for (size_t i = 0; i < m; ++i) {
          if (mask & (size_t{1} << i)) subset.push_back(&disjuncts[i]);
        }
        int64_t sign = (subset.size() % 2 == 1) ? 1 : -1;
        ConjunctiveQuery merged =
            subset.size() == 1 ? *subset[0] : MergeConjunction(subset);
        merged = MinimizeCq(merged);
        std::string term_key = CanonicalCqString(merged);
        auto [it, inserted] =
            terms.emplace(term_key, std::make_pair(sign, std::move(merged)));
        if (!inserted) it->second.first += sign;
      }
      double total = 0.0;
      for (const auto& [term_key, coef_cq] : terms) {
        ++stats_.ie_terms_total;
        if (coef_cq.first == 0) {
          ++stats_.ie_terms_cancelled;
          Trace(depth + 1, "term cancelled: " + term_key);
          continue;
        }
        PDB_ASSIGN_OR_RETURN(double p,
                             ComputeUnion(CqVec{coef_cq.second}, depth + 1));
        total += static_cast<double>(coef_cq.first) * p;
      }
      return total;
    }

    return Status::Unsupported(StrFormat(
        "lifted inference rules do not apply to: %s", key.c_str()));
  }();

  if (result.ok()) cache_.emplace(key, *result);
  return result;
}

Result<double> LiftedEngine::ComputeConjunction(CqVec conjuncts,
                                                size_t depth) {
  if (depth > options_.max_depth) {
    return Status::ResourceExhausted("lifted inference recursion too deep");
  }
  // Deduplicate equivalent conjuncts and drop implied ones: if Ci => Cj
  // then Cj is redundant in the conjunction.
  std::vector<bool> dropped(conjuncts.size(), false);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    for (size_t j = 0; j < conjuncts.size() && !dropped[i]; ++j) {
      if (i == j || dropped[j]) continue;
      if (CqImplies(conjuncts[j], conjuncts[i])) {
        // conjuncts[j] => conjuncts[i]: drop i (keep earlier of equal pair).
        if (!CqImplies(conjuncts[i], conjuncts[j]) || j < i) {
          dropped[i] = true;
        }
      }
    }
  }
  CqVec kept;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (!dropped[i]) kept.push_back(std::move(conjuncts[i]));
  }
  conjuncts = std::move(kept);
  PDB_CHECK(!conjuncts.empty());
  if (conjuncts.size() == 1) {
    return ComputeUnion(std::move(conjuncts), depth);
  }
  if (!options_.use_inclusion_exclusion) {
    return Status::Unsupported(
        "conjunction of correlated subqueries requires the "
        "inclusion-exclusion rule (disabled)");
  }
  ++stats_.inclusion_exclusions;
  const size_t k = conjuncts.size();
  stats_.ie_max_width = std::max<uint64_t>(stats_.ie_max_width, k);
  if (k > 20 || ((size_t{1} << k) - 1) > options_.max_ie_subsets) {
    return Status::ResourceExhausted(
        "inclusion-exclusion expansion too large");
  }
  Trace(depth,
        StrFormat("dual inclusion-exclusion over %zu conjuncts", k));
  // P(AND_i C_i) = sum_{S != empty} (-1)^{|S|+1} P(OR_{i in S} C_i); terms
  // keyed by the canonical union so cancellations are detected.
  std::map<std::string, std::pair<int64_t, CqVec>> terms;
  for (size_t mask = 1; mask < (size_t{1} << k); ++mask) {
    CqVec subset;
    for (size_t i = 0; i < k; ++i) {
      if (mask & (size_t{1} << i)) subset.push_back(conjuncts[i]);
    }
    int64_t sign = (subset.size() % 2 == 1) ? 1 : -1;
    std::string term_key = UnionKey(subset);
    auto [it, inserted] =
        terms.emplace(term_key, std::make_pair(sign, std::move(subset)));
    if (!inserted) it->second.first += sign;
  }
  double total = 0.0;
  for (const auto& [term_key, coef_union] : terms) {
    ++stats_.ie_terms_total;
    if (coef_union.first == 0) {
      ++stats_.ie_terms_cancelled;
      Trace(depth + 1, "term cancelled: " + term_key);
      continue;
    }
    PDB_ASSIGN_OR_RETURN(double p,
                         ComputeUnion(coef_union.second, depth + 1));
    total += static_cast<double>(coef_union.first) * p;
  }
  return total;
}

Result<std::set<Value>> LiftedEngine::SeparatorSupport(
    const CqVec& disjuncts, const std::vector<std::string>& roots) const {
  std::set<Value> support;
  for (size_t d = 0; d < disjuncts.size(); ++d) {
    std::set<Value> disjunct_support;
    bool first_atom = true;
    for (const Atom& atom : disjuncts[d].atoms()) {
      PDB_ASSIGN_OR_RETURN(const Relation* rel, db_.Get(atom.predicate));
      // Positions of the root and of constants within this atom.
      std::vector<size_t> root_positions;
      std::vector<std::pair<size_t, Value>> constants;
      for (size_t j = 0; j < atom.args.size(); ++j) {
        const Term& t = atom.args[j];
        if (t.is_variable() && t.var() == roots[d]) {
          root_positions.push_back(j);
        } else if (t.is_constant()) {
          constants.emplace_back(j, t.constant());
        }
      }
      PDB_CHECK(!root_positions.empty());  // separator occurs in every atom
      std::set<Value> atom_support;
      for (size_t row = 0; row < rel->size(); ++row) {
        const Tuple& tuple = rel->tuple(row);
        bool match = true;
        for (const auto& [j, v] : constants) {
          if (!(tuple[j] == v)) {
            match = false;
            break;
          }
        }
        for (size_t r = 1; r < root_positions.size() && match; ++r) {
          if (!(tuple[root_positions[r]] == tuple[root_positions[0]])) {
            match = false;
          }
        }
        if (match) atom_support.insert(tuple[root_positions[0]]);
      }
      if (first_atom) {
        disjunct_support = std::move(atom_support);
        first_atom = false;
      } else {
        std::set<Value> inter;
        std::set_intersection(
            disjunct_support.begin(), disjunct_support.end(),
            atom_support.begin(), atom_support.end(),
            std::inserter(inter, inter.begin()));
        disjunct_support = std::move(inter);
      }
      if (disjunct_support.empty()) break;
    }
    support.insert(disjunct_support.begin(), disjunct_support.end());
  }
  return support;
}

Result<double> LiftedEngine::GroundSeparator(
    const CqVec& disjuncts, const std::vector<std::string>& roots,
    size_t depth) {
  PDB_ASSIGN_OR_RETURN(std::set<Value> support,
                       SeparatorSupport(disjuncts, roots));
  Trace(depth, StrFormat("separator grounding over %zu constants",
                         support.size()));
  double product = 1.0;
  for (const Value& value : support) {
    CqVec grounded;
    grounded.reserve(disjuncts.size());
    for (size_t d = 0; d < disjuncts.size(); ++d) {
      grounded.push_back(disjuncts[d].Substitute(roots[d], value));
    }
    PDB_ASSIGN_OR_RETURN(double p, ComputeUnion(std::move(grounded), depth + 1));
    product *= 1.0 - p;
  }
  return 1.0 - product;
}

Result<double> LiftedProbability(const Ucq& ucq, const Database& db,
                                 LiftedOptions options, LiftedStats* stats) {
  LiftedEngine engine(db, options);
  Result<double> result = engine.Compute(ucq);
  if (stats != nullptr) *stats = engine.stats();
  return result;
}

Result<double> LiftedProbabilityFo(const FoPtr& sentence, const Database& db,
                                   LiftedOptions options,
                                   LiftedStats* stats) {
  PDB_ASSIGN_OR_RETURN(UnateRewrite rewrite, RewriteUnateForUcq(sentence, db));
  LiftedEngine engine(rewrite.database, options);
  Result<double> result = engine.Compute(rewrite.ucq);
  if (stats != nullptr) *stats = engine.stats();
  if (!result.ok()) return result;
  return rewrite.complemented ? 1.0 - *result : *result;
}

}  // namespace pdb
