/// \file safety.h
/// \brief Deciding the complexity of PQE(Q) (paper §4, Question 4.2).
///
/// For self-join-free CQs the decision is purely syntactic: hierarchical
/// <=> polynomial time (Theorem 4.3), and the check itself is cheap (the
/// paper places it in AC0). For UCQs the classifier runs the lifted rules
/// on a canonical two-constant instance — rule applicability is
/// data-independent, so success/failure there reflects the query, not the
/// data — and failure is reported as #P-hard per the dichotomy of
/// Theorem 4.1 (with this engine's documented rule-set caveat).

#ifndef PDB_LIFTED_SAFETY_H_
#define PDB_LIFTED_SAFETY_H_

#include "lifted/lifted.h"
#include "logic/cq.h"
#include "util/status.h"

namespace pdb {

/// Complexity side of the dichotomy.
enum class QueryComplexity {
  kPolynomialTime,
  kSharpPHard,
};

const char* QueryComplexityToString(QueryComplexity c);

/// Theorem 4.3: hierarchical <=> PTIME for self-join-free CQs.
/// InvalidArgument if the CQ has self-joins.
Result<QueryComplexity> ClassifySelfJoinFreeCq(const ConjunctiveQuery& cq);

/// True iff the lifted rules compute this UCQ (=> PQE in PTIME).
bool IsSafeUcq(const Ucq& ucq, LiftedOptions options = {});

/// Dichotomy classification of a UCQ by safety of the rule set.
QueryComplexity ClassifyUcq(const Ucq& ucq, LiftedOptions options = {});

/// Builds a canonical database for the query's signature: every predicate
/// gets all tuples over a domain of `domain_size` integer constants, each
/// with probability 1/2. Used by the classifier and handy in tests.
Result<Database> CanonicalDatabase(const Ucq& ucq, size_t domain_size = 2);

}  // namespace pdb

#endif  // PDB_LIFTED_SAFETY_H_
