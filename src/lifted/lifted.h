/// \file lifted.h
/// \brief Lifted (extensional) inference for UCQs and unate sentences
/// (paper §5).
///
/// The engine computes query probabilities by recursing on first-order
/// structure only — never materializing a lineage — using the paper's rule
/// set:
///
///   * independent-OR / independent-AND on symbol-disjoint subqueries
///     (rules 7 and their duals),
///   * separator-variable grounding (rule 8 and its dual),
///   * inclusion–exclusion with cancellation (rule 10): expansion terms are
///     canonicalized up to CQ equivalence and their coefficients summed, so
///     terms that cancel (which may be #P-hard!) are never evaluated.
///
/// Success implies PQE(Q) is computed in polynomial time in the data. A
/// query on which the rules fail is reported Unsupported; for self-join-free
/// CQs failure coincides exactly with non-hierarchy and thus #P-hardness
/// (Theorem 4.3); for UCQs the rules are the complete set of Theorem 5.1
/// modulo the ranking/shattering refinements, which this implementation
/// omits (documented limitation; all queries discussed in the paper are
/// covered).

#ifndef PDB_LIFTED_LIFTED_H_
#define PDB_LIFTED_LIFTED_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "logic/analysis.h"
#include "logic/cq.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// Knobs for the lifted engine.
struct LiftedOptions {
  /// Disable to ablate the inclusion–exclusion rule (Q_J then fails; see
  /// bench_inclusion_exclusion).
  bool use_inclusion_exclusion = true;
  /// Largest number of subsets expanded by one inclusion–exclusion step.
  size_t max_ie_subsets = 4096;
  /// Recursion depth guard.
  size_t max_depth = 256;
  /// Optional human-readable derivation log (appended, indented by depth).
  std::vector<std::string>* trace = nullptr;
};

/// Counters describing one computation.
struct LiftedStats {
  uint64_t independent_unions = 0;
  uint64_t independent_products = 0;
  uint64_t separator_groundings = 0;
  uint64_t inclusion_exclusions = 0;
  /// Widest single inclusion–exclusion application (number of disjuncts or
  /// conjuncts expanded — the exponent of that step's 2^n - 1 subsets).
  uint64_t ie_max_width = 0;
  uint64_t ie_terms_total = 0;
  uint64_t ie_terms_cancelled = 0;
  uint64_t cache_hits = 0;
  uint64_t base_evaluations = 0;
};

/// Lifted inference over one database instance.
class LiftedEngine {
 public:
  explicit LiftedEngine(const Database& db, LiftedOptions options = {})
      : db_(db), options_(options) {}

  /// Probability of the UCQ; Unsupported when the rules do not apply
  /// (the query is then #P-hard for the classes with a known dichotomy).
  Result<double> Compute(const Ucq& ucq);

  const LiftedStats& stats() const { return stats_; }

 private:
  using CqVec = std::vector<ConjunctiveQuery>;

  Result<double> ComputeUnion(CqVec disjuncts, size_t depth);
  Result<double> ComputeConjunction(CqVec conjuncts, size_t depth);
  Result<double> GroundSeparator(const CqVec& disjuncts,
                                 const std::vector<std::string>& roots,
                                 size_t depth);
  /// Set of constants the separator must range over (values with any
  /// nonzero disjunct).
  Result<std::set<Value>> SeparatorSupport(
      const CqVec& disjuncts, const std::vector<std::string>& roots) const;

  /// Applies data-level simplifications to one CQ; returns unsatisfiable
  /// (nullopt-like flag) via `satisfiable`.
  Result<ConjunctiveQuery> PreprocessCq(const ConjunctiveQuery& cq,
                                        bool* satisfiable) const;

  void Trace(size_t depth, const std::string& message);

  const Database& db_;
  LiftedOptions options_;
  LiftedStats stats_;
  std::map<std::string, double> cache_;
  std::set<std::string> in_progress_;  // cycle detection => rules failed
};

/// Convenience wrapper: probability of a UCQ over `db`.
Result<double> LiftedProbability(const Ucq& ucq, const Database& db,
                                 LiftedOptions options = {},
                                 LiftedStats* stats = nullptr);

/// Probability of a unate FO sentence with a pure ∃*/∀* quantifier
/// structure (Theorem 4.1's class): rewrites negated symbols to complement
/// relations and universal sentences through their negation, then runs the
/// lifted engine.
Result<double> LiftedProbabilityFo(const FoPtr& sentence, const Database& db,
                                   LiftedOptions options = {},
                                   LiftedStats* stats = nullptr);

}  // namespace pdb

#endif  // PDB_LIFTED_LIFTED_H_
