/// \file mln.h
/// \brief Markov Logic Networks (paper §3).
///
/// An MLN is a set of soft constraints (w, Δ) over a relational vocabulary
/// and a finite domain. Grounding every constraint yields a Markov network
/// whose factors contribute weight w when the ground formula holds and 1
/// otherwise; p(W) = weight(W)/Z. This module implements the exact
/// semantics by world enumeration (the oracle), and mln/translate.h the
/// paper's reduction to a TID conditioned on a constraint (Prop. 3.1).

#ifndef PDB_MLN_MLN_H_
#define PDB_MLN_MLN_H_

#include <string>
#include <vector>

#include "logic/fo.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// One soft constraint (w, Δ): Δ's free variables are listed explicitly and
/// are universally ground over the domain.
struct SoftConstraint {
  double weight = 1.0;
  std::vector<std::string> free_vars;
  FoPtr formula;
};

/// A Markov Logic Network over a fixed vocabulary and finite domain.
class Mln {
 public:
  /// Declares a predicate. All predicates used in constraints/queries must
  /// be declared.
  Status AddPredicate(const std::string& name, size_t arity);

  /// Adds a soft constraint; weight must be positive and finite (hard
  /// constraints are approximated by large weights). The formula's free
  /// variables must match `free_vars`.
  Status AddConstraint(double weight, std::vector<std::string> free_vars,
                       FoPtr formula);

  void SetDomain(std::vector<Value> domain) { domain_ = std::move(domain); }

  const std::vector<Value>& domain() const { return domain_; }
  const std::vector<SoftConstraint>& constraints() const {
    return constraints_;
  }
  const std::vector<std::pair<std::string, size_t>>& predicates() const {
    return predicates_;
  }

  /// A database containing every possible tuple of every declared predicate
  /// over the domain, each with probability `p`. The MLN's translation to a
  /// TID (paper §3) and the lineage-based conditional computation both
  /// ground against this complete instance.
  Result<Database> CompleteDatabase(double p = 0.5) const;

  /// Number of ground atoms (random variables) of the grounded network.
  size_t NumGroundAtoms() const;

  /// All groundings of all constraints: (weight, ground sentence).
  Result<std::vector<std::pair<double, FoPtr>>> GroundConstraints() const;

  /// Exact partition function Z by enumerating all possible worlds
  /// (exponential; guarded).
  Result<double> PartitionFunction() const;

  /// Exact p_MLN(query) by world enumeration (the test oracle).
  Result<double> ExactQueryProbability(const FoPtr& query) const;

 private:
  std::vector<std::pair<std::string, size_t>> predicates_;
  std::vector<SoftConstraint> constraints_;
  std::vector<Value> domain_;
};

}  // namespace pdb

#endif  // PDB_MLN_MLN_H_
