/// \file translate.h
/// \brief MLN -> TID + constraint translation (paper §3, Prop. 3.1, and the
/// appendix's two propositional constructions).
///
/// Every soft constraint (w, Δ(x̄)) becomes a fresh auxiliary relation F_i
/// of matching arity plus one conjunct of the global constraint Γ:
///
///  * disjunctive mode (w > 1, Prop. 3.1):  p(F_i) = 1/w — the weight
///        pair is (1/(w-1), 1), i.e. probability 1/w; the paper prints the
///        weight 1/(w-1) as the probability (see EXPERIMENTS.md) —
///        Γ_i = ∀x̄ (F_i(x̄) ∨ Δ_i(x̄));
///  * biconditional mode (any w > 0):       p(F_i) = w/(1+w),
///        Γ_i = ∀x̄ (F_i(x̄) <=> Δ_i(x̄)).
///
/// Original predicates get probability 1/2 on every possible tuple. Then
/// for any query Q over the original vocabulary,
/// p_MLN(Q) = p_D(Q | Γ) = p_D(Q ∧ Γ) / p_D(Γ).

#ifndef PDB_MLN_TRANSLATE_H_
#define PDB_MLN_TRANSLATE_H_

#include "mln/mln.h"
#include "storage/database.h"
#include "util/status.h"

namespace pdb {

/// Which appendix construction to use per constraint.
enum class MlnTranslationMode {
  /// Γ_i = F_i ∨ Δ_i with p = 1/w; requires every weight > 1.
  kDisjunctive,
  /// Γ_i = F_i <=> Δ_i with p = w/(1+w); works for every weight > 0.
  kBiconditional,
  /// kDisjunctive where w > 1, kBiconditional otherwise.
  kAuto,
};

/// A translated MLN: a TID plus the conditioning constraint.
struct MlnTranslation {
  /// TID: original predicates at probability 1/2 over all possible tuples,
  /// plus one auxiliary relation per constraint.
  Database database;
  /// The sentence Γ (conjunction over all constraints).
  FoPtr gamma;
  /// Quantification domain (the MLN's domain).
  std::vector<Value> domain;
};

/// Performs the translation.
Result<MlnTranslation> TranslateMln(const Mln& mln,
                                    MlnTranslationMode mode =
                                        MlnTranslationMode::kAuto);

/// p_D(query | Γ) computed by grounding query ∧ Γ and Γ to lineages and
/// running the DPLL counter. `query` ranges over the original vocabulary.
Result<double> TranslatedQueryProbability(const MlnTranslation& translation,
                                          const FoPtr& query);

}  // namespace pdb

#endif  // PDB_MLN_TRANSLATE_H_
