#include "mln/mln.h"

#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "boolean/formula.h"
#include "boolean/lineage.h"
#include "util/string_util.h"

namespace pdb {

Status Mln::AddPredicate(const std::string& name, size_t arity) {
  for (const auto& [existing, a] : predicates_) {
    if (existing == name) {
      return Status::InvalidArgument(
          StrFormat("predicate '%s' already declared", name.c_str()));
    }
  }
  predicates_.emplace_back(name, arity);
  return Status::OK();
}

Status Mln::AddConstraint(double weight, std::vector<std::string> free_vars,
                          FoPtr formula) {
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    return Status::OutOfRange(
        StrFormat("constraint weight %g must be positive and finite",
                  weight));
  }
  std::set<std::string> declared(free_vars.begin(), free_vars.end());
  if (formula->FreeVariables() != declared) {
    return Status::InvalidArgument(
        "declared free variables do not match the formula");
  }
  for (const std::string& pred : formula->Predicates()) {
    bool found = false;
    for (const auto& [name, arity] : predicates_) {
      if (name == pred) found = true;
    }
    if (!found) {
      return Status::NotFound(
          StrFormat("constraint uses undeclared predicate '%s'",
                    pred.c_str()));
    }
  }
  constraints_.push_back({weight, std::move(free_vars), std::move(formula)});
  return Status::OK();
}

Result<Database> Mln::CompleteDatabase(double p) const {
  Database db;
  if (domain_.empty()) {
    return Status::FailedPrecondition("MLN domain is empty");
  }
  ValueType type = domain_[0].type();
  for (const Value& v : domain_) {
    if (v.type() != type) {
      return Status::InvalidArgument("MLN domain mixes value types");
    }
  }
  for (const auto& [name, arity] : predicates_) {
    Relation rel(name, Schema::Anonymous(arity, type));
    size_t total = 1;
    for (size_t i = 0; i < arity; ++i) total *= domain_.size();
    for (size_t combo = 0; combo < total; ++combo) {
      Tuple tuple;
      size_t rest = combo;
      for (size_t i = 0; i < arity; ++i) {
        tuple.push_back(domain_[rest % domain_.size()]);
        rest /= domain_.size();
      }
      PDB_RETURN_NOT_OK(rel.AddTuple(std::move(tuple), p));
    }
    PDB_RETURN_NOT_OK(db.AddRelation(std::move(rel)));
  }
  return db;
}

size_t Mln::NumGroundAtoms() const {
  size_t count = 0;
  for (const auto& [name, arity] : predicates_) {
    size_t total = 1;
    for (size_t i = 0; i < arity; ++i) total *= domain_.size();
    count += total;
  }
  return count;
}

Result<std::vector<std::pair<double, FoPtr>>> Mln::GroundConstraints() const {
  std::vector<std::pair<double, FoPtr>> out;
  for (const SoftConstraint& c : constraints_) {
    size_t total = 1;
    for (size_t i = 0; i < c.free_vars.size(); ++i) total *= domain_.size();
    for (size_t combo = 0; combo < total; ++combo) {
      FoPtr ground = c.formula;
      size_t rest = combo;
      for (const std::string& var : c.free_vars) {
        ground = Substitute(ground, var, domain_[rest % domain_.size()]);
        rest /= domain_.size();
      }
      out.emplace_back(c.weight, std::move(ground));
    }
  }
  return out;
}

namespace {

constexpr size_t kMaxGroundAtoms = 22;

}  // namespace

namespace {

struct MlnEnumeration {
  double z = 0.0;
  double query_weight = 0.0;
};

}  // namespace

static Result<MlnEnumeration> EnumerateMlnWorlds(const Mln& mln,
                                                 const FoPtr& query);

Result<double> Mln::PartitionFunction() const {
  PDB_ASSIGN_OR_RETURN(MlnEnumeration e, EnumerateMlnWorlds(*this, Fo::True()));
  return e.z;
}

Result<double> Mln::ExactQueryProbability(const FoPtr& query) const {
  PDB_ASSIGN_OR_RETURN(MlnEnumeration e, EnumerateMlnWorlds(*this, query));
  if (e.z == 0.0) {
    return Status::InvalidArgument("MLN partition function is zero");
  }
  return e.query_weight / e.z;
}

static Result<MlnEnumeration> EnumerateMlnWorlds(const Mln& mln,
                                                 const FoPtr& query) {
  const size_t n = mln.NumGroundAtoms();
  if (n > kMaxGroundAtoms) {
    return Status::ResourceExhausted(
        StrFormat("exact MLN inference over %zu ground atoms exceeds the "
                  "limit of %zu",
                  n, kMaxGroundAtoms));
  }
  PDB_ASSIGN_OR_RETURN(Database complete, mln.CompleteDatabase());
  PDB_ASSIGN_OR_RETURN(auto ground, mln.GroundConstraints());
  const std::vector<Value>& domain = mln.domain();

  // Ground everything to Boolean formulas over the complete tuple space.
  FormulaManager mgr;
  // The lineage var table must be shared across formulas: ground the
  // conjunction "query marker" trick — instead, ground each formula with
  // the same manager and a shared database; variable identity is
  // (relation,row), which BuildLineage below preserves only per call. To
  // share, ground one combined formula per constraint AND the query in one
  // pass each with a persistent var table: we emulate this by grounding a
  // single vector of sentences through repeated BuildLineage calls on the
  // same manager and merging var maps by (relation, row).
  struct GroundFormula {
    NodeId node;
    double weight;  // 0 marks the query
  };
  std::map<std::pair<std::string, size_t>, VarId> var_of_tuple;
  auto ground_sentence = [&](const FoPtr& sentence) -> Result<NodeId> {
    PDB_ASSIGN_OR_RETURN(Lineage lineage,
                         BuildLineage(sentence, complete, &mgr, &domain));
    // Remap this lineage's local vars onto the shared (relation,row) vars.
    // BuildLineage numbers vars per call, so rebuild with substitution.
    std::vector<NodeId> remap(lineage.vars.size());
    bool identity = true;
    for (VarId v = 0; v < lineage.vars.size(); ++v) {
      auto key = std::make_pair(lineage.vars[v].relation, lineage.vars[v].row);
      auto [it, inserted] =
          var_of_tuple.emplace(key, static_cast<VarId>(var_of_tuple.size()));
      remap[v] = mgr.Var(it->second);
      if (it->second != v) identity = false;
    }
    if (identity) return lineage.root;
    // Substitute var v -> shared var via repeated cofactor-style rebuild:
    // cheaper here is a recursive rebuild.
    std::function<NodeId(NodeId)> rebuild = [&](NodeId f) -> NodeId {
      switch (mgr.kind(f)) {
        case FormulaKind::kFalse:
        case FormulaKind::kTrue:
          return f;
        case FormulaKind::kVar:
          return remap[mgr.var(f)];
        case FormulaKind::kNot:
          return mgr.Not(rebuild(mgr.children(f)[0]));
        case FormulaKind::kAnd:
        case FormulaKind::kOr: {
          // Copy: rebuilding children creates nodes, which can invalidate
          // the children() span.
          auto cs = mgr.children(f);
          std::vector<NodeId> original(cs.begin(), cs.end());
          std::vector<NodeId> kids;
          kids.reserve(original.size());
          for (NodeId c : original) kids.push_back(rebuild(c));
          return mgr.kind(f) == FormulaKind::kAnd ? mgr.And(std::move(kids))
                                                  : mgr.Or(std::move(kids));
        }
      }
      return f;
    };
    return rebuild(lineage.root);
  };

  std::vector<GroundFormula> factors;
  for (const auto& [w, sentence] : ground) {
    PDB_ASSIGN_OR_RETURN(NodeId node, ground_sentence(sentence));
    factors.push_back({node, w});
  }
  PDB_ASSIGN_OR_RETURN(NodeId query_node, ground_sentence(query));

  // Enumerate all worlds over the full tuple space.
  const size_t num_vars = n;
  double z = 0.0;
  double q_weight = 0.0;
  std::vector<bool> assignment(num_vars, false);
  for (uint64_t mask = 0; mask < (1ULL << num_vars); ++mask) {
    for (size_t i = 0; i < num_vars; ++i) assignment[i] = (mask >> i) & 1;
    double w = 1.0;
    for (const GroundFormula& g : factors) {
      if (mgr.Evaluate(g.node, assignment)) w *= g.weight;
    }
    z += w;
    if (mgr.Evaluate(query_node, assignment)) q_weight += w;
  }
  return MlnEnumeration{z, q_weight};
}

}  // namespace pdb
