#include "mln/translate.h"

#include "boolean/formula.h"
#include "boolean/lineage.h"
#include "util/string_util.h"
#include "wmc/dpll.h"

namespace pdb {

Result<MlnTranslation> TranslateMln(const Mln& mln, MlnTranslationMode mode) {
  MlnTranslation out;
  out.domain = mln.domain();
  PDB_ASSIGN_OR_RETURN(out.database, mln.CompleteDatabase(0.5));

  std::vector<FoPtr> gamma_parts;
  const auto& constraints = mln.constraints();
  for (size_t i = 0; i < constraints.size(); ++i) {
    const SoftConstraint& c = constraints[i];
    MlnTranslationMode effective = mode;
    if (effective == MlnTranslationMode::kAuto) {
      effective = c.weight > 1.0 ? MlnTranslationMode::kDisjunctive
                                 : MlnTranslationMode::kBiconditional;
    }
    if (effective == MlnTranslationMode::kDisjunctive && c.weight <= 1.0) {
      return Status::InvalidArgument(
          StrFormat("disjunctive translation needs weight > 1 (got %g)",
                    c.weight));
    }
    // Disjunctive mode: the appendix assigns the auxiliary variable the
    // WEIGHT pair (1/(w-1), 1); as a probability that is
    //   (1/(w-1)) / (1 + 1/(w-1)) = 1/w.
    // (Paper §3 prints "p_D(R(m,e)) = 1/(w-1)", conflating weight with
    // probability — see EXPERIMENTS.md; the ratio argument in the appendix
    // and exact enumeration both give 1/w.)
    double p = effective == MlnTranslationMode::kDisjunctive
                   ? 1.0 / c.weight
                   : c.weight / (1.0 + c.weight);
    // Auxiliary relation F_i over the constraint's free variables.
    std::string aux_name = StrFormat("F%zu", i);
    ValueType type = out.domain[0].type();
    Relation aux(aux_name, Schema::Anonymous(c.free_vars.size(), type));
    size_t total = 1;
    for (size_t j = 0; j < c.free_vars.size(); ++j) total *= out.domain.size();
    for (size_t combo = 0; combo < total; ++combo) {
      Tuple tuple;
      size_t rest = combo;
      for (size_t j = 0; j < c.free_vars.size(); ++j) {
        tuple.push_back(out.domain[rest % out.domain.size()]);
        rest /= out.domain.size();
      }
      PDB_RETURN_NOT_OK(aux.AddTuple(std::move(tuple), p));
    }
    PDB_RETURN_NOT_OK(out.database.AddRelation(std::move(aux)));

    // Γ_i, universally closed over the free variables.
    std::vector<Term> aux_args;
    for (const std::string& v : c.free_vars) aux_args.push_back(Term::Var(v));
    FoPtr aux_atom = Fo::MakeAtom(Atom(aux_name, std::move(aux_args)));
    FoPtr body = effective == MlnTranslationMode::kDisjunctive
                     ? Fo::Or(aux_atom, c.formula)
                     : Fo::Iff(aux_atom, c.formula);
    gamma_parts.push_back(Fo::Forall(c.free_vars, std::move(body)));
  }
  out.gamma = Fo::And(std::move(gamma_parts));
  return out;
}

Result<double> TranslatedQueryProbability(const MlnTranslation& translation,
                                          const FoPtr& query) {
  FormulaManager mgr;
  FoPtr query_and_gamma = Fo::And(query, translation.gamma);
  PDB_ASSIGN_OR_RETURN(
      Lineage joint, BuildLineage(query_and_gamma, translation.database, &mgr,
                                  &translation.domain));
  DpllCounter joint_counter(&mgr, WeightsFromProbabilities(joint.probs));
  PDB_ASSIGN_OR_RETURN(double p_joint, joint_counter.Compute(joint.root));

  PDB_ASSIGN_OR_RETURN(
      Lineage gamma_only, BuildLineage(translation.gamma, translation.database,
                                       &mgr, &translation.domain));
  DpllCounter gamma_counter(&mgr, WeightsFromProbabilities(gamma_only.probs));
  PDB_ASSIGN_OR_RETURN(double p_gamma, gamma_counter.Compute(gamma_only.root));
  if (p_gamma == 0.0) {
    return Status::InvalidArgument(
        "conditioning constraint has probability zero");
  }
  return p_joint / p_gamma;
}

}  // namespace pdb
