/// \file parallel.h
/// \brief `ParallelFor` / `ParallelReduce` over an `ExecContext`'s pool.
///
/// The engine's parallelism is expressed exclusively through these helpers,
/// which keep two invariants the inference code relies on:
///
///  1. **Caller participation.** The calling thread claims loop indices
///     alongside the pool workers, so a `ParallelFor` nested inside a pool
///     task can never deadlock (the caller always makes progress even when
///     every worker is busy), and a context without a pool degrades to a
///     plain sequential loop.
///  2. **Deterministic merging.** `ParallelReduce` materialises every body
///     result and folds them in index order on the calling thread, so the
///     reduction is bit-identical no matter how indices were interleaved
///     across threads. Combined with per-shard RNG substreams
///     (`Rng::Split`), Monte Carlo estimates are invariant to thread count.
///
/// Bodies are responsible for their own cooperative cancellation: every
/// body is invoked exactly once, and long-running bodies poll
/// `ExecContext::ShouldStop()` and return early.

#ifndef PDB_EXEC_PARALLEL_H_
#define PDB_EXEC_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "exec/context.h"
#include "exec/thread_pool.h"

namespace pdb {

/// Runs `body(i)` exactly once for every i in [0, n), using `ctx`'s pool
/// when present (sequentially otherwise). Blocks until all bodies finished.
/// `ctx` may be null. Bodies must be thread-safe with respect to each other.
void ParallelFor(ExecContext* ctx, size_t n,
                 const std::function<void(size_t)>& body);

/// Maps `fn` over [0, n) in parallel and returns the results in index
/// order. `T` must be default-constructible.
template <typename T, typename Fn>
std::vector<T> ParallelMap(ExecContext* ctx, size_t n, const Fn& fn) {
  std::vector<T> out(n);
  ParallelFor(ctx, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

/// Parallel map + sequential in-order fold:
/// `init ⊕ fn(0) ⊕ fn(1) ⊕ ... ⊕ fn(n-1)`. The fold runs on the calling
/// thread in index order, making the result deterministic even for
/// non-associative combines (floating-point sums).
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ExecContext* ctx, size_t n, T init, const MapFn& fn,
                 const CombineFn& combine) {
  std::vector<T> parts = ParallelMap<T>(ctx, n, fn);
  T acc = std::move(init);
  for (T& part : parts) acc = combine(std::move(acc), std::move(part));
  return acc;
}

}  // namespace pdb

#endif  // PDB_EXEC_PARALLEL_H_
