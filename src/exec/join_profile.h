/// \file join_profile.h
/// \brief Per-plan join instrumentation for EXPLAIN ANALYZE.
///
/// The grounding engine compiles each CQ into a slot-based join program
/// whose atom order is chosen from selectivity *estimates* (relation size
/// over per-column distinct counts — the classic independence assumption).
/// A `JoinProfile` attached to the `ExecContext` captures, per executed
/// plan, those estimates side by side with the *actual* per-step partial
/// match counts the executor observed, plus whether the vectorized
/// columnar path engaged and, when it did not, why. EXPLAIN ANALYZE
/// renders the two columns together so a cardinality misestimate (e.g. a
/// correlated dataset breaking the independence assumption) is visible
/// per atom instead of hidden inside a slow query.
///
/// Recording is opt-in exactly like tracing: a null `ExecContext::
/// join_profile()` costs nothing beyond the per-step counters the
/// executor already keeps locally.

#ifndef PDB_EXEC_JOIN_PROFILE_H_
#define PDB_EXEC_JOIN_PROFILE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdb {

/// One join step of an executed (or planned) CQ join program.
struct JoinStepProfile {
  /// Index of the atom in the query's syntactic atom list.
  size_t atom_index = 0;
  /// Predicate (relation) name of the atom.
  std::string predicate;
  /// Rows in the atom's relation.
  uint64_t relation_rows = 0;
  /// Estimated rows this step contributes per upstream partial match
  /// (relation size divided by the distinct count of each bound column);
  /// negative when no estimate was available (syntactic order, no stats).
  double estimated_rows = -1.0;
  /// Partial matches that survived through this step (rows entered at the
  /// last step = emitted matches). Zero for a plan-only EXPLAIN.
  uint64_t actual_rows = 0;
};

/// One compiled plan: the ordered steps plus executor-path attribution.
struct JoinPlanProfile {
  std::vector<JoinStepProfile> steps;
  /// The compiler chose the columnar path for this plan.
  bool use_columnar = false;
  /// The columnar path actually ran (preparation can fall back).
  bool columnar_engaged = false;
  /// Human-readable reason when the columnar path did not run.
  std::string fallback_reason;
  /// Matches the executor emitted (0 for plan-only EXPLAIN).
  uint64_t matches = 0;
  /// True when the plan was compiled but not executed (plain EXPLAIN).
  bool executed = false;
};

/// Thread-safe accumulator of executed plans, carried (not owned) by the
/// `ExecContext` the way the trace pointer is.
class JoinProfile {
 public:
  JoinProfile() = default;
  JoinProfile(const JoinProfile&) = delete;
  JoinProfile& operator=(const JoinProfile&) = delete;

  void AddPlan(JoinPlanProfile plan) {
    std::lock_guard<std::mutex> lock(mu_);
    plans_.push_back(std::move(plan));
  }

  std::vector<JoinPlanProfile> plans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plans_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<JoinPlanProfile> plans_;  // guarded by mu_
};

}  // namespace pdb

#endif  // PDB_EXEC_JOIN_PROFILE_H_
