/// \file thread_pool.h
/// \brief Fixed-size work-queue thread pool.
///
/// The execution runtime's only source of threads: a pool is created per
/// query (or shared by a caller) and drained on destruction. Workers pull
/// `std::function<void()>` tasks from a single locked queue — the tasks the
/// engine submits are shard-sized (thousands of Monte Carlo samples, one
/// answer-tuple marginal), so queue contention is negligible compared to the
/// work per task.
///
/// Shutdown is graceful: the destructor stops accepting new work, lets the
/// workers drain every task already queued, then joins them. Pending tasks
/// are never dropped — a caller blocked in `ParallelFor` (see parallel.h)
/// therefore always observes all of its bodies complete.

#ifndef PDB_EXEC_THREAD_POOL_H_
#define PDB_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pdb {

/// A fixed set of worker threads sharing one FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(size_t num_threads);

  /// Stops accepting tasks, drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Must not be called after (or concurrently with)
  /// destruction begins.
  void Submit(std::function<void()> task);

  /// Enqueues `task` only if the pool has spare capacity — a worker that is
  /// neither executing a task nor already spoken for by a queued one.
  /// Returns false (and does not take the task) when the pool is saturated
  /// or shutting down. This is the nesting-safe hook for recursive
  /// parallelism: work generated inside a pool task (DPLL component splits,
  /// nested parallel loops) calls TrySubmit and, on refusal, runs the work
  /// inline on the calling thread — so a full pool sheds load instead of
  /// stacking queued tasks it can only start after their parents finish.
  bool TrySubmit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// Total tasks executed by the workers so far.
  size_t tasks_executed() const;

  /// Number of hardware threads (at least 1).
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  size_t tasks_executed_ = 0;  // guarded by mu_
  size_t busy_workers_ = 0;    // guarded by mu_; workers executing a task
  bool stopping_ = false;      // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace pdb

#endif  // PDB_EXEC_THREAD_POOL_H_
