#include "exec/thread_pool.h"

#include "util/check.h"

namespace pdb {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PDB_CHECK(!stopping_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    // Spare capacity = workers not busy and not already claimed by a queued
    // task. Workers that have not reached their wait yet count as spare:
    // they will pick the task up as soon as they start.
    if (queue_.size() + busy_workers_ >= workers_.size()) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

size_t ThreadPool::tasks_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_executed_;
}

size_t ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: pending tasks always run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_executed_;
      ++busy_workers_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
    }
  }
}

}  // namespace pdb
