#include "exec/context.h"

#include "exec/thread_pool.h"
#include "util/string_util.h"

namespace pdb {

std::string ExecReport::ToString() const {
  std::string s = StrFormat(
      "%d thread%s, %llu task%s, %llu samples, %llu cache hits", num_threads,
      num_threads == 1 ? "" : "s", static_cast<unsigned long long>(tasks_run),
      tasks_run == 1 ? "" : "s",
      static_cast<unsigned long long>(samples_drawn),
      static_cast<unsigned long long>(cache_hits));
  if (dpll_decisions > 0) {
    s += StrFormat(", %llu DPLL decisions",
                   static_cast<unsigned long long>(dpll_decisions));
  }
  if (dpll_component_splits > 0) {
    s += StrFormat(", %llu component splits",
                   static_cast<unsigned long long>(dpll_component_splits));
    if (dpll_parallel_splits > 0) {
      s += StrFormat(" (%llu parallel)",
                     static_cast<unsigned long long>(dpll_parallel_splits));
    }
  }
  if (mc_batches > 0) {
    s += StrFormat(", %llu MC batches",
                   static_cast<unsigned long long>(mc_batches));
  }
  if (wmc_shared_hits + wmc_shared_misses > 0) {
    s += StrFormat(", %llu/%llu shared WMC cache hits",
                   static_cast<unsigned long long>(wmc_shared_hits),
                   static_cast<unsigned long long>(wmc_shared_hits +
                                                   wmc_shared_misses));
  }
  if (wmc_shared_inserts > 0) {
    s += StrFormat(", %llu shared WMC inserts",
                   static_cast<unsigned long long>(wmc_shared_inserts));
  }
  if (wmc_shared_evictions > 0) {
    s += StrFormat(", %llu shared WMC evictions",
                   static_cast<unsigned long long>(wmc_shared_evictions));
  }
  if (wmc_shared_bytes > 0) {
    s += StrFormat(", %llu shared WMC bytes",
                   static_cast<unsigned long long>(wmc_shared_bytes));
  }
  if (lineage_matches > 0) {
    s += StrFormat(", %llu lineage matches",
                   static_cast<unsigned long long>(lineage_matches));
  }
  if (lineage_nodes > 0) {
    s += StrFormat(", %llu lineage nodes",
                   static_cast<unsigned long long>(lineage_nodes));
  }
  if (index_builds + index_cache_hits > 0) {
    s += StrFormat(", %llu/%llu index cache hits",
                   static_cast<unsigned long long>(index_cache_hits),
                   static_cast<unsigned long long>(index_cache_hits +
                                                   index_builds));
  }
  if (shed_tasks > 0) {
    s += StrFormat(", %llu shed tasks",
                   static_cast<unsigned long long>(shed_tasks));
  }
  if (admission_rejected > 0) {
    s += StrFormat(", %llu admission rejections",
                   static_cast<unsigned long long>(admission_rejected));
  }
  if (deadline_exceeded) s += ", deadline exceeded";
  if (cancelled) s += ", cancelled";
  return s;
}

void ExecContext::SetDeadline(uint64_t ms) {
  if (ms == 0) {
    ClearDeadline();
    return;
  }
  Clock::time_point expiry = Clock::now() + std::chrono::milliseconds(ms);
  deadline_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         expiry.time_since_epoch())
                         .count(),
                     std::memory_order_relaxed);
  deadline_hit_.store(false, std::memory_order_relaxed);
}

void ExecContext::ClearDeadline() {
  deadline_ns_.store(0, std::memory_order_relaxed);
  deadline_hit_.store(false, std::memory_order_relaxed);
}

bool ExecContext::DeadlineExceeded() {
  if (deadline_hit_.load(std::memory_order_relaxed)) return true;
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == 0) return false;
  int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now().time_since_epoch())
                    .count();
  if (now < deadline) return false;
  deadline_hit_.store(true, std::memory_order_relaxed);
  deadline_ever_hit_.store(true, std::memory_order_relaxed);
  return true;
}

ExecReport ExecContext::Report() {
  DeadlineExceeded();  // refresh the latch before snapshotting
  ExecReport report;
  report.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  report.samples_drawn = samples_drawn_.load(std::memory_order_relaxed);
  report.mc_batches = mc_batches_.load(std::memory_order_relaxed);
  report.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  report.dpll_decisions = dpll_decisions_.load(std::memory_order_relaxed);
  report.dpll_component_splits =
      dpll_component_splits_.load(std::memory_order_relaxed);
  report.dpll_parallel_splits =
      dpll_parallel_splits_.load(std::memory_order_relaxed);
  report.wmc_shared_hits = wmc_shared_hits_.load(std::memory_order_relaxed);
  report.wmc_shared_misses =
      wmc_shared_misses_.load(std::memory_order_relaxed);
  report.lineage_matches = lineage_matches_.load(std::memory_order_relaxed);
  report.lineage_nodes = lineage_nodes_.load(std::memory_order_relaxed);
  report.index_builds = index_builds_.load(std::memory_order_relaxed);
  report.index_cache_hits =
      index_cache_hits_.load(std::memory_order_relaxed);
  report.shed_tasks = shed_tasks_.load(std::memory_order_relaxed);
  report.num_threads =
      pool_ ? static_cast<int>(pool_->num_threads()) : 1;
  report.cancelled = cancelled();
  report.deadline_exceeded =
      deadline_ever_hit_.load(std::memory_order_relaxed);
  return report;
}

}  // namespace pdb
