#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

namespace pdb {

namespace {

/// Shared between the caller and the helper tasks it submits. Heap-held via
/// shared_ptr: helpers may outlive the caller's wait (a helper that claimed
/// no index still touches the state when it exits).
struct LoopState {
  explicit LoopState(size_t n) : n(n) {}

  const size_t n;
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t completed = 0;  // guarded by mu

  /// Claims indices until exhausted; returns bodies executed.
  size_t Run(const std::function<void(size_t)>& body) {
    size_t executed = 0;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(i);
      ++executed;
    }
    if (executed > 0) {
      std::lock_guard<std::mutex> lock(mu);
      completed += executed;
      if (completed == n) done_cv.notify_all();
    }
    return executed;
  }
};

}  // namespace

void ParallelFor(ExecContext* ctx, size_t n,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  ThreadPool* pool = ctx ? ctx->pool() : nullptr;
  if (pool == nullptr || pool->num_threads() == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    if (ctx) ctx->AddTasksRun(n);
    return;
  }

  auto state = std::make_shared<LoopState>(n);
  // One helper per worker (capped at n-1: the caller claims indices too).
  // Helpers are submitted with TrySubmit: when the pool is saturated — a
  // nested loop inside a pool task, or other queries sharing a session
  // pool — no helper is queued and the caller simply runs more (or all) of
  // the bodies itself. The loop never waits on queue space, so nested
  // parallelism cannot deadlock and a busy shared pool degrades to inline
  // execution instead of piling up no-op helper tasks.
  size_t helpers = std::min(pool->num_threads(), n - 1);
  size_t submitted = 0;
  for (; submitted < helpers; ++submitted) {
    // Helpers copy the body: one may start only after the caller returned
    // (it then claims no index, but must not hold a dangling reference).
    if (!pool->TrySubmit([state, body] { state->Run(body); })) break;
  }
  // Helpers the saturated pool refused are load shed onto this thread; the
  // report surfaces them so overload is visible (pdb_shed_total).
  if (ctx && submitted < helpers) ctx->AddShedTasks(helpers - submitted);
  state->Run(body);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->completed == n; });
  }
  if (ctx) ctx->AddTasksRun(n);
}

}  // namespace pdb
